// Entity summarization side-by-side (Table 3's systems on real entities):
// REMI's top-k most intuitive atoms vs FACES-lite vs LinkSUM-lite vs the
// simulated expert gold standard.
//
//   ./entity_summaries [--k 5] [--entities France,Paris,Albert_Einstein]

#include <cstdio>
#include <string>
#include <vector>

#include "complexity/pagerank.h"
#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "summ/faces_lite.h"
#include "summ/gold_standard.h"
#include "summ/linksum_lite.h"
#include "summ/remi_summarizer.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

void PrintSummary(const remi::KnowledgeBase& kb, const char* name,
                  const remi::Summary& summary) {
  std::printf("  %-12s", name);
  bool first = true;
  for (const auto& item : summary) {
    if (!first) std::printf(" | ");
    first = false;
    std::printf("%s=%s", kb.Label(item.predicate).c_str(),
                kb.Label(item.object).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("k", 5, "summary size");
  flags.DefineString("entities", "France,Paris,Albert_Einstein,Switzerland",
                     "comma-separated curated-KB entities");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const size_t k = static_cast<size_t>(flags.GetInt("k"));

  remi::KnowledgeBase kb = remi::BuildCuratedKb();
  const auto pagerank = remi::ComputePageRank(kb);
  remi::RemiMiner miner(
      &kb, remi::MakeTable3RemiOptions(remi::ProminenceMetric::kFrequency));

  for (const std::string& name :
       remi::SplitString(flags.GetString("entities"), ',')) {
    auto id = remi::FindEntity(kb, name);
    if (!id.ok()) {
      std::printf("unknown entity '%s'\n", name.c_str());
      continue;
    }
    std::printf("=== %s (top %zu) ===\n", kb.Label(*id).c_str(), k);
    PrintSummary(kb, "REMI", remi::RemiSummarize(miner, *id, k));
    PrintSummary(kb, "FACES", remi::FacesSummarize(kb, *id, k));
    PrintSummary(kb, "LinkSUM",
                 remi::LinkSumSummarize(kb, pagerank, *id, k));
    const auto gold = remi::BuildGoldStandard(kb, *id, {});
    PrintSummary(kb, "expert#1", gold.top5.empty() ? remi::Summary{}
                                                   : gold.top5[0]);
    std::printf("\n");
  }
  return 0;
}
