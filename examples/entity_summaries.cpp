// Entity summarization side-by-side (Table 3's systems on real entities):
// REMI's top-k most intuitive atoms — served by remi::Service, which
// applies the Table 3 protocol (standard language, no rdf:type, no
// inverses) behind SummarizeRequest — vs FACES-lite vs LinkSUM-lite vs
// the simulated expert gold standard. The baselines read the service's KB
// directly: they are comparison systems, not part of the serving surface.
//
//   ./entity_summaries [--k 5] [--entities France,Paris,Albert_Einstein]

#include <cstdio>
#include <string>
#include <vector>

#include "complexity/pagerank.h"
#include "kbgen/curated.h"
#include "service/service.h"
#include "summ/faces_lite.h"
#include "summ/gold_standard.h"
#include "summ/linksum_lite.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

void PrintSummary(const remi::KnowledgeBase& kb, const char* name,
                  const remi::Summary& summary) {
  std::printf("  %-12s", name);
  bool first = true;
  for (const auto& item : summary) {
    if (!first) std::printf(" | ");
    first = false;
    std::printf("%s=%s", kb.Label(item.predicate).c_str(),
                kb.Label(item.object).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("k", 5, "summary size");
  flags.DefineString("entities", "France,Paris,Albert_Einstein,Switzerland",
                     "comma-separated curated-KB entities");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const size_t k = static_cast<size_t>(flags.GetInt("k"));

  auto service = remi::Service::Create(remi::BuildCuratedKb());
  const remi::KnowledgeBase& kb = service->kb();
  const auto pagerank = remi::ComputePageRank(kb);

  for (const std::string& name :
       remi::SplitString(flags.GetString("entities"), ',')) {
    remi::SummarizeRequest request;
    request.entity.names.push_back(name);
    request.k = k;
    auto response = service->Summarize(request);
    if (!response.ok()) {
      std::printf("unknown entity '%s'\n", name.c_str());
      continue;
    }
    std::printf("=== %s (top %zu) ===\n", response->entity_label.c_str(), k);
    PrintSummary(kb, "REMI", response->items);
    PrintSummary(kb, "FACES", remi::FacesSummarize(kb, response->entity, k));
    PrintSummary(kb, "LinkSUM",
                 remi::LinkSumSummarize(kb, pagerank, response->entity, k));
    const auto gold = remi::BuildGoldStandard(kb, response->entity, {});
    PrintSummary(kb, "expert#1", gold.top5.empty() ? remi::Summary{}
                                                   : gold.top5[0]);
    std::printf("\n");
  }
  return 0;
}
