// Algorithmic journalism (one of the paper's §1 use cases): generate
// one-line "who is this?" briefs for people, companies, and films by
// asking a remi::Service for the most intuitive RE of each, verbalized.
// The newsroom pattern is exactly the serving story: one long-lived
// service, many small requests, each with its own deadline.
//
//   ./journalism_briefs [--threads 2] [--metric fr|pr]

#include <cstdio>
#include <string>
#include <vector>

#include "kbgen/curated.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("threads", 2, "worker threads (>1 enables P-REMI)");
  flags.DefineString("metric", "fr", "prominence metric: fr or pr");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  remi::ServiceOptions options;
  options.mining.num_threads = static_cast<int>(flags.GetInt("threads"));
  if (flags.GetString("metric") == "pr") {
    options.mining.cost.metric = remi::ProminenceMetric::kPageRank;
  }
  auto service = remi::Service::Create(remi::BuildCuratedKb(), options);

  // The §4.1.3 newsroom: companies, scientists, movies, disputed places.
  const std::vector<std::vector<std::string>> stories = {
      {"Agrofert"},
      {"Marie_Curie"},
      {"Neil_Armstrong"},
      {"Altri_Templi"},
      {"The_Hobbit_1", "The_Hobbit_2"},
      {"Ecuador", "Peru"},
      {"Rennes", "Nantes"},
  };

  remi::Timer total;
  for (const auto& story : stories) {
    remi::MineRequest request;
    request.targets.names = story;
    request.verbalize = true;
    request.control.deadline_seconds = 10.0;  // briefs must never stall

    remi::Timer t;
    auto response = service->Mine(request);
    REMI_CHECK_OK(response.status());

    std::string who;
    for (const remi::TermId target : response->targets) {
      if (!who.empty()) who += " & ";
      who += service->kb().Label(target);
    }
    if (response->found) {
      std::printf("%-28s %s  [%.1fms, Ĉ=%.1f]\n", (who + ":").c_str(),
                  response->verbalization.c_str(),
                  t.ElapsedSeconds() * 1e3, response->cost);
    } else {
      std::printf("%-28s (no unambiguous description found%s)\n",
                  (who + ":").c_str(),
                  response->status.IsDeadlineExceeded() ? "; timed out"
                                                        : "");
    }
  }
  std::printf("\n%zu briefs in %.1fms with %d thread(s), metric Ĉ%s\n",
              stories.size(), total.ElapsedSeconds() * 1e3,
              static_cast<int>(flags.GetInt("threads")),
              flags.GetString("metric").c_str());
  return 0;
}
