// Algorithmic journalism (one of the paper's §1 use cases): generate
// one-line "who is this?" briefs for people, companies, and films by
// mining the most intuitive RE for each and verbalizing it. Runs P-REMI
// when --threads > 1.
//
//   ./journalism_briefs [--threads 2] [--metric fr|pr]

#include <cstdio>
#include <string>
#include <vector>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "nlg/verbalizer.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("threads", 2, "worker threads (>1 enables P-REMI)");
  flags.DefineString("metric", "fr", "prominence metric: fr or pr");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  remi::KnowledgeBase kb = remi::BuildCuratedKb();

  remi::RemiOptions options;
  options.num_threads = static_cast<int>(flags.GetInt("threads"));
  options.cost.metric = flags.GetString("metric") == "pr"
                            ? remi::ProminenceMetric::kPageRank
                            : remi::ProminenceMetric::kFrequency;
  remi::RemiMiner miner(&kb, options);
  remi::Verbalizer verbalizer(&kb);

  // The §4.1.3 newsroom: companies, scientists, movies, disputed places.
  const std::vector<std::vector<std::string>> stories = {
      {"Agrofert"},
      {"Marie_Curie"},
      {"Neil_Armstrong"},
      {"Altri_Templi"},
      {"The_Hobbit_1", "The_Hobbit_2"},
      {"Ecuador", "Peru"},
      {"Rennes", "Nantes"},
  };

  remi::Timer total;
  for (const auto& story : stories) {
    std::vector<remi::TermId> targets;
    std::string who;
    for (const auto& name : story) {
      auto id = remi::FindEntity(kb, name);
      REMI_CHECK_OK(id.status());
      targets.push_back(*id);
      if (!who.empty()) who += " & ";
      who += kb.Label(*id);
    }
    remi::Timer t;
    auto result = miner.MineRe(targets);
    REMI_CHECK_OK(result.status());
    if (result->found) {
      std::printf("%-28s %s  [%.1fms, Ĉ=%.1f]\n", (who + ":").c_str(),
                  verbalizer.Sentence(result->expression).c_str(),
                  t.ElapsedSeconds() * 1e3, result->cost);
    } else {
      std::printf("%-28s (no unambiguous description found)\n",
                  (who + ":").c_str());
    }
  }
  std::printf("\n%zu briefs in %.1fms with %d thread(s), metric Ĉ%s\n",
              stories.size(), total.ElapsedSeconds() * 1e3,
              static_cast<int>(flags.GetInt("threads")),
              flags.GetString("metric").c_str());
  return 0;
}
