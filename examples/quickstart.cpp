// Quickstart: stand up a remi::Service and mine the most intuitive
// referring expression for an entity through the request/response API.
//
//   ./quickstart [--targets Paris,Berlin] [--threads 2]
//   ./quickstart --kb tests/data/smoke.nt --targets Berlin
//
// Without --kb, an inline N-Triples document is parsed and the built KB is
// adopted with Service::Create; with --kb, Service::Open sniffs the format
// (.nt / .ttl / .rkf / .rkf2) and loads the file. Either way the Service
// owns the KB, the thread pool, and the match-set cache — consumers only
// fill in MineRequest and read MineResponse.

#include <cstdio>
#include <string>

#include "rdf/ntriples.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

// A small inline KB: European capitals, with enough structure that
// "capitalOf France" is needed to single out Paris.
constexpr const char* kDocument = R"(
<http://ex/Paris>  <http://ex/capitalOf> <http://ex/France> .
<http://ex/Paris>  <http://ex/cityIn> <http://ex/France> .
<http://ex/Lyon>   <http://ex/cityIn> <http://ex/France> .
<http://ex/Berlin> <http://ex/capitalOf> <http://ex/Germany> .
<http://ex/Berlin> <http://ex/cityIn> <http://ex/Germany> .
<http://ex/Munich> <http://ex/cityIn> <http://ex/Germany> .
<http://ex/Rome>   <http://ex/capitalOf> <http://ex/Italy> .
<http://ex/Rome>   <http://ex/cityIn> <http://ex/Italy> .
<http://ex/Paris>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Lyon>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Berlin> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Munich> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Rome>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Paris>  <http://www.w3.org/2000/01/rdf-schema#label> "Paris" .
<http://ex/France> <http://www.w3.org/2000/01/rdf-schema#label> "France" .
)";

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("kb", "",
                     "KB file to serve (.nt/.ttl/.rkf/.rkf2); empty = the "
                     "inline capitals document");
  flags.DefineString("targets", "Paris",
                     "comma-separated entity names to describe");
  flags.DefineInt("threads", 1, "1 = REMI, >1 = P-REMI");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  // 1. Start the service. ServiceOptions.mining carries the RemiOptions
  // defaults; every request may override the cost model / language bias.
  remi::ServiceOptions options;
  options.mining.num_threads = static_cast<int>(flags.GetInt("threads"));

  std::unique_ptr<remi::Service> service;
  if (!flags.GetString("kb").empty()) {
    remi::KbSpec spec;
    spec.path = flags.GetString("kb");
    auto opened = remi::Service::Open(spec, options);
    REMI_CHECK_OK(opened.status());
    service = std::move(*opened);
  } else {
    remi::Dictionary dict;
    remi::NTriplesParser parser(&dict);
    auto triples = parser.ParseString(kDocument);
    REMI_CHECK_OK(triples.status());
    remi::KbOptions kb_options;
    kb_options.inverse_top_fraction = 0.1;
    service = remi::Service::Create(
        remi::KnowledgeBase::Build(std::move(dict), std::move(*triples),
                                   kb_options),
        options);
  }
  std::printf("KB: %zu facts, %zu entities, %zu predicates\n",
              service->kb().NumFacts(), service->kb().NumEntities(),
              service->kb().NumPredicates());

  // 2. Fill in the request: lexical targets (full IRIs or unambiguous
  // suffixes), verbalization on, a 5-second deadline so the call can
  // never run unbounded.
  remi::MineRequest request;
  for (const std::string& name :
       remi::SplitString(flags.GetString("targets"), ',')) {
    if (!name.empty()) request.targets.names.push_back(name);
  }
  request.verbalize = true;
  request.control.deadline_seconds = 5.0;

  // 3. Mine. Request-level problems (unknown target, capacity) are the
  // error side of the Result; execution outcomes (OK / DeadlineExceeded /
  // Cancelled) come back in response.status with partial stats.
  auto response = service->Mine(request);
  REMI_CHECK_OK(response.status());
  if (!response->status.ok()) {
    std::printf("request interrupted: %s\n",
                response->status.ToString().c_str());
    return 1;
  }
  if (!response->found) {
    std::printf("no referring expression exists for this set\n");
    return 0;
  }
  std::printf("RE  : %s\n", response->expression_text.c_str());
  std::printf("Ĉ   : %.3f bits\n", response->cost);
  std::printf("NLG : %s\n", response->verbalization.c_str());
  std::printf("search: %zu common subgraphs, %llu nodes visited, "
              "%.1fms mining\n",
              response->stats.num_common_subgraphs,
              static_cast<unsigned long long>(
                  response->stats.nodes_visited),
              response->service.mine_seconds * 1e3);
  return 0;
}
