// Quickstart: parse an N-Triples document, build a KnowledgeBase, mine the
// most intuitive referring expression for an entity, and verbalize it.
//
//   ./quickstart [--targets Paris,Berlin] [--threads 2]
//
// Also demonstrates the RKF binary format round-trip (save + reload).

#include <cstdio>
#include <string>

#include "kb/knowledge_base.h"
#include "nlg/verbalizer.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

// A small inline KB: European capitals, with enough structure that
// "capitalOf France" is needed to single out Paris.
constexpr const char* kDocument = R"(
<http://ex/Paris>  <http://ex/capitalOf> <http://ex/France> .
<http://ex/Paris>  <http://ex/cityIn> <http://ex/France> .
<http://ex/Lyon>   <http://ex/cityIn> <http://ex/France> .
<http://ex/Berlin> <http://ex/capitalOf> <http://ex/Germany> .
<http://ex/Berlin> <http://ex/cityIn> <http://ex/Germany> .
<http://ex/Munich> <http://ex/cityIn> <http://ex/Germany> .
<http://ex/Rome>   <http://ex/capitalOf> <http://ex/Italy> .
<http://ex/Rome>   <http://ex/cityIn> <http://ex/Italy> .
<http://ex/Paris>  <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Lyon>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Berlin> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Munich> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Rome>   <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> .
<http://ex/Paris>  <http://www.w3.org/2000/01/rdf-schema#label> "Paris" .
<http://ex/France> <http://www.w3.org/2000/01/rdf-schema#label> "France" .
)";

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("targets", "Paris",
                     "comma-separated entity local names to describe");
  flags.DefineInt("threads", 1, "1 = REMI, >1 = P-REMI");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  // 1. Parse.
  remi::Dictionary dict;
  remi::NTriplesParser parser(&dict);
  auto triples = parser.ParseString(kDocument);
  REMI_CHECK_OK(triples.status());
  std::printf("parsed %zu triples\n", triples->size());

  // 2. RKF round-trip (the single-file compressed storage of §3.5.1).
  const std::string bytes = remi::SerializeRkf(dict, *triples);
  auto reloaded = remi::DeserializeRkf(bytes);
  REMI_CHECK_OK(reloaded.status());
  std::printf("RKF: %zu bytes for %zu terms + %zu triples\n", bytes.size(),
              reloaded->dict.size(), reloaded->triples.size());

  // 3. Build the knowledge base (inverse materialization included).
  remi::KbOptions kb_options;
  kb_options.inverse_top_fraction = 0.1;
  remi::KnowledgeBase kb = remi::KnowledgeBase::Build(
      std::move(reloaded->dict), std::move(reloaded->triples), kb_options);
  std::printf("KB: %zu facts (%zu base), %zu entities, %zu predicates\n",
              kb.NumFacts(), kb.NumBaseFacts(), kb.NumEntities(),
              kb.NumPredicates());

  // 4. Mine.
  remi::RemiOptions options;
  options.num_threads = static_cast<int>(flags.GetInt("threads"));
  remi::RemiMiner miner(&kb, options);
  remi::Verbalizer verbalizer(&kb);

  std::vector<remi::TermId> targets;
  for (const std::string& name :
       remi::SplitString(flags.GetString("targets"), ',')) {
    auto id = kb.dict().Lookup(remi::TermKind::kIri, "http://ex/" + name);
    if (!id.ok()) {
      std::printf("unknown entity '%s'\n", name.c_str());
      return 1;
    }
    targets.push_back(*id);
  }

  auto result = miner.MineRe(targets);
  REMI_CHECK_OK(result.status());
  if (!result->found) {
    std::printf("no referring expression exists for this set\n");
    return 0;
  }
  std::printf("RE  : %s\n", result->expression.ToString(kb.dict()).c_str());
  std::printf("Ĉ   : %.3f bits\n", result->cost);
  std::printf("NLG : %s\n",
              verbalizer.Sentence(result->expression).c_str());
  std::printf("search: %zu common subgraphs, %llu nodes visited\n",
              result->stats.num_common_subgraphs,
              static_cast<unsigned long long>(result->stats.nodes_visited));
  return 0;
}
