// The paper's geography walkthrough (§1, §2.2.2) on the curated world KB,
// served through remi::Service: mines REs for the running examples —
// {Guyana, Suriname}, Paris, the Johann J. Müller supervisor chain,
// {Ecuador, Peru} — under both cost variants (Ĉfr and Ĉpr) and prints the
// ranked candidate queue. One service instance answers all of it: the
// metric is a *per-request* cost override, so both variants share the KB,
// the pool, and the warm match-set cache.
//
//   ./geo_describe [--show-queue 5]

#include <cstdio>
#include <string>
#include <vector>

#include "kbgen/curated.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

void Describe(remi::Service* service, remi::ProminenceMetric metric,
              const std::vector<std::string>& names, int show_queue) {
  remi::MineRequest request;
  request.targets.names = names;
  request.verbalize = true;
  remi::CostModelOptions cost;
  cost.metric = metric;
  request.cost = cost;

  auto response = service->Mine(request);
  REMI_CHECK_OK(response.status());

  std::string title;
  for (const remi::TermId t : response->targets) {
    if (!title.empty()) title += ", ";
    title += service->kb().Label(t);
  }
  std::printf("--- {%s} ---\n", title.c_str());
  if (!response->found) {
    std::printf("  no RE found\n");
    return;
  }
  std::printf("  RE (%.2f bits): %s\n", response->cost,
              response->expression_text.c_str());
  std::printf("  \"%s\"\n", response->verbalization.c_str());

  if (show_queue > 0) {
    remi::CandidatesRequest candidates;
    candidates.targets.names = names;
    candidates.cost = cost;
    auto ranked = service->Candidates(candidates);
    REMI_CHECK_OK(ranked.status());
    std::printf("  candidate queue (top %d of %zu):\n", show_queue,
                ranked->size());
    int shown = 0;
    for (const auto& r : *ranked) {
      if (shown++ >= show_queue) break;
      std::printf("    %6.2f  %s\n", r.cost,
                  r.expression.ToString(service->kb().dict()).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("show-queue", 5,
                  "how many ranked candidate subgraph expressions to print");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const int show_queue = static_cast<int>(flags.GetInt("show-queue"));

  auto service = remi::Service::Create(remi::BuildCuratedKb());
  std::printf("curated KB: %zu facts, %zu entities\n\n",
              service->kb().NumFacts(), service->kb().NumEntities());

  for (const auto metric : {remi::ProminenceMetric::kFrequency,
                            remi::ProminenceMetric::kPageRank}) {
    std::printf("=============== Ĉ%s ===============\n",
                remi::ProminenceMetricToString(metric));
    // §2.2.2: the Germanic-language countries of South America.
    Describe(service.get(), metric, {"Guyana", "Suriname"}, show_queue);
    // §1: Paris, "the capital of France".
    Describe(service.get(), metric, {"Paris"}, show_queue);
    // §1/§3.2: the supervisor of the supervisor of Albert Einstein.
    Describe(service.get(), metric, {"Johann_J_Mueller"}, show_queue);
    // §4.1.3: "they were both places of the Inca Civil War".
    Describe(service.get(), metric, {"Ecuador", "Peru"}, show_queue);
    std::printf("\n");
  }
  return 0;
}
