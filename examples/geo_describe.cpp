// The paper's geography walkthrough (§1, §2.2.2) on the curated world KB:
// mines REs for the running examples — {Guyana, Suriname}, Paris, the
// Johann J. Müller supervisor chain, {Ecuador, Peru} — under both cost
// variants (Ĉfr and Ĉpr) and prints the ranked candidate queue.
//
//   ./geo_describe [--show-queue 5]

#include <cstdio>
#include <string>
#include <vector>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "nlg/verbalizer.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

void Describe(const remi::KnowledgeBase& kb, const remi::RemiMiner& miner,
              const std::vector<std::string>& names, int show_queue) {
  std::vector<remi::TermId> targets;
  std::string title;
  for (const auto& name : names) {
    auto id = remi::FindEntity(kb, name);
    REMI_CHECK_OK(id.status());
    targets.push_back(*id);
    if (!title.empty()) title += ", ";
    title += kb.Label(*id);
  }
  std::printf("--- {%s} ---\n", title.c_str());

  auto result = miner.MineRe(targets);
  REMI_CHECK_OK(result.status());
  remi::Verbalizer verbalizer(&kb);
  if (!result->found) {
    std::printf("  no RE found\n");
    return;
  }
  std::printf("  RE (%.2f bits): %s\n", result->cost,
              result->expression.ToString(kb.dict()).c_str());
  std::printf("  \"%s\"\n", verbalizer.Sentence(result->expression).c_str());

  if (show_queue > 0) {
    auto ranked = miner.RankedCommonSubgraphs(targets);
    REMI_CHECK_OK(ranked.status());
    std::printf("  candidate queue (top %d of %zu):\n", show_queue,
                ranked->size());
    int shown = 0;
    for (const auto& r : *ranked) {
      if (shown++ >= show_queue) break;
      std::printf("    %6.2f  %s\n", r.cost,
                  r.expression.ToString(kb.dict()).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("show-queue", 5,
                  "how many ranked candidate subgraph expressions to print");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const int show_queue = static_cast<int>(flags.GetInt("show-queue"));

  remi::KnowledgeBase kb = remi::BuildCuratedKb();
  std::printf("curated KB: %zu facts, %zu entities\n\n", kb.NumFacts(),
              kb.NumEntities());

  for (const auto metric : {remi::ProminenceMetric::kFrequency,
                            remi::ProminenceMetric::kPageRank}) {
    std::printf("=============== Ĉ%s ===============\n",
                remi::ProminenceMetricToString(metric));
    remi::RemiOptions options;
    options.cost.metric = metric;
    remi::RemiMiner miner(&kb, options);

    // §2.2.2: the Germanic-language countries of South America.
    Describe(kb, miner, {"Guyana", "Suriname"}, show_queue);
    // §1: Paris, "the capital of France".
    Describe(kb, miner, {"Paris"}, show_queue);
    // §1/§3.2: the supervisor of the supervisor of Albert Einstein.
    Describe(kb, miner, {"Johann_J_Mueller"}, show_queue);
    // §4.1.3: "they were both places of the Inca Civil War".
    Describe(kb, miner, {"Ecuador", "Peru"}, show_queue);
    std::printf("\n");
  }
  return 0;
}
