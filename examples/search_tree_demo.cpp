// Figure 1 replication: the DFS search space for {Rennes, Nantes}.
//
// The serving surface supplies the ingredients — service->Candidates()
// returns the cost-ordered queue of common subgraph expressions (Alg. 1
// line 2) and service->Mine() the reference answer — and this demo then
// walks the conjunction tree exactly like DFS-REMI, narrating every
// visit, RE hit, and pruning decision (depth / side / best-bound): the
// textual version of the paper's Figure 1. The walk itself deliberately
// uses a raw Evaluator over the service's KB; it is a didactic
// re-implementation of the miner's internals, not a serving pattern.
//
//   ./search_tree_demo [--max-queue 6]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "kbgen/curated.h"
#include "query/evaluator.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

struct TraceState {
  const remi::KnowledgeBase* kb;
  remi::Evaluator* evaluator;
  const std::vector<remi::RankedSubgraph>* queue;
  const remi::MatchSet* targets;
  double best_cost = remi::CostModel::kInfiniteCost;
  remi::Expression best;
  int visits = 0;
};

void Indent(int depth) {
  for (int i = 0; i < depth; ++i) std::printf("  ");
}

void Walk(TraceState* st, const remi::Expression& prefix,
          const remi::MatchSet& prefix_matches, double prefix_cost,
          size_t next, int depth) {
  const auto& queue = *st->queue;
  for (size_t j = next; j < queue.size(); ++j) {
    const double cost = prefix_cost + queue[j].cost;
    if (st->best_cost < remi::CostModel::kInfiniteCost &&
        cost >= st->best_cost) {
      Indent(depth);
      std::printf("✂ bound prune: Ĉ=%.2f ≥ best %.2f — skip remaining "
                  "siblings\n",
                  cost, st->best_cost);
      return;
    }
    const remi::Expression node = prefix.Conjoin(queue[j].expression);
    const remi::MatchSet matches = remi::IntersectSorted(
        prefix_matches, *st->evaluator->Match(queue[j].expression));
    ++st->visits;
    Indent(depth);
    std::printf("visit %s  (Ĉ=%.2f, |matches|=%zu)\n",
                node.ToString(st->kb->dict()).c_str(), cost, matches.size());
    if (matches.size() == st->targets->size()) {
      Indent(depth);
      std::printf("★ RE found; record. ✂ depth prune (descendants cost "
                  "more) + ✂ side prune (later siblings cost more)\n");
      if (cost < st->best_cost) {
        st->best_cost = cost;
        st->best = node;
      }
      return;
    }
    Walk(st, node, matches, cost, j + 1, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineInt("max-queue", 6,
                  "explore only the cheapest N subgraph expressions");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  auto service = remi::Service::Create(remi::BuildCuratedKb());
  const remi::KnowledgeBase& kb = service->kb();

  const std::vector<std::string> names{"Rennes", "Nantes"};
  remi::CandidatesRequest candidates;
  candidates.targets.names = names;
  auto ranked = service->Candidates(candidates);
  REMI_CHECK_OK(ranked.status());

  auto targets_result = service->ResolveTargets(candidates.targets);
  REMI_CHECK_OK(targets_result.status());
  remi::MatchSet targets(targets_result->begin(), targets_result->end());

  const size_t keep = std::min<size_t>(
      static_cast<size_t>(flags.GetInt("max-queue")), ranked->size());
  std::vector<remi::RankedSubgraph> queue(ranked->begin(),
                                          ranked->begin() + keep);

  std::printf("Figure 1 — search space for {Rennes, Nantes}\n");
  std::printf("priority queue (Alg. 1 line 2), %zu of %zu kept:\n", keep,
              ranked->size());
  for (size_t i = 0; i < queue.size(); ++i) {
    std::printf("  ρ%zu  Ĉ=%.2f  %s\n", i + 1, queue[i].cost,
                queue[i].expression.ToString(kb.dict()).c_str());
  }
  std::printf("\nDFS trace:\n");

  remi::Evaluator evaluator(&kb);
  TraceState st;
  st.kb = &kb;
  st.evaluator = &evaluator;
  st.queue = &queue;
  st.targets = &targets;

  for (size_t root = 0; root < queue.size(); ++root) {
    if (st.best_cost < remi::CostModel::kInfiniteCost &&
        queue[root].cost >= st.best_cost) {
      std::printf("✂ root ρ%zu pruned: Ĉ=%.2f ≥ best %.2f — all later "
                  "roots cost more; stop\n",
                  root + 1, queue[root].cost, st.best_cost);
      break;
    }
    std::printf("— explore subtree rooted at ρ%zu —\n", root + 1);
    const remi::Expression expr =
        remi::Expression::Top().Conjoin(queue[root].expression);
    const remi::MatchSet matches = *evaluator.Match(queue[root].expression);
    ++st.visits;
    std::printf("visit %s  (Ĉ=%.2f, |matches|=%zu)\n",
                expr.ToString(kb.dict()).c_str(), queue[root].cost,
                matches.size());
    if (matches.size() == targets.size()) {
      std::printf("★ RE found at the root; record and stop this subtree\n");
      if (queue[root].cost < st.best_cost) {
        st.best_cost = queue[root].cost;
        st.best = expr;
      }
      continue;
    }
    Walk(&st, expr, matches, queue[root].cost, root + 1, 1);
  }

  std::printf("\nresult after %d visited nodes: %s  (Ĉ=%.2f)\n", st.visits,
              st.best.ToString(kb.dict()).c_str(), st.best_cost);

  // Cross-check against the real miner, through the serving surface.
  remi::MineRequest reference_request;
  reference_request.targets.names = names;
  auto reference = service->Mine(reference_request);
  REMI_CHECK_OK(reference.status());
  std::printf("Service reference answer: %s  (Ĉ=%.2f)\n",
              reference->expression_text.c_str(), reference->cost);
  return 0;
}
