// Microbenchmarks of the storage substrate: dictionary interning, triple
// store lookups, N-Triples parsing, and the RKF codec.

#include <benchmark/benchmark.h>

#include "kbgen/synthetic.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "util/random.h"

namespace remi {
namespace {

const KnowledgeBase& SmallKb() {
  static const KnowledgeBase* kb = [] {
    SyntheticKbConfig config;
    config.num_entities = 5000;
    config.num_predicates = 60;
    config.num_classes = 16;
    config.num_facts = 50000;
    return new KnowledgeBase(BuildSyntheticKb(config));
  }();
  return *kb;
}

void BM_DictionaryIntern(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Dictionary dict;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(
          dict.InternIri("http://bench/e" + std::to_string(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_DictionaryLookupHit(benchmark::State& state) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.InternIri("http://bench/e" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dict.Lookup(TermKind::kIri,
                    "http://bench/e" + std::to_string(i++ % 1000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryLookupHit);

void BM_StoreBySubject(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& subjects = kb.store().subjects();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kb.store().BySubject(subjects[i++ % subjects.size()]).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreBySubject);

void BM_StoreByPredicateObject(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& pso = kb.store().pso();
  Rng rng(7);
  std::vector<Triple> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(pso[rng.NextBounded(pso.size())]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Triple& probe = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(
        kb.store().ByPredicateObject(probe.p, probe.o).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreByPredicateObject);

void BM_StoreContains(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& spo = kb.store().spo();
  Rng rng(8);
  std::vector<Triple> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(spo[rng.NextBounded(spo.size())]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Triple& probe = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(kb.store().Contains(probe.s, probe.p, probe.o));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreContains);

void BM_TripleStoreBuild(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  std::vector<Triple> triples = kb.store().spo();
  for (auto _ : state) {
    TripleStore store = TripleStore::Build(triples);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(triples.size()));
}
BENCHMARK(BM_TripleStoreBuild);

void BM_NTriplesParse(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  std::vector<Triple> sample(kb.store().spo().begin(),
                             kb.store().spo().begin() + 5000);
  const std::string doc = WriteNTriples(kb.dict(), sample);
  for (auto _ : state) {
    Dictionary dict;
    NTriplesParser parser(&dict);
    auto triples = parser.ParseString(doc);
    benchmark::DoNotOptimize(triples->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_NTriplesParse);

void BM_RkfSerialize(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  for (auto _ : state) {
    const std::string bytes = SerializeRkf(kb.dict(), kb.store().spo());
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_RkfSerialize);

void BM_RkfDeserialize(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const std::string bytes = SerializeRkf(kb.dict(), kb.store().spo());
  for (auto _ : state) {
    auto data = DeserializeRkf(bytes);
    benchmark::DoNotOptimize(data->triples.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_RkfDeserialize);

}  // namespace
}  // namespace remi

BENCHMARK_MAIN();
