// Microbenchmarks of the storage substrate: dictionary interning, CSR
// triple store lookups, EntitySet intersections, N-Triples parsing, and
// the RKF codec.
//
// The lookup and intersection numbers feed BENCH_store.json (see
// README.md): run with
//   bench_micro_store --benchmark_out=BENCH_store.json \
//                     --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include "gbench_main.h"

#include "kbgen/synthetic.h"
#include "query/entity_set.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "util/random.h"

namespace remi {
namespace {

const KnowledgeBase& SmallKb() {
  static const KnowledgeBase* kb = [] {
    SyntheticKbConfig config;
    config.num_entities = 5000;
    config.num_predicates = 60;
    config.num_classes = 16;
    config.num_facts = 50000;
    return new KnowledgeBase(BuildSyntheticKb(config));
  }();
  return *kb;
}

void BM_DictionaryIntern(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Dictionary dict;
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      benchmark::DoNotOptimize(
          dict.InternIri("http://bench/e" + std::to_string(i)));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DictionaryIntern);

void BM_DictionaryLookupHit(benchmark::State& state) {
  Dictionary dict;
  for (int i = 0; i < 1000; ++i) {
    dict.InternIri("http://bench/e" + std::to_string(i));
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dict.Lookup(TermKind::kIri,
                    "http://bench/e" + std::to_string(i++ % 1000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryLookupHit);

void BM_StoreBySubject(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& subjects = kb.store().subjects();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kb.store().BySubject(subjects[i++ % subjects.size()]).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreBySubject);

void BM_StoreByPredicateObject(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& pso = kb.store().pso();
  Rng rng(7);
  std::vector<Triple> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(pso[rng.NextBounded(pso.size())]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Triple& probe = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(
        kb.store().ByPredicateObject(probe.p, probe.o).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreByPredicateObject);

void BM_StoreByPredicateSubject(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& pso = kb.store().pso();
  Rng rng(9);
  std::vector<Triple> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(pso[rng.NextBounded(pso.size())]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Triple& probe = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(
        kb.store().ByPredicateSubject(probe.p, probe.s).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreByPredicateSubject);

void BM_StoreSubjectDegree(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& subjects = kb.store().subjects();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kb.store().SubjectDegree(subjects[i++ % subjects.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreSubjectDegree);

// --- EntitySet intersection throughput -------------------------------------

// Builds the match set of one predicate's subjects, as the evaluator would.
EntitySet SubjectsOf(const KnowledgeBase& kb, TermId p) {
  std::vector<TermId> ids;
  for (const TermId s : kb.store().DistinctSubjectsOf(p)) ids.push_back(s);
  return EntitySet::FromSorted(std::move(ids), kb.dict().size());
}

void BM_EntitySetIntersectSparse(benchmark::State& state) {
  // Two sparse sets: sorted-vector representations, merge/gallop path.
  const KnowledgeBase& kb = SmallKb();
  Rng rng(11);
  std::vector<TermId> a_ids, b_ids;
  const auto& subjects = kb.store().subjects();
  for (int i = 0; i < 64; ++i) {
    a_ids.push_back(subjects[rng.NextBounded(subjects.size())]);
    b_ids.push_back(subjects[rng.NextBounded(subjects.size())]);
  }
  const EntitySet a = EntitySet::FromUnsorted(a_ids, kb.dict().size());
  const EntitySet b = EntitySet::FromUnsorted(b_ids, kb.dict().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_EntitySetIntersectSparse);

void BM_EntitySetIntersectDense(benchmark::State& state) {
  // The two most frequent predicates' subject sets: bitmap AND path.
  const KnowledgeBase& kb = SmallKb();
  std::vector<TermId> preds = kb.store().predicates();
  std::sort(preds.begin(), preds.end(), [&kb](TermId x, TermId y) {
    return kb.store().CountPredicate(x) > kb.store().CountPredicate(y);
  });
  const EntitySet a = SubjectsOf(kb, preds[0]);
  const EntitySet b = SubjectsOf(kb, preds[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b).size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_EntitySetIntersectDense);

void BM_EntitySetIntersectSkewed(benchmark::State& state) {
  // A tiny set against the densest subject set: gallop / bitmap filter.
  const KnowledgeBase& kb = SmallKb();
  std::vector<TermId> preds = kb.store().predicates();
  std::sort(preds.begin(), preds.end(), [&kb](TermId x, TermId y) {
    return kb.store().CountPredicate(x) > kb.store().CountPredicate(y);
  });
  const EntitySet big = SubjectsOf(kb, preds[0]);
  Rng rng(13);
  std::vector<TermId> small_ids;
  const auto& subjects = kb.store().subjects();
  for (int i = 0; i < 4; ++i) {
    small_ids.push_back(subjects[rng.NextBounded(subjects.size())]);
  }
  const EntitySet small = EntitySet::FromUnsorted(small_ids, kb.dict().size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.Intersect(big).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntitySetIntersectSkewed);

void BM_StoreContains(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto& spo = kb.store().spo();
  Rng rng(8);
  std::vector<Triple> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back(spo[rng.NextBounded(spo.size())]);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Triple& probe = probes[i++ % probes.size()];
    benchmark::DoNotOptimize(kb.store().Contains(probe.s, probe.p, probe.o));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreContains);

void BM_TripleStoreBuild(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const auto spo = kb.store().spo();
  std::vector<Triple> triples(spo.begin(), spo.end());
  for (auto _ : state) {
    TripleStore store = TripleStore::Build(triples);
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(triples.size()));
}
BENCHMARK(BM_TripleStoreBuild);

void BM_NTriplesParse(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  std::vector<Triple> sample(kb.store().spo().begin(),
                             kb.store().spo().begin() + 5000);
  const std::string doc = WriteNTriples(kb.dict(), sample);
  for (auto _ : state) {
    Dictionary dict;
    NTriplesParser parser(&dict);
    auto triples = parser.ParseString(doc);
    benchmark::DoNotOptimize(triples->size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_NTriplesParse);

void BM_RkfSerialize(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  for (auto _ : state) {
    const std::string bytes = SerializeRkf(kb.dict(), kb.store().spo());
    benchmark::DoNotOptimize(bytes.size());
  }
}
BENCHMARK(BM_RkfSerialize);

void BM_RkfDeserialize(benchmark::State& state) {
  const KnowledgeBase& kb = SmallKb();
  const std::string bytes = SerializeRkf(kb.dict(), kb.store().spo());
  for (auto _ : state) {
    auto data = DeserializeRkf(bytes);
    benchmark::DoNotOptimize(data->triples.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_RkfDeserialize);

}  // namespace
}  // namespace remi

int main(int argc, char** argv) {
  return remi::bench::RunBenchmarkMain(argc, argv);
}
