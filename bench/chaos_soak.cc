// Chaos soak: a live multi-tenant Service behind the epoll EventServer,
// hammered by clean loopback clients while a deterministic FaultInjector
// (seeded; the seed is echoed first thing so CI failures replay) feeds
// the server EINTR/EAGAIN storms, short reads and writes, mid-frame
// disconnects, accept-time EMFILE/ENFILE/ENOMEM and mmap refusals —
// concurrent with KB hot-swaps on every tenant.
//
// Exit is nonzero (with a violation summary) unless ALL of:
//   * liveness    — no client read ever times out; the storm may sever a
//                   connection, never wedge the server;
//   * identity    — every response line that arrives for a deterministic
//                   verb is byte-identical to the fault-free baseline;
//   * reloads     — every hot-swap publishes (the read fallback covers
//                   injected mmap refusals);
//   * accounting  — per-tenant counters sum exactly to the global ones,
//                   admitted == ok + deadline_exceeded + cancelled +
//                   failed, in_flight drains to zero, and no retired
//                   generation outlives quiescence.
//
// The CI chaos-soak job runs this under ASan+LSan: a leaked connection
// buffer, epoch, or fd surfaces as a build failure.
//
//   ./bench_chaos_soak [--seed 1] [--duration-s 30] [--clients 4]
//                      [--reload-interval-ms 200]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "kb/knowledge_base.h"
#include "service/event_server.h"
#include "service/service.h"
#include "util/io_hooks.h"

namespace remi {
namespace {

using Clock = std::chrono::steady_clock;

// --- fixture ----------------------------------------------------------------

/// Deterministic ring-of-rings KB with labels: big enough that mines do
/// real search work, small enough that a round trip is microseconds.
KnowledgeBase SoakKb() {
  Dictionary dict;
  std::vector<Triple> triples;
  const TermId label_pred = dict.InternIri(kRdfsLabelIri);
  const TermId type_pred = dict.InternIri(kRdfTypeIri);
  const TermId cls = dict.InternIri("http://chaos.example/class/Node");
  const TermId link = dict.InternIri("http://chaos.example/linksTo");
  const TermId peer = dict.InternIri("http://chaos.example/peerOf");
  std::vector<TermId> nodes;
  for (int i = 0; i < 64; ++i) {
    const TermId node =
        dict.InternIri("http://chaos.example/Node" + std::to_string(i));
    nodes.push_back(node);
    triples.push_back(Triple{node, type_pred, cls});
    triples.push_back(Triple{
        node, label_pred,
        dict.Intern(TermKind::kLiteral,
                    "\"node " + std::to_string(i) + "\"@en")});
  }
  for (int i = 0; i < 64; ++i) {
    triples.push_back(Triple{nodes[i], link, nodes[(i + 1) % 64]});
    triples.push_back(Triple{nodes[i], link, nodes[(i + 9) % 64]});
    triples.push_back(Triple{nodes[i], peer, nodes[(i + 17) % 64]});
  }
  return KnowledgeBase::Build(std::move(dict), std::move(triples));
}

bool WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return false;
  const bool ok =
      std::fwrite(bytes.data(), 1, bytes.size(), out) == bytes.size();
  return (std::fclose(out) == 0) && ok;
}

// --- clean client (raw syscalls; never routed through io::Hooks) ------------

class RawClient {
 public:
  enum class ReadResult { kLine, kEof, kTimeout };

  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = 20;  // liveness bound: trips only if the server wedges
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendLine(const std::string& request) {
    const std::string wire = request + "\n";
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  ReadResult ReadLine(std::string* line) {
    line->clear();
    char c = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 1) {
        if (c == '\n') return ReadResult::kLine;
        line->push_back(c);
        continue;
      }
      if (n == 0 || errno == ECONNRESET) return ReadResult::kEof;
      if (errno == EINTR) continue;
      return ReadResult::kTimeout;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

// --- the soak ---------------------------------------------------------------

struct SoakTally {
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> severed{0};
  std::atomic<uint64_t> hung{0};
  std::atomic<uint64_t> divergent{0};
  std::atomic<uint64_t> mine_lines{0};
  std::atomic<uint64_t> reload_failures{0};
  std::atomic<uint64_t> reloads{0};
};

uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

int Fail(const char* what) {
  std::fprintf(stderr, "chaos_soak: VIOLATION: %s\n", what);
  return 1;
}

int Run(uint64_t seed, int duration_s, int clients, int reload_interval_ms) {
  std::printf("chaos_soak: seed=%llu duration_s=%d clients=%d\n",
              static_cast<unsigned long long>(seed), duration_s, clients);
  std::fflush(stdout);

  // Fixture files under TMPDIR (same convention as the test suite).
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = (tmp != nullptr && tmp[0] != '\0') ? tmp : "/tmp";
  char tmpl[4096];
  std::snprintf(tmpl, sizeof(tmpl), "%s/remi_chaos_XXXXXX", dir.c_str());
  if (::mkdtemp(tmpl) == nullptr) return Fail("mkdtemp failed");
  dir = tmpl;
  const std::string image = SoakKb().SerializeSnapshot();
  std::vector<std::string> cleanup;
  auto fixture = [&](const std::string& name) {
    const std::string path = dir + "/" + name;
    cleanup.push_back(path);
    return WriteFile(path, image) ? path : std::string();
  };

  const std::string default_path = fixture("default.rkf2");
  const std::string alpha_path = fixture("alpha.rkf2");
  const std::string beta_path = fixture("beta.rkf2");
  if (default_path.empty() || alpha_path.empty() || beta_path.empty()) {
    return Fail("could not write fixture snapshots");
  }

  KbSpec spec;
  spec.path = default_path;
  auto opened = Service::Open(spec);
  if (!opened.ok()) return Fail(opened.status().ToString().c_str());
  std::unique_ptr<Service> service = std::move(*opened);
  KbSpec alpha;
  alpha.path = alpha_path;
  KbSpec beta;
  beta.path = beta_path;
  if (!service->AttachKb("alpha", alpha).ok() ||
      !service->AttachKb("beta", beta).ok()) {
    return Fail("AttachKb failed");
  }

  // Lifecycle timeouts armed but generous: they must never fire on a
  // healthy round trip, and an injected stall that does trip them shows
  // up as a (tolerated) severed connection plus a reap counter.
  EventServerOptions server_options;
  server_options.idle_timeout_ms = 5000;
  server_options.write_stall_timeout_ms = 5000;
  server_options.handshake_timeout_ms = 5000;
  EventServer server(service.get(), server_options);
  if (!server.Start().ok()) return Fail("EventServer::Start failed");

  // Deterministic verbs (byte-identity enforced) and mine lines (only
  // delivery enforced: responses carry wall-clock timings).
  const std::vector<std::string> deterministic = {
      R"({"op":"ping"})",
      R"({"op":"summarize","entity":"Node3","k":3})",
      R"({"op":"summarize","entity":"Node11","k":2,"kb":"alpha"})",
      R"({"op":"candidates","targets":["Node5"],"limit":2})",
      R"({"op":"candidates","targets":["Node7"],"limit":2,"kb":"beta"})",
  };
  const std::vector<std::string> mines = {
      R"({"op":"mine","targets":["Node0"]})",
      R"({"op":"mine","targets":["Node13"],"kb":"alpha"})",
      // Sub-clock-tick deadline: always expired at admission, so the
      // in-band shed path stays exercised for the whole soak.
      R"({"op":"mine","targets":["Node21"],"kb":"beta","deadline_ms":0.000001})",
  };

  std::vector<std::string> baselines;
  {
    RawClient probe(server.port());
    if (!probe.connected()) return Fail("baseline connect failed");
    for (const std::string& request : deterministic) {
      std::string line;
      if (!probe.SendLine(request) ||
          probe.ReadLine(&line) != RawClient::ReadResult::kLine) {
        return Fail("baseline round trip failed");
      }
      baselines.push_back(line);
    }
  }

  SoakTally tally;
  {
    io::FaultProfile profile;
    profile.seed = seed;
    profile.eintr_probability = 0.05;
    profile.eagain_probability = 0.05;
    profile.short_write_probability = 0.2;
    profile.short_read_probability = 0.2;
    profile.disconnect_probability = 0.01;
    profile.accept_resource_probability = 0.02;
    profile.mmap_fail_probability = 0.2;
    io::FaultInjector injector(profile);
    io::ScopedHooks scoped(&injector);

    const auto deadline = Clock::now() + std::chrono::seconds(duration_s);
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        uint64_t rng = seed * 0x9e3779b97f4a7c15ull + t + 1;
        while (Clock::now() < deadline) {
          RawClient client(server.port());
          if (!client.connected()) continue;
          // A short pipelined conversation per connection; roughly one
          // request in six is a mine.
          for (int i = 0; i < 6 && Clock::now() < deadline; ++i) {
            const bool mine = (NextRand(&rng) % 6) == 0;
            const size_t pick =
                NextRand(&rng) % (mine ? mines.size() : deterministic.size());
            const std::string& request =
                mine ? mines[pick] : deterministic[pick];
            if (!client.SendLine(request)) {
              tally.severed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            std::string line;
            const auto result = client.ReadLine(&line);
            if (result == RawClient::ReadResult::kEof) {
              tally.severed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (result == RawClient::ReadResult::kTimeout) {
              tally.hung.fetch_add(1, std::memory_order_relaxed);
              return;  // liveness is already lost; stop generating load
            }
            tally.delivered.fetch_add(1, std::memory_order_relaxed);
            if (mine) {
              tally.mine_lines.fetch_add(1, std::memory_order_relaxed);
            } else if (line != baselines[pick]) {
              tally.divergent.fetch_add(1, std::memory_order_relaxed);
              std::fprintf(stderr, "chaos_soak: DIVERGED\n  want %s\n  got %s\n",
                           baselines[pick].c_str(), line.c_str());
            }
          }
        }
      });
    }
    threads.emplace_back([&] {
      // Hot-swaps across all three tenants for the whole soak, under the
      // same injector as the serving path.
      const char* tenants[] = {"", "alpha", "beta"};
      int i = 0;
      while (Clock::now() < deadline) {
        const std::string path =
            dir + "/reload_" + std::to_string(i) + ".rkf2";
        if (!WriteFile(path, image)) {
          tally.reload_failures.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        cleanup.push_back(path);
        ReloadKbRequest reload;
        reload.kb = tenants[i % 3];
        reload.spec.path = path;
        const ReloadKbResponse response = service->ReloadKb(reload);
        tally.reloads.fetch_add(1, std::memory_order_relaxed);
        if (!response.status.ok()) {
          std::fprintf(stderr, "chaos_soak: reload %d failed: %s\n", i,
                       response.status.ToString().c_str());
          tally.reload_failures.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(reload_interval_ms));
      }
    });
    for (std::thread& thread : threads) thread.join();
  }

  // Post-storm: the hooks are gone; one clean round trip per verb.
  {
    RawClient probe(server.port());
    if (!probe.connected()) return Fail("post-storm connect failed");
    for (size_t i = 0; i < deterministic.size(); ++i) {
      std::string line;
      if (!probe.SendLine(deterministic[i]) ||
          probe.ReadLine(&line) != RawClient::ReadResult::kLine) {
        return Fail("post-storm round trip failed");
      }
      if (line != baselines[i]) return Fail("post-storm response diverged");
    }
  }

  // Exact accounting at quiescence.
  server.Stop();
  const ServiceCounters global = service->counters();
  TenantCounters sum;
  for (const KbInfo& info : service->ListKbs()) {
    if (!info.open) continue;
    auto slice = service->CountersFor(info.name);
    if (!slice.ok()) return Fail("CountersFor failed");
    sum.admitted += slice->admitted;
    sum.completed_ok += slice->completed_ok;
    sum.deadline_exceeded += slice->deadline_exceeded;
    sum.cancelled += slice->cancelled;
    sum.rejected += slice->rejected;
    sum.failed += slice->failed;
    sum.shed_expired_in_queue += slice->shed_expired_in_queue;
    sum.in_flight += slice->in_flight;
  }

  std::printf(
      "chaos_soak: delivered=%llu severed=%llu mine_lines=%llu reloads=%llu\n"
      "chaos_soak: admitted=%llu ok=%llu deadline=%llu cancelled=%llu "
      "failed=%llu shed=%llu reaped_idle=%llu reaped_stall=%llu "
      "accept_retried=%llu\n",
      static_cast<unsigned long long>(tally.delivered.load()),
      static_cast<unsigned long long>(tally.severed.load()),
      static_cast<unsigned long long>(tally.mine_lines.load()),
      static_cast<unsigned long long>(tally.reloads.load()),
      static_cast<unsigned long long>(global.admitted),
      static_cast<unsigned long long>(global.completed_ok),
      static_cast<unsigned long long>(global.deadline_exceeded),
      static_cast<unsigned long long>(global.cancelled),
      static_cast<unsigned long long>(global.failed),
      static_cast<unsigned long long>(global.shed_expired_in_queue),
      static_cast<unsigned long long>(global.connections_reaped_idle),
      static_cast<unsigned long long>(global.connections_reaped_write_stall),
      static_cast<unsigned long long>(global.accept_errors_retried));

  int violations = 0;
  if (tally.hung.load() != 0) violations += Fail("a client read timed out");
  if (tally.divergent.load() != 0) {
    violations += Fail("surviving responses diverged from baseline");
  }
  if (tally.delivered.load() == 0) {
    violations += Fail("the storm let nothing through");
  }
  if (tally.reload_failures.load() != 0) {
    violations += Fail("a hot-swap failed under injected faults");
  }
  if (sum.admitted != global.admitted ||
      sum.completed_ok != global.completed_ok ||
      sum.deadline_exceeded != global.deadline_exceeded ||
      sum.cancelled != global.cancelled || sum.rejected != global.rejected ||
      sum.failed != global.failed ||
      sum.shed_expired_in_queue != global.shed_expired_in_queue) {
    violations += Fail("per-tenant counters do not sum to the global ones");
  }
  if (global.admitted != global.completed_ok + global.deadline_exceeded +
                             global.cancelled + global.failed) {
    violations += Fail("admission ledger does not balance");
  }
  if (sum.in_flight != 0 || global.in_flight != 0) {
    violations += Fail("in_flight did not drain to zero");
  }
  if (global.active_generations != global.tenants_active) {
    violations += Fail("a retired generation outlived quiescence");
  }
  if (tally.mine_lines.load() >= 50 && global.shed_expired_in_queue == 0) {
    // ~1/3 of mine lines carry an already-expired deadline; with this
    // many delivered, zero sheds means the in-band shed path is dead.
    violations += Fail("expired-deadline mines were never shed");
  }

  for (const std::string& path : cleanup) std::remove(path.c_str());
  ::rmdir(dir.c_str());

  if (violations == 0) std::printf("chaos_soak: OK\n");
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace remi

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int duration_s = 30;
  int clients = 4;
  int reload_interval_ms = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      if (const char* v = next()) seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--duration-s") {
      if (const char* v = next()) duration_s = std::atoi(v);
    } else if (arg == "--clients") {
      if (const char* v = next()) clients = std::atoi(v);
    } else if (arg == "--reload-interval-ms") {
      if (const char* v = next()) reload_interval_ms = std::atoi(v);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--duration-s S] [--clients N] "
                   "[--reload-interval-ms MS]\n",
                   argv[0]);
      return 2;
    }
  }
  if (duration_s < 1 || clients < 1 || reload_interval_ms < 1) {
    std::fprintf(stderr, "chaos_soak: flags must be positive\n");
    return 2;
  }
  return remi::Run(seed, duration_s, clients, reload_interval_ms);
}
