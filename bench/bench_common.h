// Shared helpers for the experiment harnesses (one binary per paper
// table/figure). Each harness prints paper-reported values next to the
// measured ones and appends a CSV file next to the working directory so
// EXPERIMENTS.md can reference machine-readable results.

#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "kbgen/synthetic.h"
#include "userstudy/metrics.h"
#include "util/cpu_features.h"
#include "util/string_util.h"

namespace remi::bench {

/// Default laptop-scale factor relative to the paper's KBs. The paper's
/// DBpedia has 42.07M facts; scale 0.05 yields ~20k content facts, enough
/// for distribution-faithful behaviour at interactive runtimes.
inline constexpr double kDefaultScale = 0.05;

/// True when this harness binary was compiled with optimizations and
/// NDEBUG — the only configuration whose numbers are worth committing.
/// (Google Benchmark's own "library_build_type" JSON field describes the
/// *system benchmark library*, not this binary; trust kBuildType.)
inline constexpr bool kReleaseBuild =
#if defined(NDEBUG) && (defined(__OPTIMIZE__) || defined(_MSC_VER))
    true;
#else
    false;
#endif

inline constexpr const char* kBuildType = kReleaseBuild ? "release" : "debug";

/// Screams on stderr when a harness runs from a debug/unoptimized build.
/// Every harness main() calls this before measuring, and every JSON sink
/// records kBuildType so a committed BENCH_*.json can never silently
/// carry debug numbers again. Build with:
///   cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
inline void WarnIfNotReleaseBuild() {
  if (kReleaseBuild) return;
  std::fprintf(stderr,
               "\n"
               "*** WARNING ********************************************\n"
               "*** This benchmark binary was built WITHOUT Release   ***\n"
               "*** optimizations (NDEBUG/-O are off). The numbers    ***\n"
               "*** below are meaningless for comparison — rebuild    ***\n"
               "*** with -DCMAKE_BUILD_TYPE=Release before recording. ***\n"
               "*********************************************************\n"
               "\n");
}

/// Emits the host-honesty fields every BENCH_*.json context carries: the
/// probed CPU features, the SIMD level the set kernels actually dispatch
/// to (REMI_SIMD/ForceSimdLevel visible here), and the real core count.
/// Committed numbers must say what hardware path produced them —
/// a speedup measured on a 1-core or scalar-dispatch host is a different
/// claim than the same number from an 8-core AVX-512 box. Emitted with a
/// trailing comma: callers append their own context fields after.
inline void WriteHostContextFields(std::FILE* out) {
  std::fprintf(out, "    \"cpu_features\": \"%s\",\n",
               DetectCpuFeatures().Describe().c_str());
  std::fprintf(out, "    \"simd_dispatch\": \"%s\",\n",
               SimdLevelName(ActiveSimdLevel()));
  std::fprintf(out, "    \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
}

/// Builds the two evaluation KBs of §4 at the given scale.
inline KnowledgeBase BuildDbpediaLike(double scale) {
  return BuildSyntheticKb(SyntheticKbConfig::DBpediaLike(scale));
}
inline KnowledgeBase BuildWikidataLike(double scale) {
  return BuildSyntheticKb(SyntheticKbConfig::WikidataLike(scale));
}

/// "mean±std" with fixed decimals.
inline std::string MeanStdToString(const MeanStd& ms, int digits = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f±%.*f", digits, ms.mean, digits,
                ms.stddev);
  return buf;
}

/// Simple CSV sink: one header + rows, written to <name>.csv in the
/// current directory.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& name) : path_(name + ".csv") {}

  void Header(const std::vector<std::string>& columns) {
    Row(columns);
  }
  void Row(const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) line += ",";
      line += cells[i];
    }
    lines_.push_back(std::move(line));
  }

  ~CsvWriter() {
    std::ofstream out(path_, std::ios::trunc);
    for (const auto& line : lines_) out << line << "\n";
  }

 private:
  std::string path_;
  std::vector<std::string> lines_;
};

/// Prints a banner separating harness sections.
inline void Banner(const char* title) {
  std::printf("\n================ %s ================\n", title);
}

}  // namespace remi::bench
