// Microbenchmarks of the query and mining layers: per-shape match-set
// evaluation, membership tests, cost computation, enumeration, and
// end-to-end REMI / P-REMI mining on the curated KB.

#include <benchmark/benchmark.h>

#include "gbench_main.h"

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "remi/remi.h"

namespace remi {
namespace {

const KnowledgeBase& Curated() {
  static const KnowledgeBase* kb = new KnowledgeBase(BuildCuratedKb());
  return *kb;
}

const KnowledgeBase& Synthetic() {
  static const KnowledgeBase* kb = [] {
    SyntheticKbConfig config;
    config.num_entities = 5000;
    config.num_predicates = 60;
    config.num_classes = 16;
    config.num_facts = 50000;
    return new KnowledgeBase(BuildSyntheticKb(config));
  }();
  return *kb;
}

TermId Id(const KnowledgeBase& kb, const char* name) {
  return *FindEntity(kb, name);
}

void BM_EvalAtom(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, /*cache_capacity=*/0);  // measure raw evaluation
  const auto rho =
      SubgraphExpression::Atom(Id(kb, "cityIn"), Id(kb, "France"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Match(rho)->size());
  }
}
BENCHMARK(BM_EvalAtom);

void BM_EvalPath(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, 0);
  const auto rho = SubgraphExpression::Path(
      Id(kb, "officialLanguage"), Id(kb, "langFamily"), Id(kb, "Germanic"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Match(rho)->size());
  }
}
BENCHMARK(BM_EvalPath);

void BM_EvalTwinPair(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, 0);
  const auto rho =
      SubgraphExpression::TwinPair(Id(kb, "cityIn"), Id(kb, "capitalOf"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Match(rho)->size());
  }
}
BENCHMARK(BM_EvalTwinPair);

void BM_EvalCached(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, 1024);
  const auto rho = SubgraphExpression::Path(
      Id(kb, "officialLanguage"), Id(kb, "langFamily"), Id(kb, "Germanic"));
  (void)eval.Match(rho);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Match(rho)->size());
  }
}
BENCHMARK(BM_EvalCached);

void BM_EvalConjunction(benchmark::State& state) {
  // Two-part conjunction: exercises EntitySet intersection of cached
  // match sets, the DFS's hot operation.
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, 1024);
  const Expression expr =
      Expression::Top()
          .Conjoin(SubgraphExpression::Atom(Id(kb, "in"),
                                            Id(kb, "South_America")))
          .Conjoin(SubgraphExpression::Path(Id(kb, "officialLanguage"),
                                            Id(kb, "langFamily"),
                                            Id(kb, "Germanic")));
  (void)eval.Evaluate(expr);  // warm the part cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Evaluate(expr).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvalConjunction);

void BM_MembershipTest(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  Evaluator eval(&kb, 0);
  const auto rho = SubgraphExpression::Path(
      Id(kb, "officialLanguage"), Id(kb, "langFamily"), Id(kb, "Germanic"));
  const TermId guyana = Id(kb, "Guyana");
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.Matches(guyana, rho));
  }
}
BENCHMARK(BM_MembershipTest);

void BM_SubgraphCost(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  const auto rho = SubgraphExpression::Path(
      Id(kb, "mayor"), Id(kb, "party"), Id(kb, "Socialist_Party"));
  for (auto _ : state) {
    state.PauseTiming();
    CostModel model(&kb, CostModelOptions{});  // cold rankings each round
    state.ResumeTiming();
    benchmark::DoNotOptimize(model.SubgraphCost(rho));
  }
}
BENCHMARK(BM_SubgraphCost)->Iterations(200);

void BM_SubgraphCostCached(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  CostModel model(&kb, CostModelOptions{});
  const auto rho = SubgraphExpression::Path(
      Id(kb, "mayor"), Id(kb, "party"), Id(kb, "Socialist_Party"));
  (void)model.SubgraphCost(rho);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.SubgraphCost(rho));
  }
}
BENCHMARK(BM_SubgraphCostCached);

void BM_EnumerateEntity(benchmark::State& state) {
  const KnowledgeBase& kb = Synthetic();
  Evaluator eval(&kb);
  SubgraphEnumerator enumerator(&eval);
  const auto classes = LargestClasses(kb, 1);
  const auto members = ClassMembersByProminence(kb, classes[0]);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enumerator.EnumerateFor(members[i++ % std::min<size_t>(
                                             members.size(), 50)])
            .size());
  }
}
BENCHMARK(BM_EnumerateEntity);

void BM_MineReCurated(benchmark::State& state) {
  const KnowledgeBase& kb = Curated();
  RemiMiner miner(&kb, RemiOptions{});
  const std::vector<TermId> targets{Id(kb, "Rennes"), Id(kb, "Nantes")};
  for (auto _ : state) {
    auto result = miner.MineRe(targets);
    benchmark::DoNotOptimize(result->cost);
  }
}
BENCHMARK(BM_MineReCurated);

void BM_MineReSynthetic(benchmark::State& state) {
  const KnowledgeBase& kb = Synthetic();
  RemiOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  options.clamp_threads_to_hardware = false;
  RemiMiner miner(&kb, options);
  const auto classes = LargestClasses(kb, 1);
  const auto members = ClassMembersByProminence(kb, classes[0]);
  const std::vector<TermId> targets{members[0], members[1]};
  for (auto _ : state) {
    auto result = miner.MineRe(targets);
    benchmark::DoNotOptimize(result->found);
  }
}
BENCHMARK(BM_MineReSynthetic)->Arg(1)->Arg(4);

}  // namespace
}  // namespace remi

int main(int argc, char** argv) {
  return remi::bench::RunBenchmarkMain(argc, argv);
}
