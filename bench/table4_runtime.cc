// Table 4 — runtime comparison of AMIE+, REMI, and P-REMI on both KBs and
// both language biases (paper §4.2).
//
// Protocol (scaled): N entity sets per KB sampled 50%/30%/20% at sizes
// 1/2/3 from the four largest classes, a per-set timeout, and three
// systems:
//   amie   — the AMIE-style ILP baseline with surrogate head,
//   remi   — sequential REMI,
//   premi  — P-REMI with --threads workers.
//
// The container has a single CPU, so wall-clock P-REMI gains are bounded;
// the harness therefore also reports visited search nodes (hardware-
// independent). Paper-reported values are printed next to each measured
// row; absolute numbers shrink with --scale, the *shape* (AMIE orders of
// magnitude slower, extended bias more expensive but more solutions) is
// the reproduction target.
//
//   ./table4_runtime [--scale 0.05] [--sets 20] [--timeout 2.0]
//                    [--threads 4] [--skip-amie]

#include <cstdio>
#include <string>
#include <vector>

#include "amie/amie.h"
#include "bench_common.h"
#include "kbgen/workload.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

using remi::bench::CsvWriter;

struct SystemTotals {
  double seconds = 0.0;
  int solutions = 0;
  int timeouts = 0;
  uint64_t nodes = 0;
  std::vector<double> per_set_seconds;
  double queue_seconds = 0.0;
};

struct PaperRow {
  const char* language;
  const char* kb;
  int solutions;
  const char* amie;
  const char* remi;
  const char* premi;
  const char* speedup;
};

constexpr PaperRow kPaperRows[] = {
    {"standard", "dbpedia", 63, "97.4k (8 t/o)", "10.3k (1 t/o)", "576",
     "13.5kx vs amie, 2.44x vs remi"},
    {"standard", "wikidata", 44, "115.5k (15 t/o)", "1.06k", "76.2",
     "142kx vs amie, 4.7x vs remi"},
    {"remi", "dbpedia", 65, "508.2k (68 t/o)", "66.5k (8 t/o)", "28.9k",
     "5218x vs amie, 21.4x vs remi"},
    {"remi", "wikidata", 44, "608.3k (60 t/o)", "21.7k", "33.8k",
     "6476x vs amie, 7.1x vs remi"},
};

void PrintPaperRow(const char* language, const char* kb) {
  for (const auto& row : kPaperRows) {
    if (std::string(row.language) == language && std::string(row.kb) == kb) {
      std::printf(
          "  paper (42M/16M facts, 48 cores): #sol=%d amie=%ss remi=%ss "
          "premi=%ss, %s\n",
          row.solutions, row.amie, row.remi, row.premi, row.speedup);
    }
  }
}

double Ratio(double num, double den) { return den > 0 ? num / den : 0.0; }

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale,
                     "KB scale relative to the paper's dumps");
  flags.DefineInt("sets", 20, "entity sets per KB (paper: 100)");
  flags.DefineDouble("timeout", 2.0,
                     "per-set timeout seconds (paper: 7200)");
  flags.DefineInt("threads", 4, "P-REMI worker threads");
  flags.DefineBool("skip-amie", false, "skip the AMIE baseline");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  const double scale = flags.GetDouble("scale");
  const size_t num_sets = static_cast<size_t>(flags.GetInt("sets"));
  const double timeout = flags.GetDouble("timeout");
  const int threads = static_cast<int>(flags.GetInt("threads"));
  const bool skip_amie = flags.GetBool("skip-amie");

  CsvWriter csv("table4_runtime");
  csv.Header({"kb", "language", "system", "total_seconds", "solutions",
              "timeouts", "nodes"});

  std::printf("Table 4 reproduction — scale=%.3f, %zu sets, timeout=%.1fs, "
              "%d threads\n",
              scale, num_sets, timeout, threads);

  for (const char* kb_name : {"dbpedia", "wikidata"}) {
    remi::KnowledgeBase kb = std::string(kb_name) == "dbpedia"
                                 ? remi::bench::BuildDbpediaLike(scale)
                                 : remi::bench::BuildWikidataLike(scale);
    std::printf("\n=== %s-like KB: %zu facts, %zu entities, %zu predicates "
                "===\n",
                kb_name, kb.NumFacts(), kb.NumEntities(), kb.NumPredicates());

    const auto classes = remi::LargestClasses(kb, 4);
    remi::Rng rng(20200330 + (std::string(kb_name) == "dbpedia" ? 1 : 2));
    remi::WorkloadConfig wconfig;
    wconfig.num_sets = num_sets;
    const auto sets = remi::SampleEntitySets(kb, classes, wconfig, &rng);

    for (const bool extended : {false, true}) {
      const char* language = extended ? "remi" : "standard";
      std::printf("\n--- language bias: %s ---\n", language);
      PrintPaperRow(language, kb_name);

      SystemTotals amie_totals, remi_totals, premi_totals;

      // REMI and P-REMI share nothing across systems: fresh miners so
      // caches do not leak between measurements.
      remi::RemiOptions remi_options;
      remi_options.enumerator.extended_language = extended;
      remi_options.timeout_seconds = timeout;
      remi::RemiMiner remi_miner(&kb, remi_options);

      remi::RemiOptions premi_options = remi_options;
      premi_options.num_threads = threads;
      premi_options.clamp_threads_to_hardware = false;
      remi::RemiMiner premi_miner(&kb, premi_options);

      remi::CostModel amie_cost(&kb, remi::CostModelOptions{});
      remi::AmieOptions amie_options;
      amie_options.allow_existential_variables = extended;
      amie_options.timeout_seconds = timeout;
      remi::AmieMiner amie_miner(&kb, &amie_cost, amie_options);

      for (const auto& set : sets) {
        {
          remi::Timer t;
          auto result = remi_miner.MineRe(set.entities);
          REMI_CHECK_OK(result.status());
          const double s = t.ElapsedSeconds();
          remi_totals.seconds += s;
          remi_totals.per_set_seconds.push_back(s);
          remi_totals.solutions += result->found ? 1 : 0;
          remi_totals.timeouts += result->timed_out ? 1 : 0;
          remi_totals.nodes += result->stats.nodes_visited;
          remi_totals.queue_seconds += result->stats.queue_build_seconds;
        }
        {
          remi::Timer t;
          auto result = premi_miner.MineRe(set.entities);
          REMI_CHECK_OK(result.status());
          const double s = t.ElapsedSeconds();
          premi_totals.seconds += s;
          premi_totals.per_set_seconds.push_back(s);
          premi_totals.solutions += result->found ? 1 : 0;
          premi_totals.timeouts += result->timed_out ? 1 : 0;
          premi_totals.nodes += result->stats.nodes_visited;
          premi_totals.queue_seconds += result->stats.queue_build_seconds;
        }
        if (!skip_amie) {
          remi::Timer t;
          auto result = amie_miner.MineRe(set.entities);
          REMI_CHECK_OK(result.status());
          const double s = t.ElapsedSeconds();
          amie_totals.seconds += s;
          amie_totals.per_set_seconds.push_back(s);
          amie_totals.solutions += result->best_rule >= 0 ? 1 : 0;
          amie_totals.timeouts += result->stats.timed_out ? 1 : 0;
          amie_totals.nodes += result->stats.rules_expanded;
        }
      }

      const auto print_row = [&](const char* system,
                                 const SystemTotals& totals) {
        std::printf("  measured %-6s total=%-10s #sol=%-3d t/o=%-3d "
                    "nodes=%llu\n",
                    system, remi::FormatSeconds(totals.seconds).c_str(),
                    totals.solutions, totals.timeouts,
                    static_cast<unsigned long long>(totals.nodes));
        csv.Row({kb_name, language, system,
                 remi::FormatDouble(totals.seconds, 4),
                 std::to_string(totals.solutions),
                 std::to_string(totals.timeouts),
                 std::to_string(totals.nodes)});
      };
      if (!skip_amie) print_row("amie", amie_totals);
      print_row("remi", remi_totals);
      print_row("premi", premi_totals);

      if (!skip_amie) {
        std::printf("  speed-up (totals): amie/remi=%.1fx amie/premi=%.1fx "
                    "remi/premi=%.2fx\n",
                    Ratio(amie_totals.seconds, remi_totals.seconds),
                    Ratio(amie_totals.seconds, premi_totals.seconds),
                    Ratio(remi_totals.seconds, premi_totals.seconds));
      } else {
        std::printf("  speed-up (totals): remi/premi=%.2fx\n",
                    Ratio(remi_totals.seconds, premi_totals.seconds));
      }
      std::printf("  queue-sort share of P-REMI runtime: %.2f%% (paper: "
                  "0.39%% standard -> 9.1%% extended on DBpedia)\n",
                  100.0 * Ratio(premi_totals.queue_seconds,
                                premi_totals.seconds));
    }
  }

  std::printf("\nNote: single-CPU container — P-REMI wall clock is bounded "
              "by thread overhead; compare the hardware-independent node "
              "counts and the AMIE-vs-REMI gap.\n");
  return 0;
}
