// §3.2 — search-space growth of the language bias, plus Table 1 shape
// counts.
//
// Claims to reproduce on the DBpedia-like KB:
//   * going from 2 atoms to 3 atoms with one existential variable grows
//     the number of subgraph expressions by ~40%;
//   * allowing a second existential variable grows it by >270%.
//
//   ./langbias_growth [--scale 0.05] [--sample 150]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "kbgen/workload.h"
#include "query/evaluator.h"
#include "remi/enumerator.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("sample", 150, "entities sampled for counting");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  remi::KnowledgeBase kb =
      remi::bench::BuildDbpediaLike(flags.GetDouble("scale"));
  remi::Evaluator evaluator(&kb);
  remi::SubgraphEnumerator enumerator(&evaluator);

  // Sample prominent entities of the largest classes (they carry enough
  // facts for multi-atom shapes to exist).
  // Sample across the prominence spectrum of the four largest classes
  // (every k-th member): hub-only sampling would inflate the path+star
  // counts quadratically and distort the growth ratios.
  const auto classes = remi::LargestClasses(kb, 4);
  std::vector<remi::TermId> sample;
  const size_t budget = static_cast<size_t>(flags.GetInt("sample"));
  for (const remi::TermId cls : classes) {
    const auto members = remi::ClassMembersByProminence(kb, cls);
    const size_t per_class = budget / classes.size() + 1;
    const size_t stride = std::max<size_t>(1, members.size() / per_class);
    for (size_t i = 0; i < members.size() && sample.size() < budget;
         i += stride) {
      sample.push_back(members[i]);
    }
  }

  remi::ShapeCounts totals;
  for (const remi::TermId t : sample) {
    const auto counts = enumerator.CountSubgraphs(t, /*max_extra_vars=*/2);
    totals.atoms += counts.atoms;
    totals.paths += counts.paths;
    totals.path_stars += counts.path_stars;
    totals.twin_pairs += counts.twin_pairs;
    totals.twin_triples += counts.twin_triples;
    totals.chains_two_vars += counts.chains_two_vars;
  }

  remi::bench::Banner("Table 1: subgraph expressions per shape");
  std::printf("  entities sampled     : %zu\n", sample.size());
  std::printf("  1 atom               : %llu\n",
              static_cast<unsigned long long>(totals.atoms));
  std::printf("  path                 : %llu\n",
              static_cast<unsigned long long>(totals.paths));
  std::printf("  path + star          : %llu\n",
              static_cast<unsigned long long>(totals.path_stars));
  std::printf("  2 closed atoms       : %llu\n",
              static_cast<unsigned long long>(totals.twin_pairs));
  std::printf("  3 closed atoms       : %llu\n",
              static_cast<unsigned long long>(totals.twin_triples));
  std::printf("  2-var chains (extra) : %llu\n",
              static_cast<unsigned long long>(totals.chains_two_vars));

  remi::bench::Banner("§3.2: growth of the search space");
  const double two_atoms =
      static_cast<double>(totals.TotalTwoAtomsOneVar());
  const double three_atoms = static_cast<double>(totals.TotalOneVar());
  const double with_second_var =
      three_atoms + static_cast<double>(totals.chains_two_vars);
  const double atom_growth =
      two_atoms > 0 ? 100.0 * (three_atoms - two_atoms) / two_atoms : 0.0;
  const double var_growth =
      three_atoms > 0 ? 100.0 * (with_second_var - three_atoms) / three_atoms
                      : 0.0;
  std::printf("  2 atoms -> 3 atoms (1 var): +%.0f%%   (paper: ~+40%%)\n",
              atom_growth);
  std::printf("  second existential variable: +%.0f%%  (paper: >+270%%)\n",
              var_growth);

  remi::bench::CsvWriter csv("langbias_growth");
  csv.Header({"metric", "value"});
  csv.Row({"atom_growth_percent", remi::FormatDouble(atom_growth, 2)});
  csv.Row({"second_var_growth_percent", remi::FormatDouble(var_growth, 2)});
  return 0;
}
