// Search-kernel microbenchmark: nodes/sec of the REMI branch-and-bound
// DFS on the DBpedia-like synthetic KB at several scales.
//
// For each scale the harness samples a workload of target sets and mines
// each set twice with one miner: a *cold* pass (empty match-set cache, so
// queue pinning pays full evaluation) and a *warm* pass (cache warm — the
// steady serving state, where the kernel's per-node costs dominate). The
// headline metric is warm nodes/sec = Σ nodes_visited / Σ search_seconds.
// nodes_visited is kernel-independent (the search visits the same tree),
// so nodes/sec ratios between two builds measure pure per-node overhead.
//
// A structural FNV hash over every mined expression is recorded per
// scale; comparing hashes across builds proves the kernels return
// byte-identical results on the benched workload.
//
//   ./bench_micro_search [--scales 0.02,0.05,0.1] [--sets 16] [--seed 7]
//                        [--threads 1] [--out BENCH_search.json]
//                        [--baseline OLD.json]
//
// With --baseline, per-scale speedups against a BENCH_search.json written
// by an older build (e.g. the pre-zero-allocation kernel) are computed,
// result hashes are cross-checked, and both runs land in the output file.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kbgen/workload.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/fnv.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

struct ScaleRow {
  double scale = 0.0;
  size_t num_facts = 0;
  size_t num_sets = 0;
  uint64_t nodes = 0;               // per pass (identical cold/warm)
  double cold_seconds = 0.0;        // Σ search_seconds, cold cache
  double warm_seconds = 0.0;        // Σ search_seconds, warm cache
  double cold_nodes_per_sec = 0.0;
  double warm_nodes_per_sec = 0.0;
  uint64_t result_hash = 0;         // FNV over all mined expressions
  // Filled from --baseline when a matching scale is found there.
  bool have_baseline = false;
  double baseline_warm_nodes_per_sec = 0.0;
  double warm_speedup = 0.0;
  bool results_match_baseline = true;
};

uint64_t HashResult(uint64_t h, const remi::RemiResult& result) {
  const auto hash_u64 = [&h](uint64_t v) {
    char buf[8];
    std::memcpy(buf, &v, 8);
    h = remi::Fnv1a64Extend(h, std::string_view(buf, 8));
  };
  hash_u64(result.found ? 1 : 0);
  if (!result.found) return h;
  uint64_t cost_bits;
  std::memcpy(&cost_bits, &result.cost, 8);
  hash_u64(cost_bits);
  for (const remi::SubgraphExpression& part : result.expression.parts) {
    hash_u64(static_cast<uint64_t>(part.shape));
    hash_u64(part.p0);
    hash_u64(part.p1);
    hash_u64(part.p2);
    hash_u64(part.c1);
    hash_u64(part.c2);
  }
  for (const remi::TermId e : result.exceptions) hash_u64(e);
  return h;
}

std::vector<double> ParseScaleList(const std::string& spec) {
  std::vector<double> scales;
  for (const std::string& tok : remi::SplitString(spec, ',')) {
    if (tok.empty()) continue;
    const double s = std::atof(tok.c_str());
    if (s > 0) scales.push_back(s);
  }
  if (scales.empty()) scales = {0.02, 0.05, 0.1};
  return scales;
}

/// Loads the per-scale warm nodes/sec + result hashes of a previous run.
void ApplyBaseline(const std::string& path, std::vector<ScaleRow>* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot read baseline %s\n", path.c_str());
    return;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = remi::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "warning: baseline %s is not valid JSON: %s\n",
                 path.c_str(), parsed.status().ToString().c_str());
    return;
  }
  const remi::JsonValue* benches = parsed->Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) return;
  for (const remi::JsonValue& entry : benches->items()) {
    const remi::JsonValue* scale = entry.Find("scale");
    const remi::JsonValue* nps = entry.Find("warm_nodes_per_sec");
    const remi::JsonValue* hash = entry.Find("result_hash");
    if (scale == nullptr || nps == nullptr) continue;
    for (ScaleRow& row : *rows) {
      if (std::abs(row.scale - scale->AsNumber()) > 1e-12) continue;
      row.have_baseline = true;
      row.baseline_warm_nodes_per_sec = nps->AsNumber();
      row.warm_speedup = row.baseline_warm_nodes_per_sec > 0
                             ? row.warm_nodes_per_sec /
                                   row.baseline_warm_nodes_per_sec
                             : 0.0;
      if (hash != nullptr && hash->is_string()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(row.result_hash));
        row.results_match_baseline = hash->AsString() == buf;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("scales", "0.02,0.05,0.1",
                     "comma-separated synthetic KB scales");
  flags.DefineInt("sets", 16, "number of sampled target sets per scale");
  flags.DefineInt("seed", 7, "workload seed");
  flags.DefineInt("threads", 1, "miner threads (1 = sequential kernel)");
  flags.DefineString("out", "BENCH_search.json", "JSON output path");
  flags.DefineString("baseline", "",
                     "BENCH_search.json from an older build to compare "
                     "against");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();

  const std::vector<double> scales = ParseScaleList(flags.GetString("scales"));
  const int threads = static_cast<int>(flags.GetInt("threads"));

  std::vector<ScaleRow> rows;
  for (const double scale : scales) {
    remi::KnowledgeBase kb = remi::bench::BuildDbpediaLike(scale);
    remi::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
    remi::WorkloadConfig wconfig;
    wconfig.num_sets = static_cast<size_t>(flags.GetInt("sets"));
    wconfig.top_fraction = 0.05;
    const auto classes = remi::LargestClasses(kb, 4);
    const auto sets = remi::SampleEntitySets(kb, classes, wconfig, &rng);

    remi::RemiOptions options;
    options.num_threads = threads;
    options.clamp_threads_to_hardware = false;
    remi::RemiMiner miner(&kb, options);

    ScaleRow row;
    row.scale = scale;
    row.num_facts = kb.NumFacts();
    row.num_sets = sets.size();

    // Pass 1 (cold cache) and pass 2 (warm cache, the steady state).
    for (const bool warm : {false, true}) {
      uint64_t nodes = 0;
      uint64_t hash = remi::kFnv1a64Seed;
      double seconds = 0.0;
      for (const auto& set : sets) {
        auto result = miner.MineRe(set.entities);
        REMI_CHECK_OK(result.status());
        nodes += result->stats.nodes_visited;
        seconds += result->stats.search_seconds;
        hash = HashResult(hash, *result);
      }
      if (warm) {
        row.warm_seconds = seconds;
        row.warm_nodes_per_sec = seconds > 0 ? nodes / seconds : 0.0;
        if (hash != row.result_hash) {
          std::fprintf(stderr,
                       "error: warm pass mined different results than the "
                       "cold pass at scale %g\n",
                       scale);
          return 1;
        }
      } else {
        row.nodes = nodes;
        row.cold_seconds = seconds;
        row.cold_nodes_per_sec = seconds > 0 ? nodes / seconds : 0.0;
        row.result_hash = hash;
      }
    }

    std::printf("scale=%-5g facts=%-7zu sets=%-3zu nodes=%-9llu "
                "cold=%8.3fs (%.0f n/s)  warm=%8.3fs (%.0f n/s)\n",
                row.scale, row.num_facts, row.num_sets,
                static_cast<unsigned long long>(row.nodes), row.cold_seconds,
                row.cold_nodes_per_sec, row.warm_seconds,
                row.warm_nodes_per_sec);
    rows.push_back(row);
  }

  const std::string baseline = flags.GetString("baseline");
  if (!baseline.empty()) {
    ApplyBaseline(baseline, &rows);
    for (const ScaleRow& row : rows) {
      if (!row.have_baseline) continue;
      std::printf("scale=%-5g speedup vs baseline: x%.2f (warm nodes/sec) "
                  "results %s\n",
                  row.scale, row.warm_speedup,
                  row.results_match_baseline ? "IDENTICAL" : "DIVERGE");
      if (!row.results_match_baseline) {
        std::fprintf(stderr,
                     "error: mined results differ from the baseline build "
                     "at scale %g\n",
                     row.scale);
        return 1;
      }
    }
  }

  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"workload\": \"dbpedia_like\",\n");
  std::fprintf(out, "    \"num_target_sets\": %d,\n",
               static_cast<int>(flags.GetInt("sets")));
  std::fprintf(out, "    \"seed\": %d,\n",
               static_cast<int>(flags.GetInt("seed")));
  std::fprintf(out, "    \"threads\": %d\n", threads);
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    std::fprintf(out,
                 "    {\"scale\": %g, \"num_facts\": %zu, \"sets\": %zu, "
                 "\"nodes\": %llu, \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"cold_nodes_per_sec\": %.1f, "
                 "\"warm_nodes_per_sec\": %.1f, \"result_hash\": \"%016llx\"",
                 row.scale, row.num_facts, row.num_sets,
                 static_cast<unsigned long long>(row.nodes), row.cold_seconds,
                 row.warm_seconds, row.cold_nodes_per_sec,
                 row.warm_nodes_per_sec,
                 static_cast<unsigned long long>(row.result_hash));
    if (row.have_baseline) {
      std::fprintf(out,
                   ", \"baseline_warm_nodes_per_sec\": %.1f, "
                   "\"warm_speedup\": %.3f, \"results_match_baseline\": %s",
                   row.baseline_warm_nodes_per_sec, row.warm_speedup,
                   row.results_match_baseline ? "true" : "false");
    }
    std::fprintf(out, "}%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
