// Scalar-vs-SIMD microbenchmark for the set kernels behind the search
// inner loop (query/simd_kernels.h), measured through the real EntitySet
// entry points so the numbers include dispatch overhead exactly as the
// miner pays it. For every operation x universe size, the harness forces
// each SIMD level the host can run (scalar always included), verifies the
// op result is identical to scalar, and reports ns/op plus the speedup
// over scalar. Results go to BENCH_simd.json:
//
//   ./bench_micro_simd [--universes 65536,262144,1048576]
//                      [--density 0.5] [--out BENCH_simd.json]
//
// Ops covered (bitmap x bitmap unless noted):
//   * intersect_count — EntitySet::IntersectCount, uncapped (word-AND +
//     popcount; the count-first node decision);
//   * intersect_count_capped — same with cap=64 (the DFS's |T|+k regime;
//     early exit bounds the win);
//   * intersect_into — EntitySet::IntersectInto into a reused frame
//     (fused AND-store-popcount; arena materialization);
//   * subset — EntitySet::SubsetOf (redundant-subtree prune);
//   * forced_bitmap_build — EntitySet::ForcedBitmap from a sparse vector
//     set (pinned-twin construction).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "query/entity_set.h"
#include "query/simd_kernels.h"
#include "util/cpu_features.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using remi::EntitySet;
using remi::SimdLevel;
using remi::TermId;

struct Row {
  std::string op;
  size_t universe_bits = 0;
  const char* level = "scalar";
  double ns_per_op = 0.0;
  double speedup_vs_scalar = 1.0;
  bool matches_scalar = true;
};

std::vector<size_t> ParseUniverseList(const std::string& spec) {
  std::vector<size_t> universes;
  for (const std::string& tok : remi::SplitString(spec, ',')) {
    if (tok.empty()) continue;
    const long long v = std::atoll(tok.c_str());
    if (v > 0) universes.push_back(static_cast<size_t>(v));
  }
  if (universes.empty()) universes = {65536, 262144, 1048576};
  return universes;
}

EntitySet RandomBitmapSet(std::mt19937_64* rng, size_t universe,
                          double density) {
  std::bernoulli_distribution member(density);
  std::vector<TermId> ids;
  ids.reserve(static_cast<size_t>(static_cast<double>(universe) * density));
  for (size_t id = 0; id < universe; ++id) {
    if (member(*rng)) ids.push_back(static_cast<TermId>(id));
  }
  return EntitySet::FromSorted(std::move(ids), universe).ForcedBitmap(universe);
}

EntitySet SparseVectorSet(std::mt19937_64* rng, size_t universe) {
  // ~1/64 density: squarely in the vector regime regardless of universe,
  // the shape of a typical unpinned queue entry before its bitmap twin.
  std::bernoulli_distribution member(1.0 / 64.0);
  std::vector<TermId> ids;
  for (size_t id = 0; id < universe; ++id) {
    if (member(*rng)) ids.push_back(static_cast<TermId>(id));
  }
  return EntitySet::FromSorted(std::move(ids), 0);
}

/// Runs `op` until ~80ms of wall time, returns ns per call. `op` returns a
/// uint64_t folded into *result so the compiler cannot elide the work;
/// the final value (same iteration count across levels is NOT guaranteed,
/// so callers compare single-shot results, not this accumulator).
template <typename Op>
double MeasureNsPerOp(const Op& op, uint64_t* sink) {
  size_t iters = 1;
  for (;;) {
    remi::Timer timer;
    uint64_t local = 0;
    for (size_t i = 0; i < iters; ++i) local += op();
    const double elapsed = timer.ElapsedSeconds();
    *sink += local;
    if (elapsed > 0.08) {
      return elapsed / static_cast<double>(iters) * 1e9;
    }
    const double target_iters =
        elapsed > 0 ? static_cast<double>(iters) * 0.12 / elapsed
                    : static_cast<double>(iters) * 8;
    iters = static_cast<size_t>(target_iters) + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineString("universes", "65536,262144,1048576",
                     "comma-separated universe sizes in bits");
  flags.DefineDouble("density", 0.5, "bit density of the dense operands");
  flags.DefineString("out", "BENCH_simd.json", "JSON output path");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();

  const double density = flags.GetDouble("density");
  const std::vector<size_t> universes =
      ParseUniverseList(flags.GetString("universes"));

  // scalar first: every other level's speedup and result check is
  // relative to it.
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  const SimdLevel best = remi::DetectCpuFeatures().Best();
  for (SimdLevel level :
       {SimdLevel::kNeon, SimdLevel::kAvx2, SimdLevel::kAvx512}) {
    if (level <= best &&
        &remi::SetKernelsFor(level) !=
            &remi::SetKernelsFor(SimdLevel::kScalar)) {
      levels.push_back(level);
    }
  }

  std::printf("micro_simd — cpu=%s, dispatch levels:",
              remi::DetectCpuFeatures().Describe().c_str());
  for (SimdLevel level : levels) {
    std::printf(" %s", remi::SimdLevelName(level));
  }
  std::printf("\n");

  std::vector<Row> rows;
  uint64_t sink = 0;
  for (const size_t universe : universes) {
    std::mt19937_64 rng(universe * 2654435761u + 17);
    const EntitySet a = RandomBitmapSet(&rng, universe, density);
    const EntitySet b = RandomBitmapSet(&rng, universe, density);
    const EntitySet sub = a.Intersect(b).ForcedBitmap(universe);
    const EntitySet sparse = SparseVectorSet(&rng, universe);
    EntitySet frame;

    struct OpDef {
      const char* name;
      std::function<uint64_t()> run;
    };
    const std::vector<OpDef> ops = {
        {"intersect_count",
         [&] { return a.IntersectCount(b, SIZE_MAX); }},
        // The cap contract is "any value > cap means exceeds": levels
        // legitimately overshoot by different amounts (scalar exits
        // per word, vector kernels per block), so the comparable result
        // is the clamped one.
        {"intersect_count_capped",
         [&] { return std::min<uint64_t>(a.IntersectCount(b, 64), 65); }},
        {"intersect_into",
         [&] {
           EntitySet::IntersectInto(a, b, &frame);
           return frame.size();
         }},
        {"subset", [&] { return sub.SubsetOf(a) ? 1u : 0u; }},
        {"forced_bitmap_build",
         [&] { return sparse.ForcedBitmap(universe).size(); }},
    };

    for (const OpDef& op : ops) {
      uint64_t scalar_result = 0;
      double scalar_ns = 0.0;
      for (const SimdLevel level : levels) {
        remi::ForceSimdLevel(level);
        const uint64_t single = op.run();
        Row row;
        row.op = op.name;
        row.universe_bits = universe;
        row.level = remi::SimdLevelName(level);
        row.ns_per_op = MeasureNsPerOp(op.run, &sink);
        if (level == SimdLevel::kScalar) {
          scalar_result = single;
          scalar_ns = row.ns_per_op;
        } else {
          row.matches_scalar = single == scalar_result;
          row.speedup_vs_scalar =
              row.ns_per_op > 0 ? scalar_ns / row.ns_per_op : 1.0;
        }
        std::printf("  %-22s u=%-8zu %-7s %10.1f ns/op  x%.2f%s\n",
                    op.name, universe, row.level, row.ns_per_op,
                    row.speedup_vs_scalar,
                    row.matches_scalar ? "" : "  RESULTS DIVERGE");
        rows.push_back(row);
      }
    }
  }
  remi::ClearForcedSimdLevel();

  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"density\": %g,\n", density);
  std::fprintf(out, "    \"checksum\": %llu\n",
               static_cast<unsigned long long>(sink & 0xffff));
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"op\": \"%s\", \"universe_bits\": %zu, "
                 "\"level\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"speedup_vs_scalar\": %.2f, \"matches_scalar\": %s}%s\n",
                 row.op.c_str(), row.universe_bits, row.level, row.ns_per_op,
                 row.speedup_vs_scalar, row.matches_scalar ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
