// §3.5.3 — the power-law compression of conditional rankings (Eq. 1).
//
// The paper fits log2(rank) ≈ -α·log2(freq) + β per predicate and reports
// mean R² of 0.85 (DBpedia, fr), 0.88 (Wikidata, fr), and 0.91 (DBpedia,
// pr). This harness materializes the object ranking of every predicate
// with at least --min-objects distinct objects on both synthetic KBs,
// reports the (unweighted and size-weighted) mean R², and quantifies the
// storage saved by keeping two coefficients per predicate instead of the
// exact per-entity ranks.
//
//   ./fit_r2 [--scale 0.05] [--min-objects 20]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "complexity/rankings.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

struct FitReport {
  remi::MeanStd r2;
  double weighted_r2 = 0.0;
  size_t predicates = 0;
  size_t exact_entries = 0;  // per-entity rank entries
};

FitReport Measure(const remi::KnowledgeBase& kb,
                  remi::ProminenceMetric metric, size_t min_objects) {
  auto prominence = remi::MakeProminenceProvider(&kb, metric);
  remi::RankingService rankings(&kb, prominence.get());
  std::vector<double> r2s;
  double weighted_sum = 0.0, weight = 0.0;
  FitReport report;
  for (const remi::TermId p : kb.store().predicates()) {
    if (p == kb.label_predicate()) continue;
    auto ranking = rankings.ObjectsOfPredicate(p);
    if (ranking->size() < min_objects) continue;
    r2s.push_back(ranking->fit.r2);
    weighted_sum += ranking->fit.r2 * static_cast<double>(ranking->size());
    weight += static_cast<double>(ranking->size());
    ++report.predicates;
    report.exact_entries += ranking->size();
  }
  report.r2 = remi::ComputeMeanStd(r2s);
  report.weighted_r2 = weight > 0 ? weighted_sum / weight : 0.0;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("min-objects", 20,
                  "minimum distinct objects for a predicate to be fitted");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const size_t min_objects =
      static_cast<size_t>(flags.GetInt("min-objects"));

  remi::bench::CsvWriter csv("fit_r2");
  csv.Header({"kb", "metric", "predicates", "mean_r2", "weighted_r2"});

  struct Case {
    const char* kb_name;
    remi::ProminenceMetric metric;
    const char* paper;
  };
  const Case cases[] = {
      {"dbpedia", remi::ProminenceMetric::kFrequency, "0.85"},
      {"wikidata", remi::ProminenceMetric::kFrequency, "0.88"},
      {"dbpedia", remi::ProminenceMetric::kPageRank, "0.91"},
  };

  std::printf("§3.5.3 reproduction — Eq. 1 fit quality\n");
  for (const auto& c : cases) {
    remi::KnowledgeBase kb =
        std::string(c.kb_name) == "dbpedia"
            ? remi::bench::BuildDbpediaLike(flags.GetDouble("scale"))
            : remi::bench::BuildWikidataLike(flags.GetDouble("scale"));
    const auto report = Measure(kb, c.metric, min_objects);
    std::printf(
        "  %s/%s: mean R²=%.3f (weighted %.3f) over %zu predicates — "
        "paper: %s\n",
        c.kb_name, remi::ProminenceMetricToString(c.metric),
        report.r2.mean, report.weighted_r2, report.predicates, c.paper);
    // Storage accounting: 2 doubles per predicate vs one (TermId, rank)
    // entry per ranked object.
    const double exact_bytes =
        static_cast<double>(report.exact_entries) * (sizeof(remi::TermId) +
                                                     sizeof(size_t));
    const double fitted_bytes =
        static_cast<double>(report.predicates) * 2 * sizeof(double);
    std::printf("    storage: exact rankings ~%.0f KiB -> fitted "
                "coefficients ~%.1f KiB (%.0fx smaller)\n",
                exact_bytes / 1024.0, fitted_bytes / 1024.0,
                fitted_bytes > 0 ? exact_bytes / fitted_bytes : 0.0);
    csv.Row({c.kb_name, remi::ProminenceMetricToString(c.metric),
             std::to_string(report.predicates),
             remi::FormatDouble(report.r2.mean, 4),
             remi::FormatDouble(report.weighted_r2, 4)});
  }
  return 0;
}
