// Open-loop load generator for the serving cores (BENCH_serve.json).
//
// Four phases, all against real TCP sockets on loopback:
//
//   capacity     fork-isolated connection ramp under RLIMIT_AS: how many
//                concurrent connections can each serving core hold in the
//                same address-space budget? Thread-per-connection pays an
//                8MB stack per connection; the epoll core pays a few KB of
//                buffers. The acceptance bar is epoll >= 4x threads.
//   equivalence  deterministic requests sent over both wire protocols to
//                one epoll server must come back byte-identical.
//   sweep        open-loop load (requests dispatched on a fixed schedule,
//                never gated on responses) across connection counts, for
//                threads/NDJSON, epoll/NDJSON and epoll/binary. Reports
//                p50/p99 latency and sustained QPS per point.
//   counters     at quiescence, admitted == completed_ok +
//                deadline_exceeded + cancelled + failed.
//   tenants      multi-tenant sweep (BENCH_tenant.json): T named tenants
//                on one server, Zipf-skewed tenant pick, per-tenant
//                latency splits; plus an isolation pass per T where the
//                hot tenant is quota-pinned — it must shed while the cold
//                tenants' p99 stays flat.
//
//   ./bench_load_serve [--scale 0.02] [--kb path.nt]
//                      [--connections 1,4,16,64] [--requests 1500]
//                      [--rps 500] [--mine-fraction 0.02]
//                      [--capacity-limit-mb 768] [--capacity-max 1024]
//                      [--skip-capacity] [--out BENCH_serve.json]
//                      [--tenant-counts 1,4,16] [--tenant-requests 1200]
//                      [--tenant-rps 300] [--skip-tenants]
//                      [--tenant-out BENCH_tenant.json]
//
// CI smoke mode: `--connect PORT [--target Berlin]` runs equivalence, a
// short mixed-protocol burst and the wire-level counter identity against
// an already-running remi_server, exits nonzero on any failure, writes no
// JSON. `--connect-kb NAME` extends the smoke to a named tenant: routed
// equivalence, a mixed two-tenant burst, the unknown-kb NotFound
// contract, and the per-tenant counter identity.
//
// The committed BENCH_serve.json records hardware_concurrency: on a
// 1-core host the sweep measures protocol + event-loop overhead, not
// parallel mining throughput.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "service/event_server.h"
#include "service/socket_util.h"
#include "service/frame_codec.h"
#include "service/json_codec.h"
#include "service/line_server.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using remi::AppendFrame;
using remi::FrameDecoder;
using remi::FrameVerb;
using remi::FrameView;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAllBlocking(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One blocking NDJSON round trip on a fresh connection ("" on failure).
std::string LineRoundTrip(int port, const std::string& request) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  std::string response;
  if (SendAllBlocking(fd, request + "\n")) {
    char c = 0;
    while (recv(fd, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
  }
  close(fd);
  return response;
}

/// One blocking binary round trip on a fresh connection ("" on failure).
std::string FrameRoundTrip(int port, uint8_t verb, const std::string& payload) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  std::string wire;
  AppendFrame(verb, /*request_id=*/1, payload, &wire);
  std::string response;
  if (SendAllBlocking(fd, wire)) {
    FrameDecoder decoder(64u << 20);
    char chunk[4096];
    for (;;) {
      FrameView frame;
      const auto result = decoder.Next(&frame);
      if (result == FrameDecoder::Result::kFrame) {
        response.assign(frame.payload.data(), frame.payload.size());
        break;
      }
      if (result == FrameDecoder::Result::kError) break;
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      decoder.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    }
  }
  close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Open-loop generator: one thread, poll(2) over all connections. Requests
// are stamped at their *scheduled* time, so server-side queueing under
// overload shows up in the latency numbers instead of slowing the
// generator down (the coordinated-omission trap of closed-loop clients).
// ---------------------------------------------------------------------------

struct LoadConfig {
  int port = 0;
  bool binary = false;
  size_t connections = 4;
  size_t total_requests = 1000;
  double rps = 500.0;
  /// Every Nth request is a mine; the rest are pings.
  size_t mine_every = 0;  // 0 = never
  std::vector<std::string> mine_payloads;
  /// Pre-built schedule (multi-tenant sweep): request k sends
  /// scheduled_payloads[k] with scheduled_verbs[k], and its latency is
  /// attributed to class scheduled_class[k] (one class per tenant).
  /// Empty = the mine_every/ping schedule above, everything in class 0.
  std::vector<std::string> scheduled_payloads;
  std::vector<uint8_t> scheduled_verbs;
  std::vector<int> scheduled_class;
  size_t num_classes = 1;
};

struct LoadResult {
  bool ok = true;
  std::string note;
  size_t completed = 0;  ///< responses with status OK
  size_t rejected = 0;   ///< ResourceExhausted (admission shed, expected)
  size_t errors = 0;     ///< anything else
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  /// Per-class splits (sized num_classes); class = tenant in the
  /// multi-tenant sweep.
  std::vector<size_t> class_completed;
  std::vector<size_t> class_rejected;
  std::vector<double> class_p99_ms;
};

struct ClientConn {
  int fd = -1;
  std::string outbuf;
  size_t out_off = 0;
  FrameDecoder decoder{64u << 20};
  std::string linebuf;
  /// Send time + request class, matched to responses in order (NDJSON)
  /// or by request id (binary).
  std::deque<std::pair<double, int>> fifo_send_times;
  std::unordered_map<uint64_t, std::pair<double, int>> send_times;
  bool failed = false;
};

void Classify(std::string_view response_doc, double latency_ms,
              int request_class, LoadResult* result,
              std::vector<std::vector<double>>* latencies) {
  if (response_doc.find("\"status\":\"OK\"") != std::string_view::npos) {
    ++result->completed;
    ++result->class_completed[static_cast<size_t>(request_class)];
    (*latencies)[static_cast<size_t>(request_class)].push_back(latency_ms);
  } else if (response_doc.find("ResourceExhausted") !=
             std::string_view::npos) {
    ++result->rejected;
    ++result->class_rejected[static_cast<size_t>(request_class)];
  } else {
    ++result->errors;
  }
}

LoadResult RunOpenLoopLoad(const LoadConfig& config) {
  LoadResult result;
  result.class_completed.assign(config.num_classes, 0);
  result.class_rejected.assign(config.num_classes, 0);
  result.class_p99_ms.assign(config.num_classes, 0.0);
  std::vector<ClientConn> conns(config.connections);
  for (auto& conn : conns) {
    conn.fd = ConnectLoopback(config.port);
    if (conn.fd >= 0 && !remi::SetNonBlocking(conn.fd)) {
      close(conn.fd);
      conn.fd = -1;
    }
    if (conn.fd < 0) {
      result.ok = false;
      result.note = "connect failed";
      for (auto& c : conns)
        if (c.fd >= 0) close(c.fd);
      return result;
    }
  }

  std::vector<std::vector<double>> latencies(config.num_classes);
  const double start = NowSeconds();
  double last_response = start;
  size_t next_request = 0;
  size_t responses = 0;
  std::vector<pollfd> pfds(conns.size());
  char chunk[16384];

  while (responses < config.total_requests) {
    const double now = NowSeconds();
    // Dispatch every request whose scheduled time has arrived.
    while (next_request < config.total_requests &&
           start + static_cast<double>(next_request) / config.rps <= now) {
      const size_t k = next_request++;
      ClientConn& conn = conns[k % conns.size()];
      if (conn.failed) {
        ++result.errors;  // undeliverable
        ++responses;
        continue;
      }
      const bool scheduled_mode = !config.scheduled_payloads.empty();
      const bool mine = !scheduled_mode && config.mine_every != 0 &&
                        !config.mine_payloads.empty() &&
                        k % config.mine_every == 0;
      const std::string ping = R"({"op":"ping"})";
      const std::string& payload =
          scheduled_mode
              ? config.scheduled_payloads[k % config.scheduled_payloads.size()]
              : (mine ? config.mine_payloads[k % config.mine_payloads.size()]
                      : ping);
      const uint8_t verb =
          scheduled_mode
              ? config.scheduled_verbs[k % config.scheduled_verbs.size()]
              : static_cast<uint8_t>(mine ? FrameVerb::kMine
                                          : FrameVerb::kPing);
      const int request_class =
          scheduled_mode
              ? config.scheduled_class[k % config.scheduled_class.size()]
              : 0;
      const double scheduled =
          start + static_cast<double>(k) / config.rps;
      if (config.binary) {
        AppendFrame(verb, static_cast<uint64_t>(k), payload, &conn.outbuf);
        conn.send_times.emplace(static_cast<uint64_t>(k),
                                std::make_pair(scheduled, request_class));
      } else {
        conn.outbuf += payload;
        conn.outbuf += '\n';
        conn.fifo_send_times.emplace_back(scheduled, request_class);
      }
    }

    // Wake for the next scheduled dispatch (or 50ms when idle).
    int timeout_ms = 50;
    if (next_request < config.total_requests) {
      const double due =
          start + static_cast<double>(next_request) / config.rps;
      timeout_ms = std::max(
          0, static_cast<int>((due - NowSeconds()) * 1000.0));
      timeout_ms = std::min(timeout_ms, 50);
    } else if (NowSeconds() - last_response > 30.0) {
      result.ok = false;
      result.note = "timed out waiting for responses";
      break;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      pfds[i].fd = conns[i].failed ? -1 : conns[i].fd;
      pfds[i].events = static_cast<short>(
          POLLIN |
          (conns[i].out_off < conns[i].outbuf.size() ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
    if (poll(pfds.data(), pfds.size(), timeout_ms) < 0 && errno != EINTR) {
      result.ok = false;
      result.note = "poll failed";
      break;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.failed) continue;
      if (pfds[i].revents & POLLOUT) {
        while (conn.out_off < conn.outbuf.size()) {
          const ssize_t n =
              send(conn.fd, conn.outbuf.data() + conn.out_off,
                   conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            conn.failed = true;
            break;
          }
        }
        if (conn.out_off == conn.outbuf.size()) {
          conn.outbuf.clear();
          conn.out_off = 0;
        }
      }
      if (conn.failed || (pfds[i].revents & (POLLIN | POLLHUP)) == 0) {
        continue;
      }
      for (;;) {
        const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
          const double arrival = NowSeconds();
          last_response = arrival;
          if (config.binary) {
            conn.decoder.Feed(
                std::string_view(chunk, static_cast<size_t>(n)));
            FrameView frame;
            while (conn.decoder.Next(&frame) ==
                   FrameDecoder::Result::kFrame) {
              const auto it = conn.send_times.find(frame.request_id);
              double sent = arrival;
              int request_class = 0;
              if (it != conn.send_times.end()) {
                sent = it->second.first;
                request_class = it->second.second;
                conn.send_times.erase(it);
              }
              Classify(frame.payload, (arrival - sent) * 1000.0,
                       request_class, &result, &latencies);
              ++responses;
            }
          } else {
            conn.linebuf.append(chunk, static_cast<size_t>(n));
            size_t pos = 0;
            size_t newline;
            while ((newline = conn.linebuf.find('\n', pos)) !=
                   std::string::npos) {
              const std::string_view line(conn.linebuf.data() + pos,
                                          newline - pos);
              double sent = arrival;
              int request_class = 0;
              if (!conn.fifo_send_times.empty()) {
                sent = conn.fifo_send_times.front().first;
                request_class = conn.fifo_send_times.front().second;
                conn.fifo_send_times.pop_front();
              }
              Classify(line, (arrival - sent) * 1000.0, request_class,
                       &result, &latencies);
              ++responses;
              pos = newline + 1;
            }
            conn.linebuf.erase(0, pos);
          }
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else if (n < 0 && errno == EINTR) {
          continue;
        } else {
          // EOF (or a reset) with requests still outstanding.
          conn.failed = true;
          const size_t outstanding = config.binary
                                         ? conn.send_times.size()
                                         : conn.fifo_send_times.size();
          result.errors += outstanding;
          responses += outstanding;
          conn.send_times.clear();
          conn.fifo_send_times.clear();
          break;
        }
      }
    }
  }

  for (auto& conn : conns) {
    if (conn.fd >= 0) close(conn.fd);
  }
  std::vector<double> merged;
  for (size_t cls = 0; cls < latencies.size(); ++cls) {
    auto& class_latencies = latencies[cls];
    std::sort(class_latencies.begin(), class_latencies.end());
    if (!class_latencies.empty()) {
      result.class_p99_ms[cls] = class_latencies[std::min(
          class_latencies.size() - 1, class_latencies.size() * 99 / 100)];
    }
    merged.insert(merged.end(), class_latencies.begin(),
                  class_latencies.end());
  }
  std::sort(merged.begin(), merged.end());
  if (!merged.empty()) {
    result.p50_ms = merged[merged.size() / 2];
    result.p99_ms = merged[std::min(merged.size() - 1,
                                    merged.size() * 99 / 100)];
  }
  const double wall = std::max(last_response - start, 1e-9);
  result.qps = static_cast<double>(result.completed + result.rejected) / wall;
  if (result.errors > 0) result.ok = false;
  return result;
}

// ---------------------------------------------------------------------------
// Capacity ramp: fork a server under RLIMIT_AS, connect until it breaks.
// ---------------------------------------------------------------------------

struct CapacityResult {
  bool ran = false;
  size_t sustained = 0;
  bool hit_cap = false;  ///< stopped at --capacity-max, not at a failure
};

CapacityResult RunCapacityRamp(bool epoll_mode, size_t limit_mb,
                               size_t max_conns, const std::string& kb_path,
                               double scale) {
  CapacityResult result;
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return result;
  const pid_t child = fork();
  if (child < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return result;
  }
  if (child == 0) {
    // Server child: cap the address space, then serve until killed. The
    // thread-per-connection core burns ~8MB of it per connection (stack);
    // the epoll core a few KB of buffers — same budget, same KB.
    close(pipe_fds[0]);
    signal(SIGPIPE, SIG_IGN);
    rlimit limit{};
    limit.rlim_cur = limit.rlim_max =
        static_cast<rlim_t>(limit_mb) << 20;
    setrlimit(RLIMIT_AS, &limit);

    std::unique_ptr<remi::Service> service;
    if (!kb_path.empty()) {
      remi::KbSpec spec;
      spec.path = kb_path;
      auto opened = remi::Service::Open(spec);
      if (!opened.ok()) _exit(2);
      service = std::move(*opened);
    } else {
      service = remi::Service::Create(remi::bench::BuildDbpediaLike(scale));
    }
    int port = -1;
    remi::LineServer line_server(service.get(), {});
    remi::EventServerOptions event_options;
    remi::EventServer event_server(service.get(), event_options);
    if (epoll_mode) {
      if (event_server.Start().ok()) port = event_server.port();
    } else {
      if (line_server.Start().ok()) port = line_server.port();
    }
    if (write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) _exit(3);
    close(pipe_fds[1]);
    for (;;) pause();  // parent SIGKILLs us
  }

  close(pipe_fds[1]);
  int port = -1;
  if (read(pipe_fds[0], &port, sizeof(port)) != sizeof(port)) port = -1;
  close(pipe_fds[0]);
  if (port <= 0) {
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    return result;
  }

  result.ran = true;
  std::vector<int> held;
  held.reserve(max_conns);
  const std::string ping = "{\"op\":\"ping\"}\n";
  for (size_t i = 0; i < max_conns; ++i) {
    const int fd = ConnectLoopback(port);
    if (fd < 0) break;
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    // A connection only counts if the server actually serves it: an
    // accept()ed-then-shed connection answers the ping with EOF.
    bool served = false;
    if (SendAllBlocking(fd, ping)) {
      char c = 0;
      while (recv(fd, &c, 1, 0) == 1) {
        if (c == '\n') {
          served = true;
          break;
        }
      }
    }
    if (!served) {
      close(fd);
      break;
    }
    held.push_back(fd);  // stays open: concurrency is the resource
  }
  result.sustained = held.size();
  result.hit_cap = held.size() == max_conns;
  for (const int fd : held) close(fd);
  kill(child, SIGKILL);
  waitpid(child, nullptr, 0);
  return result;
}

// ---------------------------------------------------------------------------

struct EquivalenceCase {
  FrameVerb verb;
  std::string payload;
};

/// Sends each deterministic request over both wire modes; true iff every
/// response pair is byte-identical.
bool CheckEquivalence(int port, const std::vector<EquivalenceCase>& cases,
                      size_t* checked) {
  bool all_identical = true;
  for (const auto& test_case : cases) {
    const std::string line = LineRoundTrip(port, test_case.payload);
    const std::string frame = FrameRoundTrip(
        port, static_cast<uint8_t>(test_case.verb), test_case.payload);
    ++*checked;
    if (line.empty() || line != frame) {
      std::fprintf(stderr,
                   "  MISMATCH for %s\n    ndjson: %s\n    binary: %s\n",
                   test_case.payload.c_str(), line.c_str(), frame.c_str());
      all_identical = false;
    }
  }
  return all_identical;
}

std::vector<size_t> ParseSizeList(const std::string& spec,
                                  std::vector<size_t> fallback) {
  std::vector<size_t> values;
  for (const std::string& token : remi::SplitString(spec, ',')) {
    if (token.empty()) continue;
    const long parsed = std::atol(token.c_str());
    if (parsed > 0) values.push_back(static_cast<size_t>(parsed));
  }
  return values.empty() ? fallback : values;
}

double JsonNumber(const remi::JsonValue& doc, const char* key) {
  const remi::JsonValue* value = doc.Find(key);
  return value != nullptr ? value->AsNumber() : -1.0;
}

struct SweepRow {
  std::string server;
  std::string wire;
  size_t connections = 0;
  LoadResult load;
};

// ---------------------------------------------------------------------------
// Multi-tenant sweep: one epoll server, T named tenants (clones of the
// same KB image, so responses are comparable across tenants), a
// Zipf-skewed tenant pick (tenant rank r gets weight 1/(r+1) — t0 is the
// hot head), all-mine traffic attributed per tenant. Each T runs twice:
// a baseline pass, and an isolation pass where t0 gets a one-slot quota
// and an in-process occupant pins that slot — the hot tenant must shed
// (ResourceExhausted) while the cold tenants' latency stays flat.
// ---------------------------------------------------------------------------

struct TenantPassRow {
  size_t tenants = 0;
  bool hot_quota = false;
  std::vector<std::string> names;
  LoadResult load;
};

/// Deterministic Zipf tenant pick for request k (no RNG: the schedule
/// must be identical between the baseline and isolation passes).
size_t ZipfTenant(size_t k, const std::vector<double>& cumulative) {
  const uint32_t hashed = static_cast<uint32_t>(k) * 2654435761u;
  const double u =
      static_cast<double>(hashed >> 8 & 0xFFFFFF) / static_cast<double>(1 << 24);
  const double target = u * cumulative.back();
  for (size_t i = 0; i < cumulative.size(); ++i) {
    if (target < cumulative[i]) return i;
  }
  return cumulative.size() - 1;
}

TenantPassRow RunTenantPass(const std::string& kb_image, size_t tenants,
                            bool hot_quota, size_t requests, double rps,
                            const std::vector<std::string>& targets) {
  TenantPassRow row;
  row.tenants = tenants;
  row.hot_quota = hot_quota;

  auto default_kb = remi::KnowledgeBase::OpenSnapshotBuffer(kb_image);
  REMI_CHECK_OK(default_kb.status());
  remi::ServiceOptions options;
  options.max_in_flight = 8;
  options.max_queued = 64;
  auto service = remi::Service::Create(std::move(*default_kb), options);
  for (size_t i = 0; i < tenants; ++i) {
    const std::string name = "t" + std::to_string(i);
    row.names.push_back(name);
    auto clone = remi::KnowledgeBase::OpenSnapshotBuffer(kb_image);
    REMI_CHECK_OK(clone.status());
    if (hot_quota && i == 0) {
      remi::TenantQuota quota;
      quota.max_in_flight = 1;
      quota.max_queued = 0;
      REMI_CHECK_OK(service->AttachKb(name, std::move(*clone), quota));
    } else {
      REMI_CHECK_OK(service->AttachKb(name, std::move(*clone)));
    }
  }

  std::vector<double> cumulative(tenants);
  double total = 0.0;
  for (size_t i = 0; i < tenants; ++i) {
    total += 1.0 / static_cast<double>(i + 1);
    cumulative[i] = total;
  }

  LoadConfig config;
  config.binary = true;
  config.connections = std::min<size_t>(8, tenants * 2);
  config.total_requests = requests;
  config.rps = rps;
  config.num_classes = tenants;
  for (size_t k = 0; k < requests; ++k) {
    const size_t tenant = ZipfTenant(k, cumulative);
    remi::JsonValue request = remi::JsonValue::Object();
    request.Set("op", remi::JsonValue::String("mine"));
    request.Set("kb", remi::JsonValue::String(row.names[tenant]));
    remi::JsonValue target_list = remi::JsonValue::Array();
    target_list.Append(
        remi::JsonValue::String(targets[k % targets.size()]));
    request.Set("targets", std::move(target_list));
    config.scheduled_payloads.push_back(request.Dump());
    config.scheduled_verbs.push_back(
        static_cast<uint8_t>(FrameVerb::kMine));
    config.scheduled_class.push_back(static_cast<int>(tenant));
  }

  // The isolation pass pins the hot tenant's single quota slot from
  // in-process, so every wire request to t0 sheds regardless of how fast
  // a single mine is on this host.
  std::atomic<bool> stop_occupant{false};
  std::thread occupant;
  if (hot_quota) {
    occupant = std::thread([&] {
      while (!stop_occupant.load()) {
        remi::BatchMineRequest batch;
        batch.kb = "t0";
        for (size_t i = 0; i < 64; ++i) {
          remi::TargetSpec spec;
          spec.names = {targets[i % targets.size()]};
          batch.target_sets.push_back(spec);
        }
        (void)service->BatchMine(batch);
      }
    });
  }

  remi::EventServerOptions server_options;
  remi::EventServer server(service.get(), server_options);
  REMI_CHECK_OK(server.Start());
  config.port = server.port();
  row.load = RunOpenLoopLoad(config);
  server.Stop();
  if (occupant.joinable()) {
    stop_occupant.store(true);
    occupant.join();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", 0.02, "synthetic KB scale (ignored with --kb)");
  flags.DefineString("kb", "", "serve this KB file instead of a synthetic");
  flags.DefineString("connections", "1,4,16,64",
                     "comma-separated sweep connection counts");
  flags.DefineInt("requests", 1500, "requests per sweep point");
  flags.DefineDouble("rps", 500.0, "open-loop aggregate request rate");
  flags.DefineDouble("mine-fraction", 0.02,
                     "fraction of requests that mine (the rest ping)");
  flags.DefineInt("capacity-limit-mb", 768,
                  "RLIMIT_AS for the forked capacity-ramp servers");
  flags.DefineInt("capacity-max", 1024,
                  "stop the capacity ramp at this many connections");
  flags.DefineBool("skip-capacity", false,
                   "skip the fork-isolated capacity phase");
  flags.DefineInt("connect", 0,
                  "CI smoke mode: run checks against an external server "
                  "on this port, write no JSON");
  flags.DefineString("target", "Berlin",
                     "mine/summarize target entity in --connect mode");
  flags.DefineString("connect-kb", "",
                     "CI smoke mode: also exercise this named tenant "
                     "(per-request kb routing + per-tenant counters)");
  flags.DefineString("tenant-counts", "1,4,16",
                     "multi-tenant sweep tenant counts");
  flags.DefineInt("tenant-requests", 1200,
                  "requests per multi-tenant sweep pass");
  flags.DefineDouble("tenant-rps", 300.0,
                     "open-loop rate for the multi-tenant sweep");
  flags.DefineBool("skip-tenants", false, "skip the multi-tenant sweep");
  flags.DefineString("tenant-out", "BENCH_tenant.json",
                     "multi-tenant sweep JSON output path");
  flags.DefineString("out", "BENCH_serve.json", "JSON output path");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();
  signal(SIGPIPE, SIG_IGN);

  // ---- CI smoke mode: external server, pass/fail only. ----
  if (flags.GetInt("connect") != 0) {
    const int port = static_cast<int>(flags.GetInt("connect"));
    const std::string target = flags.GetString("target");
    bool ok = true;

    remi::bench::Banner("equivalence (external server)");
    std::vector<EquivalenceCase> cases = {
        {FrameVerb::kPing, R"({"op":"ping"})"},
        {FrameVerb::kSummarize,
         R"({"op":"summarize","entity":")" + target + R"(","k":3})"},
        {FrameVerb::kCandidates,
         R"({"op":"candidates","targets":[")" + target + R"("],"limit":3})"},
        {FrameVerb::kMine,
         R"({"op":"mine","targets":["NoSuchEntityAnywhere"]})"},
    };
    size_t checked = 0;
    if (!CheckEquivalence(port, cases, &checked)) ok = false;
    std::printf("  %zu request pairs byte-identical: %s\n", checked,
                ok ? "yes" : "NO");

    remi::bench::Banner("mixed burst");
    LoadConfig burst;
    burst.port = port;
    burst.connections = 4;
    burst.total_requests = 200;
    burst.rps = 200.0;
    burst.mine_every = 10;
    burst.mine_payloads = {R"({"op":"mine","targets":[")" + target +
                           R"("]})"};
    for (const bool binary : {false, true}) {
      burst.binary = binary;
      const LoadResult load = RunOpenLoopLoad(burst);
      std::printf("  %-6s ok=%zu rejected=%zu errors=%zu p99=%.2fms\n",
                  binary ? "binary" : "ndjson", load.completed,
                  load.rejected, load.errors, load.p99_ms);
      if (!load.ok || load.completed == 0) ok = false;
    }

    remi::bench::Banner("counter identity (wire)");
    const std::string counters_doc = FrameRoundTrip(
        port, static_cast<uint8_t>(FrameVerb::kCounters), "");
    auto counters = remi::ParseJson(counters_doc);
    if (!counters.ok()) {
      ok = false;
    } else {
      const double admitted = JsonNumber(*counters, "admitted");
      const double accounted = JsonNumber(*counters, "completed_ok") +
                               JsonNumber(*counters, "deadline_exceeded") +
                               JsonNumber(*counters, "cancelled") +
                               JsonNumber(*counters, "failed");
      const bool consistent =
          admitted >= 0 && admitted == accounted &&
          JsonNumber(*counters, "in_flight") == 0;
      std::printf("  admitted=%.0f accounted=%.0f in_flight=%.0f: %s\n",
                  admitted, accounted, JsonNumber(*counters, "in_flight"),
                  consistent ? "consistent" : "INCONSISTENT");
      if (!consistent) ok = false;
    }

    // ---- Named-tenant smoke (two-tenant serving): routed equivalence,
    // a skewed two-tenant burst, the unknown-kb contract, and the
    // per-tenant counter identity. ----
    if (const std::string kb_name = flags.GetString("connect-kb");
        !kb_name.empty()) {
      remi::bench::Banner(("named tenant '" + kb_name + "'").c_str());
      // OK mines embed wall-clock timing, so equivalence uses the
      // deterministic error path; the burst below covers routed OK mines.
      std::vector<EquivalenceCase> tenant_cases = {
          {FrameVerb::kMine, R"({"op":"mine","kb":")" + kb_name +
                                 R"(","targets":["NoSuchEntityAnywhere"]})"},
          {FrameVerb::kCounters, R"({"op":"stats","kb":")" + kb_name +
                                     R"("})"},
      };
      size_t tenant_checked = 0;
      if (!CheckEquivalence(port, tenant_cases, &tenant_checked)) ok = false;
      std::printf("  %zu routed request pairs byte-identical\n",
                  tenant_checked);

      const std::string unknown = LineRoundTrip(
          port, R"({"op":"mine","kb":"no_such_tenant","targets":[")" +
                    target + R"("]})");
      const bool unknown_in_band =
          unknown.find("NotFound") != std::string::npos;
      std::printf("  unknown kb rejected in-band: %s\n",
                  unknown_in_band ? "yes" : "NO");
      if (!unknown_in_band) ok = false;

      // Burst with a 2:1 default/named skew across both protocols.
      LoadConfig tenant_burst;
      tenant_burst.port = port;
      tenant_burst.connections = 4;
      tenant_burst.total_requests = 300;
      tenant_burst.rps = 200.0;
      tenant_burst.num_classes = 2;
      for (size_t k = 0; k < tenant_burst.total_requests; ++k) {
        const bool named = k % 3 == 2;
        tenant_burst.scheduled_payloads.push_back(
            named ? R"({"op":"mine","kb":")" + kb_name +
                        R"(","targets":[")" + target + R"("]})"
                  : R"({"op":"mine","targets":[")" + target + R"("]})");
        tenant_burst.scheduled_verbs.push_back(
            static_cast<uint8_t>(FrameVerb::kMine));
        tenant_burst.scheduled_class.push_back(named ? 1 : 0);
      }
      for (const bool binary : {false, true}) {
        tenant_burst.binary = binary;
        const LoadResult load = RunOpenLoopLoad(tenant_burst);
        std::printf(
            "  %-6s default ok=%zu '%s' ok=%zu errors=%zu p99=%.2fms\n",
            binary ? "binary" : "ndjson", load.class_completed[0],
            kb_name.c_str(), load.class_completed[1], load.errors,
            load.p99_ms);
        if (!load.ok || load.class_completed[1] == 0) ok = false;
      }

      // Per-tenant identity + registry gauges after everything drained.
      const std::string slice_doc = FrameRoundTrip(
          port, static_cast<uint8_t>(FrameVerb::kCounters),
          R"({"kb":")" + kb_name + R"("})");
      const std::string global_doc = FrameRoundTrip(
          port, static_cast<uint8_t>(FrameVerb::kCounters), "");
      auto slice = remi::ParseJson(slice_doc);
      auto global_counters = remi::ParseJson(global_doc);
      if (!slice.ok() || !global_counters.ok()) {
        ok = false;
      } else {
        const double admitted = JsonNumber(*slice, "admitted");
        const double accounted = JsonNumber(*slice, "completed_ok") +
                                 JsonNumber(*slice, "deadline_exceeded") +
                                 JsonNumber(*slice, "cancelled") +
                                 JsonNumber(*slice, "failed");
        const bool tenant_consistent =
            admitted > 0 && admitted == accounted &&
            JsonNumber(*slice, "in_flight") == 0 &&
            JsonNumber(*global_counters, "tenants_active") >= 2 &&
            JsonNumber(*global_counters, "admitted") >= admitted;
        std::printf(
            "  tenant admitted=%.0f accounted=%.0f tenants_active=%.0f: "
            "%s\n",
            admitted, accounted,
            JsonNumber(*global_counters, "tenants_active"),
            tenant_consistent ? "consistent" : "INCONSISTENT");
        if (!tenant_consistent) ok = false;
      }
    }

    std::printf("\nserve smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  // ---- Capacity phase first: fork before this process owns threads. ----
  const std::string kb_path = flags.GetString("kb");
  const double scale = flags.GetDouble("scale");
  CapacityResult cap_threads;
  CapacityResult cap_epoll;
  if (!flags.GetBool("skip-capacity")) {
    remi::bench::Banner("capacity under RLIMIT_AS");
    const size_t limit_mb =
        static_cast<size_t>(flags.GetInt("capacity-limit-mb"));
    const size_t cap_max =
        static_cast<size_t>(flags.GetInt("capacity-max"));
    cap_threads =
        RunCapacityRamp(/*epoll_mode=*/false, limit_mb, cap_max, kb_path,
                        scale);
    std::printf("  threads: %zu connections%s\n", cap_threads.sustained,
                cap_threads.hit_cap ? " (hit ramp cap)" : "");
    cap_epoll = RunCapacityRamp(/*epoll_mode=*/true, limit_mb, cap_max,
                                kb_path, scale);
    std::printf("  epoll:   %zu connections%s\n", cap_epoll.sustained,
                cap_epoll.hit_cap ? " (hit ramp cap)" : "");
    if (cap_threads.ran && cap_epoll.ran && cap_threads.sustained > 0) {
      std::printf("  epoll/threads: %.1fx\n",
                  static_cast<double>(cap_epoll.sustained) /
                      static_cast<double>(cap_threads.sustained));
    }
  }

  // ---- Shared service for the in-process phases. ----
  std::unique_ptr<remi::Service> service;
  if (!kb_path.empty()) {
    remi::KbSpec spec;
    spec.path = kb_path;
    auto opened = remi::Service::Open(spec);
    REMI_CHECK_OK(opened.status());
    service = std::move(*opened);
  } else {
    service = remi::Service::Create(remi::bench::BuildDbpediaLike(scale));
  }
  const remi::KnowledgeBase& kb = service->kb();
  std::printf("\nserving %zu facts, %zu entities\n", kb.NumFacts(),
              kb.NumEntities());

  // Mine targets: mid-prominence entities, addressed by exact IRI so the
  // payloads resolve on the synthetic KB too.
  std::vector<std::string> mine_payloads;
  std::vector<std::string> mine_targets;
  std::string summarize_entity;
  {
    const auto entities = kb.EntitiesByProminence();
    for (size_t rank = 8; rank < entities.size() && mine_payloads.size() < 4;
         rank += 3) {
      const std::string name(kb.dict().lexical(entities[rank]));
      remi::JsonValue request = remi::JsonValue::Object();
      request.Set("op", remi::JsonValue::String("mine"));
      remi::JsonValue targets = remi::JsonValue::Array();
      targets.Append(remi::JsonValue::String(name));
      request.Set("targets", std::move(targets));
      mine_payloads.push_back(request.Dump());
      mine_targets.push_back(name);
      if (summarize_entity.empty()) summarize_entity = name;
    }
  }

  // ---- Equivalence. ----
  remi::bench::Banner("wire-mode equivalence");
  remi::EventServerOptions equivalence_options;
  remi::EventServer equivalence_server(service.get(), equivalence_options);
  REMI_CHECK_OK(equivalence_server.Start());
  std::vector<EquivalenceCase> cases = {
      {FrameVerb::kPing, R"({"op":"ping"})"},
      {FrameVerb::kMine, R"({"op":"mine","targets":["NoSuchEntityAnywhere"]})"},
  };
  if (!summarize_entity.empty()) {
    remi::JsonValue summarize = remi::JsonValue::Object();
    summarize.Set("op", remi::JsonValue::String("summarize"));
    summarize.Set("entity", remi::JsonValue::String(summarize_entity));
    summarize.Set("k", remi::JsonValue::Number(3));
    cases.push_back({FrameVerb::kSummarize, summarize.Dump()});
    remi::JsonValue candidates = remi::JsonValue::Object();
    candidates.Set("op", remi::JsonValue::String("candidates"));
    remi::JsonValue targets = remi::JsonValue::Array();
    targets.Append(remi::JsonValue::String(summarize_entity));
    candidates.Set("targets", std::move(targets));
    candidates.Set("limit", remi::JsonValue::Number(3));
    cases.push_back({FrameVerb::kCandidates, candidates.Dump()});
  }
  size_t equivalence_checked = 0;
  const bool equivalence_ok = CheckEquivalence(
      equivalence_server.port(), cases, &equivalence_checked);
  equivalence_server.Stop();
  std::printf("  %zu request pairs byte-identical: %s\n",
              equivalence_checked, equivalence_ok ? "yes" : "NO");

  // ---- Sweep. ----
  remi::bench::Banner("open-loop sweep");
  const std::vector<size_t> connection_counts =
      ParseSizeList(flags.GetString("connections"), {1, 4, 16, 64});
  LoadConfig base;
  base.total_requests = static_cast<size_t>(flags.GetInt("requests"));
  base.rps = flags.GetDouble("rps");
  const double mine_fraction = flags.GetDouble("mine-fraction");
  base.mine_every =
      mine_fraction > 0.0
          ? static_cast<size_t>(std::max(1.0, 1.0 / mine_fraction))
          : 0;
  base.mine_payloads = mine_payloads;

  std::vector<SweepRow> rows;
  for (const size_t connections : connection_counts) {
    for (int variant = 0; variant < 3; ++variant) {
      SweepRow row;
      row.server = variant == 0 ? "threads" : "epoll";
      row.wire = variant == 2 ? "binary" : "ndjson";
      row.connections = connections;
      LoadConfig config = base;
      config.connections = connections;
      config.binary = variant == 2;
      if (variant == 0) {
        remi::LineServer server(service.get(), {});
        REMI_CHECK_OK(server.Start());
        config.port = server.port();
        row.load = RunOpenLoopLoad(config);
        server.Stop();
      } else {
        remi::EventServerOptions options;
        remi::EventServer server(service.get(), options);
        REMI_CHECK_OK(server.Start());
        config.port = server.port();
        row.load = RunOpenLoopLoad(config);
        server.Stop();
      }
      std::printf("  C=%-4zu %-7s/%-6s p50=%7.2fms p99=%7.2fms "
                  "qps=%8.1f ok=%zu rejected=%zu errors=%zu%s\n",
                  connections, row.server.c_str(), row.wire.c_str(),
                  row.load.p50_ms, row.load.p99_ms, row.load.qps,
                  row.load.completed, row.load.rejected, row.load.errors,
                  row.load.ok ? "" : "  [FAILED]");
      rows.push_back(std::move(row));
    }
  }

  // ---- Multi-tenant sweep (its own servers; BENCH_tenant.json). ----
  std::vector<TenantPassRow> tenant_rows;
  bool tenants_ok = true;
  bool isolation_ok = true;
  if (!flags.GetBool("skip-tenants") && !mine_targets.empty()) {
    remi::bench::Banner("multi-tenant sweep");
    const std::string kb_image = kb.SerializeSnapshot();
    const std::vector<size_t> tenant_counts =
        ParseSizeList(flags.GetString("tenant-counts"), {1, 4, 16});
    const size_t tenant_requests =
        static_cast<size_t>(flags.GetInt("tenant-requests"));
    const double tenant_rps = flags.GetDouble("tenant-rps");
    for (const size_t tenants : tenant_counts) {
      for (const bool hot_quota : {false, true}) {
        TenantPassRow row =
            RunTenantPass(kb_image, tenants, hot_quota, tenant_requests,
                          tenant_rps, mine_targets);
        std::printf("  T=%-3zu %-9s p99=%7.2fms qps=%8.1f ok=%zu "
                    "rejected=%zu errors=%zu",
                    tenants, hot_quota ? "hot-quota" : "baseline",
                    row.load.p99_ms, row.load.qps, row.load.completed,
                    row.load.rejected, row.load.errors);
        if (hot_quota && tenants > 1) {
          // Isolation evidence: t0 sheds, the cold tail stays flat
          // relative to this pass's own cold baseline.
          const TenantPassRow& baseline = tenant_rows.back();
          double cold_p99 = 0.0;
          double cold_baseline_p99 = 0.0;
          size_t cold_rejected = 0;
          for (size_t i = 1; i < tenants; ++i) {
            cold_p99 = std::max(cold_p99, row.load.class_p99_ms[i]);
            cold_baseline_p99 =
                std::max(cold_baseline_p99, baseline.load.class_p99_ms[i]);
            cold_rejected += row.load.class_rejected[i];
          }
          std::printf("  [hot rejected=%zu cold rejected=%zu "
                      "cold p99 %.2f->%.2fms]",
                      row.load.class_rejected[0], cold_rejected,
                      cold_baseline_p99, cold_p99);
          if (row.load.class_rejected[0] == 0 || cold_rejected != 0) {
            isolation_ok = false;
          }
        }
        std::printf("%s\n", row.load.ok ? "" : "  [FAILED]");
        if (!row.load.ok) tenants_ok = false;
        tenant_rows.push_back(std::move(row));
      }
    }
    std::printf("  isolation (hot sheds, cold serves clean): %s\n",
                isolation_ok ? "yes" : "NO");

    const std::string tenant_out_path = flags.GetString("tenant-out");
    FILE* tenant_out = std::fopen(tenant_out_path.c_str(), "wb");
    if (tenant_out == nullptr) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   tenant_out_path.c_str());
      return 1;
    }
    std::fprintf(tenant_out, "{\n  \"context\": {\n");
    std::fprintf(tenant_out, "    \"build_type\": \"%s\",\n",
                 remi::bench::kBuildType);
    remi::bench::WriteHostContextFields(tenant_out);
    std::fprintf(tenant_out, "    \"workload\": \"%s\",\n",
                 kb_path.empty() ? "dbpedia_like" : kb_path.c_str());
    std::fprintf(tenant_out, "    \"num_facts_per_tenant\": %zu,\n",
                 kb.NumFacts());
    std::fprintf(tenant_out, "    \"open_loop_rps\": %g,\n", tenant_rps);
    std::fprintf(tenant_out, "    \"requests_per_pass\": %zu,\n",
                 tenant_requests);
    std::fprintf(tenant_out,
                 "    \"tenant_pick\": \"zipf (rank r weight 1/(r+1))\",\n");
    std::fprintf(tenant_out,
                 "    \"hot_quota\": \"t0 max_in_flight=1 max_queued=0, "
                 "slot pinned in-process\"\n");
    std::fprintf(tenant_out, "  },\n");
    std::fprintf(tenant_out, "  \"isolation_ok\": %s,\n",
                 isolation_ok ? "true" : "false");
    std::fprintf(tenant_out, "  \"sweep\": [\n");
    for (size_t i = 0; i < tenant_rows.size(); ++i) {
      const TenantPassRow& row = tenant_rows[i];
      std::fprintf(tenant_out,
                   "    {\"tenants\": %zu, \"hot_quota\": %s, "
                   "\"p99_ms\": %.3f, \"qps\": %.1f, \"completed\": %zu, "
                   "\"rejected\": %zu, \"errors\": %zu,\n"
                   "     \"per_tenant\": [",
                   row.tenants, row.hot_quota ? "true" : "false",
                   row.load.p99_ms, row.load.qps, row.load.completed,
                   row.load.rejected, row.load.errors);
      for (size_t t = 0; t < row.tenants; ++t) {
        std::fprintf(tenant_out,
                     "%s{\"kb\": \"%s\", \"completed\": %zu, "
                     "\"rejected\": %zu, \"p99_ms\": %.3f}",
                     t == 0 ? "" : ", ", row.names[t].c_str(),
                     row.load.class_completed[t],
                     row.load.class_rejected[t],
                     row.load.class_p99_ms[t]);
      }
      std::fprintf(tenant_out, "]}%s\n",
                   i + 1 < tenant_rows.size() ? "," : "");
    }
    std::fprintf(tenant_out, "  ]\n}\n");
    std::fclose(tenant_out);
    std::printf("wrote %s\n", tenant_out_path.c_str());
  }

  // ---- Counter identity at quiescence. ----
  const remi::ServiceCounters counters = service->counters();
  const bool counters_consistent =
      counters.admitted == counters.completed_ok +
                               counters.deadline_exceeded +
                               counters.cancelled + counters.failed &&
      counters.in_flight == 0;
  std::printf("\ncounters: admitted=%llu ok=%llu rejected=%llu -> %s\n",
              static_cast<unsigned long long>(counters.admitted),
              static_cast<unsigned long long>(counters.completed_ok),
              static_cast<unsigned long long>(counters.rejected),
              counters_consistent ? "consistent" : "INCONSISTENT");

  // ---- JSON. ----
  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"workload\": \"%s\",\n",
               kb_path.empty() ? "dbpedia_like" : kb_path.c_str());
  std::fprintf(out, "    \"num_facts\": %zu,\n", kb.NumFacts());
  std::fprintf(out, "    \"open_loop_rps\": %g,\n", base.rps);
  std::fprintf(out, "    \"requests_per_point\": %zu,\n",
               base.total_requests);
  std::fprintf(out, "    \"mine_fraction\": %g\n", mine_fraction);
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"equivalence\": {\"checked\": %zu, "
               "\"byte_identical\": %s},\n",
               equivalence_checked, equivalence_ok ? "true" : "false");
  if (cap_threads.ran && cap_epoll.ran) {
    std::fprintf(
        out,
        "  \"capacity\": {\"rlimit_as_mb\": %lld, "
        "\"threads_connections\": %zu, \"epoll_connections\": %zu, "
        "\"epoll_hit_ramp_cap\": %s, \"epoll_over_threads_x\": %.1f},\n",
        static_cast<long long>(flags.GetInt("capacity-limit-mb")),
        cap_threads.sustained,
        cap_epoll.sustained, cap_epoll.hit_cap ? "true" : "false",
        cap_threads.sustained > 0
            ? static_cast<double>(cap_epoll.sustained) /
                  static_cast<double>(cap_threads.sustained)
            : 0.0);
  }
  std::fprintf(out, "  \"counters_consistent\": %s,\n",
               counters_consistent ? "true" : "false");
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(out,
                 "    {\"server\": \"%s\", \"wire\": \"%s\", "
                 "\"connections\": %zu, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"qps\": %.1f, \"completed\": %zu, "
                 "\"rejected\": %zu, \"errors\": %zu}%s\n",
                 row.server.c_str(), row.wire.c_str(), row.connections,
                 row.load.p50_ms, row.load.p99_ms, row.load.qps,
                 row.load.completed, row.load.rejected, row.load.errors,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  const bool sweep_ok = std::all_of(
      rows.begin(), rows.end(), [](const SweepRow& r) { return r.load.ok; });
  return equivalence_ok && counters_consistent && sweep_ok && tenants_ok &&
                 isolation_ok
             ? 0
             : 1;
}
