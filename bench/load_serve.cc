// Open-loop load generator for the serving cores (BENCH_serve.json).
//
// Four phases, all against real TCP sockets on loopback:
//
//   capacity     fork-isolated connection ramp under RLIMIT_AS: how many
//                concurrent connections can each serving core hold in the
//                same address-space budget? Thread-per-connection pays an
//                8MB stack per connection; the epoll core pays a few KB of
//                buffers. The acceptance bar is epoll >= 4x threads.
//   equivalence  deterministic requests sent over both wire protocols to
//                one epoll server must come back byte-identical.
//   sweep        open-loop load (requests dispatched on a fixed schedule,
//                never gated on responses) across connection counts, for
//                threads/NDJSON, epoll/NDJSON and epoll/binary. Reports
//                p50/p99 latency and sustained QPS per point.
//   counters     at quiescence, admitted == completed_ok +
//                deadline_exceeded + cancelled + failed.
//
//   ./bench_load_serve [--scale 0.02] [--kb path.nt]
//                      [--connections 1,4,16,64] [--requests 1500]
//                      [--rps 500] [--mine-fraction 0.02]
//                      [--capacity-limit-mb 768] [--capacity-max 1024]
//                      [--skip-capacity] [--out BENCH_serve.json]
//
// CI smoke mode: `--connect PORT [--target Berlin]` runs equivalence, a
// short mixed-protocol burst and the wire-level counter identity against
// an already-running remi_server, exits nonzero on any failure, writes no
// JSON.
//
// The committed BENCH_serve.json records hardware_concurrency: on a
// 1-core host the sweep measures protocol + event-loop overhead, not
// parallel mining throughput.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "service/event_server.h"
#include "service/socket_util.h"
#include "service/frame_codec.h"
#include "service/json_codec.h"
#include "service/line_server.h"
#include "service/service.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

using remi::AppendFrame;
using remi::FrameDecoder;
using remi::FrameVerb;
using remi::FrameView;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int ConnectLoopback(int port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAllBlocking(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// One blocking NDJSON round trip on a fresh connection ("" on failure).
std::string LineRoundTrip(int port, const std::string& request) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  std::string response;
  if (SendAllBlocking(fd, request + "\n")) {
    char c = 0;
    while (recv(fd, &c, 1, 0) == 1 && c != '\n') response.push_back(c);
  }
  close(fd);
  return response;
}

/// One blocking binary round trip on a fresh connection ("" on failure).
std::string FrameRoundTrip(int port, uint8_t verb, const std::string& payload) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return "";
  std::string wire;
  AppendFrame(verb, /*request_id=*/1, payload, &wire);
  std::string response;
  if (SendAllBlocking(fd, wire)) {
    FrameDecoder decoder(64u << 20);
    char chunk[4096];
    for (;;) {
      FrameView frame;
      const auto result = decoder.Next(&frame);
      if (result == FrameDecoder::Result::kFrame) {
        response.assign(frame.payload.data(), frame.payload.size());
        break;
      }
      if (result == FrameDecoder::Result::kError) break;
      const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      decoder.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    }
  }
  close(fd);
  return response;
}

// ---------------------------------------------------------------------------
// Open-loop generator: one thread, poll(2) over all connections. Requests
// are stamped at their *scheduled* time, so server-side queueing under
// overload shows up in the latency numbers instead of slowing the
// generator down (the coordinated-omission trap of closed-loop clients).
// ---------------------------------------------------------------------------

struct LoadConfig {
  int port = 0;
  bool binary = false;
  size_t connections = 4;
  size_t total_requests = 1000;
  double rps = 500.0;
  /// Every Nth request is a mine; the rest are pings.
  size_t mine_every = 0;  // 0 = never
  std::vector<std::string> mine_payloads;
};

struct LoadResult {
  bool ok = true;
  std::string note;
  size_t completed = 0;  ///< responses with status OK
  size_t rejected = 0;   ///< ResourceExhausted (admission shed, expected)
  size_t errors = 0;     ///< anything else
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

struct ClientConn {
  int fd = -1;
  std::string outbuf;
  size_t out_off = 0;
  FrameDecoder decoder{64u << 20};
  std::string linebuf;
  std::deque<double> fifo_send_times;                 // NDJSON (in-order)
  std::unordered_map<uint64_t, double> send_times;    // binary (by id)
  bool failed = false;
};

void Classify(std::string_view response_doc, double latency_ms,
              LoadResult* result, std::vector<double>* latencies) {
  if (response_doc.find("\"status\":\"OK\"") != std::string_view::npos) {
    ++result->completed;
    latencies->push_back(latency_ms);
  } else if (response_doc.find("ResourceExhausted") !=
             std::string_view::npos) {
    ++result->rejected;
  } else {
    ++result->errors;
  }
}

LoadResult RunOpenLoopLoad(const LoadConfig& config) {
  LoadResult result;
  std::vector<ClientConn> conns(config.connections);
  for (auto& conn : conns) {
    conn.fd = ConnectLoopback(config.port);
    if (conn.fd >= 0 && !remi::SetNonBlocking(conn.fd)) {
      close(conn.fd);
      conn.fd = -1;
    }
    if (conn.fd < 0) {
      result.ok = false;
      result.note = "connect failed";
      for (auto& c : conns)
        if (c.fd >= 0) close(c.fd);
      return result;
    }
  }

  std::vector<double> latencies;
  latencies.reserve(config.total_requests);
  const double start = NowSeconds();
  double last_response = start;
  size_t next_request = 0;
  size_t responses = 0;
  std::vector<pollfd> pfds(conns.size());
  char chunk[16384];

  while (responses < config.total_requests) {
    const double now = NowSeconds();
    // Dispatch every request whose scheduled time has arrived.
    while (next_request < config.total_requests &&
           start + static_cast<double>(next_request) / config.rps <= now) {
      const size_t k = next_request++;
      ClientConn& conn = conns[k % conns.size()];
      if (conn.failed) {
        ++result.errors;  // undeliverable
        ++responses;
        continue;
      }
      const bool mine = config.mine_every != 0 &&
                        !config.mine_payloads.empty() &&
                        k % config.mine_every == 0;
      const std::string& payload =
          mine ? config.mine_payloads[k % config.mine_payloads.size()]
               : std::string(R"({"op":"ping"})");
      const double scheduled =
          start + static_cast<double>(k) / config.rps;
      if (config.binary) {
        AppendFrame(static_cast<uint8_t>(mine ? FrameVerb::kMine
                                              : FrameVerb::kPing),
                    static_cast<uint64_t>(k), payload, &conn.outbuf);
        conn.send_times.emplace(static_cast<uint64_t>(k), scheduled);
      } else {
        conn.outbuf += payload;
        conn.outbuf += '\n';
        conn.fifo_send_times.push_back(scheduled);
      }
    }

    // Wake for the next scheduled dispatch (or 50ms when idle).
    int timeout_ms = 50;
    if (next_request < config.total_requests) {
      const double due =
          start + static_cast<double>(next_request) / config.rps;
      timeout_ms = std::max(
          0, static_cast<int>((due - NowSeconds()) * 1000.0));
      timeout_ms = std::min(timeout_ms, 50);
    } else if (NowSeconds() - last_response > 30.0) {
      result.ok = false;
      result.note = "timed out waiting for responses";
      break;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      pfds[i].fd = conns[i].failed ? -1 : conns[i].fd;
      pfds[i].events = static_cast<short>(
          POLLIN |
          (conns[i].out_off < conns[i].outbuf.size() ? POLLOUT : 0));
      pfds[i].revents = 0;
    }
    if (poll(pfds.data(), pfds.size(), timeout_ms) < 0 && errno != EINTR) {
      result.ok = false;
      result.note = "poll failed";
      break;
    }

    for (size_t i = 0; i < conns.size(); ++i) {
      ClientConn& conn = conns[i];
      if (conn.failed) continue;
      if (pfds[i].revents & POLLOUT) {
        while (conn.out_off < conn.outbuf.size()) {
          const ssize_t n =
              send(conn.fd, conn.outbuf.data() + conn.out_off,
                   conn.outbuf.size() - conn.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            conn.failed = true;
            break;
          }
        }
        if (conn.out_off == conn.outbuf.size()) {
          conn.outbuf.clear();
          conn.out_off = 0;
        }
      }
      if (conn.failed || (pfds[i].revents & (POLLIN | POLLHUP)) == 0) {
        continue;
      }
      for (;;) {
        const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
          const double arrival = NowSeconds();
          last_response = arrival;
          if (config.binary) {
            conn.decoder.Feed(
                std::string_view(chunk, static_cast<size_t>(n)));
            FrameView frame;
            while (conn.decoder.Next(&frame) ==
                   FrameDecoder::Result::kFrame) {
              const auto it = conn.send_times.find(frame.request_id);
              const double sent =
                  it != conn.send_times.end() ? it->second : arrival;
              if (it != conn.send_times.end()) conn.send_times.erase(it);
              Classify(frame.payload, (arrival - sent) * 1000.0, &result,
                       &latencies);
              ++responses;
            }
          } else {
            conn.linebuf.append(chunk, static_cast<size_t>(n));
            size_t pos = 0;
            size_t newline;
            while ((newline = conn.linebuf.find('\n', pos)) !=
                   std::string::npos) {
              const std::string_view line(conn.linebuf.data() + pos,
                                          newline - pos);
              double sent = arrival;
              if (!conn.fifo_send_times.empty()) {
                sent = conn.fifo_send_times.front();
                conn.fifo_send_times.pop_front();
              }
              Classify(line, (arrival - sent) * 1000.0, &result,
                       &latencies);
              ++responses;
              pos = newline + 1;
            }
            conn.linebuf.erase(0, pos);
          }
        } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;
        } else if (n < 0 && errno == EINTR) {
          continue;
        } else {
          // EOF (or a reset) with requests still outstanding.
          conn.failed = true;
          const size_t outstanding = config.binary
                                         ? conn.send_times.size()
                                         : conn.fifo_send_times.size();
          result.errors += outstanding;
          responses += outstanding;
          conn.send_times.clear();
          conn.fifo_send_times.clear();
          break;
        }
      }
    }
  }

  for (auto& conn : conns) {
    if (conn.fd >= 0) close(conn.fd);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    result.p50_ms = latencies[latencies.size() / 2];
    result.p99_ms = latencies[std::min(latencies.size() - 1,
                                       latencies.size() * 99 / 100)];
  }
  const double wall = std::max(last_response - start, 1e-9);
  result.qps = static_cast<double>(result.completed + result.rejected) / wall;
  if (result.errors > 0) result.ok = false;
  return result;
}

// ---------------------------------------------------------------------------
// Capacity ramp: fork a server under RLIMIT_AS, connect until it breaks.
// ---------------------------------------------------------------------------

struct CapacityResult {
  bool ran = false;
  size_t sustained = 0;
  bool hit_cap = false;  ///< stopped at --capacity-max, not at a failure
};

CapacityResult RunCapacityRamp(bool epoll_mode, size_t limit_mb,
                               size_t max_conns, const std::string& kb_path,
                               double scale) {
  CapacityResult result;
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return result;
  const pid_t child = fork();
  if (child < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return result;
  }
  if (child == 0) {
    // Server child: cap the address space, then serve until killed. The
    // thread-per-connection core burns ~8MB of it per connection (stack);
    // the epoll core a few KB of buffers — same budget, same KB.
    close(pipe_fds[0]);
    signal(SIGPIPE, SIG_IGN);
    rlimit limit{};
    limit.rlim_cur = limit.rlim_max =
        static_cast<rlim_t>(limit_mb) << 20;
    setrlimit(RLIMIT_AS, &limit);

    std::unique_ptr<remi::Service> service;
    if (!kb_path.empty()) {
      remi::KbSpec spec;
      spec.path = kb_path;
      auto opened = remi::Service::Open(spec);
      if (!opened.ok()) _exit(2);
      service = std::move(*opened);
    } else {
      service = remi::Service::Create(remi::bench::BuildDbpediaLike(scale));
    }
    int port = -1;
    remi::LineServer line_server(service.get(), {});
    remi::EventServerOptions event_options;
    remi::EventServer event_server(service.get(), event_options);
    if (epoll_mode) {
      if (event_server.Start().ok()) port = event_server.port();
    } else {
      if (line_server.Start().ok()) port = line_server.port();
    }
    if (write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) _exit(3);
    close(pipe_fds[1]);
    for (;;) pause();  // parent SIGKILLs us
  }

  close(pipe_fds[1]);
  int port = -1;
  if (read(pipe_fds[0], &port, sizeof(port)) != sizeof(port)) port = -1;
  close(pipe_fds[0]);
  if (port <= 0) {
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    return result;
  }

  result.ran = true;
  std::vector<int> held;
  held.reserve(max_conns);
  const std::string ping = "{\"op\":\"ping\"}\n";
  for (size_t i = 0; i < max_conns; ++i) {
    const int fd = ConnectLoopback(port);
    if (fd < 0) break;
    timeval timeout{};
    timeout.tv_sec = 5;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    // A connection only counts if the server actually serves it: an
    // accept()ed-then-shed connection answers the ping with EOF.
    bool served = false;
    if (SendAllBlocking(fd, ping)) {
      char c = 0;
      while (recv(fd, &c, 1, 0) == 1) {
        if (c == '\n') {
          served = true;
          break;
        }
      }
    }
    if (!served) {
      close(fd);
      break;
    }
    held.push_back(fd);  // stays open: concurrency is the resource
  }
  result.sustained = held.size();
  result.hit_cap = held.size() == max_conns;
  for (const int fd : held) close(fd);
  kill(child, SIGKILL);
  waitpid(child, nullptr, 0);
  return result;
}

// ---------------------------------------------------------------------------

struct EquivalenceCase {
  FrameVerb verb;
  std::string payload;
};

/// Sends each deterministic request over both wire modes; true iff every
/// response pair is byte-identical.
bool CheckEquivalence(int port, const std::vector<EquivalenceCase>& cases,
                      size_t* checked) {
  bool all_identical = true;
  for (const auto& test_case : cases) {
    const std::string line = LineRoundTrip(port, test_case.payload);
    const std::string frame = FrameRoundTrip(
        port, static_cast<uint8_t>(test_case.verb), test_case.payload);
    ++*checked;
    if (line.empty() || line != frame) {
      std::fprintf(stderr,
                   "  MISMATCH for %s\n    ndjson: %s\n    binary: %s\n",
                   test_case.payload.c_str(), line.c_str(), frame.c_str());
      all_identical = false;
    }
  }
  return all_identical;
}

std::vector<size_t> ParseSizeList(const std::string& spec,
                                  std::vector<size_t> fallback) {
  std::vector<size_t> values;
  for (const std::string& token : remi::SplitString(spec, ',')) {
    if (token.empty()) continue;
    const long parsed = std::atol(token.c_str());
    if (parsed > 0) values.push_back(static_cast<size_t>(parsed));
  }
  return values.empty() ? fallback : values;
}

double JsonNumber(const remi::JsonValue& doc, const char* key) {
  const remi::JsonValue* value = doc.Find(key);
  return value != nullptr ? value->AsNumber() : -1.0;
}

struct SweepRow {
  std::string server;
  std::string wire;
  size_t connections = 0;
  LoadResult load;
};

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", 0.02, "synthetic KB scale (ignored with --kb)");
  flags.DefineString("kb", "", "serve this KB file instead of a synthetic");
  flags.DefineString("connections", "1,4,16,64",
                     "comma-separated sweep connection counts");
  flags.DefineInt("requests", 1500, "requests per sweep point");
  flags.DefineDouble("rps", 500.0, "open-loop aggregate request rate");
  flags.DefineDouble("mine-fraction", 0.02,
                     "fraction of requests that mine (the rest ping)");
  flags.DefineInt("capacity-limit-mb", 768,
                  "RLIMIT_AS for the forked capacity-ramp servers");
  flags.DefineInt("capacity-max", 1024,
                  "stop the capacity ramp at this many connections");
  flags.DefineBool("skip-capacity", false,
                   "skip the fork-isolated capacity phase");
  flags.DefineInt("connect", 0,
                  "CI smoke mode: run checks against an external server "
                  "on this port, write no JSON");
  flags.DefineString("target", "Berlin",
                     "mine/summarize target entity in --connect mode");
  flags.DefineString("out", "BENCH_serve.json", "JSON output path");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();
  signal(SIGPIPE, SIG_IGN);

  // ---- CI smoke mode: external server, pass/fail only. ----
  if (flags.GetInt("connect") != 0) {
    const int port = static_cast<int>(flags.GetInt("connect"));
    const std::string target = flags.GetString("target");
    bool ok = true;

    remi::bench::Banner("equivalence (external server)");
    std::vector<EquivalenceCase> cases = {
        {FrameVerb::kPing, R"({"op":"ping"})"},
        {FrameVerb::kSummarize,
         R"({"op":"summarize","entity":")" + target + R"(","k":3})"},
        {FrameVerb::kCandidates,
         R"({"op":"candidates","targets":[")" + target + R"("],"limit":3})"},
        {FrameVerb::kMine,
         R"({"op":"mine","targets":["NoSuchEntityAnywhere"]})"},
    };
    size_t checked = 0;
    if (!CheckEquivalence(port, cases, &checked)) ok = false;
    std::printf("  %zu request pairs byte-identical: %s\n", checked,
                ok ? "yes" : "NO");

    remi::bench::Banner("mixed burst");
    LoadConfig burst;
    burst.port = port;
    burst.connections = 4;
    burst.total_requests = 200;
    burst.rps = 200.0;
    burst.mine_every = 10;
    burst.mine_payloads = {R"({"op":"mine","targets":[")" + target +
                           R"("]})"};
    for (const bool binary : {false, true}) {
      burst.binary = binary;
      const LoadResult load = RunOpenLoopLoad(burst);
      std::printf("  %-6s ok=%zu rejected=%zu errors=%zu p99=%.2fms\n",
                  binary ? "binary" : "ndjson", load.completed,
                  load.rejected, load.errors, load.p99_ms);
      if (!load.ok || load.completed == 0) ok = false;
    }

    remi::bench::Banner("counter identity (wire)");
    const std::string counters_doc = FrameRoundTrip(
        port, static_cast<uint8_t>(FrameVerb::kCounters), "");
    auto counters = remi::ParseJson(counters_doc);
    if (!counters.ok()) {
      ok = false;
    } else {
      const double admitted = JsonNumber(*counters, "admitted");
      const double accounted = JsonNumber(*counters, "completed_ok") +
                               JsonNumber(*counters, "deadline_exceeded") +
                               JsonNumber(*counters, "cancelled") +
                               JsonNumber(*counters, "failed");
      const bool consistent =
          admitted >= 0 && admitted == accounted &&
          JsonNumber(*counters, "in_flight") == 0;
      std::printf("  admitted=%.0f accounted=%.0f in_flight=%.0f: %s\n",
                  admitted, accounted, JsonNumber(*counters, "in_flight"),
                  consistent ? "consistent" : "INCONSISTENT");
      if (!consistent) ok = false;
    }

    std::printf("\nserve smoke: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }

  // ---- Capacity phase first: fork before this process owns threads. ----
  const std::string kb_path = flags.GetString("kb");
  const double scale = flags.GetDouble("scale");
  CapacityResult cap_threads;
  CapacityResult cap_epoll;
  if (!flags.GetBool("skip-capacity")) {
    remi::bench::Banner("capacity under RLIMIT_AS");
    const size_t limit_mb =
        static_cast<size_t>(flags.GetInt("capacity-limit-mb"));
    const size_t cap_max =
        static_cast<size_t>(flags.GetInt("capacity-max"));
    cap_threads =
        RunCapacityRamp(/*epoll_mode=*/false, limit_mb, cap_max, kb_path,
                        scale);
    std::printf("  threads: %zu connections%s\n", cap_threads.sustained,
                cap_threads.hit_cap ? " (hit ramp cap)" : "");
    cap_epoll = RunCapacityRamp(/*epoll_mode=*/true, limit_mb, cap_max,
                                kb_path, scale);
    std::printf("  epoll:   %zu connections%s\n", cap_epoll.sustained,
                cap_epoll.hit_cap ? " (hit ramp cap)" : "");
    if (cap_threads.ran && cap_epoll.ran && cap_threads.sustained > 0) {
      std::printf("  epoll/threads: %.1fx\n",
                  static_cast<double>(cap_epoll.sustained) /
                      static_cast<double>(cap_threads.sustained));
    }
  }

  // ---- Shared service for the in-process phases. ----
  std::unique_ptr<remi::Service> service;
  if (!kb_path.empty()) {
    remi::KbSpec spec;
    spec.path = kb_path;
    auto opened = remi::Service::Open(spec);
    REMI_CHECK_OK(opened.status());
    service = std::move(*opened);
  } else {
    service = remi::Service::Create(remi::bench::BuildDbpediaLike(scale));
  }
  const remi::KnowledgeBase& kb = service->kb();
  std::printf("\nserving %zu facts, %zu entities\n", kb.NumFacts(),
              kb.NumEntities());

  // Mine targets: mid-prominence entities, addressed by exact IRI so the
  // payloads resolve on the synthetic KB too.
  std::vector<std::string> mine_payloads;
  std::string summarize_entity;
  {
    const auto entities = kb.EntitiesByProminence();
    for (size_t rank = 8; rank < entities.size() && mine_payloads.size() < 4;
         rank += 3) {
      remi::JsonValue request = remi::JsonValue::Object();
      request.Set("op", remi::JsonValue::String("mine"));
      remi::JsonValue targets = remi::JsonValue::Array();
      targets.Append(remi::JsonValue::String(
          std::string(kb.dict().lexical(entities[rank]))));
      request.Set("targets", std::move(targets));
      mine_payloads.push_back(request.Dump());
      if (summarize_entity.empty()) {
        summarize_entity = std::string(kb.dict().lexical(entities[rank]));
      }
    }
  }

  // ---- Equivalence. ----
  remi::bench::Banner("wire-mode equivalence");
  remi::EventServerOptions equivalence_options;
  remi::EventServer equivalence_server(service.get(), equivalence_options);
  REMI_CHECK_OK(equivalence_server.Start());
  std::vector<EquivalenceCase> cases = {
      {FrameVerb::kPing, R"({"op":"ping"})"},
      {FrameVerb::kMine, R"({"op":"mine","targets":["NoSuchEntityAnywhere"]})"},
  };
  if (!summarize_entity.empty()) {
    remi::JsonValue summarize = remi::JsonValue::Object();
    summarize.Set("op", remi::JsonValue::String("summarize"));
    summarize.Set("entity", remi::JsonValue::String(summarize_entity));
    summarize.Set("k", remi::JsonValue::Number(3));
    cases.push_back({FrameVerb::kSummarize, summarize.Dump()});
    remi::JsonValue candidates = remi::JsonValue::Object();
    candidates.Set("op", remi::JsonValue::String("candidates"));
    remi::JsonValue targets = remi::JsonValue::Array();
    targets.Append(remi::JsonValue::String(summarize_entity));
    candidates.Set("targets", std::move(targets));
    candidates.Set("limit", remi::JsonValue::Number(3));
    cases.push_back({FrameVerb::kCandidates, candidates.Dump()});
  }
  size_t equivalence_checked = 0;
  const bool equivalence_ok = CheckEquivalence(
      equivalence_server.port(), cases, &equivalence_checked);
  equivalence_server.Stop();
  std::printf("  %zu request pairs byte-identical: %s\n",
              equivalence_checked, equivalence_ok ? "yes" : "NO");

  // ---- Sweep. ----
  remi::bench::Banner("open-loop sweep");
  const std::vector<size_t> connection_counts =
      ParseSizeList(flags.GetString("connections"), {1, 4, 16, 64});
  LoadConfig base;
  base.total_requests = static_cast<size_t>(flags.GetInt("requests"));
  base.rps = flags.GetDouble("rps");
  const double mine_fraction = flags.GetDouble("mine-fraction");
  base.mine_every =
      mine_fraction > 0.0
          ? static_cast<size_t>(std::max(1.0, 1.0 / mine_fraction))
          : 0;
  base.mine_payloads = mine_payloads;

  std::vector<SweepRow> rows;
  for (const size_t connections : connection_counts) {
    for (int variant = 0; variant < 3; ++variant) {
      SweepRow row;
      row.server = variant == 0 ? "threads" : "epoll";
      row.wire = variant == 2 ? "binary" : "ndjson";
      row.connections = connections;
      LoadConfig config = base;
      config.connections = connections;
      config.binary = variant == 2;
      if (variant == 0) {
        remi::LineServer server(service.get(), {});
        REMI_CHECK_OK(server.Start());
        config.port = server.port();
        row.load = RunOpenLoopLoad(config);
        server.Stop();
      } else {
        remi::EventServerOptions options;
        remi::EventServer server(service.get(), options);
        REMI_CHECK_OK(server.Start());
        config.port = server.port();
        row.load = RunOpenLoopLoad(config);
        server.Stop();
      }
      std::printf("  C=%-4zu %-7s/%-6s p50=%7.2fms p99=%7.2fms "
                  "qps=%8.1f ok=%zu rejected=%zu errors=%zu%s\n",
                  connections, row.server.c_str(), row.wire.c_str(),
                  row.load.p50_ms, row.load.p99_ms, row.load.qps,
                  row.load.completed, row.load.rejected, row.load.errors,
                  row.load.ok ? "" : "  [FAILED]");
      rows.push_back(std::move(row));
    }
  }

  // ---- Counter identity at quiescence. ----
  const remi::ServiceCounters counters = service->counters();
  const bool counters_consistent =
      counters.admitted == counters.completed_ok +
                               counters.deadline_exceeded +
                               counters.cancelled + counters.failed &&
      counters.in_flight == 0;
  std::printf("\ncounters: admitted=%llu ok=%llu rejected=%llu -> %s\n",
              static_cast<unsigned long long>(counters.admitted),
              static_cast<unsigned long long>(counters.completed_ok),
              static_cast<unsigned long long>(counters.rejected),
              counters_consistent ? "consistent" : "INCONSISTENT");

  // ---- JSON. ----
  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"workload\": \"%s\",\n",
               kb_path.empty() ? "dbpedia_like" : kb_path.c_str());
  std::fprintf(out, "    \"num_facts\": %zu,\n", kb.NumFacts());
  std::fprintf(out, "    \"open_loop_rps\": %g,\n", base.rps);
  std::fprintf(out, "    \"requests_per_point\": %zu,\n",
               base.total_requests);
  std::fprintf(out, "    \"mine_fraction\": %g\n", mine_fraction);
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"equivalence\": {\"checked\": %zu, "
               "\"byte_identical\": %s},\n",
               equivalence_checked, equivalence_ok ? "true" : "false");
  if (cap_threads.ran && cap_epoll.ran) {
    std::fprintf(
        out,
        "  \"capacity\": {\"rlimit_as_mb\": %lld, "
        "\"threads_connections\": %zu, \"epoll_connections\": %zu, "
        "\"epoll_hit_ramp_cap\": %s, \"epoll_over_threads_x\": %.1f},\n",
        static_cast<long long>(flags.GetInt("capacity-limit-mb")),
        cap_threads.sustained,
        cap_epoll.sustained, cap_epoll.hit_cap ? "true" : "false",
        cap_threads.sustained > 0
            ? static_cast<double>(cap_epoll.sustained) /
                  static_cast<double>(cap_threads.sustained)
            : 0.0);
  }
  std::fprintf(out, "  \"counters_consistent\": %s,\n",
               counters_consistent ? "true" : "false");
  std::fprintf(out, "  \"sweep\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(out,
                 "    {\"server\": \"%s\", \"wire\": \"%s\", "
                 "\"connections\": %zu, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"qps\": %.1f, \"completed\": %zu, "
                 "\"rejected\": %zu, \"errors\": %zu}%s\n",
                 row.server.c_str(), row.wire.c_str(), row.connections,
                 row.load.p50_ms, row.load.p99_ms, row.load.qps,
                 row.load.completed, row.load.rejected, row.load.errors,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  const bool sweep_ok = std::all_of(
      rows.begin(), rows.end(), [](const SweepRow& r) { return r.load.ok; });
  return equivalence_ok && counters_consistent && sweep_ok ? 0 : 1;
}
