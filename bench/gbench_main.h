// Shared main() body for the Google-Benchmark-based harnesses. Records
// this binary's actual build type in the JSON context (Google Benchmark's
// "library_build_type" field describes the system library, not us) and
// warns loudly on debug builds. Only include from translation units that
// link benchmark::benchmark.

#pragma once

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace remi::bench {

inline int RunBenchmarkMain(int argc, char** argv) {
  WarnIfNotReleaseBuild();
  benchmark::AddCustomContext("remi_build_type", kBuildType);
  benchmark::AddCustomContext("cpu_features",
                              DetectCpuFeatures().Describe());
  benchmark::AddCustomContext("simd_dispatch",
                              SimdLevelName(ActiveSimdLevel()));
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace remi::bench
