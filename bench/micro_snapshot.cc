// Cold-open microbenchmark for the KB persistence formats.
//
// Builds a DBpedia-like synthetic KB, persists it three ways, and measures
// a *cold open* of each representation in a forked child process (fresh
// address space, so per-phase peak RSS is honest):
//
//   * nt    — N-Triples parse + KnowledgeBase::Build (the paper's baseline
//             of re-ingesting text);
//   * rkf1  — RKF1 read (decode dict + triples) + KnowledgeBase::Build
//             (re-sorts, re-indexes, re-ranks);
//   * rkf2  — RKF2 snapshot open: checksum + validate + adopt in place,
//             no rebuild.
//
// Each phase loads the KB, then answers a fixed probe workload (per-subject
// lookups + stats) to prove the loaded indexes actually work and to fault
// in the mmap'ed pages. Results land in BENCH_snapshot.json; the headline
// number is open_speedup_vs_nt for rkf2 (acceptance bar: >= 10x).
//
//   ./bench_micro_snapshot [--scale 0.05] [--seed 7] [--runs 7]
//                          [--out BENCH_snapshot.json]

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "kb/knowledge_base.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using remi::KnowledgeBase;

struct PhaseResult {
  double load_seconds = 0.0;
  double probe_seconds = 0.0;
  long peak_rss_kb = 0;
  uint64_t probe_checksum = 0;
};

/// Touches the loaded KB so lazily faulted pages are counted and a broken
/// load cannot masquerade as a fast one. Mixes only id-independent
/// quantities: TermIds legitimately differ between a snapshot (original
/// interning order) and a re-parse (file order).
uint64_t ProbeKb(const KnowledgeBase& kb) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(kb.NumFacts());
  mix(kb.NumEntities());
  mix(kb.NumPredicates());
  // Subject degree distribution (order-independent aggregate).
  for (const remi::TermId s : kb.store().subjects()) {
    const uint64_t d = kb.store().SubjectDegree(s);
    h += d * d;
  }
  // The prominence ranking is deterministic up to renaming (frequency
  // descending, lexical tie-break), so frequencies and labels agree.
  const auto prominent = kb.EntitiesByProminence();
  for (size_t i = 0; i < prominent.size() && i < 64; ++i) {
    mix(kb.EntityFrequency(prominent[i]));
    for (const char c : kb.Label(prominent[i])) {
      mix(static_cast<unsigned char>(c));
    }
  }
  // Class size distribution.
  std::vector<uint64_t> class_sizes;
  for (const remi::TermId cls : kb.classes()) {
    class_sizes.push_back(kb.EntitiesOfClass(cls).size());
  }
  std::sort(class_sizes.begin(), class_sizes.end());
  for (const uint64_t size : class_sizes) mix(size);
  return h;
}

KnowledgeBase LoadNt(const std::string& path) {
  remi::Dictionary dict;
  remi::NTriplesParser parser(&dict, /*lenient=*/true);
  auto triples = parser.ParseFile(path);
  REMI_CHECK_OK(triples.status());
  return KnowledgeBase::Build(std::move(dict), std::move(*triples));
}

KnowledgeBase LoadRkf1(const std::string& path) {
  auto data = remi::ReadRkfFile(path);
  REMI_CHECK_OK(data.status());
  return KnowledgeBase::Build(std::move(data->dict),
                              std::move(data->triples));
}

KnowledgeBase LoadRkf2(const std::string& path) {
  auto kb = KnowledgeBase::OpenSnapshot(path);
  REMI_CHECK_OK(kb.status());
  return std::move(*kb);
}

/// Runs `load` in a forked child; the child reports {seconds, peak RSS,
/// probe checksum} through a pipe. Cold per-phase cost, honest RSS.
PhaseResult MeasureForked(KnowledgeBase (*load)(const std::string&),
                          const std::string& path) {
  int fds[2];
  REMI_CHECK(pipe(fds) == 0);
  const pid_t pid = fork();
  REMI_CHECK(pid >= 0);
  if (pid == 0) {
    close(fds[0]);
    PhaseResult result;
    remi::Timer timer;
    {
      const KnowledgeBase kb = load(path);
      result.load_seconds = timer.ElapsedSeconds();
      remi::Timer probe_timer;
      result.probe_checksum = ProbeKb(kb);
      result.probe_seconds = probe_timer.ElapsedSeconds();
    }
    struct rusage usage;
    getrusage(RUSAGE_SELF, &usage);
    result.peak_rss_kb = usage.ru_maxrss;
    const ssize_t written = write(fds[1], &result, sizeof(result));
    _exit(written == sizeof(result) ? 0 : 1);
  }
  close(fds[1]);
  PhaseResult result;
  const ssize_t got = read(fds[0], &result, sizeof(result));
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  REMI_CHECK(got == sizeof(result));
  REMI_CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  return result;
}

struct FormatStats {
  const char* name;
  std::string path;
  KnowledgeBase (*load)(const std::string&);
  size_t file_bytes = 0;
  double best_seconds = 0.0;
  double probe_seconds = 0.0;
  long peak_rss_kb = 0;
};

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale,
                     "synthetic KB scale");
  flags.DefineInt("seed", 7, "synthetic KB seed");
  flags.DefineInt("runs", 7, "cold-open repetitions (best is reported)");
  flags.DefineString("out", "BENCH_snapshot.json", "output JSON path");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();

  remi::bench::Banner("micro_snapshot: cold open, parse+build vs RKF2");
  auto config =
      remi::SyntheticKbConfig::DBpediaLike(flags.GetDouble("scale"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const KnowledgeBase kb = remi::BuildSyntheticKb(config);
  std::printf("synthetic KB: %zu facts, %zu entities, %zu predicates\n",
              kb.NumFacts(), kb.NumEntities(), kb.NumPredicates());

  // Persist the three representations. RKF1 and N-Triples store base
  // facts (they rebuild); RKF2 stores the built KB. Everything goes into
  // a per-process temp directory, removed on exit, so repeated runs never
  // litter the working tree.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("remi_bench_snapshot_" + std::to_string(getpid())))
          .string();
  std::filesystem::create_directories(dir);
  struct TempDirCleanup {
    std::string path;
    ~TempDirCleanup() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } cleanup{dir};
  std::vector<remi::Triple> base_facts;
  for (const remi::Triple& t : kb.store().spo()) {
    if (!kb.IsInversePredicate(t.p)) base_facts.push_back(t);
  }
  const std::string nt_path = dir + "/kb.nt";
  const std::string rkf_path = dir + "/kb.rkf";
  const std::string rkf2_path = dir + "/kb.rkf2";
  {
    const std::string doc = remi::WriteNTriples(kb.dict(), base_facts);
    FILE* f = std::fopen(nt_path.c_str(), "wb");
    REMI_CHECK(f != nullptr);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  REMI_CHECK_OK(remi::WriteRkfFile(kb.dict(), base_facts, rkf_path));
  REMI_CHECK_OK(kb.SaveSnapshot(rkf2_path));

  FormatStats formats[] = {
      {"nt", nt_path, &LoadNt},
      {"rkf1", rkf_path, &LoadRkf1},
      {"rkf2", rkf2_path, &LoadRkf2},
  };

  const int runs = std::max(1, static_cast<int>(flags.GetInt("runs")));
  uint64_t expected_checksum = 0;
  for (FormatStats& fmt : formats) {
    FILE* f = std::fopen(fmt.path.c_str(), "rb");
    REMI_CHECK(f != nullptr);
    std::fseek(f, 0, SEEK_END);
    fmt.file_bytes = static_cast<size_t>(std::ftell(f));
    std::fclose(f);

    fmt.best_seconds = 1e100;
    fmt.probe_seconds = 1e100;
    for (int run = 0; run < runs; ++run) {
      const PhaseResult r = MeasureForked(fmt.load, fmt.path);
      fmt.best_seconds = std::min(fmt.best_seconds, r.load_seconds);
      fmt.probe_seconds = std::min(fmt.probe_seconds, r.probe_seconds);
      fmt.peak_rss_kb = std::max(fmt.peak_rss_kb, r.peak_rss_kb);
      if (expected_checksum == 0) expected_checksum = r.probe_checksum;
      // Every representation must answer the probe identically.
      REMI_CHECK(r.probe_checksum == expected_checksum);
    }
    std::printf("%-5s %9zu bytes  open %s  probe %s  peak RSS %ld kB\n",
                fmt.name, fmt.file_bytes,
                remi::FormatSeconds(fmt.best_seconds).c_str(),
                remi::FormatSeconds(fmt.probe_seconds).c_str(),
                fmt.peak_rss_kb);
  }

  const double nt_seconds = formats[0].best_seconds;
  std::printf("rkf2 open speedup vs N-Triples parse+build: %.1fx\n",
              nt_seconds / formats[2].best_seconds);

  FILE* out = std::fopen(flags.GetString("out").c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n",
                 flags.GetString("out").c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"workload\": \"dbpedia_like\",\n");
  std::fprintf(out, "    \"scale\": %g,\n", flags.GetDouble("scale"));
  std::fprintf(out, "    \"num_facts\": %zu,\n", kb.NumFacts());
  std::fprintf(out, "    \"num_entities\": %zu,\n", kb.NumEntities());
  std::fprintf(out, "    \"cold_runs\": %d\n", runs);
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < 3; ++i) {
    const FormatStats& fmt = formats[i];
    std::fprintf(out,
                 "    {\"format\": \"%s\", \"file_bytes\": %zu, "
                 "\"open_seconds\": %.6f, \"open_speedup_vs_nt\": %.2f, "
                 "\"probe_seconds\": %.6f, \"peak_rss_kb\": %ld}%s\n",
                 fmt.name, fmt.file_bytes, fmt.best_seconds,
                 nt_seconds / fmt.best_seconds, fmt.probe_seconds,
                 fmt.peak_rss_kb, i + 1 < 3 ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", flags.GetString("out").c_str());
  return 0;
}
