// Ablation of REMI's design choices (§3.3 prunings, §3.5.2 heuristics).
//
// For a sampled workload on the DBpedia-like KB this harness toggles:
//   * depth pruning, side pruning, best-bound pruning (Alg. 2/3),
//   * the LRU query cache (§3.5.2),
//   * the top-5% prominent-object expansion rule (§3.5.2),
//   * join-conditioned vs global predicate ranks (§3.1 vs §3.5.3),
// and reports visited nodes, wall time, and whether the optimum changed.
// The prunings must never change the optimum; the heuristics may (they
// trade completeness of the candidate space for speed).
//
//   ./ablation_pruning [--scale 0.05] [--sets 15]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "kbgen/workload.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace {

struct AblationRow {
  const char* name;
  double seconds = 0.0;
  uint64_t nodes = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  int solutions = 0;
  int optimum_changes = 0;  // vs the full configuration
};

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("sets", 8, "entity sets");
  flags.DefineDouble("timeout", 1.5, "per-set timeout (unpruned configs)");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  setvbuf(stdout, nullptr, _IOLBF, 0);  // survive SIGTERM with output intact

  remi::KnowledgeBase kb =
      remi::bench::BuildDbpediaLike(flags.GetDouble("scale"));
  const auto classes = remi::LargestClasses(kb, 4);
  remi::Rng rng(424242);
  remi::WorkloadConfig wconfig;
  wconfig.num_sets = static_cast<size_t>(flags.GetInt("sets"));
  const auto sets = remi::SampleEntitySets(kb, classes, wconfig, &rng);

  struct Config {
    const char* name;
    remi::RemiOptions options;
  };
  std::vector<Config> configs;
  {
    Config full{"full (paper)", remi::RemiOptions{}};
    full.options.timeout_seconds = flags.GetDouble("timeout");
    configs.push_back(full);

    Config no_depth = full;
    no_depth.name = "no depth pruning";
    no_depth.options.depth_pruning = false;
    configs.push_back(no_depth);

    Config no_side = full;
    no_side.name = "no side pruning";
    no_side.options.side_pruning = false;
    configs.push_back(no_side);

    Config no_bound = full;
    no_bound.name = "no best-bound";
    no_bound.options.best_bound_pruning = false;
    configs.push_back(no_bound);

    Config no_prune = full;
    no_prune.name = "no pruning at all";
    no_prune.options.depth_pruning = false;
    no_prune.options.side_pruning = false;
    no_prune.options.best_bound_pruning = false;
    configs.push_back(no_prune);

    Config no_cache = full;
    no_cache.name = "no query cache";
    no_cache.options.eval_cache_capacity = 0;
    configs.push_back(no_cache);

    Config no_prominent = full;
    no_prominent.name = "no 5% object rule";
    no_prominent.options.enumerator.prune_prominent_expansion = false;
    configs.push_back(no_prominent);

    Config global_ranks = full;
    global_ranks.name = "global pred ranks";
    global_ranks.options.cost.use_join_predicate_ranks = false;
    configs.push_back(global_ranks);

    Config fitted = full;
    fitted.name = "fitted ranks (Eq.1)";
    fitted.options.cost.use_fitted_entity_ranks = true;
    configs.push_back(fitted);
  }

  remi::bench::Banner("Ablation: REMI design choices");
  std::printf("  %-20s %10s %10s %8s %9s %8s\n", "configuration", "time",
              "nodes", "#sol", "hit-rate", "Δopt");
  remi::bench::CsvWriter csv("ablation_pruning");
  csv.Header({"configuration", "seconds", "nodes", "solutions",
              "cache_hit_rate", "optimum_changes"});

  // Reference expressions from the full configuration; each row prints as
  // soon as its configuration finishes.
  std::vector<remi::Expression> reference(sets.size());
  for (size_t c = 0; c < configs.size(); ++c) {
    remi::RemiMiner miner(&kb, configs[c].options);
    AblationRow row;
    row.name = configs[c].name;
    remi::Timer timer;
    for (size_t i = 0; i < sets.size(); ++i) {
      auto result = miner.MineRe(sets[i].entities);
      REMI_CHECK_OK(result.status());
      row.nodes += result->stats.nodes_visited;
      row.cache_hits += result->stats.eval.cache_hits;
      row.cache_misses += result->stats.eval.cache_misses;
      row.solutions += result->found ? 1 : 0;
      if (c == 0) {
        reference[i] = result->expression;
      } else if (!(result->expression == reference[i])) {
        ++row.optimum_changes;
      }
    }
    row.seconds = timer.ElapsedSeconds();
    const double hit_rate =
        row.cache_hits + row.cache_misses > 0
            ? static_cast<double>(row.cache_hits) /
                  static_cast<double>(row.cache_hits + row.cache_misses)
            : 0.0;
    std::printf("  %-20s %10s %10llu %8d %8.1f%% %8d\n", row.name,
                remi::FormatSeconds(row.seconds).c_str(),
                static_cast<unsigned long long>(row.nodes), row.solutions,
                100.0 * hit_rate, row.optimum_changes);
    csv.Row({row.name, remi::FormatDouble(row.seconds, 4),
             std::to_string(row.nodes), std::to_string(row.solutions),
             remi::FormatDouble(hit_rate, 4),
             std::to_string(row.optimum_changes)});
  }
  std::printf("\n  invariant: without timeouts the three prunings show "
              "Δopt=0 (they are exactness-preserving; a per-set timeout "
              "can cut the unpruned configs first). Heuristic rows may "
              "legitimately differ.\n");
  return 0;
}
