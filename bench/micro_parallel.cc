// Thread-scaling microbenchmark for the concurrent mining engine.
//
// Two workloads on a DBpedia-like synthetic KB:
//   * batch   — RemiMiner::MineBatch over a sampled workload of target
//               sets (the paper's many-users serving scenario): one
//               sequential run per set, scheduled across the pool with
//               the shared sharded match-set cache;
//   * premi   — per-set P-REMI (MineRe with num_threads workers and
//               work-stealing subtree spilling), summed over the sets.
//
// For each thread count the harness verifies that every mined (found,
// cost) pair matches the 1-thread baseline, then reports wall time and
// speedup. Results are written as JSON (default BENCH_parallel.json):
//
//   ./bench_micro_parallel [--scale 0.05] [--sets 24] [--seed 7]
//                          [--threads 1,2,4,8] [--out BENCH_parallel.json]
//
// Note: speedups are bounded by the host's core count; the committed
// BENCH_parallel.json records hardware_concurrency alongside the numbers.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "kbgen/workload.h"
#include "remi/remi.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

struct Row {
  int threads = 1;
  double batch_seconds = 0.0;
  double premi_seconds = 0.0;
  double batch_speedup = 1.0;
  double premi_speedup = 1.0;
  bool results_match_baseline = true;
};

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> threads;
  for (const std::string& tok : remi::SplitString(spec, ',')) {
    if (tok.empty()) continue;
    threads.push_back(std::max(1, std::atoi(tok.c_str())));
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

bool SameOutcome(const remi::RemiResult& a, const remi::RemiResult& b) {
  if (a.found != b.found) return false;
  if (!a.found) return true;
  return std::abs(a.cost - b.cost) < 1e-9 && a.expression == b.expression;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("sets", 24, "number of sampled target sets");
  flags.DefineInt("seed", 7, "workload seed");
  flags.DefineString("threads", "1,2,4,8", "comma-separated thread counts");
  flags.DefineString("out", "BENCH_parallel.json", "JSON output path");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  remi::bench::WarnIfNotReleaseBuild();

  const std::vector<int> thread_counts =
      ParseThreadList(flags.GetString("threads"));

  remi::KnowledgeBase kb =
      remi::bench::BuildDbpediaLike(flags.GetDouble("scale"));
  remi::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  remi::WorkloadConfig wconfig;
  wconfig.num_sets = static_cast<size_t>(flags.GetInt("sets"));
  wconfig.top_fraction = 0.05;
  const auto classes = remi::LargestClasses(kb, 4);
  const auto sets = remi::SampleEntitySets(kb, classes, wconfig, &rng);
  std::vector<std::vector<remi::TermId>> batch;
  batch.reserve(sets.size());
  for (const auto& set : sets) batch.push_back(set.entities);

  std::printf("micro_parallel — %zu facts, %zu target sets, "
              "hardware_concurrency=%u\n",
              kb.NumFacts(), batch.size(),
              std::thread::hardware_concurrency());

  std::vector<remi::RemiResult> baseline;
  std::vector<Row> rows;
  for (const int threads : thread_counts) {
    remi::RemiOptions options;
    options.num_threads = threads;
    options.clamp_threads_to_hardware = false;
    Row row;
    row.threads = threads;

    {
      // Fresh miner per run: cold cache, so each thread count pays the
      // same evaluation work and the comparison is fair.
      remi::RemiMiner miner(&kb, options);
      remi::Timer timer;
      auto results = miner.MineBatch(batch);
      REMI_CHECK_OK(results.status());
      row.batch_seconds = timer.ElapsedSeconds();
      if (baseline.empty()) {
        baseline = std::move(*results);
      } else {
        for (size_t i = 0; i < results->size(); ++i) {
          if (!SameOutcome(baseline[i], (*results)[i])) {
            row.results_match_baseline = false;
          }
        }
      }
    }
    {
      remi::RemiMiner miner(&kb, options);
      remi::Timer timer;
      for (size_t i = 0; i < batch.size(); ++i) {
        auto result = miner.MineRe(batch[i]);
        REMI_CHECK_OK(result.status());
        if (!SameOutcome(baseline[i], *result)) {
          row.results_match_baseline = false;
        }
      }
      row.premi_seconds = timer.ElapsedSeconds();
    }

    row.batch_speedup = rows.empty() || row.batch_seconds <= 0
                            ? 1.0
                            : rows.front().batch_seconds / row.batch_seconds;
    row.premi_speedup = rows.empty() || row.premi_seconds <= 0
                            ? 1.0
                            : rows.front().premi_seconds / row.premi_seconds;
    std::printf("  threads=%-2d batch=%8.3fs (x%.2f)  premi=%8.3fs (x%.2f)%s\n",
                row.threads, row.batch_seconds, row.batch_speedup,
                row.premi_seconds, row.premi_speedup,
                row.results_match_baseline ? "" : "  RESULTS DIVERGE");
    rows.push_back(row);
  }

  const std::string out_path = flags.GetString("out");
  FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(out, "{\n  \"context\": {\n");
  std::fprintf(out, "    \"build_type\": \"%s\",\n", remi::bench::kBuildType);
  remi::bench::WriteHostContextFields(out);
  std::fprintf(out, "    \"workload\": \"dbpedia_like\",\n");
  std::fprintf(out, "    \"scale\": %g,\n", flags.GetDouble("scale"));
  std::fprintf(out, "    \"num_facts\": %zu,\n", kb.NumFacts());
  std::fprintf(out, "    \"num_target_sets\": %zu\n", batch.size());
  std::fprintf(out, "  },\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    // oversubscribed = more workers requested than the host has cores;
    // speedup rows carrying `true` here measure scheduling overhead, not
    // parallel scaling, and must not be read as the paper's P-REMI claim.
    std::fprintf(out,
                 "    {\"threads\": %d, \"oversubscribed\": %s, "
                 "\"batch_seconds\": %.6f, "
                 "\"batch_speedup\": %.3f, \"premi_seconds\": %.6f, "
                 "\"premi_speedup\": %.3f, \"results_match_baseline\": %s}%s\n",
                 row.threads,
                 (hw != 0 && row.threads > static_cast<int>(hw)) ? "true"
                                                                 : "false",
                 row.batch_seconds, row.batch_speedup,
                 row.premi_seconds, row.premi_speedup,
                 row.results_match_baseline ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
