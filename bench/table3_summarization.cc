// Table 3 — REMI vs FACES-lite vs LinkSUM-lite on the simulated expert
// gold standard for entity summarization (paper §4.1.4).
//
// Protocol: 80 prominent entities, reference summaries of 5 and 10
// attributes from 7 simulated experts; REMI runs with the standard
// language bias, no rdf:type atoms, no inverse predicates; quality is the
// average overlap with the expert summaries at the predicate-object (PO)
// and object (O) levels. The paper's shape: the diversity-optimizing
// summarizers beat REMI on average quality, REMI's variability is lower,
// and against the merged gold standard REMI's object precision is ~0.62.
//
//   ./table3_summarization [--scale 0.05] [--entities 80]

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "complexity/pagerank.h"
#include "kbgen/workload.h"
#include "summ/faces_lite.h"
#include "summ/gold_standard.h"
#include "summ/linksum_lite.h"
#include "summ/remi_summarizer.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

using remi::bench::CsvWriter;
using remi::bench::MeanStdToString;

struct MethodScores {
  std::vector<double> po5, o5, po10, o10;
  std::vector<double> merged_p, merged_o, merged_po;
};

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("entities", 80, "gold-standard entities (paper: 80)");
  REMI_CHECK_OK(flags.Parse(argc, argv));

  remi::KnowledgeBase kb =
      remi::bench::BuildDbpediaLike(flags.GetDouble("scale"));
  const auto pagerank = remi::ComputePageRank(kb);

  // 80 prominent entities with enough facts to summarize.
  std::vector<remi::TermId> entities;
  for (const remi::TermId e : kb.EntitiesByProminence()) {
    if (entities.size() >= static_cast<size_t>(flags.GetInt("entities"))) {
      break;
    }
    if (remi::CandidateFacts(kb, e).size() >= 10) entities.push_back(e);
  }
  std::printf("Table 3 reproduction — %zu entities on a %zu-fact KB\n",
              entities.size(), kb.NumFacts());

  remi::RemiMiner fr_miner(
      &kb, remi::MakeTable3RemiOptions(remi::ProminenceMetric::kFrequency));
  remi::RemiMiner pr_miner(
      &kb, remi::MakeTable3RemiOptions(remi::ProminenceMetric::kPageRank));

  MethodScores faces, linksum, remi_fr, remi_pr;
  for (const remi::TermId entity : entities) {
    const auto gold = remi::BuildGoldStandard(kb, entity, {});

    const auto score = [&](MethodScores* scores, const remi::Summary& top5,
                           const remi::Summary& top10) {
      scores->po5.push_back(remi::QualityPo(top5, gold.top5));
      scores->o5.push_back(remi::QualityO(top5, gold.top5));
      scores->po10.push_back(remi::QualityPo(top10, gold.top10));
      scores->o10.push_back(remi::QualityO(top10, gold.top10));
      const auto merged = remi::PrecisionVsMergedGold(top10, gold.top10);
      scores->merged_p.push_back(merged.predicates);
      scores->merged_o.push_back(merged.objects);
      scores->merged_po.push_back(merged.pairs);
    };

    score(&faces, remi::FacesSummarize(kb, entity, 5),
          remi::FacesSummarize(kb, entity, 10));
    score(&linksum, remi::LinkSumSummarize(kb, pagerank, entity, 5),
          remi::LinkSumSummarize(kb, pagerank, entity, 10));
    score(&remi_fr, remi::RemiSummarize(fr_miner, entity, 5),
          remi::RemiSummarize(fr_miner, entity, 10));
    score(&remi_pr, remi::RemiSummarize(pr_miner, entity, 5),
          remi::RemiSummarize(pr_miner, entity, 10));
  }

  CsvWriter csv("table3_summarization");
  csv.Header({"method", "quality_po5", "quality_o5", "quality_po10",
              "quality_o10"});
  const auto print_method = [&csv](const char* name,
                                   const MethodScores& scores) {
    const auto po5 = remi::ComputeMeanStd(scores.po5);
    const auto o5 = remi::ComputeMeanStd(scores.o5);
    const auto po10 = remi::ComputeMeanStd(scores.po10);
    const auto o10 = remi::ComputeMeanStd(scores.o10);
    std::printf("  %-10s top5: PO=%-10s O=%-10s   top10: PO=%-10s O=%s\n",
                name, MeanStdToString(po5).c_str(),
                MeanStdToString(o5).c_str(), MeanStdToString(po10).c_str(),
                MeanStdToString(o10).c_str());
    csv.Row({name, MeanStdToString(po5), MeanStdToString(o5),
             MeanStdToString(po10), MeanStdToString(o10)});
  };

  remi::bench::Banner("Table 3: average overlap with expert summaries");
  std::printf("  paper      top5: PO / O            top10: PO / O\n");
  std::printf("  FACES      0.93±0.54 / 1.66±0.57   2.92±0.94 / 4.33±1.01\n");
  std::printf("  LinkSUM    1.20±0.60 / 1.89±0.55   3.20±0.87 / 4.82±1.06\n");
  std::printf("  REMI-fr    0.68±0.18 / 1.31±0.27   2.26±0.34 / 3.70±0.46\n");
  std::printf("  REMI-pr    0.73±0.13 / 1.21±0.29   2.24±0.46 / 3.75±0.23\n");
  std::printf("  measured:\n");
  print_method("FACES", faces);
  print_method("LinkSUM", linksum);
  print_method("REMI-fr", remi_fr);
  print_method("REMI-pr", remi_pr);

  remi::bench::Banner("§4.1.4: precision vs merged top-10 gold standard");
  const auto merged_fr_p = remi::ComputeMeanStd(remi_fr.merged_p);
  const auto merged_fr_o = remi::ComputeMeanStd(remi_fr.merged_o);
  const auto merged_fr_po = remi::ComputeMeanStd(remi_fr.merged_po);
  const auto merged_pr_po = remi::ComputeMeanStd(remi_pr.merged_po);
  std::printf("  paper   (Ĉfr): P=0.53 O=0.62 PO=0.31; Ĉpr slightly worse "
              "except PO=0.38\n");
  std::printf("  measured(Ĉfr): P=%.2f O=%.2f PO=%.2f\n", merged_fr_p.mean,
              merged_fr_o.mean, merged_fr_po.mean);
  std::printf("  measured(Ĉpr): PO=%.2f\n", merged_pr_po.mean);

  // Shape checks the reader can eyeball: variance ordering.
  const auto faces_po10 = remi::ComputeMeanStd(faces.po10);
  const auto remi_po10 = remi::ComputeMeanStd(remi_fr.po10);
  std::printf("\n  shape: FACES mean quality %s REMI-fr (paper: higher); "
              "REMI std %s FACES std (paper: lower)\n",
              faces_po10.mean > remi_po10.mean ? ">" : "<=",
              remi_po10.stddev < faces_po10.stddev ? "<" : ">=");
  return 0;
}
