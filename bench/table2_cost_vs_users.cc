// Tables 2 + the §4.1.2/§4.1.3 user-study numbers, re-run against the
// simulated user panel (DESIGN.md §5), with all mining served through
// remi::Service — the single-KB many-requests deployment the study
// models. Candidate queues come from Service::Candidates, REs from
// Service::Mine / Service::BatchMine with per-request cost overrides
// (Ĉfr vs Ĉpr share one service, one pool, one warm match-set cache).
//
// Study 1 (Table 2): 24 entity sets (sizes 1-3) sampled from the top-5%
// most frequent entities of the four largest classes. Candidates per set:
// the top-3 subgraph expressions by Ĉ plus the worst-ranked and a random
// one (the paper's baseline). Users rank all five by perceived
// simplicity; we report precision@{1,2,3} between Ĉ's ranking and each
// user's, for Ĉfr and Ĉpr.
//
// Study 2 (§4.1.2): 20 prominent sets, 3-5 candidate REs harvested from
// the search (REMI's answer + other REs met during traversal); MAP with
// REMI's answer as the only relevant item, and the Ĉfr-vs-Ĉpr preference
// vote.
//
// Study 3 (§4.1.3): interestingness grades (1-5) of REs for top entities
// of five classes on the Wikidata-like KB.
//
//   ./table2_cost_vs_users [--scale 0.05] [--users 44] [--seed 7]
//                          [--threads 1]
//
// --threads > 1 sizes the service's shared pool: Study 2's batches then
// mine concurrently (the paper's many-users serving scenario); results
// are identical to the sequential run, only faster on multicore hosts.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "kbgen/workload.h"
#include "query/evaluator.h"
#include "service/service.h"
#include "userstudy/metrics.h"
#include "userstudy/user_model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using remi::bench::CsvWriter;
using remi::bench::MeanStdToString;

remi::Expression Single(const remi::SubgraphExpression& rho) {
  return remi::Expression::Top().Conjoin(rho);
}

remi::CostModelOptions CostFor(remi::ProminenceMetric metric) {
  remi::CostModelOptions cost;
  cost.metric = metric;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  remi::Flags flags;
  flags.DefineDouble("scale", remi::bench::kDefaultScale, "KB scale");
  flags.DefineInt("users", 44, "panel size per study");
  flags.DefineInt("seed", 7, "workload seed");
  flags.DefineInt("threads", 1, "mining threads (batch over Study 2 sets)");
  REMI_CHECK_OK(flags.Parse(argc, argv));
  const double scale = flags.GetDouble("scale");
  const size_t users = static_cast<size_t>(flags.GetInt("users"));
  const int threads = static_cast<int>(flags.GetInt("threads"));

  CsvWriter csv("table2_cost_vs_users");
  csv.Header({"study", "metric", "statistic", "mean", "stddev"});

  remi::ServiceOptions service_options;
  service_options.mining.num_threads = threads;
  service_options.mining.clamp_threads_to_hardware = false;
  service_options.max_in_flight = 0;  // harness: no admission limits
  auto service = remi::Service::Create(
      remi::bench::BuildDbpediaLike(scale), service_options);
  const remi::KnowledgeBase& kb = service->kb();
  std::printf("Table 2 reproduction — DBpedia-like KB (%zu facts), panel "
              "of %zu users\n",
              kb.NumFacts(), users);

  // The hidden "ground truth" of user perception is anchored to Ĉfr.
  remi::CostModel hidden(&kb, remi::CostModelOptions{});
  remi::UserModelConfig user_config;
  user_config.num_users = users;
  remi::SimulatedUserPanel panel(&kb, &hidden, user_config);

  // Mid-rank classes: their type atoms carry a few bits under Ĉ (the
  // class conditional rank), reproducing the paper's observation that
  // users put rdf:type first while REMI ranks it 2nd-3rd.
  auto all_classes = remi::LargestClasses(kb, 8);
  std::vector<remi::TermId> classes(
      all_classes.begin() + std::min<size_t>(4, all_classes.size() / 2),
      all_classes.end());
  if (classes.empty()) classes = all_classes;
  remi::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  remi::WorkloadConfig wconfig;
  wconfig.num_sets = 24;  // paper: 24 sets
  wconfig.top_fraction = 0.05;
  const auto sets = remi::SampleEntitySets(kb, classes, wconfig, &rng);

  // ---- Study 1: ranking subgraph expressions by simplicity -----------------
  remi::bench::Banner("Study 1 (Table 2): p@k of Ĉ vs simulated users");
  for (const auto metric : {remi::ProminenceMetric::kFrequency,
                            remi::ProminenceMetric::kPageRank}) {
    std::vector<double> p1, p2, p3;
    size_t responses = 0;
    for (const auto& set : sets) {
      remi::CandidatesRequest request;
      request.targets.ids = set.entities;
      request.cost = CostFor(metric);
      auto ranked = service->Candidates(request);
      if (!ranked.ok() || ranked->size() < 5) continue;
      // Candidates: Ĉ's top 3, the worst-ranked, and a random middle one.
      std::vector<remi::RankedSubgraph> chosen;
      chosen.push_back((*ranked)[0]);
      chosen.push_back((*ranked)[1]);
      chosen.push_back((*ranked)[2]);
      chosen.push_back(ranked->back());
      const size_t middle =
          3 + rng.NextBounded(ranked->size() > 4 ? ranked->size() - 4 : 1);
      chosen.push_back((*ranked)[middle]);

      std::vector<remi::Expression> candidates;
      for (const auto& r : chosen) candidates.push_back(Single(r.expression));
      // Model ranking: by Ĉ of this metric (a single-subgraph conjunction
      // costs exactly its ranked queue entry).
      std::vector<size_t> model_order{0, 1, 2, 3, 4};
      std::sort(model_order.begin(), model_order.end(),
                [&](size_t a, size_t b) {
                  return chosen[a].cost < chosen[b].cost;
                });
      for (size_t u = 0; u < users / 2; ++u) {
        const auto user_order = panel.RankBySimplicity(u, candidates);
        p1.push_back(remi::PrecisionAtK(model_order, user_order, 1));
        p2.push_back(remi::PrecisionAtK(model_order, user_order, 2));
        p3.push_back(remi::PrecisionAtK(model_order, user_order, 3));
        ++responses;
      }
    }
    const auto m1 = remi::ComputeMeanStd(p1);
    const auto m2 = remi::ComputeMeanStd(p2);
    const auto m3 = remi::ComputeMeanStd(p3);
    const char* name = remi::ProminenceMetricToString(metric);
    std::printf("  Ĉ%s measured (%zu responses): p@1=%s p@2=%s p@3=%s\n",
                name, responses, MeanStdToString(m1).c_str(),
                MeanStdToString(m2).c_str(), MeanStdToString(m3).c_str());
    if (metric == remi::ProminenceMetric::kFrequency) {
      std::printf("  Ĉfr paper    (44 responses): p@1=0.38±0.42 "
                  "p@2=0.66±0.18 p@3=0.88±0.09\n");
    } else {
      std::printf("  Ĉpr paper    (48 responses): p@1=0.43±0.42 "
                  "p@2=0.53±0.25 p@3=0.72±0.16\n");
    }
    csv.Row({"study1", name, "p@1", remi::FormatDouble(m1.mean, 4),
             remi::FormatDouble(m1.stddev, 4)});
    csv.Row({"study1", name, "p@2", remi::FormatDouble(m2.mean, 4),
             remi::FormatDouble(m2.stddev, 4)});
    csv.Row({"study1", name, "p@3", remi::FormatDouble(m3.mean, 4),
             remi::FormatDouble(m3.stddev, 4)});
  }

  // ---- Study 2: ranking whole REs; MAP + fr-vs-pr preference ---------------
  remi::bench::Banner("Study 2 (§4.1.2): MAP and Ĉfr-vs-Ĉpr preference");
  {
    remi::WorkloadConfig wconfig2;
    wconfig2.num_sets = 20;  // paper: 20 hand-picked sets
    wconfig2.top_fraction = 0.05;
    remi::Rng rng2(static_cast<uint64_t>(flags.GetInt("seed")) + 1);
    const auto sets2 = remi::SampleEntitySets(kb, classes, wconfig2, &rng2);

    // All of Study 2's mining runs are independent: two BatchMine
    // requests (one per metric) onto the shared service. With
    // --threads 1 this degenerates to the sequential per-set loop and
    // produces identical results.
    remi::BatchMineRequest batch;
    for (const auto& set : sets2) {
      remi::TargetSpec spec;
      spec.ids = set.entities;
      batch.target_sets.push_back(std::move(spec));
    }
    remi::Timer batch_timer;
    batch.cost = CostFor(remi::ProminenceMetric::kFrequency);
    auto fr_response = service->BatchMine(batch);
    batch.cost = CostFor(remi::ProminenceMetric::kPageRank);
    auto pr_response = service->BatchMine(batch);
    REMI_CHECK_OK(fr_response.status());
    REMI_CHECK_OK(pr_response.status());
    std::printf("  mined 2x%zu sets with %d thread(s) in %s\n",
                batch.target_sets.size(), threads,
                remi::FormatSeconds(batch_timer.ElapsedSeconds()).c_str());

    // The candidate harvesting below re-evaluates search-tree REs; a
    // local evaluator over the service's KB stands in for a user
    // re-checking answers.
    remi::Evaluator evaluator(&kb);

    std::vector<double> ap_values;
    size_t fr_votes = 0, votes = 0, same_solution = 0, cases = 0;
    for (size_t set_index = 0; set_index < sets2.size(); ++set_index) {
      const auto& set = sets2[set_index];
      const remi::MineResponse& mined = fr_response->results[set_index];
      if (!mined.found) continue;
      // Candidate REs: REMI's answer + other REs discovered by conjoining
      // queue prefixes (the paper used REs "encountered during search
      // space traversal").
      remi::CandidatesRequest request;
      request.targets.ids = set.entities;
      request.cost = CostFor(remi::ProminenceMetric::kFrequency);
      auto ranked = service->Candidates(request);
      if (!ranked.ok()) continue;
      std::vector<remi::Expression> candidates{mined.expression};
      remi::MatchSet targets(set.entities.begin(), set.entities.end());
      for (size_t i = 0; i < ranked->size() && candidates.size() < 5; ++i) {
        remi::Expression candidate =
            remi::Expression::Top().Conjoin((*ranked)[i].expression);
        for (size_t j = i + 1; j < ranked->size(); ++j) {
          if (evaluator.IsReferringExpression(candidate, targets)) {
            break;
          }
          candidate = candidate.Conjoin((*ranked)[j].expression);
        }
        if (evaluator.IsReferringExpression(candidate, targets) &&
            std::find(candidates.begin(), candidates.end(), candidate) ==
                candidates.end()) {
          candidates.push_back(candidate);
        }
      }
      if (candidates.size() < 3) continue;
      ++cases;
      for (size_t u = 0; u < users / 2; ++u) {
        const auto order = panel.RankBySimplicity(u, candidates);
        ap_values.push_back(
            remi::AveragePrecisionSingleRelevant(0, order));
      }
      // fr-vs-pr preference.
      const remi::MineResponse& pr_mined = pr_response->results[set_index];
      if (pr_mined.found) {
        if (pr_mined.expression == mined.expression) {
          ++same_solution;
        } else {
          for (size_t u = 0; u < users / 2; ++u) {
            ++votes;
            fr_votes += panel.PreferBetween(u, mined.expression,
                                            pr_mined.expression) == 0;
          }
        }
      }
    }
    const auto map = remi::ComputeMeanStd(ap_values);
    std::printf("  measured: MAP=%s over %zu sets; paper: 0.64±0.17 over "
                "51 answers\n",
                MeanStdToString(map).c_str(), cases);
    const double fr_share =
        votes > 0 ? 100.0 * static_cast<double>(fr_votes) /
                        static_cast<double>(votes)
                  : 0.0;
    std::printf("  measured: Ĉfr preferred in %.0f%% of votes (same "
                "solution in %zu sets); paper: 59%% (same in 6/20)\n",
                fr_share, same_solution);
    csv.Row({"study2", "fr", "MAP", remi::FormatDouble(map.mean, 4),
             remi::FormatDouble(map.stddev, 4)});
    csv.Row({"study2", "fr_vs_pr", "fr_share",
             remi::FormatDouble(fr_share, 2), "0"});
  }

  // ---- Study 3: interestingness grades on the Wikidata-like KB -------------
  remi::bench::Banner("Study 3 (§4.1.3): interestingness 1-5");
  {
    auto wd_service =
        remi::Service::Create(remi::bench::BuildWikidataLike(scale));
    const remi::KnowledgeBase& wd = wd_service->kb();
    remi::CostModel wd_hidden(&wd, remi::CostModelOptions{});
    remi::SimulatedUserPanel wd_panel(&wd, &wd_hidden, user_config);

    const auto wd_classes = remi::LargestClasses(wd, 5);  // paper: 5 classes
    std::vector<double> scores;
    size_t described = 0;
    for (const remi::TermId cls : wd_classes) {
      auto members = remi::ClassMembersByProminence(wd, cls);
      // paper: top 7 of the frequency ranking per class
      for (size_t i = 0; i < members.size() && i < 7; ++i) {
        remi::MineRequest request;
        request.targets.ids = {members[i]};
        auto result = wd_service->Mine(request);
        if (!result.ok() || !result->found) continue;
        ++described;
        for (size_t u = 0; u < users / 2; ++u) {
          scores.push_back(static_cast<double>(
              wd_panel.InterestingnessScore(u, result->expression)));
        }
      }
    }
    const auto ms = remi::ComputeMeanStd(scores);
    size_t high = 0;
    for (const double s : scores) high += s >= 3.0;
    std::printf("  measured: %s over %zu REs (%.0f%% graded >=3); paper: "
                "2.65±0.71 over 35 REs, 11 of 35 scoring >=3\n",
                MeanStdToString(ms).c_str(), described,
                scores.empty()
                    ? 0.0
                    : 100.0 * static_cast<double>(high) /
                          static_cast<double>(scores.size()));
    csv.Row({"study3", "fr", "interestingness",
             remi::FormatDouble(ms.mean, 4),
             remi::FormatDouble(ms.stddev, 4)});
  }
  return 0;
}
