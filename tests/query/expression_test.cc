#include "query/expression.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(SubgraphExpressionTest, AtomBasics) {
  auto e = SubgraphExpression::Atom(10, 20);
  EXPECT_EQ(e.shape, SubgraphShape::kAtom);
  EXPECT_EQ(e.num_atoms(), 1);
  EXPECT_FALSE(e.has_existential_variable());
}

TEST(SubgraphExpressionTest, PathBasics) {
  auto e = SubgraphExpression::Path(10, 11, 20);
  EXPECT_EQ(e.num_atoms(), 2);
  EXPECT_TRUE(e.has_existential_variable());
}

TEST(SubgraphExpressionTest, PathStarNormalizesLegOrder) {
  auto a = SubgraphExpression::PathStar(1, 5, 50, 3, 30);
  auto b = SubgraphExpression::PathStar(1, 3, 30, 5, 50);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.p1, 3u);
  EXPECT_EQ(a.c1, 30u);
}

TEST(SubgraphExpressionTest, TwinPairNormalizesPredicateOrder) {
  EXPECT_EQ(SubgraphExpression::TwinPair(7, 2),
            SubgraphExpression::TwinPair(2, 7));
}

TEST(SubgraphExpressionTest, TwinTripleNormalizesAllOrders) {
  auto expected = SubgraphExpression::TwinTriple(1, 2, 3);
  EXPECT_EQ(SubgraphExpression::TwinTriple(3, 2, 1), expected);
  EXPECT_EQ(SubgraphExpression::TwinTriple(2, 3, 1), expected);
  EXPECT_EQ(SubgraphExpression::TwinTriple(1, 3, 2), expected);
  EXPECT_EQ(expected.p0, 1u);
  EXPECT_EQ(expected.p2, 3u);
}

TEST(SubgraphExpressionTest, NumAtomsPerShape) {
  EXPECT_EQ(SubgraphExpression::Atom(1, 2).num_atoms(), 1);
  EXPECT_EQ(SubgraphExpression::Path(1, 2, 3).num_atoms(), 2);
  EXPECT_EQ(SubgraphExpression::PathStar(1, 2, 3, 4, 5).num_atoms(), 3);
  EXPECT_EQ(SubgraphExpression::TwinPair(1, 2).num_atoms(), 2);
  EXPECT_EQ(SubgraphExpression::TwinTriple(1, 2, 3).num_atoms(), 3);
}

TEST(SubgraphExpressionTest, OrderingIsTotalAndConsistentWithEquality) {
  std::vector<SubgraphExpression> exprs = {
      SubgraphExpression::Atom(1, 2),
      SubgraphExpression::Atom(1, 3),
      SubgraphExpression::Path(1, 2, 3),
      SubgraphExpression::TwinPair(1, 2),
  };
  for (const auto& a : exprs) {
    EXPECT_FALSE(a < a);
    for (const auto& b : exprs) {
      if (a == b) {
        EXPECT_FALSE(a < b);
        EXPECT_FALSE(b < a);
      } else {
        EXPECT_TRUE((a < b) != (b < a));
      }
    }
  }
}

TEST(SubgraphExpressionTest, HashConsistentWithEquality) {
  SubgraphExpressionHash hash;
  auto a = SubgraphExpression::PathStar(1, 5, 50, 3, 30);
  auto b = SubgraphExpression::PathStar(1, 3, 30, 5, 50);
  EXPECT_EQ(hash(a), hash(b));
  std::unordered_set<SubgraphExpression, SubgraphExpressionHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(SubgraphExpressionTest, ToStringRendersShapes) {
  Dictionary dict;
  const TermId in = dict.InternIri("http://x/in");
  const TermId lang = dict.InternIri("http://x/officialLanguage");
  const TermId sa = dict.InternIri("http://x/South_America");
  auto atom = SubgraphExpression::Atom(in, sa);
  EXPECT_EQ(atom.ToString(dict), "in(x, South_America)");
  auto path = SubgraphExpression::Path(lang, in, sa);
  EXPECT_EQ(path.ToString(dict),
            "officialLanguage(x, y) ∧ in(y, South_America)");
}

TEST(ExpressionTest, TopProperties) {
  Expression top = Expression::Top();
  EXPECT_TRUE(top.IsTop());
  EXPECT_EQ(top.num_atoms(), 0);
  Dictionary dict;
  EXPECT_EQ(top.ToString(dict), "⊤");
}

TEST(ExpressionTest, ConjoinKeepsPartsSortedAndUnique) {
  auto a = SubgraphExpression::Atom(1, 2);
  auto b = SubgraphExpression::Atom(1, 1);
  Expression e = Expression::Top().Conjoin(a).Conjoin(b).Conjoin(a);
  ASSERT_EQ(e.parts.size(), 2u);
  EXPECT_TRUE(e.parts[0] < e.parts[1]);
}

TEST(ExpressionTest, ConjoinOrderIndependentEquality) {
  auto a = SubgraphExpression::Atom(1, 2);
  auto b = SubgraphExpression::Path(3, 4, 5);
  EXPECT_EQ(Expression::Top().Conjoin(a).Conjoin(b),
            Expression::Top().Conjoin(b).Conjoin(a));
}

TEST(ExpressionTest, NumAtomsSumsParts) {
  Expression e = Expression::Top()
                     .Conjoin(SubgraphExpression::Atom(1, 2))
                     .Conjoin(SubgraphExpression::PathStar(3, 4, 5, 6, 7));
  EXPECT_EQ(e.num_atoms(), 4);
}

TEST(ToAtomsTest, AtomHasRootVariableSubject) {
  auto atoms = ToAtoms(SubgraphExpression::Atom(9, 42), 1);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(atoms[0].subject_is_var);
  EXPECT_EQ(atoms[0].subject_var, 0);
  EXPECT_FALSE(atoms[0].object_is_var);
  EXPECT_EQ(atoms[0].object_const, 42u);
}

TEST(ToAtomsTest, PathLinksThroughExistentialVariable) {
  auto atoms = ToAtoms(SubgraphExpression::Path(9, 8, 42), 3);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0].object_var, 3);
  EXPECT_EQ(atoms[1].subject_var, 3);
  EXPECT_EQ(atoms[1].object_const, 42u);
}

TEST(ToAtomsTest, ExpressionAssignsFreshVariables) {
  Expression e = Expression::Top()
                     .Conjoin(SubgraphExpression::Path(1, 2, 3))
                     .Conjoin(SubgraphExpression::Path(4, 5, 6));
  auto atoms = ToAtoms(e);
  ASSERT_EQ(atoms.size(), 4u);
  // Two distinct existential variables.
  EXPECT_NE(atoms[0].object_var, atoms[2].object_var);
}

TEST(ToAtomsTest, TwinShapesShareBothVariables) {
  auto atoms = ToAtoms(SubgraphExpression::TwinTriple(1, 2, 3), 1);
  ASSERT_EQ(atoms.size(), 3u);
  for (const auto& a : atoms) {
    EXPECT_EQ(a.subject_var, 0);
    EXPECT_TRUE(a.object_is_var);
    EXPECT_EQ(a.object_var, 1);
  }
}

TEST(ShapeNamesTest, AllShapesNamed) {
  EXPECT_STREQ(SubgraphShapeToString(SubgraphShape::kAtom), "atom");
  EXPECT_STREQ(SubgraphShapeToString(SubgraphShape::kPath), "path");
  EXPECT_STREQ(SubgraphShapeToString(SubgraphShape::kPathStar), "path+star");
  EXPECT_STREQ(SubgraphShapeToString(SubgraphShape::kTwinPair), "2-closed");
  EXPECT_STREQ(SubgraphShapeToString(SubgraphShape::kTwinTriple),
               "3-closed");
}

}  // namespace
}  // namespace remi
