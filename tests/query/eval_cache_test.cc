// Sharded eval-cache semantics plus a multi-threaded hammer (run under
// -fsanitize=thread in the concurrency CI job).

#include "query/eval_cache.h"

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "query/expression.h"

namespace remi {
namespace {

std::shared_ptr<const EntitySet> MakeSet(std::vector<TermId> ids,
                                         size_t universe = 1024) {
  return std::make_shared<EntitySet>(
      EntitySet::FromSorted(std::move(ids), universe));
}

TEST(EvalCacheTest, PutThenGet) {
  EvalCache cache(/*capacity=*/64);
  const auto rho = SubgraphExpression::Atom(1, 2);
  EXPECT_EQ(cache.Get(rho), nullptr);
  cache.Put(rho, MakeSet({3, 4, 5}));
  auto hit = cache.Get(rho);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->size(), 3u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(EvalCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  EvalCache cache(/*capacity=*/4096, /*num_shards=*/5);
  EXPECT_EQ(cache.num_shards(), 8u);
  EvalCache defaulted(/*capacity=*/4096);
  EXPECT_EQ(defaulted.num_shards(), EvalCache::kDefaultShards);
}

TEST(EvalCacheTest, TinyCapacityCollapsesShards) {
  // A 4-entry budget over 16 shards would round every shard down to zero
  // capacity; the constructor collapses shards instead.
  EvalCache cache(/*capacity=*/4);
  EXPECT_LE(cache.num_shards(), 4u);
  const auto rho = SubgraphExpression::Atom(1, 2);
  cache.Put(rho, MakeSet({1}));
  EXPECT_NE(cache.Get(rho), nullptr);
}

TEST(EvalCacheTest, CapacityZeroDisablesCaching) {
  EvalCache cache(/*capacity=*/0);
  const auto rho = SubgraphExpression::Atom(1, 2);
  cache.Put(rho, MakeSet({1}));
  EXPECT_EQ(cache.Get(rho), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(EvalCacheTest, DistinctExpressionsLandInManyShards) {
  // 1024 total = 64 entries per shard. 512 distinct inserts fit overall
  // only if the routing spreads them: a skewed hash mix that funnelled
  // everything into one shard could retain at most 64.
  EvalCache cache(/*capacity=*/1024, /*num_shards=*/16);
  const size_t per_shard = cache.capacity() / cache.num_shards();
  for (TermId p = 0; p < 32; ++p) {
    for (TermId c = 0; c < 16; ++c) {
      cache.Put(SubgraphExpression::Atom(p, c), MakeSet({p}));
    }
  }
  EXPECT_EQ(cache.stats().entries, 32u * 16u);
  EXPECT_GT(cache.stats().entries, per_shard);
}

TEST(EvalCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // One shard makes eviction order deterministic.
  EvalCache cache(/*capacity=*/2, /*num_shards=*/1);
  const auto a = SubgraphExpression::Atom(1, 1);
  const auto b = SubgraphExpression::Atom(2, 2);
  const auto c = SubgraphExpression::Atom(3, 3);
  cache.Put(a, MakeSet({1}));
  cache.Put(b, MakeSet({2}));
  EXPECT_NE(cache.Get(a), nullptr);  // refresh a; b is now LRU
  cache.Put(c, MakeSet({3}));
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_NE(cache.Get(c), nullptr);
}

TEST(EvalCacheTest, ResetCountersKeepsEntries) {
  EvalCache cache(/*capacity=*/64);
  const auto rho = SubgraphExpression::Atom(1, 2);
  cache.Put(rho, MakeSet({1}));
  ASSERT_NE(cache.Get(rho), nullptr);
  cache.ResetCounters();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_NE(cache.Get(rho), nullptr);
}

// Hammer: many threads mixing hits, misses and evictions across shards.
// Correctness bar: no data race (TSan), every Get returns either nullptr
// or the exact set stored for that expression, and the aggregated
// hit+miss count equals the number of lookups.
TEST(EvalCacheHammerTest, ConcurrentGetPutIsRaceFree) {
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 20000;
  constexpr TermId kKeySpace = 97;  // > capacity to force evictions
  EvalCache cache(/*capacity=*/64, /*num_shards=*/8);

  std::atomic<uint64_t> lookups{0};
  std::atomic<uint64_t> bad_values{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9E3779B9u * (t + 1);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const TermId key = static_cast<TermId>((state >> 33) % kKeySpace);
        const auto rho = SubgraphExpression::Atom(key, key + 1);
        if (state & 1) {
          cache.Put(rho, MakeSet({key}));
        } else {
          lookups.fetch_add(1, std::memory_order_relaxed);
          if (auto hit = cache.Get(rho)) {
            // The value stored for Atom(k, k+1) is always {k}.
            if (hit->size() != 1 || !hit->Contains(key)) {
              bad_values.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(bad_values.load(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_LE(stats.entries, cache.capacity() + cache.num_shards());
}

}  // namespace
}  // namespace remi
