#include "query/evaluator.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const {
    auto r = FindEntity(*kb_, name);
    EXPECT_TRUE(r.ok()) << name;
    return *r;
  }
  TermId Pred(const char* name) const { return Id(name); }

  static KnowledgeBase* kb_;
};

KnowledgeBase* EvaluatorTest::kb_ = nullptr;

TEST_F(EvaluatorTest, AtomMatchesSubjects) {
  Evaluator eval(kb_);
  // capitalOf(x, France) — only Paris.
  auto m = eval.Match(SubgraphExpression::Atom(Pred("capitalOf"),
                                               Id("France")));
  ASSERT_EQ(m->size(), 1u);
  EXPECT_TRUE(m->Contains(Id("Paris")));
}

TEST_F(EvaluatorTest, AtomWithNoMatches) {
  Evaluator eval(kb_);
  auto m = eval.Match(SubgraphExpression::Atom(Pred("capitalOf"),
                                               Id("Brittany")));
  EXPECT_TRUE(m->empty());
}

TEST_F(EvaluatorTest, PathMatches) {
  Evaluator eval(kb_);
  // officialLanguage(x, y) ∧ langFamily(y, Germanic): UK, NL, Germany,
  // Austria, NZ, Guyana, Suriname, Switzerland (German).
  auto m = eval.Match(SubgraphExpression::Path(
      Pred("officialLanguage"), Pred("langFamily"), Id("Germanic")));
  EXPECT_EQ(m->size(), 8u);
  EXPECT_TRUE(m->Contains(Id("Guyana")));
  EXPECT_TRUE(m->Contains(Id("Suriname")));
  EXPECT_TRUE(m->Contains(Id("Switzerland")));
  EXPECT_FALSE(m->Contains(Id("Brazil")));
}

TEST_F(EvaluatorTest, PathStarMatches) {
  Evaluator eval(kb_);
  // mayor(x,y) ∧ party(y, Socialist_Party) ∧ type(y, Person)
  auto m = eval.Match(SubgraphExpression::PathStar(
      Pred("mayor"), Pred("party"), Id("Socialist_Party"),
      kb_->type_predicate(), Id("Person")));
  ASSERT_EQ(m->size(), 4u);  // Rennes, Nantes, Paris, Marseille
  EXPECT_TRUE(m->Contains(Id("Rennes")));
  EXPECT_TRUE(m->Contains(Id("Nantes")));
  EXPECT_TRUE(m->Contains(Id("Paris")));
  EXPECT_TRUE(m->Contains(Id("Marseille")));
}

TEST_F(EvaluatorTest, TwinPairMatches) {
  Evaluator eval(kb_);
  // cityIn(x,y) ∧ capitalOf(x,y): capitals in their own country.
  auto m = eval.Match(
      SubgraphExpression::TwinPair(Pred("cityIn"), Pred("capitalOf")));
  EXPECT_GE(m->size(), 10u);
  EXPECT_TRUE(m->Contains(Id("Paris")));
  EXPECT_FALSE(m->Contains(Id("Pisa")));
}

TEST_F(EvaluatorTest, MembershipAgreesWithMatchSets) {
  Evaluator eval(kb_);
  const SubgraphExpression exprs[] = {
      SubgraphExpression::Atom(Pred("capitalOf"), Id("France")),
      SubgraphExpression::Path(Pred("officialLanguage"), Pred("langFamily"),
                               Id("Germanic")),
      SubgraphExpression::PathStar(Pred("mayor"), Pred("party"),
                                   Id("Socialist_Party"),
                                   kb_->type_predicate(), Id("Person")),
      SubgraphExpression::TwinPair(Pred("cityIn"), Pred("capitalOf")),
  };
  const TermId probes[] = {Id("Paris"),  Id("Rennes"), Id("Guyana"),
                           Id("Brazil"), Id("Pisa"),   Id("France")};
  for (const auto& rho : exprs) {
    auto m = eval.Match(rho);
    for (const TermId e : probes) {
      EXPECT_EQ(eval.Matches(e, rho),
                m->Contains(e))
          << rho.ToString(kb_->dict()) << " / " << kb_->Label(e);
    }
  }
}

TEST_F(EvaluatorTest, EvaluateIntersectsParts) {
  Evaluator eval(kb_);
  Expression e = Expression::Top()
                     .Conjoin(SubgraphExpression::Atom(Pred("in"),
                                                       Id("South_America")))
                     .Conjoin(SubgraphExpression::Path(
                         Pred("officialLanguage"), Pred("langFamily"),
                         Id("Germanic")));
  auto matches = eval.Evaluate(e);
  ASSERT_EQ(matches.size(), 2u);  // the paper's Guyana + Suriname example
  EXPECT_TRUE(matches.Contains(Id("Guyana")));
  EXPECT_TRUE(matches.Contains(Id("Suriname")));
}

TEST_F(EvaluatorTest, IsReferringExpressionPositive) {
  Evaluator eval(kb_);
  Expression e = Expression::Top()
                     .Conjoin(SubgraphExpression::Atom(Pred("in"),
                                                       Id("South_America")))
                     .Conjoin(SubgraphExpression::Path(
                         Pred("officialLanguage"), Pred("langFamily"),
                         Id("Germanic")));
  MatchSet targets{Id("Guyana"), Id("Suriname")};
  EXPECT_TRUE(eval.IsReferringExpression(e, targets));
}

TEST_F(EvaluatorTest, IsReferringExpressionRejectsSupersetMatch) {
  Evaluator eval(kb_);
  // in(x, South_America) matches 12 countries, not just 2.
  Expression e = Expression::Top().Conjoin(
      SubgraphExpression::Atom(Pred("in"), Id("South_America")));
  MatchSet targets{Id("Guyana"), Id("Suriname")};
  EXPECT_FALSE(eval.IsReferringExpression(e, targets));
}

TEST_F(EvaluatorTest, IsReferringExpressionRejectsNonMatchingTarget) {
  Evaluator eval(kb_);
  Expression e = Expression::Top().Conjoin(
      SubgraphExpression::Atom(Pred("capitalOf"), Id("France")));
  MatchSet targets{Id("Paris"), Id("Lyon")};
  EXPECT_FALSE(eval.IsReferringExpression(e, targets));
}

TEST_F(EvaluatorTest, PaperNoiseExample) {
  // §4.1.3: France cannot be described as "the country whose capital is
  // Paris" because Paris is also the capital of the Kingdom of France.
  Evaluator eval(kb_);
  auto capital_of = Pred("capitalOf");
  const TermId inv = kb_->InverseOf(capital_of);
  ASSERT_NE(inv, kNullTerm) << "capitalOf inverse should be materialized";
  Expression e = Expression::Top().Conjoin(
      SubgraphExpression::Atom(inv, Id("Paris")));
  MatchSet targets{Id("France")};
  EXPECT_FALSE(eval.IsReferringExpression(e, targets));
  auto m = eval.Match(SubgraphExpression::Atom(inv, Id("Paris")));
  EXPECT_EQ(m->size(), 2u);  // France and the Kingdom of France
}

TEST_F(EvaluatorTest, TopIsNeverAnRe) {
  Evaluator eval(kb_);
  MatchSet targets{Id("Paris")};
  EXPECT_FALSE(eval.IsReferringExpression(Expression::Top(), targets));
  EXPECT_TRUE(eval.Evaluate(Expression::Top()).empty());
}

TEST_F(EvaluatorTest, EmptyTargetsNeverReferred) {
  Evaluator eval(kb_);
  Expression e = Expression::Top().Conjoin(
      SubgraphExpression::Atom(Pred("capitalOf"), Id("France")));
  EXPECT_FALSE(eval.IsReferringExpression(e, {}));
}

TEST_F(EvaluatorTest, CacheHitsOnRepeatedQueries) {
  Evaluator eval(kb_, /*cache_capacity=*/16);
  const auto rho = SubgraphExpression::Atom(Pred("capitalOf"), Id("France"));
  (void)eval.Match(rho);
  (void)eval.Match(rho);
  (void)eval.Match(rho);
  EXPECT_EQ(eval.stats().cache_misses, 1u);
  EXPECT_EQ(eval.stats().cache_hits, 2u);
  EXPECT_EQ(eval.stats().subgraph_evaluations, 1u);
}

TEST_F(EvaluatorTest, ZeroCapacityCacheRecomputes) {
  Evaluator eval(kb_, /*cache_capacity=*/0);
  const auto rho = SubgraphExpression::Atom(Pred("capitalOf"), Id("France"));
  (void)eval.Match(rho);
  (void)eval.Match(rho);
  EXPECT_EQ(eval.stats().subgraph_evaluations, 2u);
}

TEST_F(EvaluatorTest, ResetStatsZeroesCounters) {
  Evaluator eval(kb_);
  (void)eval.Match(SubgraphExpression::Atom(Pred("capitalOf"), Id("France")));
  eval.ResetStats();
  const auto s = eval.stats();
  EXPECT_EQ(s.subgraph_evaluations + s.membership_tests + s.cache_hits +
                s.cache_misses,
            0u);
}

TEST_F(EvaluatorTest, ConcurrentMatchesAreConsistent) {
  // Many threads hammer one evaluator with overlapping Match() calls; the
  // sharded cache must serve every caller the correct match set, with or
  // without caching (capacity 0 exercises the all-miss path).
  for (const size_t capacity : {size_t{0}, size_t{64}}) {
    Evaluator eval(kb_, capacity);
    const std::vector<SubgraphExpression> queries = {
        SubgraphExpression::Atom(Pred("capitalOf"), Id("France")),
        SubgraphExpression::Atom(kb_->type_predicate(), Id("City")),
        SubgraphExpression::Path(Pred("officialLanguage"),
                                 Pred("langFamily"), Id("Germanic")),
        SubgraphExpression::PathStar(Pred("mayor"), Pred("party"),
                                     Id("Socialist_Party"),
                                     kb_->type_predicate(), Id("Person")),
    };
    std::vector<size_t> expected;
    for (const auto& rho : queries) expected.push_back(eval.Match(rho)->size());

    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        for (size_t i = 0; i < 500; ++i) {
          const size_t q = (i + t) % queries.size();
          if (eval.Match(queries[q])->size() != expected[q]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(mismatches.load(), 0u) << "capacity=" << capacity;
  }
}

TEST(SortedSetOpsTest, IntersectSorted) {
  EXPECT_EQ(IntersectSorted({1, 3, 5, 7}, {3, 4, 5}), (MatchSet{3, 5}));
  EXPECT_EQ(IntersectSorted({}, {1, 2}), MatchSet{});
  EXPECT_EQ(IntersectSorted({1, 2}, {3, 4}), MatchSet{});
}

TEST(SortedSetOpsTest, SortedSubset) {
  EXPECT_TRUE(SortedSubset({2, 4}, {1, 2, 3, 4}));
  EXPECT_FALSE(SortedSubset({2, 5}, {1, 2, 3, 4}));
  EXPECT_TRUE(SortedSubset({}, {1}));
  EXPECT_FALSE(SortedSubset({1}, {}));
}

}  // namespace
}  // namespace remi
