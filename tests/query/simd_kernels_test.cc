// Property tests for the SIMD set kernels (query/simd_kernels.h): every
// vector variant the host can run is compared against the scalar oracle
// over random word blocks of many densities and deliberately unaligned
// lengths, plus the structured corners (empty, all-ones, single word,
// exactly one vector, one-past-a-vector). The final test forces the whole
// miner through scalar and through the best SIMD level and requires
// byte-identical results — the dispatch must never change what is mined.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "kbgen/kb_builder.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "query/simd_kernels.h"
#include "remi/remi.h"
#include "util/cpu_features.h"

namespace remi {
namespace {

/// Restores automatic dispatch when a test that forces a level exits.
struct ScopedSimdLevel {
  explicit ScopedSimdLevel(SimdLevel level) { ForceSimdLevel(level); }
  ~ScopedSimdLevel() { ClearForcedSimdLevel(); }
};

/// The levels whose kernel tables differ from scalar on this host.
std::vector<SimdLevel> HostSimdLevels() {
  std::vector<SimdLevel> levels;
  for (SimdLevel level : {SimdLevel::kNeon, SimdLevel::kAvx2,
                          SimdLevel::kAvx512}) {
    if (&SetKernelsFor(level) != &SetKernelsFor(SimdLevel::kScalar)) {
      levels.push_back(level);
    }
  }
  return levels;
}

/// Word counts chosen to hit every tail shape of 4-word (AVX2) and 8-word
/// (AVX-512) vectors, plus the block boundary of the capped kernel.
const size_t kWordCounts[] = {0,  1,  2,  3,   4,   5,   7,   8,  9,
                              15, 16, 17, 31,  32,  33,  63,  64, 65,
                              100, 127, 128, 129, 200, 256, 300};

std::vector<uint64_t> RandomWords(std::mt19937_64* rng, size_t n,
                                  double density) {
  std::bernoulli_distribution bit(density);
  std::vector<uint64_t> words(n, 0);
  for (size_t w = 0; w < n; ++w) {
    for (int b = 0; b < 64; ++b) {
      if (bit(*rng)) words[w] |= uint64_t{1} << b;
    }
  }
  return words;
}

TEST(SimdKernelTest, AndPopcountCappedMatchesScalarOracle) {
  const auto levels = HostSimdLevels();
  const SetKernels& scalar = SetKernelsFor(SimdLevel::kScalar);
  std::mt19937_64 rng(20260808);
  for (const double density : {0.0, 0.01, 0.3, 0.5, 0.97, 1.0}) {
    for (const size_t n : kWordCounts) {
      const auto a = RandomWords(&rng, n, density);
      const auto b = RandomWords(&rng, n, density);
      const size_t exact =
          scalar.and_popcount_capped(a.data(), b.data(), n, SIZE_MAX);
      for (const SimdLevel level : levels) {
        const SetKernels& simd = SetKernelsFor(level);
        EXPECT_EQ(simd.and_popcount_capped(a.data(), b.data(), n, SIZE_MAX),
                  exact)
            << SimdLevelName(level) << " n=" << n << " d=" << density;
        // Cap semantics: a return <= cap is exact; past the cap any
        // value > cap is allowed (early exit).
        for (const size_t cap :
             {size_t{0}, size_t{1}, size_t{13}, exact > 0 ? exact - 1 : 0,
              exact, exact + 1}) {
          const size_t got =
              simd.and_popcount_capped(a.data(), b.data(), n, cap);
          if (exact <= cap) {
            EXPECT_EQ(got, exact) << SimdLevelName(level) << " cap=" << cap;
          } else {
            EXPECT_GT(got, cap) << SimdLevelName(level) << " cap=" << cap;
          }
        }
      }
    }
  }
}

TEST(SimdKernelTest, SubsetMatchesScalarOracle) {
  const auto levels = HostSimdLevels();
  const SetKernels& scalar = SetKernelsFor(SimdLevel::kScalar);
  std::mt19937_64 rng(41);
  for (const double density : {0.0, 0.05, 0.5, 1.0}) {
    for (const size_t n : kWordCounts) {
      const auto a = RandomWords(&rng, n, density);
      auto superset = a;
      const auto extra = RandomWords(&rng, n, 0.2);
      for (size_t w = 0; w < n; ++w) superset[w] |= extra[w];
      const auto unrelated = RandomWords(&rng, n, density);
      for (const SimdLevel level : levels) {
        const SetKernels& simd = SetKernelsFor(level);
        EXPECT_TRUE(simd.subset(a.data(), superset.data(), n))
            << SimdLevelName(level) << " n=" << n;
        EXPECT_EQ(simd.subset(a.data(), unrelated.data(), n),
                  scalar.subset(a.data(), unrelated.data(), n))
            << SimdLevelName(level) << " n=" << n;
        // One surplus bit in each word position in turn — catches any
        // variant that drops tail words from the test.
        for (size_t w = 0; w < n; ++w) {
          auto sub = superset;
          auto sup = superset;
          sub[w] |= uint64_t{1} << (w % 64);
          sup[w] &= ~(uint64_t{1} << (w % 64));
          EXPECT_FALSE(simd.subset(sub.data(), sup.data(), n))
              << SimdLevelName(level) << " n=" << n << " w=" << w;
        }
      }
    }
  }
}

TEST(SimdKernelTest, AndStorePopcountMatchesScalarAndPermitsAliasing) {
  const auto levels = HostSimdLevels();
  const SetKernels& scalar = SetKernelsFor(SimdLevel::kScalar);
  std::mt19937_64 rng(7);
  for (const double density : {0.0, 0.1, 0.5, 1.0}) {
    for (const size_t n : kWordCounts) {
      const auto a = RandomWords(&rng, n, density);
      const auto b = RandomWords(&rng, n, density);
      std::vector<uint64_t> expect_out(n, ~uint64_t{0});
      const size_t expect_count =
          scalar.and_store_popcount(a.data(), b.data(), expect_out.data(), n);
      for (const SimdLevel level : levels) {
        const SetKernels& simd = SetKernelsFor(level);
        std::vector<uint64_t> out(n, ~uint64_t{0});
        EXPECT_EQ(simd.and_store_popcount(a.data(), b.data(), out.data(), n),
                  expect_count)
            << SimdLevelName(level) << " n=" << n;
        EXPECT_EQ(out, expect_out) << SimdLevelName(level) << " n=" << n;
        // out == a aliasing.
        auto alias_a = a;
        EXPECT_EQ(simd.and_store_popcount(alias_a.data(), b.data(),
                                          alias_a.data(), n),
                  expect_count);
        EXPECT_EQ(alias_a, expect_out) << SimdLevelName(level) << " n=" << n;
        // out == b aliasing.
        auto alias_b = b;
        EXPECT_EQ(simd.and_store_popcount(a.data(), alias_b.data(),
                                          alias_b.data(), n),
                  expect_count);
        EXPECT_EQ(alias_b, expect_out) << SimdLevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, BuildBitmapMatchesScalarOracle) {
  const auto levels = HostSimdLevels();
  const SetKernels& scalar = SetKernelsFor(SimdLevel::kScalar);
  std::mt19937_64 rng(123);
  for (const size_t universe_words : {size_t{1}, size_t{2}, size_t{7},
                                      size_t{64}, size_t{129}}) {
    const size_t universe = universe_words * 64;
    for (const double density : {0.0, 0.02, 0.5, 1.0}) {
      std::bernoulli_distribution member(density);
      std::vector<TermId> ids;
      for (size_t id = 0; id < universe; ++id) {
        if (member(rng)) ids.push_back(static_cast<TermId>(id));
      }
      std::vector<uint64_t> expect_words(universe_words, ~uint64_t{0});
      scalar.build_bitmap(ids.data(), ids.size(), expect_words.data(),
                          universe_words);
      for (const SimdLevel level : levels) {
        std::vector<uint64_t> words(universe_words, ~uint64_t{0});
        SetKernelsFor(level).build_bitmap(ids.data(), ids.size(),
                                          words.data(), universe_words);
        EXPECT_EQ(words, expect_words)
            << SimdLevelName(level) << " words=" << universe_words
            << " d=" << density;
      }
    }
  }
}

TEST(SimdKernelTest, ForcedLevelOnlyLowersDispatch) {
  const SimdLevel best = DetectCpuFeatures().Best();
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    EXPECT_EQ(&ActiveSetKernels(), &SetKernelsFor(SimdLevel::kScalar));
  }
  {
    // Forcing above the detected level clamps to what the CPU can run.
    ScopedSimdLevel forced(SimdLevel::kAvx512);
    EXPECT_LE(static_cast<int>(ActiveSimdLevel()), static_cast<int>(best));
  }
}

// The dispatch invariant that matters: the miner returns byte-identical
// results under forced-scalar and under the best SIMD level this host has.
TEST(SimdKernelTest, MinerResultsIdenticalAcrossSimdLevels) {
  SyntheticKbConfig config;
  config.seed = 97;
  config.num_entities = 800;
  config.num_predicates = 48;
  config.num_classes = 10;
  config.num_facts = 6000;
  KnowledgeBase kb = BuildSyntheticKb(config);

  Rng rng(3);
  WorkloadConfig wconfig;
  wconfig.num_sets = 6;
  auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  ASSERT_FALSE(sets.empty());

  std::vector<RemiResult> scalar_results;
  {
    ScopedSimdLevel forced(SimdLevel::kScalar);
    RemiMiner miner(&kb, RemiOptions{});
    for (const auto& set : sets) {
      auto r = miner.MineRe(set.entities);
      ASSERT_TRUE(r.ok());
      scalar_results.push_back(std::move(*r));
    }
  }
  const SimdLevel best = DetectCpuFeatures().Best();
  {
    ScopedSimdLevel forced(best);
    RemiMiner miner(&kb, RemiOptions{});
    for (size_t i = 0; i < sets.size(); ++i) {
      auto r = miner.MineRe(sets[i].entities);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r->found, scalar_results[i].found) << "set " << i;
      EXPECT_EQ(r->expression, scalar_results[i].expression) << "set " << i;
      EXPECT_EQ(r->cost, scalar_results[i].cost) << "set " << i;
      EXPECT_EQ(r->stats.nodes_visited, scalar_results[i].stats.nodes_visited)
          << "set " << i;
      EXPECT_EQ(r->exceptions, scalar_results[i].exceptions) << "set " << i;
    }
  }
}

}  // namespace
}  // namespace remi
