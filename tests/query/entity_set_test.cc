#include "query/entity_set.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace remi {
namespace {

TEST(EntitySetTest, DefaultIsEmptyVector) {
  EntitySet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.is_bitmap());
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.begin(), set.end());
}

TEST(EntitySetTest, InitializerListSortsAndDeduplicates) {
  EntitySet set{5, 1, 3, 1, 5};
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.ToVector(), (std::vector<TermId>{1, 3, 5}));
  EXPECT_TRUE(set.Contains(3));
  EXPECT_FALSE(set.Contains(2));
}

TEST(EntitySetTest, RangeConstructorMatchesInitializerList) {
  const std::vector<TermId> ids{9, 2, 4, 2};
  EntitySet set(ids.begin(), ids.end());
  EXPECT_EQ(set, (EntitySet{2, 4, 9}));
}

TEST(EntitySetTest, PromotionBoundary) {
  // universe = 1024: bitmap from size 32 (= 1024 / kDensityDivisor) up.
  const size_t universe = 1024;
  ASSERT_EQ(EntitySet::kDensityDivisor, 32u);

  std::vector<TermId> below;
  for (TermId i = 0; i < 31; ++i) below.push_back(i * 2);
  EXPECT_FALSE(EntitySet::ShouldUseBitmap(below.size(), universe));
  EntitySet sparse = EntitySet::FromSorted(below, universe);
  EXPECT_FALSE(sparse.is_bitmap());

  std::vector<TermId> at;
  for (TermId i = 0; i < 32; ++i) at.push_back(i * 2);
  EXPECT_TRUE(EntitySet::ShouldUseBitmap(at.size(), universe));
  EntitySet dense = EntitySet::FromSorted(at, universe);
  EXPECT_TRUE(dense.is_bitmap());

  // Both representations answer identically.
  for (TermId id = 0; id < universe; ++id) {
    EXPECT_EQ(dense.Contains(id),
              std::binary_search(at.begin(), at.end(), id));
  }
  EXPECT_EQ(dense.ToVector(), at);
}

TEST(EntitySetTest, SmallUniverseNeverPromotes) {
  ASSERT_EQ(EntitySet::kMinBitmapUniverse, 256u);
  std::vector<TermId> all;
  for (TermId i = 0; i < 255; ++i) all.push_back(i);
  EntitySet set = EntitySet::FromSorted(all, 255);
  EXPECT_FALSE(set.is_bitmap());  // dense but tiny: vector stays
  EXPECT_EQ(set.size(), 255u);
}

TEST(EntitySetTest, UnknownUniverseGrowsToMaxIdAndMayPromote) {
  std::vector<TermId> ids;
  for (TermId i = 0; i < 4096; ++i) ids.push_back(i);
  // universe 0 grows to max id + 1 = 4096, fully dense -> bitmap.
  EntitySet set = EntitySet::FromSorted(ids, 0);
  EXPECT_TRUE(set.is_bitmap());
  EXPECT_EQ(set.universe(), 4096u);
}

TEST(EntitySetTest, IntersectionEmptyAndDisjoint) {
  EntitySet empty;
  EntitySet abc{1, 2, 3};
  EXPECT_EQ(empty.Intersect(abc), EntitySet{});
  EXPECT_EQ(abc.Intersect(empty), EntitySet{});
  EntitySet xyz{10, 20, 30};
  EXPECT_EQ(abc.Intersect(xyz), EntitySet{});
  EXPECT_EQ(IntersectSorted(abc, xyz), EntitySet{});
}

TEST(EntitySetTest, IntersectionNestedSets) {
  EntitySet inner{2, 4};
  EntitySet outer{1, 2, 3, 4, 5};
  EXPECT_EQ(inner.Intersect(outer), inner);
  EXPECT_EQ(outer.Intersect(inner), inner);
  EXPECT_TRUE(inner.SubsetOf(outer));
  EXPECT_FALSE(outer.SubsetOf(inner));
  EXPECT_TRUE(SortedSubset(inner, outer));
}

TEST(EntitySetTest, SubsetEdgeCases) {
  EntitySet empty;
  EntitySet one{1};
  EXPECT_TRUE(empty.SubsetOf(one));
  EXPECT_TRUE(empty.SubsetOf(empty));
  EXPECT_FALSE(one.SubsetOf(empty));
  EXPECT_TRUE(one.SubsetOf(one));
  EXPECT_FALSE(EntitySet({2, 5}).SubsetOf(EntitySet({1, 2, 3, 4})));
}

TEST(EntitySetTest, EqualityAcrossRepresentations) {
  std::vector<TermId> ids;
  for (TermId i = 0; i < 64; ++i) ids.push_back(i * 3);
  EntitySet vec = EntitySet::FromSorted(ids, 0);        // universe 190
  EntitySet map = EntitySet::FromSorted(ids, 2048);     // bitmap regime
  EXPECT_TRUE(map.is_bitmap());
  EXPECT_FALSE(vec.is_bitmap());
  EXPECT_EQ(vec, map);
  EXPECT_EQ(map, vec);
  EntitySet different = EntitySet::FromSorted({0, 3, 7}, 2048);
  EXPECT_NE(map, different);
}

TEST(EntitySetTest, MixedRepresentationIntersection) {
  std::vector<TermId> dense_ids;
  for (TermId i = 0; i < 512; ++i) dense_ids.push_back(i);
  EntitySet dense = EntitySet::FromSorted(dense_ids, 1024);
  ASSERT_TRUE(dense.is_bitmap());
  EntitySet sparse{5, 100, 511, 600};
  const EntitySet expected{5, 100, 511};
  EXPECT_EQ(dense.Intersect(sparse), expected);
  EXPECT_EQ(sparse.Intersect(dense), expected);
}

TEST(EntitySetTest, BitmapIntersectionDemotesSparseResult) {
  std::vector<TermId> a_ids, b_ids;
  for (TermId i = 0; i < 512; ++i) a_ids.push_back(i);
  for (TermId i = 500; i < 1012; ++i) b_ids.push_back(i);
  EntitySet a = EntitySet::FromSorted(a_ids, 2048);
  EntitySet b = EntitySet::FromSorted(b_ids, 2048);
  ASSERT_TRUE(a.is_bitmap());
  ASSERT_TRUE(b.is_bitmap());
  EntitySet both = a.Intersect(b);
  EXPECT_EQ(both.size(), 12u);  // 500..511
  EXPECT_FALSE(both.is_bitmap());
  EXPECT_EQ(both.ToVector(),
            (std::vector<TermId>{500, 501, 502, 503, 504, 505, 506, 507, 508,
                                 509, 510, 511}));
}

TEST(EntitySetTest, IterationVisitsAscendingIdsOnBothReps) {
  std::vector<TermId> ids{0, 63, 64, 65, 127, 128, 1000};
  for (const size_t universe : {size_t{0}, size_t{1024}}) {
    EntitySet set = EntitySet::FromSorted(ids, universe);
    std::vector<TermId> seen;
    for (const TermId id : set) seen.push_back(id);
    EXPECT_EQ(seen, ids) << "bitmap=" << set.is_bitmap();
  }
}

TEST(EntitySetTest, GallopingIntersectionMatchesLinear) {
  // One side much smaller than the other triggers the galloping path.
  std::vector<TermId> large;
  for (TermId i = 0; i < 5000; ++i) large.push_back(i * 2);
  EntitySet big = EntitySet::FromSorted(large, 0);
  EntitySet tiny{2, 3, 4444, 9998, 10001};
  EntitySet expected{2, 4444, 9998};
  EXPECT_EQ(big.Intersect(tiny), expected);
  EXPECT_EQ(tiny.Intersect(big), expected);
}

TEST(EntitySetTest, IntersectCountExactWhenUnderCap) {
  EntitySet a{1, 2, 3, 4, 5};
  EntitySet b{2, 4, 6, 8};
  // cap >= true count: exact.
  EXPECT_EQ(a.IntersectCount(b, 100), 2u);
  EXPECT_EQ(b.IntersectCount(a, 100), 2u);
  EXPECT_EQ(a.IntersectCount(b, 2), 2u);
  // cap < true count: only "> cap" is guaranteed.
  EXPECT_GT(a.IntersectCount(b, 1), 1u);
  EXPECT_EQ(a.IntersectCount(EntitySet{}, 0), 0u);
  EXPECT_EQ(EntitySet{}.IntersectCount(a, 0), 0u);
}

TEST(EntitySetTest, IntersectCountAgreesWithIntersectAcrossReps) {
  Rng rng(123);
  for (int round = 0; round < 40; ++round) {
    // Mix of universes around the bitmap boundary, including tiny ones.
    const size_t universe = 64 + rng.NextBounded(4096);
    std::vector<TermId> a_ids, b_ids;
    const size_t na = rng.NextBounded(universe);
    const size_t nb = rng.NextBounded(universe / 2 + 1);
    for (size_t i = 0; i < na; ++i) {
      a_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    const EntitySet a = EntitySet::FromUnsorted(a_ids, universe);
    const EntitySet b = EntitySet::FromUnsorted(b_ids, universe);
    const size_t expected = a.Intersect(b).size();
    // Unbounded cap: exact count on every representation pairing.
    EXPECT_EQ(a.IntersectCount(b, universe), expected)
        << "a.bitmap=" << a.is_bitmap() << " b.bitmap=" << b.is_bitmap();
    EXPECT_EQ(b.IntersectCount(a, universe), expected);
    // Capped: <= cap is exact, > cap only means "exceeds cap".
    const size_t cap = rng.NextBounded(universe);
    const size_t counted = a.IntersectCount(b, cap);
    if (counted <= cap) {
      EXPECT_EQ(counted, expected);
    } else {
      EXPECT_GT(expected, cap);
    }
  }
}

TEST(EntitySetTest, IntersectIntoMatchesIntersectAcrossReps) {
  Rng rng(321);
  EntitySet out;  // deliberately reused across all rounds (arena frame)
  for (int round = 0; round < 40; ++round) {
    const size_t universe = 64 + rng.NextBounded(4096);
    std::vector<TermId> a_ids, b_ids;
    const size_t na = rng.NextBounded(universe);
    const size_t nb = rng.NextBounded(universe);
    for (size_t i = 0; i < na; ++i) {
      a_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    const EntitySet a = EntitySet::FromUnsorted(a_ids, universe);
    const EntitySet b = EntitySet::FromUnsorted(b_ids, universe);
    const EntitySet oracle = a.Intersect(b);
    EntitySet::IntersectInto(a, b, &out);
    EXPECT_EQ(out, oracle) << "round " << round << " a.bitmap="
                           << a.is_bitmap() << " b.bitmap=" << b.is_bitmap();
    // Representation parity too: the frame must adapt exactly like the
    // allocating path so downstream operand dispatch is unchanged.
    EXPECT_EQ(out.is_bitmap(), oracle.is_bitmap()) << "round " << round;
    EXPECT_EQ(out.size(), oracle.size());
    EXPECT_EQ(out.universe(), oracle.universe());
    EXPECT_EQ(out.ToVector(), oracle.ToVector());
  }
}

TEST(EntitySetTest, IntersectIntoBoundaryUniverses) {
  // Empty x empty, empty universe, and sets straddling word boundaries.
  EntitySet out;
  EntitySet::IntersectInto(EntitySet{}, EntitySet{}, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(out.is_bitmap());

  std::vector<TermId> edges{0, 63, 64, 127, 128, 191, 192, 255};
  EntitySet a = EntitySet::FromSorted(edges, 256);
  std::vector<TermId> dense;
  for (TermId i = 0; i < 256; ++i) dense.push_back(i);
  EntitySet b = EntitySet::FromSorted(dense, 256);
  ASSERT_TRUE(b.is_bitmap());
  EntitySet::IntersectInto(a, b, &out);
  EXPECT_EQ(out, a);
  EXPECT_EQ(a.IntersectCount(b, 256), edges.size());

  // Different universes: result adopts the larger one (as Intersect does).
  EntitySet small = EntitySet::FromSorted({1, 2, 3}, 8);
  EntitySet large = EntitySet::FromSorted({2, 3, 4}, 4096);
  EntitySet::IntersectInto(small, large, &out);
  EXPECT_EQ(out, small.Intersect(large));
  EXPECT_EQ(out.universe(), small.Intersect(large).universe());
}

TEST(EntitySetTest, MemoryBytesTracksBufferCapacity) {
  EntitySet empty;
  EXPECT_EQ(empty.MemoryBytes(), 0u);
  EntitySet vec{1, 2, 3};
  EXPECT_GE(vec.MemoryBytes(), 3 * sizeof(TermId));
  std::vector<TermId> dense;
  for (TermId i = 0; i < 512; ++i) dense.push_back(i);
  EntitySet map = EntitySet::FromSorted(dense, 512);
  ASSERT_TRUE(map.is_bitmap());
  EXPECT_GE(map.MemoryBytes(), (512 / 64) * sizeof(uint64_t));
}

TEST(EntitySetTest, RandomizedIntersectionAgainstOracle) {
  Rng rng(42);
  for (int round = 0; round < 30; ++round) {
    const size_t universe = 512 + rng.NextBounded(2048);
    std::vector<TermId> a_ids, b_ids;
    const size_t na = rng.NextBounded(universe);
    const size_t nb = rng.NextBounded(universe);
    for (size_t i = 0; i < na; ++i) {
      a_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b_ids.push_back(static_cast<TermId>(rng.NextBounded(universe)));
    }
    EntitySet a = EntitySet::FromUnsorted(a_ids, universe);
    EntitySet b = EntitySet::FromUnsorted(b_ids, universe);

    std::sort(a_ids.begin(), a_ids.end());
    a_ids.erase(std::unique(a_ids.begin(), a_ids.end()), a_ids.end());
    std::sort(b_ids.begin(), b_ids.end());
    b_ids.erase(std::unique(b_ids.begin(), b_ids.end()), b_ids.end());
    std::vector<TermId> expected;
    std::set_intersection(a_ids.begin(), a_ids.end(), b_ids.begin(),
                          b_ids.end(), std::back_inserter(expected));

    const EntitySet both = a.Intersect(b);
    EXPECT_EQ(both.ToVector(), expected)
        << "round " << round << " a.bitmap=" << a.is_bitmap()
        << " b.bitmap=" << b.is_bitmap();
    EXPECT_EQ(both, b.Intersect(a));
    EXPECT_TRUE(both.SubsetOf(a));
    EXPECT_TRUE(both.SubsetOf(b));
  }
}

}  // namespace
}  // namespace remi
