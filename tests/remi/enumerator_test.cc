#include "remi/enumerator.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class EnumeratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    eval_ = new Evaluator(kb_);
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete kb_;
    eval_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static bool Contains(const std::vector<SubgraphExpression>& v,
                       const SubgraphExpression& e) {
    return std::find(v.begin(), v.end(), e) != v.end();
  }

  static KnowledgeBase* kb_;
  static Evaluator* eval_;
};

KnowledgeBase* EnumeratorTest::kb_ = nullptr;
Evaluator* EnumeratorTest::eval_ = nullptr;

TEST_F(EnumeratorTest, EveryEnumeratedExpressionMatchesTheEntity) {
  SubgraphEnumerator enumerator(eval_);
  for (const char* name : {"Rennes", "Guyana", "Marie_Curie", "Agrofert"}) {
    const TermId t = Id(name);
    for (const auto& rho : enumerator.EnumerateFor(t)) {
      EXPECT_TRUE(eval_->Matches(t, rho))
          << name << " does not match " << rho.ToString(kb_->dict());
    }
  }
}

TEST_F(EnumeratorTest, ProducesAtomForDirectFact) {
  SubgraphEnumerator enumerator(eval_);
  auto exprs = enumerator.EnumerateFor(Id("Paris"));
  EXPECT_TRUE(Contains(
      exprs, SubgraphExpression::Atom(Id("capitalOf"), Id("France"))));
}

TEST_F(EnumeratorTest, ProducesPathThroughNonProminentEntity) {
  SubgraphEnumerator enumerator(eval_);
  // Müller: supervisorOf(x, y) ∧ supervisorOf(y, Einstein) via the
  // non-prominent Kleiner.
  auto exprs = enumerator.EnumerateFor(Id("Johann_J_Mueller"));
  EXPECT_TRUE(Contains(exprs, SubgraphExpression::Path(
                                  Id("supervisorOf"), Id("supervisorOf"),
                                  Id("Albert_Einstein"))));
}

TEST_F(EnumeratorTest, ProducesClosedShapes) {
  SubgraphEnumerator enumerator(eval_);
  // Paris: cityIn(x,y) ∧ capitalOf(x,y) share object France.
  auto exprs = enumerator.EnumerateFor(Id("Paris"));
  EXPECT_TRUE(Contains(
      exprs, SubgraphExpression::TwinPair(Id("cityIn"), Id("capitalOf"))));
}

TEST_F(EnumeratorTest, StandardLanguageOnlyAtoms) {
  EnumeratorOptions options;
  options.extended_language = false;
  SubgraphEnumerator enumerator(eval_, options);
  auto exprs = enumerator.EnumerateFor(Id("Paris"));
  ASSERT_FALSE(exprs.empty());
  for (const auto& rho : exprs) {
    EXPECT_EQ(rho.shape, SubgraphShape::kAtom);
  }
}

TEST_F(EnumeratorTest, ExtendedLanguageIsStrictlyLarger) {
  EnumeratorOptions standard;
  standard.extended_language = false;
  SubgraphEnumerator std_enum(eval_, standard);
  SubgraphEnumerator ext_enum(eval_);
  for (const char* name : {"Paris", "Rennes", "Guyana"}) {
    EXPECT_LT(std_enum.EnumerateFor(Id(name)).size(),
              ext_enum.EnumerateFor(Id(name)).size())
        << name;
  }
}

TEST_F(EnumeratorTest, LabelPredicateNeverAppears) {
  SubgraphEnumerator enumerator(eval_);
  for (const auto& rho : enumerator.EnumerateFor(Id("Paris"))) {
    EXPECT_NE(rho.p0, kb_->label_predicate());
    EXPECT_NE(rho.p1, kb_->label_predicate());
    EXPECT_NE(rho.p2, kb_->label_predicate());
  }
}

TEST_F(EnumeratorTest, TypeAtomsCanBeDisabled) {
  EnumeratorOptions options;
  options.include_type_atoms = false;
  SubgraphEnumerator enumerator(eval_, options);
  for (const auto& rho : enumerator.EnumerateFor(Id("Paris"))) {
    EXPECT_NE(rho.p0, kb_->type_predicate());
  }
}

TEST_F(EnumeratorTest, InversePredicatesCanBeDisabled) {
  EnumeratorOptions options;
  options.include_inverse_predicates = false;
  SubgraphEnumerator enumerator(eval_, options);
  for (const auto& rho : enumerator.EnumerateFor(Id("France"))) {
    EXPECT_FALSE(kb_->IsInversePredicate(rho.p0));
    if (rho.p1 != kNullTerm) {
      EXPECT_FALSE(kb_->IsInversePredicate(rho.p1));
    }
    if (rho.p2 != kNullTerm) {
      EXPECT_FALSE(kb_->IsInversePredicate(rho.p2));
    }
  }
}

TEST_F(EnumeratorTest, ProminentObjectsAreNotExpanded) {
  // Controlled KB: t's only entity-valued fact points at a hub that is
  // top-prominent, so no multi-atom shapes may be derived from it.
  KbBuilder builder;
  builder.Fact("t", "p", "hub");
  builder.Fact("hub", "q", "elsewhere");
  for (int i = 0; i < 20; ++i) {
    // Make hub by far the most frequent entity.
    builder.Fact("filler" + std::to_string(i), "p", "hub");
  }
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(builder).Build(kb_options);
  Evaluator eval(&kb);
  EnumeratorOptions options;
  options.prominent_object_fraction = 0.05;
  SubgraphEnumerator enumerator(&eval, options);
  const TermId hub = *FindEntity(kb, "hub");
  ASSERT_TRUE(kb.IsTopProminentEntity(hub, 0.05));
  auto exprs = enumerator.EnumerateFor(*FindEntity(kb, "t"));
  ASSERT_FALSE(exprs.empty());
  for (const auto& rho : exprs) {
    EXPECT_NE(rho.shape, SubgraphShape::kPath)
        << "prominent hub was expanded: " << rho.ToString(kb.dict());
    EXPECT_NE(rho.shape, SubgraphShape::kPathStar);
  }
}

TEST_F(EnumeratorTest, DisablingProminencePruningAddsExpressions) {
  EnumeratorOptions pruned;
  EnumeratorOptions unpruned;
  unpruned.prune_prominent_expansion = false;
  SubgraphEnumerator a(eval_, pruned);
  SubgraphEnumerator b(eval_, unpruned);
  EXPECT_LT(a.EnumerateFor(Id("Paris")).size(),
            b.EnumerateFor(Id("Paris")).size());
}

TEST_F(EnumeratorTest, MaxSubgraphsCapsOutput) {
  EnumeratorOptions options;
  options.max_subgraphs = 5;
  SubgraphEnumerator enumerator(eval_, options);
  EXPECT_LE(enumerator.EnumerateFor(Id("Paris")).size(), 5u);
}

TEST_F(EnumeratorTest, UnknownEntityYieldsNothing) {
  SubgraphEnumerator enumerator(eval_);
  // A class IRI has no outgoing facts other than... none as subject.
  const TermId fresh = 999999;
  EXPECT_TRUE(enumerator.EnumerateFor(fresh).empty());
}

TEST_F(EnumeratorTest, CommonSubgraphsAreSatisfiedByAllTargets) {
  SubgraphEnumerator enumerator(eval_);
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  auto common = enumerator.CommonSubgraphs(targets);
  ASSERT_FALSE(common.empty());
  for (const auto& rho : common) {
    for (const TermId t : targets) {
      EXPECT_TRUE(eval_->Matches(t, rho)) << rho.ToString(kb_->dict());
    }
  }
  // The Figure 1 building blocks are present.
  EXPECT_TRUE(Contains(common, SubgraphExpression::Atom(Id("belongedTo"),
                                                        Id("Brittany"))));
  EXPECT_TRUE(Contains(
      common, SubgraphExpression::Atom(Id("placeOf"), Id("Epitech"))));
  EXPECT_TRUE(Contains(common, SubgraphExpression::Path(
                                   Id("mayor"), Id("party"),
                                   Id("Socialist_Party"))));
}

TEST_F(EnumeratorTest, CommonSubgraphsExcludeTargetConstants) {
  SubgraphEnumerator enumerator(eval_);
  // Guyana borders Suriname: when describing the pair, neither may appear
  // as a constant.
  const std::vector<TermId> targets{Id("Guyana"), Id("Suriname")};
  for (const auto& rho : enumerator.CommonSubgraphs(targets)) {
    EXPECT_NE(rho.c1, Id("Guyana"));
    EXPECT_NE(rho.c1, Id("Suriname"));
    EXPECT_NE(rho.c2, Id("Guyana"));
    EXPECT_NE(rho.c2, Id("Suriname"));
  }
}

TEST_F(EnumeratorTest, CommonSubgraphsOfSingleton) {
  SubgraphEnumerator enumerator(eval_);
  const std::vector<TermId> targets{Id("Marie_Curie")};
  auto common = enumerator.CommonSubgraphs(targets);
  EXPECT_TRUE(Contains(common, SubgraphExpression::Atom(
                                   Id("diedOf"), Id("Aplastic_Anemia"))));
}

TEST_F(EnumeratorTest, CommonSubgraphsEmptyTargets) {
  SubgraphEnumerator enumerator(eval_);
  EXPECT_TRUE(enumerator.CommonSubgraphs(EntitySet{}).empty());
}

TEST_F(EnumeratorTest, CountSubgraphsMatchesEnumeration) {
  SubgraphEnumerator enumerator(eval_);
  const TermId t = Id("Rennes");
  const auto counts = enumerator.CountSubgraphs(t, 1);
  EXPECT_EQ(counts.TotalOneVar(), enumerator.EnumerateFor(t).size());
  EXPECT_EQ(counts.chains_two_vars, 0u);
}

TEST_F(EnumeratorTest, SecondVariableAddsChains) {
  SubgraphEnumerator enumerator(eval_);
  const auto counts = enumerator.CountSubgraphs(Id("Rennes"), 2);
  EXPECT_GT(counts.chains_two_vars, 0u);
}

TEST_F(EnumeratorTest, BlankNodeAtomsSkippedButPathsDerived) {
  // Build a KB where t's only interesting fact goes through a blank node.
  KbBuilder b;
  b.Fact("t", "p", "other");
  const TermId t_id = b.Iri("t");
  const TermId p_id = b.Iri("p");
  const TermId q_id = b.Iri("q");
  const TermId blank = b.Blank("hidden");
  const TermId target = b.Iri("I");
  b.Add(t_id, p_id, blank);
  b.Add(blank, q_id, target);
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  Evaluator eval(&kb);
  SubgraphEnumerator enumerator(&eval);
  auto t = FindEntity(kb, "t");
  ASSERT_TRUE(t.ok());
  auto exprs = enumerator.EnumerateFor(*t);
  const TermId p = *kb.dict().Lookup(TermKind::kIri, "http://remi.example/p");
  const TermId q = *kb.dict().Lookup(TermKind::kIri, "http://remi.example/q");
  const TermId i = *kb.dict().Lookup(TermKind::kIri, "http://remi.example/I");
  bool has_blank_atom = false;
  bool has_hidden_path = false;
  for (const auto& rho : exprs) {
    if (rho.shape == SubgraphShape::kAtom && rho.p0 == p &&
        kb.dict().kind(rho.c1) == TermKind::kBlank) {
      has_blank_atom = true;
    }
    if (rho == SubgraphExpression::Path(p, q, i)) has_hidden_path = true;
  }
  EXPECT_FALSE(has_blank_atom) << "atoms with blank objects must be skipped";
  EXPECT_TRUE(has_hidden_path) << "paths hiding blanks must be derived";
}

}  // namespace
}  // namespace remi
