// P-REMI (§3.4): the parallel variant must agree with sequential REMI on
// every target set — same found/not-found outcome and same minimal cost.

#include <gtest/gtest.h>

#include <thread>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "remi/remi.h"

namespace remi {
namespace {

class PremiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
};

KnowledgeBase* PremiTest::kb_ = nullptr;

TEST_F(PremiTest, EffectiveThreadsClampsToHardware) {
  RemiOptions options;
  options.num_threads = 1 << 20;  // absurd request
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(options.EffectiveThreads(), static_cast<int>(hw));
  } else {
    EXPECT_EQ(options.EffectiveThreads(), options.num_threads);
  }
  options.clamp_threads_to_hardware = false;
  EXPECT_EQ(options.EffectiveThreads(), options.num_threads);
  // Sequential configs are never touched by the clamp.
  options.clamp_threads_to_hardware = true;
  options.num_threads = 1;
  EXPECT_EQ(options.EffectiveThreads(), 1);

  // A clamped miner still mines correctly (it may fall back to the
  // sequential path on few-core machines — results must be identical
  // either way).
  RemiOptions clamped;
  clamped.num_threads = 64;
  RemiMiner clamped_miner(kb_, clamped);
  RemiMiner seq_miner(kb_, RemiOptions{});
  auto a = seq_miner.MineRe({Id("Paris")});
  auto b = clamped_miner.MineRe({Id("Paris")});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->found, b->found);
  EXPECT_EQ(a->expression, b->expression);
}

TEST_F(PremiTest, AgreesWithSequentialOnSingleton) {
  RemiOptions seq;
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner seq_miner(kb_, seq);
  RemiMiner par_miner(kb_, par);
  for (const char* name : {"Paris", "Marie_Curie", "Agrofert", "Guyana"}) {
    auto a = seq_miner.MineRe({Id(name)});
    auto b = par_miner.MineRe({Id(name)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found) << name;
    if (a->found) {
      EXPECT_NEAR(a->cost, b->cost, 1e-9) << name;
      // Deterministic tie-breaking: identical expressions too.
      EXPECT_EQ(a->expression, b->expression) << name;
    }
  }
}

TEST_F(PremiTest, AgreesWithSequentialOnPairs) {
  RemiOptions par;
  par.num_threads = 3;
  par.clamp_threads_to_hardware = false;
  RemiMiner seq_miner(kb_, RemiOptions{});
  RemiMiner par_miner(kb_, par);
  const std::vector<std::vector<TermId>> target_sets = {
      {Id("Rennes"), Id("Nantes")},
      {Id("Guyana"), Id("Suriname")},
      {Id("Ecuador"), Id("Peru")},
      {Id("The_Hobbit_1"), Id("The_Hobbit_2")},
  };
  for (const auto& targets : target_sets) {
    auto a = seq_miner.MineRe(targets);
    auto b = par_miner.MineRe(targets);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found);
    if (a->found) {
      EXPECT_NEAR(a->cost, b->cost, 1e-9);
      EXPECT_EQ(a->expression, b->expression);
    }
  }
}

TEST_F(PremiTest, NoSolutionSignalTerminatesAllThreads) {
  KbBuilder b;
  b.Fact("twin1", "p", "v");
  b.Fact("twin2", "p", "v");
  b.Fact("twin1", "q", "w");
  b.Fact("twin2", "q", "w");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  RemiOptions options;
  options.num_threads = 4;
  options.clamp_threads_to_hardware = false;
  RemiMiner miner(&kb, options);
  auto result = miner.MineRe({*FindEntity(kb, "twin1")});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
}

TEST_F(PremiTest, ManyThreadsMoreThanRoots) {
  RemiOptions options;
  options.num_threads = 32;  // far more threads than queue entries
  options.clamp_threads_to_hardware = false;
  RemiMiner miner(kb_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
}

TEST_F(PremiTest, RepeatedRunsAreDeterministic) {
  RemiOptions options;
  options.num_threads = 4;
  options.clamp_threads_to_hardware = false;
  RemiMiner miner(kb_, options);
  auto first = miner.MineRe({Id("Rennes"), Id("Nantes")});
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto again = miner.MineRe({Id("Rennes"), Id("Nantes")});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->expression, first->expression);
    EXPECT_NEAR(again->cost, first->cost, 1e-12);
  }
}

// Property sweep: across a sampled workload, parallel and sequential REMI
// must agree on cost for every set (the expressions may differ only if
// there are cost ties, which the deterministic tie-break also removes).
class PremiWorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(PremiWorkloadTest, ParallelMatchesSequentialOnWorkload) {
  KnowledgeBase kb = BuildCuratedKb();
  Rng rng(GetParam());
  WorkloadConfig config;
  config.num_sets = 12;
  auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  auto sets = SampleEntitySets(kb, classes, config, &rng);
  ASSERT_FALSE(sets.empty());

  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner seq_miner(&kb, RemiOptions{});
  RemiMiner par_miner(&kb, par);
  for (const auto& set : sets) {
    auto a = seq_miner.MineRe(set.entities);
    auto b = par_miner.MineRe(set.entities);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found);
    if (a->found) {
      EXPECT_NEAR(a->cost, b->cost, 1e-9);
      EXPECT_EQ(a->expression, b->expression);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PremiWorkloadTest, ::testing::Values(1, 2, 3));

// Property: on randomized synthetic KBs, P-REMI at 2, 4 and 8 threads
// returns the same cost — and, under the deterministic tie-break, the
// same expression — as sequential REMI, for every sampled target set.
// The 8-thread runs exercise subtree spilling (more workers than roots
// in flight means idle workers to steal spilled ranges).
class PremiSyntheticPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PremiSyntheticPropertyTest, ThreadCountsAgreeWithSequential) {
  SyntheticKbConfig config;
  config.seed = static_cast<uint64_t>(GetParam()) * 977 + 11;
  config.num_entities = 700;
  config.num_predicates = 48;
  config.num_classes = 10;
  config.num_facts = 5200;
  KnowledgeBase kb = BuildSyntheticKb(config);

  Rng rng(static_cast<uint64_t>(GetParam()));
  WorkloadConfig wconfig;
  wconfig.num_sets = 10;
  auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  ASSERT_FALSE(sets.empty());

  RemiMiner seq_miner(&kb, RemiOptions{});
  for (const int threads : {2, 4, 8}) {
    RemiOptions par;
    par.num_threads = threads;
    par.clamp_threads_to_hardware = false;
    RemiMiner par_miner(&kb, par);
    for (const auto& set : sets) {
      auto a = seq_miner.MineRe(set.entities);
      auto b = par_miner.MineRe(set.entities);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->found, b->found) << "threads=" << threads;
      if (a->found) {
        EXPECT_NEAR(a->cost, b->cost, 1e-9) << "threads=" << threads;
        EXPECT_EQ(a->expression, b->expression) << "threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PremiSyntheticPropertyTest,
                         ::testing::Values(1, 2, 3));

// Aggressive spilling (spill_depth deep enough to cover the whole search
// tree) must not change results either.
TEST_F(PremiTest, DeepSpillDepthAgreesWithSequential) {
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  par.spill_depth = 64;
  RemiMiner seq_miner(kb_, RemiOptions{});
  RemiMiner par_miner(kb_, par);
  for (const char* name : {"Paris", "Marie_Curie", "Rennes"}) {
    auto a = seq_miner.MineRe({Id(name)});
    auto b = par_miner.MineRe({Id(name)});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found) << name;
    if (a->found) {
      EXPECT_NEAR(a->cost, b->cost, 1e-9) << name;
      EXPECT_EQ(a->expression, b->expression) << name;
    }
  }
}

}  // namespace
}  // namespace remi
