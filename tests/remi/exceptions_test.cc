// MineReWithExceptions (§6 future work: relaxed unambiguity).

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "remi/remi.h"

namespace remi {
namespace {

class ExceptionsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    miner_ = new RemiMiner(kb_, RemiOptions{});
  }
  static void TearDownTestSuite() {
    delete miner_;
    delete kb_;
    miner_ = nullptr;
    kb_ = nullptr;
  }
  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }
  static KnowledgeBase* kb_;
  static RemiMiner* miner_;
};

KnowledgeBase* ExceptionsTest::kb_ = nullptr;
RemiMiner* ExceptionsTest::miner_ = nullptr;

TEST_F(ExceptionsTest, ZeroExceptionsEqualsStrictMining) {
  for (const char* name : {"Paris", "Marie_Curie", "Guyana"}) {
    auto strict = miner_->MineRe({Id(name)});
    auto relaxed = miner_->MineReWithExceptions({Id(name)}, 0);
    ASSERT_TRUE(strict.ok());
    ASSERT_TRUE(relaxed.ok());
    EXPECT_EQ(strict->found, relaxed->found);
    if (strict->found) {
      EXPECT_EQ(strict->expression, relaxed->expression);
      EXPECT_TRUE(relaxed->exceptions.empty());
    }
  }
}

TEST_F(ExceptionsTest, StrictResultsCarryNoExceptions) {
  auto result = miner_->MineRe({Id("Rennes"), Id("Nantes")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_TRUE(result->exceptions.empty());
}

TEST_F(ExceptionsTest, RelaxedCostNeverExceedsStrictCost) {
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  auto strict = miner_->MineRe(targets);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(strict->found);
  for (size_t k : {1u, 2u, 5u}) {
    auto relaxed = miner_->MineReWithExceptions(targets, k);
    ASSERT_TRUE(relaxed.ok());
    ASSERT_TRUE(relaxed->found);
    EXPECT_LE(relaxed->cost, strict->cost + 1e-9) << "k=" << k;
    EXPECT_LE(relaxed->exceptions.size(), k);
  }
}

TEST_F(ExceptionsTest, ExceptionsAreActualMatchesOutsideTargets) {
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  auto relaxed = miner_->MineReWithExceptions(targets, 2);
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(relaxed->found);
  for (const TermId e : relaxed->exceptions) {
    EXPECT_TRUE(miner_->evaluator()->Matches(e, relaxed->expression));
    EXPECT_EQ(std::count(targets.begin(), targets.end(), e), 0);
  }
  // Every target still matches.
  for (const TermId t : targets) {
    EXPECT_TRUE(miner_->evaluator()->Matches(t, relaxed->expression));
  }
}

TEST_F(ExceptionsTest, RelaxationDescribesIndistinguishableTwins) {
  // Twins with identical facts have no strict RE individually, but with
  // one exception the shared description works.
  KbBuilder b;
  b.Fact("twin1", "p", "v");
  b.Fact("twin2", "p", "v");
  b.Fact("other", "p", "w");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  RemiMiner miner(&kb, RemiOptions{});
  const TermId twin1 = *FindEntity(kb, "twin1");
  const TermId twin2 = *FindEntity(kb, "twin2");

  auto strict = miner.MineRe({twin1});
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->found);

  auto relaxed = miner.MineReWithExceptions({twin1}, 1);
  ASSERT_TRUE(relaxed.ok());
  ASSERT_TRUE(relaxed->found);
  ASSERT_EQ(relaxed->exceptions.size(), 1u);
  EXPECT_EQ(relaxed->exceptions[0], twin2);
}

TEST_F(ExceptionsTest, LargerBudgetsOnlyImprove) {
  const std::vector<TermId> targets{Id("Guyana"), Id("Suriname")};
  double prev = CostModel::kInfiniteCost;
  for (size_t k : {0u, 1u, 3u, 6u}) {
    auto result = miner_->MineReWithExceptions(targets, k);
    ASSERT_TRUE(result.ok());
    if (result->found) {
      EXPECT_LE(result->cost, prev + 1e-9);
      prev = result->cost;
    }
  }
}

TEST_F(ExceptionsTest, ParallelAgreesWithSequential) {
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner par_miner(kb_, par);
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  for (size_t k : {1u, 3u}) {
    auto a = miner_->MineReWithExceptions(targets, k);
    auto b = par_miner.MineReWithExceptions(targets, k);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found);
    if (a->found) {
      EXPECT_NEAR(a->cost, b->cost, 1e-9);
      EXPECT_EQ(a->expression, b->expression);
    }
  }
}

TEST_F(ExceptionsTest, EmptyTargetsStillInvalid) {
  EXPECT_TRUE(
      miner_->MineReWithExceptions({}, 3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace remi
