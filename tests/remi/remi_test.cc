#include "remi/remi.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class RemiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    miner_ = new RemiMiner(kb_, RemiOptions{});
  }
  static void TearDownTestSuite() {
    delete miner_;
    delete kb_;
    miner_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  // Checks the REMI postcondition: the result is an actual RE for T.
  void ExpectIsRe(const RemiResult& result,
                  const std::vector<TermId>& targets) {
    ASSERT_TRUE(result.found);
    EXPECT_TRUE(miner_->evaluator()->IsReferringExpression(
        result.expression, MatchSet(targets.begin(), targets.end())))
        << result.expression.ToString(kb_->dict());
  }

  static KnowledgeBase* kb_;
  static RemiMiner* miner_;
};

KnowledgeBase* RemiTest::kb_ = nullptr;
RemiMiner* RemiTest::miner_ = nullptr;

TEST_F(RemiTest, EmptyTargetsIsInvalidArgument) {
  EXPECT_TRUE(miner_->MineRe({}).status().IsInvalidArgument());
  EXPECT_TRUE(miner_->RankedCommonSubgraphs(MatchSet{}).status().IsInvalidArgument());
}

TEST_F(RemiTest, ParisIsTheCapitalOfFrance) {
  auto result = miner_->MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  ExpectIsRe(*result, {Id("Paris")});
  // The headline example: capitalOf(x, France) identifies Paris. Under the
  // paper's code lengths a rank-1 concept costs log2(1) = 0 bits, so REMI
  // may prepend free atoms like type(x, City) — the exact artifact §4.1.1
  // reports ("people deem type simplest whereas REMI ranks it second or
  // third"). The answer must contain the capitalOf atom and cost exactly
  // as much as that atom alone.
  const auto capital_atom =
      SubgraphExpression::Atom(Id("capitalOf"), Id("France"));
  EXPECT_TRUE(std::find(result->expression.parts.begin(),
                        result->expression.parts.end(),
                        capital_atom) != result->expression.parts.end())
      << result->expression.ToString(kb_->dict());
  EXPECT_NEAR(result->cost, miner_->cost_model().SubgraphCost(capital_atom),
              1e-9);
}

TEST_F(RemiTest, RennesNantesNeedsAConjunction) {
  auto result = miner_->MineRe({Id("Rennes"), Id("Nantes")});
  ASSERT_TRUE(result.ok());
  ExpectIsRe(*result, {Id("Rennes"), Id("Nantes")});
  // No single common subgraph expression separates {Rennes, Nantes} from
  // both Brest (Brittany) and Paris (socialist mayor + Epitech), so the
  // answer must be a conjunction — exactly Figure 1's story.
  EXPECT_GE(result->expression.parts.size(), 2u);
}

TEST_F(RemiTest, GuyanaSurinameMatchesPaperExample) {
  auto result = miner_->MineRe({Id("Guyana"), Id("Suriname")});
  ASSERT_TRUE(result.ok());
  ExpectIsRe(*result, {Id("Guyana"), Id("Suriname")});
}

TEST_F(RemiTest, MuellerUsesTheEinsteinChainOrTheKleinerAtom) {
  auto result = miner_->MineRe({Id("Johann_J_Mueller")});
  ASSERT_TRUE(result.ok());
  ExpectIsRe(*result, {Id("Johann_J_Mueller")});
}

TEST_F(RemiTest, ResultIsTheMinimumOverAllRankedPrefixes) {
  // Brute-force check on a small target set: no single subgraph expression
  // that is an RE may be cheaper than REMI's answer.
  const std::vector<TermId> targets{Id("Marie_Curie")};
  auto result = miner_->MineRe(targets);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  auto ranked = miner_->RankedCommonSubgraphs(targets);
  ASSERT_TRUE(ranked.ok());
  MatchSet sorted_targets{Id("Marie_Curie")};
  for (const auto& r : *ranked) {
    Expression single = Expression::Top().Conjoin(r.expression);
    if (miner_->evaluator()->IsReferringExpression(single, sorted_targets)) {
      EXPECT_LE(result->cost, r.cost + 1e-9)
          << "cheaper single-part RE exists: "
          << r.expression.ToString(kb_->dict());
    }
  }
}

TEST_F(RemiTest, NoSolutionForIndistinguishableEntities) {
  // Two freshly built twin entities with identical descriptions cannot be
  // separated: asking for one of them alone must fail.
  KbBuilder b;
  b.Fact("twin1", "p", "v");
  b.Fact("twin2", "p", "v");
  b.Type("twin1", "T");
  b.Type("twin2", "T");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  RemiMiner miner(&kb, RemiOptions{});
  auto result = miner.MineRe({*FindEntity(kb, "twin1")});
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
  EXPECT_TRUE(result->expression.IsTop());
  EXPECT_EQ(result->cost, CostModel::kInfiniteCost);
}

TEST_F(RemiTest, TwinsAreDescribableTogether) {
  KbBuilder b;
  b.Fact("twin1", "p", "v");
  b.Fact("twin2", "p", "v");
  b.Fact("other", "p", "w");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  RemiMiner miner(&kb, RemiOptions{});
  auto result =
      miner.MineRe({*FindEntity(kb, "twin1"), *FindEntity(kb, "twin2")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
}

TEST_F(RemiTest, TargetWithNoFactsHasNoRe) {
  // A class entity never appears as a subject of content facts.
  auto result = miner_->MineRe({Id("Romance")});
  ASSERT_TRUE(result.ok());
  // langFamily⁻¹? Romance is an object of langFamily; inverses may give it
  // facts. Either way the result must honour the RE postcondition.
  if (result->found) {
    MatchSet targets{Id("Romance")};
    EXPECT_TRUE(miner_->evaluator()->IsReferringExpression(
        result->expression, targets));
  }
}

TEST_F(RemiTest, DuplicateTargetsAreDeduplicated) {
  auto a = miner_->MineRe({Id("Paris"), Id("Paris")});
  auto b = miner_->MineRe({Id("Paris")});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->expression, b->expression);
}

TEST_F(RemiTest, RankedQueueIsSortedByCost) {
  auto ranked = miner_->RankedCommonSubgraphs(MatchSet{Id("Rennes")});
  ASSERT_TRUE(ranked.ok());
  ASSERT_GT(ranked->size(), 3u);
  for (size_t i = 1; i < ranked->size(); ++i) {
    EXPECT_LE((*ranked)[i - 1].cost, (*ranked)[i].cost);
  }
}

TEST_F(RemiTest, StatsArePopulated) {
  auto result = miner_->MineRe({Id("Rennes"), Id("Nantes")});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.num_common_subgraphs, 0u);
  EXPECT_GT(result->stats.nodes_visited, 0u);
  EXPECT_GE(result->stats.queue_build_seconds, 0.0);
  EXPECT_GE(result->stats.search_seconds, 0.0);
}

TEST_F(RemiTest, StandardLanguageBiasStillWorks) {
  RemiOptions options;
  options.enumerator.extended_language = false;
  RemiMiner miner(kb_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  for (const auto& part : result->expression.parts) {
    EXPECT_EQ(part.shape, SubgraphShape::kAtom);
  }
}

TEST_F(RemiTest, ExtendedBiasFindsSolutionsStandardCannot) {
  // Müller in a world where only the chain describes him: strip his
  // direct unique atom by targeting an entity whose atoms are shared.
  KbBuilder b;
  b.Fact("m1", "sup", "k");
  b.Fact("k", "sup", "e");
  b.Fact("m2", "sup", "k2");
  b.Fact("k2", "sup", "e2");
  b.Type("m1", "P");
  b.Type("m2", "P");
  b.Type("k", "P");
  b.Type("k2", "P");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);

  RemiOptions std_options;
  std_options.enumerator.extended_language = false;
  // Atoms available for m1: sup(x, k) — unique! Disable nothing; instead
  // check the extended result is at least as good.
  RemiMiner std_miner(&kb, std_options);
  RemiMiner ext_miner(&kb, RemiOptions{});
  auto m1 = *FindEntity(kb, "m1");
  auto std_result = std_miner.MineRe({m1});
  auto ext_result = ext_miner.MineRe({m1});
  ASSERT_TRUE(std_result.ok());
  ASSERT_TRUE(ext_result.ok());
  ASSERT_TRUE(ext_result->found);
  if (std_result->found) {
    EXPECT_LE(ext_result->cost, std_result->cost + 1e-9);
  }
}

TEST_F(RemiTest, AblationPruningsPreserveTheOptimum) {
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  auto baseline = miner_->MineRe(targets);
  ASSERT_TRUE(baseline.ok());

  for (int mask = 0; mask < 8; ++mask) {
    RemiOptions options;
    options.depth_pruning = mask & 1;
    options.side_pruning = mask & 2;
    options.best_bound_pruning = mask & 4;
    RemiMiner miner(kb_, options);
    auto result = miner.MineRe(targets);
    ASSERT_TRUE(result.ok()) << mask;
    EXPECT_EQ(result->found, baseline->found) << mask;
    // All pruning configurations must find the same minimal cost.
    EXPECT_NEAR(result->cost, baseline->cost, 1e-9) << mask;
  }
}

TEST_F(RemiTest, PruningReducesVisitedNodes) {
  const std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  RemiOptions no_pruning;
  no_pruning.depth_pruning = false;
  no_pruning.side_pruning = false;
  no_pruning.best_bound_pruning = false;
  RemiMiner slow(kb_, no_pruning);
  auto full = slow.MineRe(targets);
  auto pruned = miner_->MineRe(targets);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->stats.nodes_visited, full->stats.nodes_visited);
}

TEST_F(RemiTest, TimeoutReturnsGracefully) {
  RemiOptions options;
  options.timeout_seconds = 1e-9;  // expires immediately
  RemiMiner miner(kb_, options);
  auto result = miner.MineRe({Id("Rennes"), Id("Nantes")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->timed_out);
}

TEST_F(RemiTest, CostMatchesCostModel) {
  auto result = miner_->MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_NEAR(result->cost, miner_->cost_model().Cost(result->expression),
              1e-9);
}

}  // namespace
}  // namespace remi
