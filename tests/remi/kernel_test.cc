// The zero-allocation search kernel's runtime discipline, certified via
// the RemiStats arena/pin counters:
//   * pinned queue views — the steady-state DFS performs no EvalCache
//     lookups at all (search_cache_lookups == 0); only queue costing and
//     the one-time pinning pass touch the cache;
//   * count-first intersections — dense-prefix nodes decide redundant
//     prunes and depth-pruned accepts by IntersectCount/SubsetOf alone
//     (count_only_prunes), with no materialization;
//   * arena-backed frames — node materializations reuse per-depth frames
//     (arena_frames_reused) instead of allocating per node; the number of
//     frames ever created is bounded by the search depth, not the node
//     count.

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "remi/remi.h"

namespace remi {
namespace {

TEST(SearchKernelTest, SteadyStateDfsDoesNoCacheLookupsOrPerNodeAllocs) {
  SyntheticKbConfig config;
  config.seed = 41;
  config.num_entities = 700;
  config.num_predicates = 48;
  config.num_classes = 10;
  config.num_facts = 5200;
  KnowledgeBase kb = BuildSyntheticKb(config);

  Rng rng(9);
  WorkloadConfig wconfig;
  wconfig.num_sets = 6;
  auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  ASSERT_FALSE(sets.empty());

  RemiMiner miner(&kb, RemiOptions{});
  uint64_t total_nodes = 0;
  uint64_t total_reused = 0;
  uint64_t total_allocated = 0;
  uint64_t total_count_only = 0;
  for (const auto& set : sets) {
    auto result = miner.MineRe(set.entities);
    ASSERT_TRUE(result.ok());
    const RemiStats& stats = result->stats;
    // The DFS itself never reaches for the cache: all queue match sets
    // were pinned up front.
    EXPECT_EQ(stats.search_cache_lookups, 0u);
    // Every queue entry was pinned, and the views hold real bytes.
    EXPECT_EQ(stats.pinned_queue_entries, stats.num_common_subgraphs);
    if (stats.num_common_subgraphs > 0) {
      EXPECT_GT(stats.pinned_queue_bytes, 0u);
    }
    // Every visited node was either decided by the count-only test or
    // materialized into an arena frame — nothing else exists.
    EXPECT_LE(stats.arena_frames_allocated + stats.arena_frames_reused +
                  stats.count_only_prunes,
              stats.nodes_visited);
    // Count-only decisions can only come from redundant prunes and
    // depth-pruned accepts (the kernel's two no-materialization exits).
    EXPECT_LE(stats.count_only_prunes,
              stats.redundant_prunes + stats.depth_prunes);
    // Frames are per-depth, not per-node: far fewer than materializations
    // on any non-trivial search (the sequential run uses one arena, so
    // frames created <= max DFS depth).
    EXPECT_LE(stats.arena_frames_allocated, 64u);
    total_nodes += stats.nodes_visited;
    total_reused += stats.arena_frames_reused;
    total_allocated += stats.arena_frames_allocated;
    total_count_only += stats.count_only_prunes;
  }
  ASSERT_GT(total_nodes, 0u);
  // Across the workload, the kernel actually exercised both halves of the
  // zero-allocation story: count-only decisions and frame reuse.
  EXPECT_GT(total_count_only, 0u);
  EXPECT_GT(total_reused, total_allocated);
}

TEST(SearchKernelTest, RepeatedRunsStayZeroLookupAndIdentical) {
  KnowledgeBase kb = BuildCuratedKb();
  RemiMiner miner(&kb, RemiOptions{});
  const std::vector<TermId> targets{*FindEntity(kb, "Rennes"),
                                    *FindEntity(kb, "Nantes")};
  auto first = miner.MineRe(targets);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->found);
  EXPECT_EQ(first->stats.search_cache_lookups, 0u);
  // Second run: the pinning pass now hits the warm cache, and the DFS is
  // still lookup-free; the mined expression is byte-identical.
  auto second = miner.MineRe(targets);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.search_cache_lookups, 0u);
  EXPECT_EQ(second->expression, first->expression);
  EXPECT_EQ(second->cost, first->cost);
  EXPECT_EQ(second->stats.nodes_visited, first->stats.nodes_visited);
}

TEST(SearchKernelTest, ParallelSearchKeepsDfsLookupFree) {
  KnowledgeBase kb = BuildCuratedKb();
  RemiOptions options;
  options.num_threads = 4;
  options.clamp_threads_to_hardware = false;
  options.spill_depth = 64;  // force spilled tasks (their own arenas)
  RemiMiner miner(&kb, options);
  auto result = miner.MineRe({*FindEntity(kb, "Marie_Curie")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->stats.search_cache_lookups, 0u);
  EXPECT_EQ(result->stats.pinned_queue_entries,
            result->stats.num_common_subgraphs);
}

TEST(SearchKernelTest, AblationPathsStillMaterializeCorrectly) {
  // With depth pruning off, accepted nodes recurse and must materialize
  // (the count-only shortcut applies only to pruned accepts); results
  // must match the default configuration's expression exactly.
  KnowledgeBase kb = BuildCuratedKb();
  RemiMiner default_miner(&kb, RemiOptions{});
  RemiOptions ablated;
  ablated.depth_pruning = false;
  ablated.side_pruning = false;
  RemiMiner ablated_miner(&kb, ablated);
  for (const char* name : {"Paris", "Marie_Curie", "Guyana"}) {
    const std::vector<TermId> targets{*FindEntity(kb, name)};
    auto a = default_miner.MineRe(targets);
    auto b = ablated_miner.MineRe(targets);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found) << name;
    if (a->found) {
      EXPECT_EQ(a->expression, b->expression) << name;
      EXPECT_NEAR(a->cost, b->cost, 1e-12) << name;
    }
    EXPECT_EQ(b->stats.search_cache_lookups, 0u);
  }
}

// RemiOptions::max_pinned_bytes caps the resident pinned views; entries
// past the budget fall back to per-node cache lookups. The budget must
// never change what is mined — only the memory/lookup trade-off.
TEST(SearchKernelTest, PinnedByteBudgetFallsBackWithIdenticalResults) {
  KnowledgeBase kb = BuildCuratedKb();
  RemiMiner unlimited(&kb, RemiOptions{});
  for (const char* name : {"Paris", "Marie_Curie", "Guyana"}) {
    const std::vector<TermId> targets{*FindEntity(kb, name)};
    auto base = unlimited.MineRe(targets);
    ASSERT_TRUE(base.ok());
    ASSERT_GT(base->stats.num_common_subgraphs, 0u);
    EXPECT_EQ(base->stats.unpinned_queue_entries, 0u);

    // A 1-byte budget pins nothing: every queue entry resolves per node.
    RemiOptions starved;
    starved.max_pinned_bytes = 1;
    RemiMiner starved_miner(&kb, starved);
    auto s = starved_miner.MineRe(targets);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->stats.pinned_queue_entries, 0u);
    EXPECT_EQ(s->stats.unpinned_queue_entries,
              s->stats.num_common_subgraphs);
    EXPECT_GT(s->stats.search_cache_lookups, 0u);

    // A budget one byte short of the full view footprint pins a strict,
    // non-empty queue prefix: the last entry cannot fit, the first must
    // (every entry's view holds at least one byte).
    ASSERT_GT(base->stats.pinned_queue_bytes, 1u);
    RemiOptions half;
    half.max_pinned_bytes = base->stats.pinned_queue_bytes - 1;
    RemiMiner half_miner(&kb, half);
    auto h = half_miner.MineRe(targets);
    ASSERT_TRUE(h.ok());
    EXPECT_GT(h->stats.pinned_queue_entries, 0u);
    EXPECT_LT(h->stats.pinned_queue_entries, h->stats.num_common_subgraphs);
    EXPECT_EQ(h->stats.pinned_queue_entries + h->stats.unpinned_queue_entries,
              h->stats.num_common_subgraphs);

    for (const auto* r : {&*s, &*h}) {
      EXPECT_EQ(r->found, base->found) << name;
      EXPECT_EQ(r->expression, base->expression) << name;
      EXPECT_NEAR(r->cost, base->cost, 1e-12) << name;
      EXPECT_EQ(r->stats.nodes_visited, base->stats.nodes_visited) << name;
    }
  }
}

TEST(SearchKernelTest, PinnedByteBudgetAgreesUnderParallelSearch) {
  KnowledgeBase kb = BuildCuratedKb();
  RemiMiner sequential(&kb, RemiOptions{});
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  par.spill_depth = 64;
  par.max_pinned_bytes = 1024;  // starve most of the queue
  RemiMiner par_miner(&kb, par);
  for (const char* name : {"Paris", "Rennes", "Marie_Curie"}) {
    const std::vector<TermId> targets{*FindEntity(kb, name)};
    auto a = sequential.MineRe(targets);
    auto b = par_miner.MineRe(targets);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->found, b->found) << name;
    if (a->found) {
      EXPECT_EQ(a->expression, b->expression) << name;
      EXPECT_NEAR(a->cost, b->cost, 1e-12) << name;
    }
  }
}

// §6 exceptions mining rides the same kernel: sequential and parallel
// runs must return byte-identical expressions *and* exception lists.
TEST(SearchKernelTest, ExceptionsMiningAgreesAcrossThreadCounts) {
  SyntheticKbConfig config;
  config.seed = 77;
  config.num_entities = 600;
  config.num_predicates = 40;
  config.num_classes = 8;
  config.num_facts = 4200;
  KnowledgeBase kb = BuildSyntheticKb(config);

  Rng rng(5);
  WorkloadConfig wconfig;
  wconfig.num_sets = 6;
  auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  ASSERT_FALSE(sets.empty());

  RemiMiner seq_miner(&kb, RemiOptions{});
  for (const int threads : {2, 4, 8}) {
    RemiOptions par;
    par.num_threads = threads;
    par.clamp_threads_to_hardware = false;
    RemiMiner par_miner(&kb, par);
    for (const auto& set : sets) {
      for (const size_t k : {size_t{1}, size_t{3}}) {
        auto a = seq_miner.MineReWithExceptions(set.entities, k);
        auto b = par_miner.MineReWithExceptions(set.entities, k);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a->found, b->found) << "threads=" << threads;
        if (a->found) {
          EXPECT_EQ(a->expression, b->expression) << "threads=" << threads;
          EXPECT_NEAR(a->cost, b->cost, 1e-9);
          EXPECT_EQ(a->exceptions, b->exceptions) << "threads=" << threads;
        }
      }
    }
  }
}

}  // namespace
}  // namespace remi
