// RemiMiner::MineBatch: batch results must equal per-set MineRe results
// whether the batch runs sequentially or across the miner's pool, and the
// shared warm cache must not leak state between sets.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "kbgen/workload.h"
#include "remi/remi.h"

namespace remi {
namespace {

class MineBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { kb_ = new KnowledgeBase(BuildCuratedKb()); }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  std::vector<std::vector<TermId>> SampleBatch() const {
    return {
        {Id("Paris")},
        {Id("Marie_Curie")},
        {Id("Rennes"), Id("Nantes")},
        {Id("Guyana"), Id("Suriname")},
        {Id("Ecuador"), Id("Peru")},
        {Id("The_Hobbit_1"), Id("The_Hobbit_2")},
        {Id("Agrofert")},
    };
  }

  static KnowledgeBase* kb_;
};

KnowledgeBase* MineBatchTest::kb_ = nullptr;

void ExpectSameResults(const RemiMiner& reference_miner,
                       const std::vector<std::vector<TermId>>& sets,
                       const std::vector<RemiResult>& batch) {
  ASSERT_EQ(batch.size(), sets.size());
  for (size_t i = 0; i < sets.size(); ++i) {
    auto individual = reference_miner.MineRe(sets[i]);
    ASSERT_TRUE(individual.ok());
    EXPECT_EQ(batch[i].found, individual->found) << "set " << i;
    if (individual->found) {
      EXPECT_NEAR(batch[i].cost, individual->cost, 1e-9) << "set " << i;
      EXPECT_EQ(batch[i].expression, individual->expression) << "set " << i;
    }
  }
}

TEST_F(MineBatchTest, SequentialBatchMatchesIndividualRuns) {
  RemiMiner miner(kb_, RemiOptions{});
  const auto sets = SampleBatch();
  auto batch = miner.MineBatch(sets);
  ASSERT_TRUE(batch.ok());
  ExpectSameResults(miner, sets, *batch);
}

TEST_F(MineBatchTest, ParallelBatchMatchesSequentialResults) {
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner par_miner(kb_, par);
  RemiMiner seq_miner(kb_, RemiOptions{});
  const auto sets = SampleBatch();
  auto batch = par_miner.MineBatch(sets);
  ASSERT_TRUE(batch.ok());
  ExpectSameResults(seq_miner, sets, *batch);
}

TEST_F(MineBatchTest, RepeatedParallelBatchesAreDeterministic) {
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner miner(kb_, par);
  const auto sets = SampleBatch();
  auto first = miner.MineBatch(sets);
  ASSERT_TRUE(first.ok());
  for (int round = 0; round < 3; ++round) {
    // Later rounds hit the warm cache; results must not change.
    auto again = miner.MineBatch(sets);
    ASSERT_TRUE(again.ok());
    for (size_t i = 0; i < sets.size(); ++i) {
      EXPECT_EQ((*again)[i].found, (*first)[i].found);
      EXPECT_EQ((*again)[i].expression, (*first)[i].expression);
      EXPECT_NEAR((*again)[i].cost, (*first)[i].cost, 1e-12);
    }
  }
}

TEST_F(MineBatchTest, EmptyBatchYieldsEmptyResults) {
  RemiMiner miner(kb_, RemiOptions{});
  auto batch = miner.MineBatch({});
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST_F(MineBatchTest, EmptyTargetSetIsRejected) {
  RemiMiner miner(kb_, RemiOptions{});
  auto batch = miner.MineBatch({{Id("Paris")}, {}});
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsInvalidArgument());
}

TEST_F(MineBatchTest, BatchWithExceptionsMatchesIndividualRuns) {
  RemiOptions par;
  par.num_threads = 3;
  par.clamp_threads_to_hardware = false;
  RemiMiner par_miner(kb_, par);
  RemiMiner seq_miner(kb_, RemiOptions{});
  const auto sets = SampleBatch();
  auto batch = par_miner.MineBatch(sets, /*max_exceptions=*/1);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < sets.size(); ++i) {
    auto individual = seq_miner.MineReWithExceptions(sets[i], 1);
    ASSERT_TRUE(individual.ok());
    EXPECT_EQ((*batch)[i].found, individual->found) << "set " << i;
    if (individual->found) {
      EXPECT_NEAR((*batch)[i].cost, individual->cost, 1e-9) << "set " << i;
      EXPECT_EQ((*batch)[i].expression, individual->expression)
          << "set " << i;
      EXPECT_EQ((*batch)[i].exceptions, individual->exceptions)
          << "set " << i;
    }
  }
}

TEST_F(MineBatchTest, ManyThreadsFewSets) {
  RemiOptions par;
  par.num_threads = 16;
  par.clamp_threads_to_hardware = false;
  RemiMiner miner(kb_, par);
  const std::vector<std::vector<TermId>> sets = {{Id("Paris")},
                                                 {Id("Marie_Curie")}};
  auto batch = miner.MineBatch(sets);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE((*batch)[0].found);
  EXPECT_TRUE((*batch)[1].found);
}

// Concurrent MineBatch + MineRe calls from multiple external threads
// share one miner (and one pool); everything must stay consistent.
TEST_F(MineBatchTest, ConcurrentCallersShareOneMiner) {
  RemiOptions par;
  par.num_threads = 4;
  par.clamp_threads_to_hardware = false;
  RemiMiner miner(kb_, par);
  RemiMiner reference(kb_, RemiOptions{});
  const auto sets = SampleBatch();

  std::vector<std::thread> callers;
  std::vector<Result<std::vector<RemiResult>>> outcomes(
      3, Result<std::vector<RemiResult>>(std::vector<RemiResult>{}));
  for (size_t t = 0; t < outcomes.size(); ++t) {
    callers.emplace_back(
        [&, t] { outcomes[t] = miner.MineBatch(sets); });
  }
  for (auto& caller : callers) caller.join();
  for (auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.ok());
    ExpectSameResults(reference, sets, *outcome);
  }
}

}  // namespace
}  // namespace remi
