#include "nlg/verbalizer.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class VerbalizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    verbalizer_ = new Verbalizer(kb_);
  }
  static void TearDownTestSuite() {
    delete verbalizer_;
    delete kb_;
    verbalizer_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
  static Verbalizer* verbalizer_;
};

KnowledgeBase* VerbalizerTest::kb_ = nullptr;
Verbalizer* VerbalizerTest::verbalizer_ = nullptr;

TEST_F(VerbalizerTest, AtomClause) {
  const auto rho = SubgraphExpression::Atom(Id("capitalOf"), Id("France"));
  EXPECT_EQ(verbalizer_->Clause(rho), "its capitalOf is France");
}

TEST_F(VerbalizerTest, TypeAtomReadsAsIsA) {
  const auto rho =
      SubgraphExpression::Atom(kb_->type_predicate(), Id("City"));
  EXPECT_EQ(verbalizer_->Clause(rho), "it is a City");
}

TEST_F(VerbalizerTest, PathClause) {
  const auto rho = SubgraphExpression::Path(Id("mayor"), Id("party"),
                                            Id("Socialist_Party"));
  EXPECT_EQ(verbalizer_->Clause(rho),
            "it has a mayor whose party is Socialist Party");
}

TEST_F(VerbalizerTest, PathStarClause) {
  const auto rho = SubgraphExpression::PathStar(
      Id("mayor"), Id("party"), Id("Socialist_Party"), kb_->type_predicate(),
      Id("Person"));
  const std::string clause = verbalizer_->Clause(rho);
  EXPECT_NE(clause.find("whose"), std::string::npos);
  EXPECT_NE(clause.find("and whose"), std::string::npos);
}

TEST_F(VerbalizerTest, TwinClauses) {
  // TwinPair normalizes predicate order by id (cityIn interns first).
  EXPECT_EQ(verbalizer_->Clause(
                SubgraphExpression::TwinPair(Id("capitalOf"), Id("cityIn"))),
            "its cityIn and capitalOf are the same");
  const std::string triple = verbalizer_->Clause(SubgraphExpression::TwinTriple(
      Id("capitalOf"), Id("cityIn"), Id("belongedTo")));
  EXPECT_NE(triple.find("are all the same"), std::string::npos);
}

TEST_F(VerbalizerTest, InversePredicateReadsAsOf) {
  const TermId inv = kb_->InverseOf(Id("capitalOf"));
  ASSERT_NE(inv, kNullTerm);
  const auto rho = SubgraphExpression::Atom(inv, Id("Paris"));
  EXPECT_EQ(verbalizer_->Clause(rho), "its capitalOf of is Paris");
}

TEST_F(VerbalizerTest, SentenceJoinsAndCapitalizes) {
  Expression e = Expression::Top()
                     .Conjoin(SubgraphExpression::Atom(Id("belongedTo"),
                                                       Id("Brittany")))
                     .Conjoin(SubgraphExpression::Path(
                         Id("mayor"), Id("party"), Id("Socialist_Party")));
  const std::string sentence = verbalizer_->Sentence(e);
  EXPECT_EQ(sentence.front(), 'I');  // "It..."
  EXPECT_EQ(sentence.back(), '.');
  EXPECT_NE(sentence.find(" and "), std::string::npos);
}

TEST_F(VerbalizerTest, TopSentence) {
  EXPECT_EQ(verbalizer_->Sentence(Expression::Top()), "anything.");
}

TEST_F(VerbalizerTest, CustomSubjectPlaceholder) {
  VerbalizerOptions options;
  options.subject = "the city";
  options.capitalize = false;
  Verbalizer v(kb_, options);
  const auto rho = SubgraphExpression::Atom(Id("capitalOf"), Id("France"));
  EXPECT_EQ(v.Clause(rho), "the city's capitalOf is France");
}

TEST_F(VerbalizerTest, LabelsPreferRdfsLabel) {
  EXPECT_EQ(verbalizer_->Label(Id("Socialist_Party")), "Socialist Party");
  EXPECT_EQ(verbalizer_->Label(Id("Eiffel_Tower")), "Eiffel Tower");
}

}  // namespace
}  // namespace remi
