#include "complexity/exogenous.h"

#include <cmath>

#include <gtest/gtest.h>

#include "complexity/cost_model.h"
#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class ExogenousTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }
  static KnowledgeBase* kb_;
};

KnowledgeBase* ExogenousTest::kb_ = nullptr;

TEST_F(ExogenousTest, ParsesTsvAndServesScores) {
  const std::string tsv =
      "# search-engine hit counts\n"
      "http://remi.example/France\t120000\n"
      "http://remi.example/Paris\t98000\n"
      "\n"
      "http://remi.example/Epitech\t450\n";
  auto provider = ExogenousProminence::FromTsv(*kb_, tsv);
  ASSERT_TRUE(provider.ok());
  EXPECT_EQ(provider->size(), 3u);
  EXPECT_TRUE(provider->Defined(Id("France")));
  EXPECT_DOUBLE_EQ(provider->Score(Id("France")), 120000.0);
  EXPECT_FALSE(provider->Defined(Id("Rennes")));
  EXPECT_DOUBLE_EQ(provider->Score(Id("Rennes")), 0.0);
}

TEST_F(ExogenousTest, UnknownIrisAreIgnored) {
  auto provider =
      ExogenousProminence::FromTsv(*kb_, "http://nowhere/x\t5\n");
  ASSERT_TRUE(provider.ok());
  EXPECT_EQ(provider->size(), 0u);
}

TEST_F(ExogenousTest, MalformedLinesAreParseErrors) {
  EXPECT_TRUE(ExogenousProminence::FromTsv(*kb_, "no-tab-here\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ExogenousProminence::FromTsv(
                  *kb_, "http://remi.example/France\tnot-a-number\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ExogenousProminence::FromTsv(
                  *kb_, "http://remi.example/France\t-3\n")
                  .status()
                  .IsParseError());
}

TEST_F(ExogenousTest, MissingFileIsIoError) {
  EXPECT_TRUE(ExogenousProminence::FromTsvFile(*kb_, "/nonexistent/x.tsv")
                  .status()
                  .IsIoError());
}

TEST_F(ExogenousTest, DrivesTheCostModel) {
  // An external source that declares Kingdom_of_France globally famous
  // flips the capitalOf object ranking relative to fr.
  const std::string tsv =
      "http://remi.example/Kingdom_of_France\t1000000\n"
      "http://remi.example/France\t10\n";
  auto provider = ExogenousProminence::FromTsv(*kb_, tsv);
  ASSERT_TRUE(provider.ok());
  CostModel exo_model(
      kb_, CostModelOptions{},
      std::make_unique<ExogenousProminence>(std::move(*provider)));
  CostModel fr_model(kb_, CostModelOptions{});

  const TermId capital_of = Id("capitalOf");
  // Under fr, France is the cheaper capitalOf object; under the injected
  // scores the kingdom is.
  EXPECT_LT(fr_model.ObjectBits(Id("France"), capital_of),
            fr_model.ObjectBits(Id("Kingdom_of_France"), capital_of));
  EXPECT_LT(exo_model.ObjectBits(Id("Kingdom_of_France"), capital_of),
            exo_model.ObjectBits(Id("France"), capital_of));
}

TEST_F(ExogenousTest, FallsBackToFrequencyForUndefinedTerms) {
  // Only one officialLanguage object is scored; the others must still be
  // ranked (by conditional frequency) below it.
  const std::string tsv = "http://remi.example/Romansh\t999999\n";
  auto provider = ExogenousProminence::FromTsv(*kb_, tsv);
  ASSERT_TRUE(provider.ok());
  CostModel model(
      kb_, CostModelOptions{},
      std::make_unique<ExogenousProminence>(std::move(*provider)));
  // Romansh (scored) outranks even Spanish (unscored, high frequency).
  EXPECT_LT(model.ObjectBits(Id("Romansh"), Id("officialLanguage")),
            model.ObjectBits(Id("Spanish"), Id("officialLanguage")));
  // Unscored languages still get finite bits.
  EXPECT_TRUE(std::isfinite(
      model.ObjectBits(Id("Spanish"), Id("officialLanguage"))));
}

}  // namespace
}  // namespace remi
