#include "complexity/pagerank.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

KnowledgeBase StarKb() {
  // hub <- a, b, c; chain c -> d.
  KbBuilder b;
  b.Fact("a", "links", "hub");
  b.Fact("b", "links", "hub");
  b.Fact("c", "links", "hub");
  b.Fact("c", "links", "d");
  KbOptions options;
  options.inverse_top_fraction = 0;
  return std::move(b).Build(options);
}

TEST(PageRankTest, ScoresSumToOne) {
  KnowledgeBase kb = StarKb();
  auto pr = ComputePageRank(kb);
  double sum = 0;
  for (const auto& [id, score] : pr) {
    (void)id;
    sum += score;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(PageRankTest, HubOutranksLeaves) {
  KnowledgeBase kb = StarKb();
  auto pr = ComputePageRank(kb);
  const double hub = pr.at(*FindEntity(kb, "hub"));
  for (const char* leaf : {"a", "b", "c", "d"}) {
    EXPECT_GT(hub, pr.at(*FindEntity(kb, leaf))) << leaf;
  }
}

TEST(PageRankTest, AllEntitiesScored) {
  KnowledgeBase kb = StarKb();
  auto pr = ComputePageRank(kb);
  EXPECT_EQ(pr.size(), kb.NumEntities());
}

TEST(PageRankTest, DanglingMassIsRedistributed) {
  // Two nodes, one edge a->b; b is dangling.
  KbBuilder builder;
  builder.Fact("a", "links", "b");
  KbOptions options;
  options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(builder).Build(options);
  auto pr = ComputePageRank(kb);
  double sum = 0;
  for (const auto& [id, score] : pr) {
    (void)id;
    sum += score;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(pr.at(*FindEntity(kb, "b")), pr.at(*FindEntity(kb, "a")));
}

TEST(PageRankTest, EmptyKbYieldsEmptyScores) {
  Dictionary dict;
  KnowledgeBase kb = KnowledgeBase::Build(std::move(dict), {}, KbOptions());
  EXPECT_TRUE(ComputePageRank(kb).empty());
}

TEST(PageRankTest, InverseEdgesAreSkippedByDefault) {
  KbBuilder b1;
  b1.Fact("a", "links", "hub");
  b1.Fact("b", "links", "hub");
  b1.Fact("c", "links", "hub");
  KbOptions with_inv;
  with_inv.inverse_top_fraction = 0.3;  // materializes hub inverses
  KnowledgeBase kb = std::move(b1).Build(with_inv);
  ASSERT_GT(kb.NumFacts(), kb.NumBaseFacts());

  PageRankOptions skip;
  skip.skip_inverse_predicates = true;
  PageRankOptions keep;
  keep.skip_inverse_predicates = false;
  auto pr_skip = ComputePageRank(kb, skip);
  auto pr_keep = ComputePageRank(kb, keep);
  const TermId hub = *FindEntity(kb, "hub");
  // With inverse edges the hub links back out, lowering its relative rank.
  EXPECT_GT(pr_skip.at(hub), pr_keep.at(hub));
}

TEST(PageRankTest, CuratedKbHubsAreProminent) {
  KnowledgeBase kb = BuildCuratedKb();
  auto pr = ComputePageRank(kb);
  const double france = pr.at(*FindEntity(kb, "France"));
  const double mueller = pr.at(*FindEntity(kb, "Johann_J_Mueller"));
  EXPECT_GT(france, mueller);
}

TEST(PageRankTest, ConvergesWithTightTolerance) {
  KnowledgeBase kb = StarKb();
  PageRankOptions few;
  few.max_iterations = 100;
  few.tolerance = 1e-14;
  PageRankOptions many;
  many.max_iterations = 500;
  many.tolerance = 1e-14;
  auto a = ComputePageRank(kb, few);
  auto b = ComputePageRank(kb, many);
  for (const auto& [id, score] : a) {
    EXPECT_NEAR(score, b.at(id), 1e-9);
  }
}

}  // namespace
}  // namespace remi
