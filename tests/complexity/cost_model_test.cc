#include "complexity/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    model_ = new CostModel(kb_, CostModelOptions{});
  }
  static void TearDownTestSuite() {
    delete model_;
    delete kb_;
    model_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
  static CostModel* model_;
};

KnowledgeBase* CostModelTest::kb_ = nullptr;
CostModel* CostModelTest::model_ = nullptr;

TEST_F(CostModelTest, AtomCostIsPredicatePlusObjectBits) {
  const auto rho = SubgraphExpression::Atom(Id("capitalOf"), Id("France"));
  const double expected = model_->PredicateBits(Id("capitalOf")) +
                          model_->ObjectBits(Id("France"), Id("capitalOf"));
  EXPECT_DOUBLE_EQ(model_->SubgraphCost(rho), expected);
  EXPECT_TRUE(std::isfinite(model_->SubgraphCost(rho)));
}

TEST_F(CostModelTest, RankOneConceptsCostZeroBits) {
  // log2(1) = 0: the top-ranked predicate contributes nothing, exactly as
  // the paper's code-length scheme defines.
  EXPECT_DOUBLE_EQ(model_->PredicateBits(kb_->type_predicate()), 0.0);
}

TEST_F(CostModelTest, ProminentObjectIsCheaperThanRareObject) {
  // Among officialLanguage objects, Spanish (10x) beats Romansh (1x).
  const double spanish = model_->ObjectBits(Id("Spanish"),
                                            Id("officialLanguage"));
  const double romansh = model_->ObjectBits(Id("Romansh"),
                                            Id("officialLanguage"));
  EXPECT_LT(spanish, romansh);
}

TEST_F(CostModelTest, PathCostUsesChainRule) {
  const auto rho = SubgraphExpression::Path(Id("mayor"), Id("party"),
                                            Id("Socialist_Party"));
  const double expected =
      model_->PredicateBits(Id("mayor")) +
      model_->ObjectJoinPredicateBits(Id("party"), Id("mayor")) +
      model_->PathObjectBits(Id("Socialist_Party"), Id("mayor"),
                             Id("party"));
  EXPECT_DOUBLE_EQ(model_->SubgraphCost(rho), expected);
}

TEST_F(CostModelTest, PathStarNeverCheaperThanItsPath) {
  // The extra leg adds l(p2 | p0) + l(I2 | p0 ∧ p2) >= 0; a rank-1 leg
  // (e.g. type(y, Person) on mayors) is free, so >= rather than >.
  const auto path = SubgraphExpression::Path(Id("mayor"), Id("party"),
                                             Id("Socialist_Party"));
  const auto star = SubgraphExpression::PathStar(
      Id("mayor"), Id("party"), Id("Socialist_Party"), kb_->type_predicate(),
      Id("Person"));
  EXPECT_GE(model_->SubgraphCost(star), model_->SubgraphCost(path));

  // A rare second leg is strictly more expensive.
  const auto rare_star = SubgraphExpression::PathStar(
      Id("mayor"), Id("party"), Id("Socialist_Party"), Id("party"),
      Id("Green_Party"));
  EXPECT_GT(model_->SubgraphCost(rare_star), model_->SubgraphCost(path));
}

TEST_F(CostModelTest, TwinCostsHaveNoConstantTerm) {
  const auto twin =
      SubgraphExpression::TwinPair(Id("cityIn"), Id("capitalOf"));
  const double expected =
      model_->PredicateBits(Id("cityIn")) +
      model_->SubjectJoinPredicateBits(Id("capitalOf"), Id("cityIn"));
  EXPECT_DOUBLE_EQ(model_->SubgraphCost(twin), expected);
}

TEST_F(CostModelTest, ExpressionCostIsSumOfParts) {
  const auto a = SubgraphExpression::Atom(Id("in"), Id("South_America"));
  const auto b = SubgraphExpression::Path(Id("officialLanguage"),
                                          Id("langFamily"), Id("Germanic"));
  Expression e = Expression::Top().Conjoin(a).Conjoin(b);
  EXPECT_DOUBLE_EQ(model_->Cost(e),
                   model_->SubgraphCost(a) + model_->SubgraphCost(b));
}

TEST_F(CostModelTest, TopCostsInfinity) {
  EXPECT_EQ(model_->Cost(Expression::Top()), CostModel::kInfiniteCost);
}

TEST_F(CostModelTest, UnrankedConceptsCostInfinity) {
  // Paris is not an object of officialLanguage.
  EXPECT_EQ(model_->ObjectBits(Id("Paris"), Id("officialLanguage")),
            CostModel::kInfiniteCost);
  const auto rho =
      SubgraphExpression::Atom(Id("officialLanguage"), Id("Paris"));
  EXPECT_EQ(model_->SubgraphCost(rho), CostModel::kInfiniteCost);
}

TEST_F(CostModelTest, CostsAreCachedAndStable) {
  const auto rho = SubgraphExpression::Atom(Id("capitalOf"), Id("France"));
  const double first = model_->SubgraphCost(rho);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(model_->SubgraphCost(rho), first);
  }
}

TEST_F(CostModelTest, MonotoneUnderConjunction) {
  // Adding any part never lowers the cost (the property depth pruning
  // relies on).
  const auto a = SubgraphExpression::Atom(Id("in"), Id("South_America"));
  const auto b = SubgraphExpression::Path(Id("officialLanguage"),
                                          Id("langFamily"), Id("Germanic"));
  Expression e1 = Expression::Top().Conjoin(a);
  Expression e2 = e1.Conjoin(b);
  EXPECT_GE(model_->Cost(e2), model_->Cost(e1));
}

TEST(CostModelModesTest, GlobalPredicateRanksModeDiffers) {
  KnowledgeBase kb = BuildCuratedKb();
  CostModelOptions join_opts;
  join_opts.use_join_predicate_ranks = true;
  CostModelOptions global_opts;
  global_opts.use_join_predicate_ranks = false;
  CostModel join_model(&kb, join_opts);
  CostModel global_model(&kb, global_opts);

  const TermId mayor = *FindEntity(kb, "mayor");
  const TermId party = *FindEntity(kb, "party");
  // In the join context party ranks among few predicates; globally it
  // competes with every predicate: global bits >= join bits here.
  EXPECT_LE(join_model.ObjectJoinPredicateBits(party, mayor),
            global_model.ObjectJoinPredicateBits(party, mayor) + 1e-9);
}

TEST(CostModelModesTest, FittedModeApproximatesExactBits) {
  KnowledgeBase kb = BuildCuratedKb();
  CostModelOptions exact_opts;
  CostModelOptions fitted_opts;
  fitted_opts.use_fitted_entity_ranks = true;
  CostModel exact(&kb, exact_opts);
  CostModel fitted(&kb, fitted_opts);

  const TermId lang_pred = *FindEntity(kb, "officialLanguage");
  const TermId spanish = *FindEntity(kb, "Spanish");
  const TermId romansh = *FindEntity(kb, "Romansh");
  // The fitted estimate must preserve the ordering of clearly separated
  // concepts even if absolute values drift.
  EXPECT_LT(fitted.ObjectBits(spanish, lang_pred),
            fitted.ObjectBits(romansh, lang_pred));
  EXPECT_LT(exact.ObjectBits(spanish, lang_pred),
            exact.ObjectBits(romansh, lang_pred));
}

TEST(CostModelPrTest, PageRankVariantProducesFiniteCosts) {
  KnowledgeBase kb = BuildCuratedKb();
  CostModelOptions options;
  options.metric = ProminenceMetric::kPageRank;
  CostModel model(&kb, options);
  const auto rho = SubgraphExpression::Atom(*FindEntity(kb, "capitalOf"),
                                            *FindEntity(kb, "France"));
  EXPECT_TRUE(std::isfinite(model.SubgraphCost(rho)));
}

TEST(CostModelPrTest, FrAndPrCanDisagree) {
  KnowledgeBase kb = BuildCuratedKb();
  CostModel fr(&kb, CostModelOptions{});
  CostModelOptions pr_opts;
  pr_opts.metric = ProminenceMetric::kPageRank;
  CostModel pr(&kb, pr_opts);
  // Both are valid cost models; they need not agree on every expression.
  // Sanity: both rank the very same top concept of a ranking at 0 bits.
  const TermId cityin = *FindEntity(kb, "cityIn");
  double fr_min = 1e300, pr_min = 1e300;
  for (const Triple& t : kb.store().ByPredicate(cityin)) {
    fr_min = std::min(fr_min, fr.ObjectBits(t.o, cityin));
    pr_min = std::min(pr_min, pr.ObjectBits(t.o, cityin));
  }
  EXPECT_DOUBLE_EQ(fr_min, 0.0);
  EXPECT_DOUBLE_EQ(pr_min, 0.0);
}

}  // namespace
}  // namespace remi
