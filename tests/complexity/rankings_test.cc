#include "complexity/rankings.h"

#include <cmath>

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class RankingsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    prominence_ = new FrequencyProminence(kb_);
    rankings_ = new RankingService(kb_, prominence_);
  }
  static void TearDownTestSuite() {
    delete rankings_;
    delete prominence_;
    delete kb_;
    rankings_ = nullptr;
    prominence_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
  static FrequencyProminence* prominence_;
  static RankingService* rankings_;
};

KnowledgeBase* RankingsTest::kb_ = nullptr;
FrequencyProminence* RankingsTest::prominence_ = nullptr;
RankingService* RankingsTest::rankings_ = nullptr;

TEST_F(RankingsTest, PredicateRanksAreDenseAndFrequencyOrdered) {
  const auto& preds = kb_->store().predicates();
  std::vector<size_t> seen;
  for (const TermId p : preds) {
    const size_t rank = rankings_->PredicateRank(p);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, preds.size());
    seen.push_back(rank);
  }
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);

  // rdf:type is by far the most frequent predicate of the curated KB.
  EXPECT_EQ(rankings_->PredicateRank(kb_->type_predicate()), 1u);
}

TEST_F(RankingsTest, UnknownPredicateHasRankZero) {
  EXPECT_EQ(rankings_->PredicateRank(kNullTerm), 0u);
}

TEST_F(RankingsTest, ObjectRankingOrderedByConditionalFrequency) {
  // Objects of officialLanguage: Spanish (10 countries) must outrank
  // Romansh (only Switzerland).
  auto ranking = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  const size_t spanish = ranking->RankOf(Id("Spanish"));
  const size_t romansh = ranking->RankOf(Id("Romansh"));
  ASSERT_GE(spanish, 1u);
  ASSERT_GE(romansh, 1u);
  EXPECT_LT(spanish, romansh);
  EXPECT_EQ(spanish, 1u);
}

TEST_F(RankingsTest, ObjectRankingScoresAreDescending) {
  auto ranking = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  for (size_t i = 1; i < ranking->sorted_scores.size(); ++i) {
    EXPECT_GE(ranking->sorted_scores[i - 1], ranking->sorted_scores[i]);
  }
}

TEST_F(RankingsTest, UnrankedObjectIsZero) {
  auto ranking = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  EXPECT_EQ(ranking->RankOf(Id("Paris")), 0u);
}

TEST_F(RankingsTest, RankingsAreCachedAndShared) {
  auto a = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  auto b = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(rankings_->NumMaterializedRankings(), 1u);
}

TEST_F(RankingsTest, ObjectJoinPredicatesContainActualJoins) {
  // mayor(x, y) joins y with party(y, z) in the curated KB.
  auto joins = rankings_->ObjectJoinPredicates(Id("mayor"));
  EXPECT_GE(joins->RankOf(Id("party")), 1u);
  // capitalOf's subjects are cities, objects countries; countries do not
  // "mayor" anything, so mayor is not joinable after capitalOf.
  auto joins2 = rankings_->ObjectJoinPredicates(Id("capitalOf"));
  EXPECT_EQ(joins2->RankOf(Id("mayor")), 0u);
}

TEST_F(RankingsTest, SubjectJoinPredicatesShareSubjects) {
  // Cities have both cityIn and mayor facts.
  auto joins = rankings_->SubjectJoinPredicates(Id("cityIn"));
  EXPECT_GE(joins->RankOf(Id("mayor")), 1u);
  EXPECT_GE(joins->RankOf(Id("capitalOf")), 1u);
}

TEST_F(RankingsTest, PathObjectsRankingMatchesPaperExample) {
  // Bindings of z in mayor(x,y) ∧ party(y,z): the parties of mayors.
  auto ranking = rankings_->PathObjects(Id("mayor"), Id("party"));
  const size_t socialist = ranking->RankOf(Id("Socialist_Party"));
  ASSERT_GE(socialist, 1u);
  // 3 socialist mayors vs 1 green: Socialist ranks first.
  EXPECT_EQ(socialist, 1u);
  EXPECT_GT(ranking->RankOf(Id("Green_Party")), socialist);
  // Countries are not parties of mayors.
  EXPECT_EQ(ranking->RankOf(Id("France")), 0u);
}

TEST_F(RankingsTest, FitCoefficientsAreFinite) {
  auto ranking = rankings_->ObjectsOfPredicate(Id("officialLanguage"));
  EXPECT_TRUE(std::isfinite(ranking->fit.alpha));
  EXPECT_TRUE(std::isfinite(ranking->fit.beta));
  EXPECT_GE(ranking->fit.r2, 0.0);
  EXPECT_LE(ranking->fit.r2, 1.0);
}

TEST_F(RankingsTest, FittedBitsRoughlyTrackExactBits) {
  auto ranking = rankings_->ObjectsOfPredicate(kb_->type_predicate());
  ASSERT_GE(ranking->size(), 5u);
  // The most frequent class must cost (almost) fewer bits than the rarest.
  const double top = ranking->FittedBits(ranking->sorted_scores.front());
  const double bottom = ranking->FittedBits(ranking->sorted_scores.back());
  EXPECT_LT(top, bottom + 1e-9);
}

TEST(RankingsPageRankTest, PrModeRanksByPageRankWithFrFallback) {
  KnowledgeBase kb = BuildCuratedKb();
  PageRankProminence pr(&kb);
  RankingService rankings(&kb, &pr);
  auto cityin = FindEntity(kb, "cityIn");
  ASSERT_TRUE(cityin.ok());
  auto ranking = rankings.ObjectsOfPredicate(*cityin);
  ASSERT_GE(ranking->size(), 5u);
  // France hosts the most cities and is a hub: it must rank near the top.
  const size_t france = ranking->RankOf(*FindEntity(kb, "France"));
  ASSERT_GE(france, 1u);
  EXPECT_LE(france, 5u);
}

}  // namespace
}  // namespace remi
