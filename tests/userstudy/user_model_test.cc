#include "userstudy/user_model.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "userstudy/metrics.h"

namespace remi {
namespace {

class UserModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    model_ = new CostModel(kb_, CostModelOptions{});
    panel_ = new SimulatedUserPanel(kb_, model_, UserModelConfig{});
  }
  static void TearDownTestSuite() {
    delete panel_;
    delete model_;
    delete kb_;
    panel_ = nullptr;
    model_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }
  Expression Atom(const char* p, const char* o) const {
    return Expression::Top().Conjoin(SubgraphExpression::Atom(Id(p), Id(o)));
  }

  static KnowledgeBase* kb_;
  static CostModel* model_;
  static SimulatedUserPanel* panel_;
};

KnowledgeBase* UserModelTest::kb_ = nullptr;
CostModel* UserModelTest::model_ = nullptr;
SimulatedUserPanel* UserModelTest::panel_ = nullptr;

TEST_F(UserModelTest, PerceptionIsDeterministicPerUser) {
  const Expression e = Atom("capitalOf", "France");
  EXPECT_DOUBLE_EQ(panel_->PerceivedComplexity(3, e),
                   panel_->PerceivedComplexity(3, e));
}

TEST_F(UserModelTest, UsersDiffer) {
  const Expression e = Atom("capitalOf", "France");
  EXPECT_NE(panel_->PerceivedComplexity(0, e),
            panel_->PerceivedComplexity(1, e));
}

TEST_F(UserModelTest, TypeAtomsGetPreferentialTreatment) {
  // Averaged over the panel, a type atom must be perceived simpler than
  // its Ĉ suggests relative to a non-type atom of equal model cost.
  UserModelConfig no_noise;
  no_noise.noise_sigma = 0.0;
  SimulatedUserPanel quiet(kb_, model_, no_noise);
  Expression type_expr = Expression::Top().Conjoin(SubgraphExpression::Atom(
      kb_->type_predicate(), Id("City")));
  const double perceived = quiet.PerceivedComplexity(0, type_expr);
  const double model_cost = model_->Cost(type_expr);
  EXPECT_LT(perceived, model_cost + 1e-9);
}

TEST_F(UserModelTest, LongerExpressionsReadHarder) {
  UserModelConfig no_noise;
  no_noise.noise_sigma = 0.0;
  no_noise.type_preference_bonus = 0.0;
  SimulatedUserPanel quiet(kb_, model_, no_noise);
  const Expression short_e = Atom("capitalOf", "France");
  const Expression long_e =
      short_e.Conjoin(SubgraphExpression::Atom(Id("cityIn"), Id("France")));
  // The model cost of the conjunction is higher already; the panel adds a
  // further per-atom penalty on top.
  const double gap_model = model_->Cost(long_e) - model_->Cost(short_e);
  const double gap_user = quiet.PerceivedComplexity(0, long_e) -
                          quiet.PerceivedComplexity(0, short_e);
  EXPECT_GT(gap_user, gap_model);
}

TEST_F(UserModelTest, ExistentialVariablesReadHarder) {
  UserModelConfig no_noise;
  no_noise.noise_sigma = 0.0;
  no_noise.type_preference_bonus = 0.0;
  no_noise.atom_penalty = 0.0;
  SimulatedUserPanel quiet(kb_, model_, no_noise);
  Expression path = Expression::Top().Conjoin(SubgraphExpression::Path(
      Id("mayor"), Id("party"), Id("Socialist_Party")));
  const double gap = quiet.PerceivedComplexity(0, path) - model_->Cost(path);
  EXPECT_NEAR(gap, no_noise.existential_penalty, 1e-9);
}

TEST_F(UserModelTest, RankBySimplicityIsAPermutation) {
  std::vector<Expression> candidates{
      Atom("capitalOf", "France"),
      Atom("placeOf", "Epitech"),
      Atom("cityIn", "France"),
  };
  const auto order = panel_->RankBySimplicity(0, candidates);
  ASSERT_EQ(order.size(), 3u);
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<size_t>{0, 1, 2}));
}

TEST_F(UserModelTest, RankingFollowsPerceivedComplexity) {
  std::vector<Expression> candidates{
      Atom("capitalOf", "France"),
      Atom("placeOf", "Epitech"),
      Atom("mayor", "Anne_Hidalgo"),
  };
  const auto order = panel_->RankBySimplicity(5, candidates);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(panel_->PerceivedComplexity(5, candidates[order[i - 1]]),
              panel_->PerceivedComplexity(5, candidates[order[i]]));
  }
}

TEST_F(UserModelTest, PreferBetweenMatchesComplexities) {
  const Expression a = Atom("capitalOf", "France");
  const Expression b = Atom("mayor", "Anne_Hidalgo");
  const size_t pick = panel_->PreferBetween(2, a, b);
  const bool a_simpler = panel_->PerceivedComplexity(2, a) <=
                         panel_->PerceivedComplexity(2, b);
  EXPECT_EQ(pick, a_simpler ? 0u : 1u);
}

TEST_F(UserModelTest, InterestingnessWithinLikertRange) {
  const Expression exprs[] = {
      Atom("capitalOf", "France"),
      Atom("mayor", "Anne_Hidalgo"),
      Atom("diedOf", "Aplastic_Anemia"),
  };
  for (size_t u = 0; u < panel_->num_users(); ++u) {
    for (const auto& e : exprs) {
      const int score = panel_->InterestingnessScore(u, e);
      EXPECT_GE(score, 1);
      EXPECT_LE(score, 5);
    }
  }
}

TEST_F(UserModelTest, CheapExpressionsScoreHigherOnAverage) {
  UserModelConfig config;
  config.noise_sigma = 0.5;
  SimulatedUserPanel panel(kb_, model_, config);
  const Expression cheap = Atom("capitalOf", "France");
  // An expensive unique-literal-ish expression: a rare inverse atom.
  const TermId resting_inv = kb_->InverseOf(Id("restingPlace"));
  double cheap_sum = 0, costly_sum = 0;
  int costly_count = 0;
  for (size_t u = 0; u < panel.num_users(); ++u) {
    cheap_sum += panel.InterestingnessScore(u, cheap);
    if (resting_inv != kNullTerm) {
      Expression costly = Expression::Top().Conjoin(
          SubgraphExpression::Atom(resting_inv, Id("Victor_Hugo")));
      costly_sum += panel.InterestingnessScore(u, costly);
      ++costly_count;
    }
  }
  if (costly_count > 0) {
    EXPECT_GT(cheap_sum / static_cast<double>(panel.num_users()),
              costly_sum / static_cast<double>(costly_count));
  }
}

TEST(MetricsTest, PrecisionAtKBasics) {
  std::vector<size_t> model{0, 1, 2, 3};
  std::vector<size_t> user{1, 0, 3, 2};
  EXPECT_DOUBLE_EQ(PrecisionAtK(model, user, 1), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(model, user, 2), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(model, user, 4), 1.0);
}

TEST(MetricsTest, PrecisionAtKPartialOverlap) {
  std::vector<size_t> model{0, 1, 2};
  std::vector<size_t> user{0, 3, 4};
  EXPECT_DOUBLE_EQ(PrecisionAtK(model, user, 3), 1.0 / 3.0);
}

TEST(MetricsTest, PrecisionAtKZeroK) {
  EXPECT_DOUBLE_EQ(PrecisionAtK({0}, {0}, 0), 0.0);
}

TEST(MetricsTest, AveragePrecisionSingleRelevant) {
  std::vector<size_t> user{7, 3, 9};
  EXPECT_DOUBLE_EQ(AveragePrecisionSingleRelevant(7, user), 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionSingleRelevant(3, user), 0.5);
  EXPECT_DOUBLE_EQ(AveragePrecisionSingleRelevant(9, user), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(AveragePrecisionSingleRelevant(42, user), 0.0);
}

TEST(MetricsTest, MeanStdBasics) {
  const auto ms = ComputeMeanStd({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.stddev, 2.0);
  EXPECT_EQ(ms.n, 8u);
}

TEST(MetricsTest, MeanStdEmpty) {
  const auto ms = ComputeMeanStd({});
  EXPECT_EQ(ms.n, 0u);
  EXPECT_DOUBLE_EQ(ms.mean, 0.0);
}

}  // namespace
}  // namespace remi
