#include "amie/amie.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

class AmieTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    cost_model_ = new CostModel(kb_, CostModelOptions{});
  }
  static void TearDownTestSuite() {
    delete cost_model_;
    delete kb_;
    cost_model_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
  static CostModel* cost_model_;
};

KnowledgeBase* AmieTest::kb_ = nullptr;
CostModel* AmieTest::cost_model_ = nullptr;

RuleAtom InstantiatedAtom(TermId p, int var, TermId constant) {
  RuleAtom atom;
  atom.predicate = p;
  atom.subject_var = var;
  atom.object_var = -1;
  atom.object_const = constant;
  return atom;
}

TEST_F(AmieTest, EmptyTargetsIsInvalidArgument) {
  AmieMiner miner(kb_, cost_model_);
  EXPECT_TRUE(miner.MineRe({}).status().IsInvalidArgument());
}

TEST_F(AmieTest, BodyMatchesInstantiatedAtom) {
  AmieMiner miner(kb_, cost_model_);
  std::vector<RuleAtom> body{
      InstantiatedAtom(Id("capitalOf"), 0, Id("France"))};
  EXPECT_TRUE(miner.BodyMatches(body, Id("Paris")));
  EXPECT_FALSE(miner.BodyMatches(body, Id("Lyon")));
}

TEST_F(AmieTest, BodyMatchesJoinThroughVariable) {
  AmieMiner miner(kb_, cost_model_);
  // mayor(x, z1) ∧ party(z1, Socialist_Party)
  RuleAtom mayor;
  mayor.predicate = Id("mayor");
  mayor.subject_var = 0;
  mayor.object_var = 1;
  std::vector<RuleAtom> body{mayor, InstantiatedAtom(Id("party"), 1,
                                                     Id("Socialist_Party"))};
  EXPECT_TRUE(miner.BodyMatches(body, Id("Rennes")));
  EXPECT_TRUE(miner.BodyMatches(body, Id("Paris")));
  EXPECT_FALSE(miner.BodyMatches(body, Id("Brest")));
}

TEST_F(AmieTest, EvaluateBodyReturnsSortedMatches) {
  AmieMiner miner(kb_, cost_model_);
  std::vector<RuleAtom> body{
      InstantiatedAtom(Id("belongedTo"), 0, Id("Brittany"))};
  auto matches = miner.EvaluateBody(body);
  ASSERT_EQ(matches.size(), 3u);  // Rennes, Nantes, Brest
  EXPECT_TRUE(std::is_sorted(matches.begin(), matches.end()));
}

TEST_F(AmieTest, EvaluateBodyWithSubjectConstant) {
  AmieMiner miner(kb_, cost_model_);
  // supervisorOf(Alfred_Kleiner, x): x = Einstein.
  RuleAtom atom;
  atom.predicate = Id("supervisorOf");
  atom.subject_var = -1;
  atom.subject_const = Id("Alfred_Kleiner");
  atom.object_var = 0;
  auto matches = miner.EvaluateBody({atom});
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], Id("Albert_Einstein"));
}

TEST_F(AmieTest, MinesReForParis) {
  AmieOptions options;
  options.timeout_seconds = 30;
  AmieMiner miner(kb_, cost_model_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.empty());
  ASSERT_GE(result->best_rule, 0);
  // Every output rule must be an RE: body matches exactly {Paris}.
  for (const Rule& rule : result->rules) {
    auto matches = miner.EvaluateBody(rule.body);
    EXPECT_EQ(matches, std::vector<TermId>{Id("Paris")})
        << rule.ToString(kb_->dict());
  }
}

TEST_F(AmieTest, MinesReForPair) {
  AmieOptions options;
  options.timeout_seconds = 30;
  AmieMiner miner(kb_, cost_model_, options);
  std::vector<TermId> targets{Id("Rennes"), Id("Nantes")};
  std::sort(targets.begin(), targets.end());
  auto result = miner.MineRe(targets);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rules.empty());
  for (const Rule& rule : result->rules) {
    EXPECT_EQ(miner.EvaluateBody(rule.body), targets)
        << rule.ToString(kb_->dict());
  }
}

TEST_F(AmieTest, StandardBiasOmitsExistentialVariables) {
  AmieOptions options;
  options.allow_existential_variables = false;
  options.timeout_seconds = 30;
  AmieMiner miner(kb_, cost_model_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  for (const Rule& rule : result->rules) {
    EXPECT_EQ(rule.num_variables, 1) << rule.ToString(kb_->dict());
    for (const RuleAtom& atom : rule.body) {
      EXPECT_FALSE(atom.subject_is_var() && atom.subject_var != 0);
      EXPECT_FALSE(atom.object_is_var() && atom.object_var != 0);
    }
  }
}

TEST_F(AmieTest, RespectsMaxRuleLength) {
  AmieOptions options;
  options.max_rule_length = 2;  // head + one body atom
  options.timeout_seconds = 30;
  AmieMiner miner(kb_, cost_model_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  for (const Rule& rule : result->rules) {
    EXPECT_LE(rule.num_atoms_with_head(), 2);
  }
}

TEST_F(AmieTest, TimeoutIsHonoured) {
  AmieOptions options;
  options.timeout_seconds = 1e-9;
  AmieMiner miner(kb_, cost_model_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.timed_out);
}

TEST_F(AmieTest, MaxExpansionsBoundsWork) {
  AmieOptions options;
  options.max_expansions = 5;
  AmieMiner miner(kb_, cost_model_, options);
  auto result = miner.MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->stats.rules_expanded, 5u);
}

TEST_F(AmieTest, NoSolutionForIndistinguishableTwins) {
  KbBuilder b;
  b.Fact("twin1", "p", "v");
  b.Fact("twin2", "p", "v");
  KbOptions kb_options;
  kb_options.inverse_top_fraction = 0;
  KnowledgeBase kb = std::move(b).Build(kb_options);
  CostModel cm(&kb, CostModelOptions{});
  AmieOptions options;
  options.timeout_seconds = 10;
  AmieMiner miner(&kb, &cm, options);
  auto result = miner.MineRe({*FindEntity(kb, "twin1")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rules.empty());
  EXPECT_EQ(result->best_rule, -1);
}

TEST_F(AmieTest, AgreesWithRemiOnSolvability) {
  // On the curated KB, whenever AMIE finds an RE, its best body cost can
  // never beat REMI's optimum under comparable languages by more than the
  // language mismatch allows — here we just check both agree that a
  // solution exists for well-known singletons.
  AmieOptions options;
  options.timeout_seconds = 60;
  AmieMiner miner(kb_, cost_model_, options);
  for (const char* name : {"Paris", "Marie_Curie"}) {
    auto result = miner.MineRe({Id(name)});
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->rules.empty()) << name;
  }
}

TEST_F(AmieTest, RuleToStringIsReadable) {
  Rule rule;
  rule.body.push_back(InstantiatedAtom(Id("capitalOf"), 0, Id("France")));
  const std::string s = rule.ToString(kb_->dict());
  EXPECT_NE(s.find("capitalOf"), std::string::npos);
  EXPECT_NE(s.find("France"), std::string::npos);
  EXPECT_NE(s.find("psi(x, True)"), std::string::npos);
}

}  // namespace
}  // namespace remi
