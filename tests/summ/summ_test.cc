#include <gtest/gtest.h>

#include "complexity/pagerank.h"
#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "summ/faces_lite.h"
#include "summ/gold_standard.h"
#include "summ/linksum_lite.h"
#include "summ/quality.h"
#include "summ/remi_summarizer.h"

namespace remi {
namespace {

class SummTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    pagerank_ = new std::unordered_map<TermId, double>(ComputePageRank(*kb_));
  }
  static void TearDownTestSuite() {
    delete pagerank_;
    delete kb_;
    pagerank_ = nullptr;
    kb_ = nullptr;
  }

  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  static KnowledgeBase* kb_;
  static std::unordered_map<TermId, double>* pagerank_;
};

KnowledgeBase* SummTest::kb_ = nullptr;
std::unordered_map<TermId, double>* SummTest::pagerank_ = nullptr;

TEST_F(SummTest, CandidateFactsExcludeTypeLabelAndInverses) {
  const Summary facts = CandidateFacts(*kb_, Id("Paris"));
  ASSERT_FALSE(facts.empty());
  for (const SummaryItem& item : facts) {
    EXPECT_NE(item.predicate, kb_->type_predicate());
    EXPECT_NE(item.predicate, kb_->label_predicate());
    EXPECT_FALSE(kb_->IsInversePredicate(item.predicate));
  }
}

TEST_F(SummTest, CandidateFactsAreSortedUnique) {
  const Summary facts = CandidateFacts(*kb_, Id("France"));
  EXPECT_TRUE(std::is_sorted(facts.begin(), facts.end()));
  EXPECT_EQ(std::adjacent_find(facts.begin(), facts.end()), facts.end());
}

TEST_F(SummTest, QualityPoCountsExactPairOverlap) {
  Summary s{{1, 10}, {2, 20}};
  std::vector<Summary> refs{{{1, 10}, {3, 30}}, {{1, 10}, {2, 20}}};
  // Overlaps: 1 and 2 -> average 1.5.
  EXPECT_DOUBLE_EQ(QualityPo(s, refs), 1.5);
}

TEST_F(SummTest, QualityOIgnoresPredicates) {
  Summary s{{1, 10}};
  std::vector<Summary> refs{{{9, 10}}};  // same object, other predicate
  EXPECT_DOUBLE_EQ(QualityO(s, refs), 1.0);
  EXPECT_DOUBLE_EQ(QualityPo(s, refs), 0.0);
}

TEST_F(SummTest, QualityEmptyReferences) {
  EXPECT_DOUBLE_EQ(QualityPo({{1, 10}}, {}), 0.0);
  EXPECT_DOUBLE_EQ(QualityO({{1, 10}}, {}), 0.0);
}

TEST_F(SummTest, MergedPrecisionBasics) {
  Summary s{{1, 10}, {2, 20}};
  std::vector<Summary> refs{{{1, 10}}, {{3, 20}}};
  const auto prec = PrecisionVsMergedGold(s, refs);
  EXPECT_DOUBLE_EQ(prec.pairs, 0.5);       // only (1,10) in union
  EXPECT_DOUBLE_EQ(prec.objects, 1.0);     // 10 and 20 both appear
  EXPECT_DOUBLE_EQ(prec.predicates, 0.5);  // 1 yes, 2 no
}

TEST_F(SummTest, MergedPrecisionEmptySummary) {
  const auto prec = PrecisionVsMergedGold({}, {{{1, 10}}});
  EXPECT_DOUBLE_EQ(prec.pairs, 0.0);
}

TEST_F(SummTest, GoldStandardProducesSevenExperts) {
  const auto gold = BuildGoldStandard(*kb_, Id("Paris"), {});
  EXPECT_EQ(gold.top5.size(), 7u);
  EXPECT_EQ(gold.top10.size(), 7u);
  for (const Summary& s : gold.top5) EXPECT_LE(s.size(), 5u);
  for (const Summary& s : gold.top10) EXPECT_LE(s.size(), 10u);
}

TEST_F(SummTest, GoldStandardTop5IsPrefixOfTop10) {
  const auto gold = BuildGoldStandard(*kb_, Id("France"), {});
  for (size_t e = 0; e < gold.top5.size(); ++e) {
    for (size_t i = 0; i < gold.top5[e].size(); ++i) {
      EXPECT_EQ(gold.top5[e][i], gold.top10[e][i]);
    }
  }
}

TEST_F(SummTest, GoldStandardIsDeterministic) {
  const auto a = BuildGoldStandard(*kb_, Id("Paris"), {});
  const auto b = BuildGoldStandard(*kb_, Id("Paris"), {});
  for (size_t e = 0; e < a.top10.size(); ++e) {
    EXPECT_EQ(a.top10[e], b.top10[e]);
  }
}

TEST_F(SummTest, GoldStandardExpertsDisagreeSomewhat) {
  const auto gold = BuildGoldStandard(*kb_, Id("France"), {});
  bool any_difference = false;
  for (size_t e = 1; e < gold.top10.size(); ++e) {
    if (!(gold.top10[e] == gold.top10[0])) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "experts should not be clones";
}

TEST_F(SummTest, GoldStandardPrefersDiversePredicates) {
  GoldStandardConfig config;
  config.noise_sigma = 0.0;  // isolate the diversity mechanism
  const auto gold = BuildGoldStandard(*kb_, Id("Switzerland"), config);
  // Switzerland has 4 officialLanguage facts; a diversity-aware expert
  // must not fill the top-5 with them alone.
  const Summary& top5 = gold.top5[0];
  size_t official = 0;
  for (const SummaryItem& item : top5) {
    if (item.predicate == Id("officialLanguage")) ++official;
  }
  EXPECT_LT(official, top5.size());
}

TEST_F(SummTest, GoldStandardOnEntityWithoutFacts) {
  const auto gold = BuildGoldStandard(*kb_, Id("Romance"), {});
  EXPECT_EQ(gold.top5.size(), 7u);  // empty summaries, not a crash
}

TEST_F(SummTest, FacesRespectsK) {
  for (size_t k : {1u, 3u, 5u, 10u}) {
    EXPECT_LE(FacesSummarize(*kb_, Id("France"), k).size(), k);
  }
  EXPECT_TRUE(FacesSummarize(*kb_, Id("France"), 0).empty());
}

TEST_F(SummTest, FacesItemsAreRealFacts) {
  const Summary s = FacesSummarize(*kb_, Id("France"), 10);
  ASSERT_FALSE(s.empty());
  for (const SummaryItem& item : s) {
    EXPECT_TRUE(kb_->store().Contains(Id("France"), item.predicate,
                                      item.object));
  }
}

TEST_F(SummTest, FacesIsDiversityAware) {
  // Switzerland: 4 officialLanguage facts but also in/borders facts; the
  // round-robin must mix clusters in the top 3.
  const Summary s = FacesSummarize(*kb_, Id("Switzerland"), 3);
  ASSERT_EQ(s.size(), 3u);
  size_t official = 0;
  for (const SummaryItem& item : s) {
    if (item.predicate == Id("officialLanguage")) ++official;
  }
  EXPECT_LE(official, 2u);
}

TEST_F(SummTest, LinkSumRespectsK) {
  for (size_t k : {1u, 5u, 10u}) {
    EXPECT_LE(LinkSumSummarize(*kb_, *pagerank_, Id("France"), k).size(), k);
  }
}

TEST_F(SummTest, LinkSumItemsAreRealFacts) {
  const Summary s = LinkSumSummarize(*kb_, *pagerank_, Id("France"), 10);
  ASSERT_FALSE(s.empty());
  for (const SummaryItem& item : s) {
    EXPECT_TRUE(kb_->store().Contains(Id("France"), item.predicate,
                                      item.object));
  }
}

TEST_F(SummTest, LinkSumPicksOnePredicatePerResource) {
  const Summary s = LinkSumSummarize(*kb_, *pagerank_, Id("Paris"), 10);
  std::vector<TermId> objects;
  for (const SummaryItem& item : s) objects.push_back(item.object);
  std::sort(objects.begin(), objects.end());
  EXPECT_EQ(std::adjacent_find(objects.begin(), objects.end()),
            objects.end());
}

TEST_F(SummTest, RemiSummarizerUsesStandardLanguage) {
  RemiMiner miner(kb_, MakeTable3RemiOptions(ProminenceMetric::kFrequency));
  const Summary s = RemiSummarize(miner, Id("France"), 10);
  ASSERT_FALSE(s.empty());
  for (const SummaryItem& item : s) {
    EXPECT_NE(item.predicate, kb_->type_predicate());
    EXPECT_FALSE(kb_->IsInversePredicate(item.predicate));
    EXPECT_TRUE(kb_->store().Contains(Id("France"), item.predicate,
                                      item.object));
  }
}

TEST_F(SummTest, RemiSummaryOrderedByCost) {
  RemiMiner miner(kb_, MakeTable3RemiOptions(ProminenceMetric::kFrequency));
  const Summary s = RemiSummarize(miner, Id("France"), 10);
  const CostModel& model = miner.cost_model();
  for (size_t i = 1; i < s.size(); ++i) {
    const double prev = model.SubgraphCost(
        SubgraphExpression::Atom(s[i - 1].predicate, s[i - 1].object));
    const double cur = model.SubgraphCost(
        SubgraphExpression::Atom(s[i].predicate, s[i].object));
    EXPECT_LE(prev, cur + 1e-9);
  }
}

}  // namespace
}  // namespace remi
