#include "util/status.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("no entity").ToString(), "NotFound: no entity");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kResourceExhausted);
       ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusCodeTest, ServiceCodesAreDistinctFromTimeout) {
  // The Service's per-request deadline (kDeadlineExceeded) is a separate
  // condition from an operation-configured time budget (kTimeout); see
  // the README error-taxonomy table.
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsTimeout());
  EXPECT_FALSE(Status::Timeout("x").IsDeadlineExceeded());
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  REMI_ASSIGN_OR_RETURN(int half, HalfOf(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

Status UseReturnNotOk(bool fail) {
  REMI_RETURN_NOT_OK(fail ? Status::IoError("disk") : Status::OK());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagatesErrors) {
  EXPECT_TRUE(UseReturnNotOk(false).ok());
  EXPECT_TRUE(UseReturnNotOk(true).IsIoError());
}

}  // namespace
}  // namespace remi
