#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrentlyWithSingleWaiter) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(max_in_flight.load(), 1);
  EXPECT_LE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, CancelDropsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Cancel();
  release.store(true);
  pool.Wait();
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, CancelWakesWaiter) {
  // Regression: Cancel() used to clear the queue without notifying
  // idle_cv_, so a Wait()er could hang if the drop emptied the pool.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  std::atomic<bool> wait_returned{false};
  std::thread waiter([&] {
    pool.Wait();
    wait_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool.Cancel();
  release.store(true);
  waiter.join();
  EXPECT_TRUE(wait_returned.load());
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, TaskGroupWaitsOnlyForItsOwnTasks) {
  ThreadPool pool(2);
  std::atomic<bool> release_other{false};
  // An unrelated long-running task must not block the group's Wait().
  pool.Submit([&] {
    while (!release_other.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  TaskGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit(&group, [&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 16);
  release_other.store(true);
  pool.Wait();
}

TEST(ThreadPoolTest, TaskGroupTracksNestedSubmissions) {
  ThreadPool pool(2);
  TaskGroup group;
  std::atomic<int> counter{0};
  pool.Submit(&group, [&] {
    counter.fetch_add(1);
    pool.Submit(&group, [&counter] { counter.fetch_add(10); });
  });
  group.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, CancelReleasesTaskGroupWaiters) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  TaskGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit(&group, [&counter] { counter.fetch_add(1); });
  }
  pool.Cancel();  // drops the queued group tasks -> group must unblock
  group.Wait();
  EXPECT_EQ(counter.load(), 0);
  release.store(true);
  pool.Wait();
}

TEST(ThreadPoolTest, IdleWorkersStealNestedTasks) {
  // A worker submits subtasks to its own deque, then blocks until one of
  // them has run. Only another worker stealing from the blocked worker's
  // deque can make progress, so completion proves work stealing.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group;
  pool.Submit(&group, [&] {
    for (int i = 0; i < 3; ++i) {
      pool.Submit(&group, [&ran] { ran.fetch_add(1); });
    }
    while (ran.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  group.Wait();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, OnWorkerThreadDetection) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.OnWorkerThread());
  std::atomic<int> inside{-1};
  std::atomic<int> inside_other{-1};
  pool.Submit([&] {
    inside.store(pool.OnWorkerThread() ? 1 : 0);
    inside_other.store(other.OnWorkerThread() ? 1 : 0);
  });
  pool.Wait();
  EXPECT_EQ(inside.load(), 1);
  EXPECT_EQ(inside_other.load(), 0);
}

TEST(ThreadPoolTest, ManyGroupsInterleave) {
  ThreadPool pool(4);
  constexpr int kGroups = 8;
  constexpr int kTasksPerGroup = 64;
  std::vector<std::unique_ptr<TaskGroup>> groups;
  std::atomic<int> counters[kGroups] = {};
  for (int g = 0; g < kGroups; ++g) {
    groups.push_back(std::make_unique<TaskGroup>());
    for (int i = 0; i < kTasksPerGroup; ++i) {
      pool.Submit(groups.back().get(),
                  [&counters, g] { counters[g].fetch_add(1); });
    }
  }
  for (int g = 0; g < kGroups; ++g) {
    groups[g]->Wait();
    EXPECT_EQ(counters[g].load(), kTasksPerGroup);
  }
}

TEST(ThreadPoolTest, NestedSubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  // Wait twice: the nested task may be enqueued after the first Wait saw
  // an empty queue only if the outer task had not finished; Wait() blocks
  // on active tasks, so one Wait suffices — assert that.
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace remi
