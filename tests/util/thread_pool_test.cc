#include "util/thread_pool.h"

#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrentlyWithSingleWaiter) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int expected = max_in_flight.load();
      while (now > expected &&
             !max_in_flight.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_GE(max_in_flight.load(), 1);
  EXPECT_LE(max_in_flight.load(), 2);
}

TEST(ThreadPoolTest, CancelDropsQueuedTasks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Cancel();
  release.store(true);
  pool.Wait();
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, NestedSubmitFromWorker) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  // Wait twice: the nested task may be enqueued after the first Wait saw
  // an empty queue only if the outer task had not finished; Wait() blocks
  // on active tasks, so one Wait suffices — assert that.
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace remi
