#include "util/varint.h"

#include <limits>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 255ull, 300ull, 16383ull,
                     16384ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    auto decoded = GetVarint64(buf, &pos);
    ASSERT_TRUE(decoded.ok()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, RoundTripMaxValue) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
  size_t pos = 0;
  auto decoded = GetVarint64(buf, &pos);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, std::numeric_limits<uint64_t>::max());
}

TEST(VarintTest, EncodingLengths) {
  const struct {
    uint64_t value;
    size_t length;
  } kCases[] = {{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}};
  for (const auto& c : kCases) {
    std::string buf;
    PutVarint64(&buf, c.value);
    EXPECT_EQ(buf.size(), c.length) << c.value;
  }
}

TEST(VarintTest, TruncatedInputIsCorruption) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  auto decoded = GetVarint64(buf, &pos);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(VarintTest, OverlongInputIsCorruption) {
  std::string buf(11, static_cast<char>(0x80));
  size_t pos = 0;
  auto decoded = GetVarint64(buf, &pos);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(VarintTest, SequentialDecoding) {
  std::string buf;
  PutVarint64(&buf, 7);
  PutVarint64(&buf, 70000);
  PutVarint64(&buf, 3);
  size_t pos = 0;
  EXPECT_EQ(*GetVarint64(buf, &pos), 7u);
  EXPECT_EQ(*GetVarint64(buf, &pos), 70000u);
  EXPECT_EQ(*GetVarint64(buf, &pos), 3u);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint32Test, RejectsValuesAbove32Bits) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  size_t pos = 0;
  auto decoded = GetVarint32(buf, &pos);
  EXPECT_TRUE(decoded.status().IsCorruption());
  EXPECT_EQ(pos, 0u);  // offset untouched on failure
}

TEST(Varint32Test, RoundTrip) {
  std::string buf;
  PutVarint32(&buf, 4294967295u);
  size_t pos = 0;
  EXPECT_EQ(*GetVarint32(buf, &pos), 4294967295u);
}

TEST(LengthPrefixedTest, RoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string("a\0b", 3));
  size_t pos = 0;
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), "hello");
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), "");
  EXPECT_EQ(*GetLengthPrefixed(buf, &pos), std::string("a\0b", 3));
  EXPECT_EQ(pos, buf.size());
}

TEST(LengthPrefixedTest, TruncatedPayloadIsCorruption) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  buf.resize(buf.size() - 2);
  size_t pos = 0;
  EXPECT_TRUE(GetLengthPrefixed(buf, &pos).status().IsCorruption());
}

}  // namespace
}  // namespace remi
