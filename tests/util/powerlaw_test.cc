#include "util/powerlaw.h"

#include <cmath>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(FitLinearTest, ExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};  // y = 2x + 1
  auto fit = FitLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitLinearTest, SizeMismatchFails) {
  EXPECT_FALSE(FitLinear({1, 2}, {1}).ok());
}

TEST(FitLinearTest, TooFewPointsFails) {
  EXPECT_FALSE(FitLinear({1}, {1}).ok());
}

TEST(FitLinearTest, ConstantYHasPerfectFit) {
  auto fit = FitLinear({1, 2, 3}, {5, 5, 5});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->r2, 1.0, 1e-12);
}

TEST(FitLinearTest, ConstantXFallsBackToMean) {
  auto fit = FitLinear({2, 2, 2}, {1, 2, 3});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 0.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 2.0, 1e-12);
}

TEST(FitLinearTest, NoisyDataR2Below1) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.0 * i + ((i % 2 == 0) ? 1.0 : -1.0) * 5.0);
  }
  auto fit = FitLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->r2, 0.5);
  EXPECT_LT(fit->r2, 1.0);
}

// A perfect Zipf ranking: freq(k) = C * k^-alpha. Eq. 1 must recover alpha
// with R^2 = 1.
TEST(FitPowerLawTest, ExactZipfRecoversAlpha) {
  const double alpha = 1.3;
  std::vector<double> freqs;
  for (size_t k = 1; k <= 200; ++k) {
    freqs.push_back(1e6 * std::pow(static_cast<double>(k), -alpha));
  }
  auto coeff = FitPowerLaw(freqs);
  // log2(rank) = -(1/alpha) log2(freq) + const, so fitted alpha = 1/1.3.
  EXPECT_NEAR(coeff.alpha, 1.0 / alpha, 1e-6);
  EXPECT_NEAR(coeff.r2, 1.0, 1e-9);
}

TEST(FitPowerLawTest, EstimateBitsDecreasesWithFrequency) {
  std::vector<double> freqs;
  for (size_t k = 1; k <= 100; ++k) {
    freqs.push_back(1000.0 / static_cast<double>(k));
  }
  auto coeff = FitPowerLaw(freqs);
  EXPECT_LT(coeff.EstimateBits(1000.0), coeff.EstimateBits(10.0));
  EXPECT_LT(coeff.EstimateBits(10.0), coeff.EstimateBits(1.0));
}

TEST(FitPowerLawTest, EstimateBitsNeverNegative) {
  std::vector<double> freqs{1e9, 1e6, 1e3, 10, 1};
  auto coeff = FitPowerLaw(freqs);
  EXPECT_GE(coeff.EstimateBits(1e12), 0.0);
  EXPECT_GE(coeff.EstimateBits(0.5), 0.0);  // clamped below freq 1
}

TEST(FitPowerLawTest, SingletonRankingCostsZeroBits) {
  auto coeff = FitPowerLaw({42.0});
  EXPECT_EQ(coeff.alpha, 0.0);
  EXPECT_EQ(coeff.EstimateBits(42.0), 0.0);
  EXPECT_EQ(coeff.r2, 1.0);
}

TEST(FitPowerLawTest, EmptyRankingIsBenign) {
  auto coeff = FitPowerLaw({});
  EXPECT_EQ(coeff.n, 0u);
  EXPECT_EQ(coeff.EstimateBits(5.0), 0.0);
}

}  // namespace
}  // namespace remi
