// util/json.h: the minimal JSON model behind the Service line protocol.

#include "util/json.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_DOUBLE_EQ(ParseJson("42")->AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-1.5e3")->AsNumber(), -1500.0);
  EXPECT_EQ(ParseJson("\"hi\"")->AsString(), "hi");
}

TEST(JsonParseTest, NestedDocument) {
  auto v = ParseJson(
      R"({"op":"mine","targets":["Berlin",7],"opts":{"deadline_ms":50}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->Find("op")->AsString(), "mine");
  const JsonValue* targets = v->Find("targets");
  ASSERT_NE(targets, nullptr);
  ASSERT_EQ(targets->items().size(), 2u);
  EXPECT_EQ(targets->items()[0].AsString(), "Berlin");
  EXPECT_DOUBLE_EQ(targets->items()[1].AsNumber(), 7.0);
  EXPECT_DOUBLE_EQ(v->Find("opts")->Find("deadline_ms")->AsNumber(), 50.0);
  EXPECT_EQ(v->Find("absent"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\n\t\u0041\u00e9")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c\n\tA\xc3\xa9");
}

TEST(JsonParseTest, SurrogatePairDecodesToUtf8) {
  auto v = ParseJson(R"("\ud83d\ude00")");  // 😀 U+1F600
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "\"unterminated", "tru", "01",
        "1.2.3", "{\"a\" 1}", "[1 2]", "nul", "\"\\u12\"", "\"\\ud800x\"",
        "{}extra", "\"\x01\""}) {
    auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "input: " << bad;
    EXPECT_TRUE(v.status().IsParseError()) << bad;
    EXPECT_NE(v.status().message().find("at byte"), std::string::npos)
        << bad;
  }
}

TEST(JsonParseTest, DeepNestingIsRejectedNotStackOverflow) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  auto v = ParseJson(deep);
  EXPECT_FALSE(v.ok());
}

TEST(JsonDumpTest, RoundTripsAndIsDeterministic) {
  const std::string doc =
      R"({"status":"OK","found":true,"cost":2.5,"n":3,"items":["a","b"],"none":null})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Dump(), doc);
}

TEST(JsonDumpTest, IntegralNumbersPrintWithoutFraction) {
  JsonValue v = JsonValue::Object();
  v.Set("count", JsonValue::Number(65536));
  v.Set("ratio", JsonValue::Number(0.5));
  EXPECT_EQ(v.Dump(), R"({"count":65536,"ratio":0.5})");
}

TEST(JsonDumpTest, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(JsonValue::String("a\"b\n\x01").Dump(), R"("a\"b\n\u0001")");
}

TEST(JsonDumpTest, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(JsonValue::Number(1.0 / 0.0).Dump(), "null");
}

TEST(JsonValueTest, SetOverwritesInPlace) {
  JsonValue v = JsonValue::Object();
  v.Set("a", JsonValue::Number(1));
  v.Set("b", JsonValue::Number(2));
  v.Set("a", JsonValue::Number(3));
  EXPECT_EQ(v.Dump(), R"({"a":3,"b":2})");
}

}  // namespace
}  // namespace remi
