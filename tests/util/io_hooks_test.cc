// IoHooks seam + FaultInjector unit tests: pass-through transparency,
// deterministic replay, sequence scheduling, fd filtering, and the RAII
// install/restore contract the chaos harness depends on.

#include "util/io_hooks.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

namespace remi {
namespace io {
namespace {

/// A unix socketpair, for exercising Recv/Send against real fds.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) close(fds[0]);
    if (fds[1] >= 0) close(fds[1]);
  }
};

TEST(IoHooksTest, DefaultTableIsPassthrough) {
  SocketPair pair;
  const char msg[] = "hello";
  ASSERT_EQ(Hooks().Send(pair.fds[0], msg, sizeof(msg), 0),
            static_cast<ssize_t>(sizeof(msg)));
  char buf[16] = {};
  ASSERT_EQ(Hooks().Recv(pair.fds[1], buf, sizeof(buf), 0),
            static_cast<ssize_t>(sizeof(msg)));
  EXPECT_STREQ(buf, "hello");
}

TEST(IoHooksTest, ScopedHooksInstallsAndRestores) {
  FaultInjector injector{FaultProfile{}};
  EXPECT_EQ(&Hooks(), &Hooks());  // stable pass-through
  IoHooks* before = SetHooks(nullptr);
  EXPECT_EQ(before, nullptr);
  {
    ScopedHooks scoped(&injector);
    EXPECT_EQ(&Hooks(), &injector);
    {
      // Nested installs restore the *outer* injector, not pass-through.
      FaultInjector inner{FaultProfile{}};
      ScopedHooks nested(&inner);
      EXPECT_EQ(&Hooks(), &inner);
    }
    EXPECT_EQ(&Hooks(), &injector);
  }
  EXPECT_NE(&Hooks(), &injector);
}

TEST(IoHooksTest, ZeroProfileInjectsNothing) {
  FaultProfile profile;
  profile.seed = 42;
  FaultInjector injector(profile);
  SocketPair pair;
  const char msg[] = "x";
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(injector.Send(pair.fds[0], msg, 1, 0), 1);
    char c;
    ASSERT_EQ(injector.Recv(pair.fds[1], &c, 1, 0), 1);
  }
  EXPECT_EQ(injector.injected_total(), 0u);
  EXPECT_EQ(injector.calls(IoOp::kSend), 100u);
  EXPECT_EQ(injector.calls(IoOp::kRecv), 100u);
}

TEST(IoHooksTest, SingleThreadedReplayIsExact) {
  // Two injectors with the same seed must make the identical sequence of
  // decisions when driven by one thread.
  auto run = [](uint64_t seed) {
    FaultProfile profile;
    profile.seed = seed;
    profile.eintr_probability = 0.3;
    FaultInjector injector(profile);
    SocketPair pair;
    const char msg[] = "x";
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) {
      errno = 0;
      const ssize_t n = injector.Send(pair.fds[0], msg, 1, 0);
      outcomes.push_back(n < 0 && errno == EINTR);
      if (n < 0) continue;
      char c;
      EXPECT_EQ(Hooks().Recv(pair.fds[1], &c, 1, 0), 1);
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed actually matters
}

TEST(IoHooksTest, FailNthHitsExactlyTheScheduledCall) {
  FaultInjector injector{FaultProfile{}};
  injector.FailNth(IoOp::kWrite, 3, ENOSPC);
  const int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  const char byte = 'x';
  EXPECT_EQ(injector.Write(fd, &byte, 1), 1);
  EXPECT_EQ(injector.Write(fd, &byte, 1), 1);
  errno = 0;
  EXPECT_EQ(injector.Write(fd, &byte, 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(injector.Write(fd, &byte, 1), 1);
  EXPECT_EQ(injector.injected(IoOp::kWrite), 1u);
  close(fd);
}

TEST(IoHooksTest, FdFilterShieldsOtherFds) {
  FaultProfile profile;
  profile.eintr_probability = 1.0;  // every eligible call fails
  FaultInjector injector(profile);
  SocketPair pair;
  const int faulted = pair.fds[0];
  injector.set_fd_filter([faulted](int fd) { return fd == faulted; });
  const char msg[] = "x";
  errno = 0;
  EXPECT_EQ(injector.Send(pair.fds[0], msg, 1, 0), -1);
  EXPECT_EQ(errno, EINTR);
  // The other end of the pair is clean.
  EXPECT_EQ(injector.Send(pair.fds[1], msg, 1, 0), 1);
}

TEST(IoHooksTest, ShortWritesTransferAPrefix) {
  FaultProfile profile;
  profile.short_write_probability = 1.0;
  FaultInjector injector(profile);
  SocketPair pair;
  const std::string msg(64, 'a');
  const ssize_t n = injector.Send(pair.fds[0], msg.data(), msg.size(), 0);
  ASSERT_GT(n, 0);
  EXPECT_LT(static_cast<size_t>(n), msg.size());
  char buf[64];
  EXPECT_EQ(Hooks().Recv(pair.fds[1], buf, sizeof(buf), 0), n);
}

TEST(IoHooksTest, ShortReadsDeliverOneByte) {
  FaultProfile profile;
  profile.short_read_probability = 1.0;
  FaultInjector injector(profile);
  SocketPair pair;
  const std::string msg(16, 'b');
  ASSERT_EQ(Hooks().Send(pair.fds[0], msg.data(), msg.size(), 0),
            static_cast<ssize_t>(msg.size()));
  char buf[16];
  EXPECT_EQ(injector.Recv(pair.fds[1], buf, sizeof(buf), 0), 1);
  EXPECT_EQ(buf[0], 'b');
}

TEST(IoHooksTest, ScheduledCloseStillClosesTheFd) {
  FaultInjector injector{FaultProfile{}};
  injector.FailNth(IoOp::kClose, 1, EIO);
  const int fd = ::open("/dev/null", O_RDONLY);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(injector.Close(fd), -1);
  EXPECT_EQ(errno, EIO);
  // The descriptor must be gone — a leaked fd under a "failed" close
  // would exhaust the table in a chaos soak.
  EXPECT_EQ(::close(fd), -1);
  EXPECT_EQ(errno, EBADF);
}

TEST(IoHooksTest, AcceptResourceErrnosRotate) {
  FaultProfile profile;
  profile.accept_resource_probability = 1.0;
  FaultInjector injector(profile);
  std::vector<int> errnos;
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(injector.Accept4(-1, nullptr, nullptr, 0), -1);
    errnos.push_back(errno);
  }
  EXPECT_EQ(errnos, (std::vector<int>{EMFILE, ENFILE, ENOMEM}));
}

TEST(IoHooksTest, MmapFailureReturnsMapFailed) {
  FaultInjector injector{FaultProfile{}};
  injector.FailNth(IoOp::kMmap, 1, ENOMEM);
  errno = 0;
  EXPECT_EQ(injector.Mmap(nullptr, 4096, 0, 0, -1, 0), MAP_FAILED);
  EXPECT_EQ(errno, ENOMEM);
}

}  // namespace
}  // namespace io
}  // namespace remi
