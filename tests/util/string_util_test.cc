#include "util/string_util.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, PreservesEmptyFields) {
  auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(JoinStringsTest, RoundTripWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ", "), "x, y, z");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\r\n"), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("htt", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("AbC-123"), "abc-123");
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatSecondsTest, PicksUnits) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0.5us");
  EXPECT_EQ(FormatSeconds(0.0123), "12.3ms");
  EXPECT_EQ(FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(FormatSeconds(4321.0), "4.3ks");
}

TEST(CommonPrefixLengthTest, Basics) {
  EXPECT_EQ(CommonPrefixLength("http://a/x", "http://a/y"), 9u);
  EXPECT_EQ(CommonPrefixLength("abc", "abc"), 3u);
  EXPECT_EQ(CommonPrefixLength("abc", "xbc"), 0u);
  EXPECT_EQ(CommonPrefixLength("", "abc"), 0u);
}

}  // namespace
}  // namespace remi
