#include "util/flags.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  argv.push_back(nullptr);  // program name slot
  for (auto& s : storage) argv.push_back(s.data());
  return argv;
}

class FlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flags_.DefineString("name", "default", "a string");
    flags_.DefineInt("count", 10, "an int");
    flags_.DefineDouble("rate", 0.5, "a double");
    flags_.DefineBool("verbose", false, "a bool");
  }
  Flags flags_;
};

TEST_F(FlagsTest, DefaultsApply) {
  std::vector<std::string> args;
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetString("name"), "default");
  EXPECT_EQ(flags_.GetInt("count"), 10);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 0.5);
  EXPECT_FALSE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  std::vector<std::string> args{"--name=kb", "--count=42", "--rate=1.25"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetString("name"), "kb");
  EXPECT_EQ(flags_.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("rate"), 1.25);
}

TEST_F(FlagsTest, SpaceSyntax) {
  std::vector<std::string> args{"--count", "7"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(flags_.GetInt("count"), 7);
}

TEST_F(FlagsTest, BareBooleanAndNegation) {
  std::vector<std::string> args{"--verbose"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));

  Flags flags2;
  flags2.DefineBool("verbose", true, "");
  std::vector<std::string> args2{"--no-verbose"};
  auto argv2 = MakeArgv(args2);
  ASSERT_TRUE(
      flags2.Parse(static_cast<int>(argv2.size()), argv2.data()).ok());
  EXPECT_FALSE(flags2.GetBool("verbose"));
}

TEST_F(FlagsTest, UnknownFlagFails) {
  std::vector<std::string> args{"--bogus=1"};
  auto argv = MakeArgv(args);
  EXPECT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data())
                  .IsInvalidArgument());
}

TEST_F(FlagsTest, MalformedIntFails) {
  std::vector<std::string> args{"--count=abc"};
  auto argv = MakeArgv(args);
  EXPECT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data())
                  .IsInvalidArgument());
}

TEST_F(FlagsTest, MalformedDoubleFails) {
  std::vector<std::string> args{"--rate=1.2.3"};
  auto argv = MakeArgv(args);
  EXPECT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data())
                  .IsInvalidArgument());
}

TEST_F(FlagsTest, MissingValueFails) {
  std::vector<std::string> args{"--count"};
  auto argv = MakeArgv(args);
  EXPECT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data())
                  .IsInvalidArgument());
}

TEST_F(FlagsTest, PositionalArgumentsCollected) {
  std::vector<std::string> args{"input.nt", "--count=3", "output.rkf"};
  auto argv = MakeArgv(args);
  ASSERT_TRUE(flags_.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  ASSERT_EQ(flags_.positional().size(), 2u);
  EXPECT_EQ(flags_.positional()[0], "input.nt");
  EXPECT_EQ(flags_.positional()[1], "output.rkf");
}

TEST_F(FlagsTest, HelpListsFlags) {
  const std::string help = flags_.Help();
  EXPECT_NE(help.find("--name"), std::string::npos);
  EXPECT_NE(help.find("--count"), std::string::npos);
}

}  // namespace
}  // namespace remi
