#include "util/lru_cache.h"

#include <string>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(LruCacheTest, GetMissOnEmpty) {
  LruCache<int, int> cache(4);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, PutThenGet) {
  LruCache<int, std::string> cache(4);
  cache.Put(1, "one");
  auto v = cache.Get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LruCacheTest, OverwriteUpdatesValue) {
  LruCache<int, int> cache(4);
  cache.Put(1, 10);
  cache.Put(1, 20);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Get(1), 20);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(3, 3);  // evicts 1
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_TRUE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
}

TEST(LruCacheTest, GetRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Get(1).has_value());  // 1 becomes most recent
  cache.Put(3, 3);                        // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, OverwriteRefreshesRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Put(1, 11);  // 1 most recent
  cache.Put(3, 3);   // evicts 2
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.Put(1, 1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(LruCacheTest, ClearResetsEverything) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  (void)cache.Get(1);
  (void)cache.Get(2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(LruCacheTest, ContainsDoesNotRefreshRecency) {
  LruCache<int, int> cache(2);
  cache.Put(1, 1);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Contains(1));  // must NOT refresh
  cache.Put(3, 3);                 // evicts 1 (still least recent)
  EXPECT_FALSE(cache.Get(1).has_value());
}

TEST(LruCacheTest, StressAgainstCapacityInvariant) {
  LruCache<int, int> cache(16);
  for (int i = 0; i < 1000; ++i) {
    cache.Put(i % 37, i);
    EXPECT_LE(cache.size(), 16u);
  }
}

}  // namespace
}  // namespace remi
