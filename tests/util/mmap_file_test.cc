#include "util/mmap_file.h"

#include <cstdint>
#include <fstream>

#include <gtest/gtest.h>

namespace remi {
namespace {

std::string WriteTemp(const std::string& name, const std::string& bytes) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(MmapFileTest, OpensRegularFile) {
  const std::string path = WriteTemp("mmap_basic.bin", "hello mmap");
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ(file->data(), "hello mmap");
  EXPECT_EQ(reinterpret_cast<uintptr_t>(file->data().data()) % 8, 0u);
}

TEST(MmapFileTest, MissingFileIsIoError) {
  EXPECT_TRUE(MmapFile::Open("/nonexistent/x.bin").status().IsIoError());
}

TEST(MmapFileTest, EmptyFile) {
  const std::string path = WriteTemp("mmap_empty.bin", "");
  auto file = MmapFile::Open(path);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->data().empty());
  EXPECT_NE(file->data().data(), nullptr);
}

TEST(MmapFileTest, FromBytesIsAlignedCopy) {
  std::string bytes(1000, '\0');
  for (size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<char>(i % 251);
  }
  const MmapFile file = MmapFile::FromBytes(bytes);
  EXPECT_FALSE(file.is_mapped());
  EXPECT_EQ(file.data(), bytes);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(file.data().data()) % 8, 0u);
}

TEST(MmapFileTest, MoveTransfersContents) {
  MmapFile a = MmapFile::FromBytes("payload");
  MmapFile b = std::move(a);
  EXPECT_EQ(b.data(), "payload");
  MmapFile c;
  c = std::move(b);
  EXPECT_EQ(c.data(), "payload");
}

}  // namespace
}  // namespace remi
