#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(2);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(5);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NextBoolFrequencyMatchesP) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleWithoutReplacementUnique) {
  Rng rng(8);
  for (size_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t idx : sample) EXPECT_LT(idx, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(9);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double sum = 0;
  for (size_t k = 1; k <= 100; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 0.9);
  for (size_t k = 2; k <= 50; ++k) {
    EXPECT_LT(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfSamplerTest, SamplesInRange) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const size_t k = zipf.Sample(&rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 20u);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesTrackPmf) {
  const size_t n = 10;
  ZipfSampler zipf(n, 1.0);
  Rng rng(11);
  std::vector<int> counts(n + 1, 0);
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t k = 1; k <= n; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, zipf.Pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(ZipfSamplerTest, SingleRank) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(12);
  EXPECT_EQ(zipf.Sample(&rng), 1u);
  EXPECT_NEAR(zipf.Pmf(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace remi
