#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(TimerTest, ElapsedIncreasesMonotonically) {
  Timer timer;
  const double a = timer.ElapsedSeconds();
  const double b = timer.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, MeasuresSleeps) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedSeconds(), 0.015);
  EXPECT_GE(timer.ElapsedMicros(), 15000);
}

TEST(TimerTest, ResetRestartsTheClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), 0.015);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.has_deadline());
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, ZeroSecondsExpiresImmediately) {
  Deadline deadline = Deadline::AfterSeconds(0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_TRUE(deadline.Expired());
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline deadline = Deadline::AfterSeconds(60);
  EXPECT_FALSE(deadline.Expired());
}

TEST(DeadlineTest, ExpiresAfterItsDuration) {
  Deadline deadline = Deadline::AfterSeconds(0.02);
  EXPECT_FALSE(deadline.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(deadline.Expired());
}

}  // namespace
}  // namespace remi
