// Regression tests pinning the paper's showcase behaviours on the curated
// KB. These are deliberately end-to-end: if a cost-model or enumerator
// change flips one of the stories the paper tells, a test here fails.

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "nlg/verbalizer.h"
#include "remi/remi.h"

namespace remi {
namespace {

class ShowcaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
    miner_ = new RemiMiner(kb_, RemiOptions{});
  }
  static void TearDownTestSuite() {
    delete miner_;
    delete kb_;
    miner_ = nullptr;
    kb_ = nullptr;
  }
  TermId Id(const char* name) const { return *FindEntity(*kb_, name); }

  bool HasPart(const Expression& e, const SubgraphExpression& part) {
    return std::find(e.parts.begin(), e.parts.end(), part) != e.parts.end();
  }

  static KnowledgeBase* kb_;
  static RemiMiner* miner_;
};

KnowledgeBase* ShowcaseTest::kb_ = nullptr;
RemiMiner* ShowcaseTest::miner_ = nullptr;

TEST_F(ShowcaseTest, ParisAnswerContainsCapitalOfFrance) {
  auto result = miner_->MineRe({Id("Paris")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_TRUE(HasPart(result->expression,
                      SubgraphExpression::Atom(Id("capitalOf"),
                                               Id("France"))))
      << result->expression.ToString(kb_->dict());
}

TEST_F(ShowcaseTest, MuellerPrefersTheEinsteinChain) {
  // §3.2's motivating case: "supervisor of the supervisor of Albert
  // Einstein" must beat "supervisor of Alfred Kleiner" because Kleiner is
  // globally obscure while Einstein is a hub, and the supervision tail
  // pushes Kleiner's conditional rank down.
  auto result = miner_->MineRe({Id("Johann_J_Mueller")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  const auto chain = SubgraphExpression::Path(
      Id("supervisorOf"), Id("supervisorOf"), Id("Albert_Einstein"));
  EXPECT_TRUE(HasPart(result->expression, chain))
      << result->expression.ToString(kb_->dict());
  // And the chain is strictly cheaper than the Kleiner atom.
  const auto kleiner_atom =
      SubgraphExpression::Atom(Id("supervisorOf"), Id("Alfred_Kleiner"));
  EXPECT_LT(miner_->cost_model().SubgraphCost(chain),
            miner_->cost_model().SubgraphCost(kleiner_atom));
}

TEST_F(ShowcaseTest, GuyanaSurinameNeedsAConjunction) {
  // With symmetric borders, no single cheap atom separates the two
  // Germanic-language countries of South America.
  auto result = miner_->MineRe({Id("Guyana"), Id("Suriname")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  MatchSet targets{Id("Guyana"), Id("Suriname")};
  EXPECT_TRUE(miner_->evaluator()->IsReferringExpression(result->expression,
                                                         targets));
  // borders(x, Brazil) alone must NOT be an RE (Peru/Argentina share it).
  Expression borders_brazil = Expression::Top().Conjoin(
      SubgraphExpression::Atom(Id("borders"), Id("Brazil")));
  EXPECT_FALSE(miner_->evaluator()->IsReferringExpression(borders_brazil,
                                                          targets));
}

TEST_F(ShowcaseTest, FranceIsNotTheCountryWithCapitalParis) {
  // §4.1.3's noise anecdote, end to end: the inverse atom matches both
  // France and the Kingdom of France, so REMI must answer with something
  // else (and its answer must still be a strict RE).
  const TermId inv = kb_->InverseOf(Id("capitalOf"));
  ASSERT_NE(inv, kNullTerm);
  auto result = miner_->MineRe({Id("France")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_FALSE(HasPart(result->expression,
                       SubgraphExpression::Atom(inv, Id("Paris"))))
      << result->expression.ToString(kb_->dict());
}

TEST_F(ShowcaseTest, AgrofertDescribedViaItsCeo) {
  // §4.1.3's well-scored description: "the CEO is Andrej Babiš ...".
  auto result = miner_->MineRe({Id("Agrofert")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  bool uses_ceo = false;
  for (const auto& part : result->expression.parts) {
    uses_ceo |= part.p0 == Id("ceo");
  }
  EXPECT_TRUE(uses_ceo) << result->expression.ToString(kb_->dict());
}

TEST_F(ShowcaseTest, MarieCurieDiedOfAplasticAnemia) {
  auto result = miner_->MineRe({Id("Marie_Curie")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  Verbalizer verbalizer(kb_);
  const std::string sentence = verbalizer.Sentence(result->expression);
  // The unique cheap fact about Curie in the curated KB is her cause of
  // death (the Nobel prize and physics are shared with Einstein).
  EXPECT_NE(sentence.find("aplastic anemia"), std::string::npos) << sentence;
}

TEST_F(ShowcaseTest, EcuadorPeruViaTheIncaCivilWar) {
  auto result = miner_->MineRe({Id("Ecuador"), Id("Peru")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_TRUE(HasPart(result->expression,
                      SubgraphExpression::Atom(Id("hadEvent"),
                                               Id("Inca_Civil_War"))))
      << result->expression.ToString(kb_->dict());
}

TEST_F(ShowcaseTest, HobbitsViaChristopherLee) {
  // §4.1.3: 95% preferred country + actor(x, C. Lee) — at minimum the
  // answer must be an RE and mention Christopher Lee or New Zealand.
  auto result = miner_->MineRe({Id("The_Hobbit_1"), Id("The_Hobbit_2")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  bool mentions = false;
  for (const auto& part : result->expression.parts) {
    mentions |= part.c1 == Id("Christopher_Lee") ||
                part.c1 == Id("New_Zealand") ||
                part.c2 == Id("Christopher_Lee");
  }
  EXPECT_TRUE(mentions) << result->expression.ToString(kb_->dict());
}

TEST_F(ShowcaseTest, SwitzerlandViaItsLanguages) {
  // Switzerland is the only country with four official languages; any
  // strict RE works, but it must be found and verbalizable.
  auto result = miner_->MineRe({Id("Switzerland")});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  Verbalizer verbalizer(kb_);
  EXPECT_FALSE(verbalizer.Sentence(result->expression).empty());
}

}  // namespace
}  // namespace remi
