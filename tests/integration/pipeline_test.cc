// End-to-end integration and property tests across modules:
//   * N-Triples serialize -> parse -> rebuild KB -> REMI agrees,
//   * RKF round-trip -> REMI agrees,
//   * evaluator match sets agree with brute-force membership scans,
//   * REMI's optimum is never beaten by brute-force enumeration of small
//     conjunctions of ranked subgraph expressions.

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "rdf/ntriples.h"
#include "rdf/rkf.h"
#include "remi/remi.h"

namespace remi {
namespace {

// Rebuilds a KB from its serialized base facts. The base facts are
// recovered by dropping materialized inverse facts.
std::vector<Triple> BaseFacts(const KnowledgeBase& kb) {
  std::vector<Triple> base;
  for (const Triple& t : kb.store().spo()) {
    if (!kb.IsInversePredicate(t.p)) base.push_back(t);
  }
  return base;
}

TEST(PipelineTest, NTriplesRoundTripPreservesRemiResults) {
  KnowledgeBase kb = BuildCuratedKb();
  const std::string doc = WriteNTriples(kb.dict(), BaseFacts(kb));

  Dictionary dict2;
  NTriplesParser parser(&dict2);
  auto triples = parser.ParseString(doc);
  ASSERT_TRUE(triples.ok());
  KnowledgeBase kb2 = KnowledgeBase::Build(std::move(dict2), *triples,
                                           CuratedKbOptions());
  EXPECT_EQ(kb2.NumBaseFacts(), kb.NumBaseFacts());
  EXPECT_EQ(kb2.NumFacts(), kb.NumFacts());

  RemiMiner miner1(&kb, RemiOptions{});
  RemiMiner miner2(&kb2, RemiOptions{});
  for (const char* name : {"Paris", "Marie_Curie", "Agrofert"}) {
    auto r1 = miner1.MineRe({*FindEntity(kb, name)});
    auto r2 = miner2.MineRe({*FindEntity(kb2, name)});
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1->found, r2->found) << name;
    if (r1->found) {
      // Costs must agree exactly; the chosen expression may differ only
      // among equal-cost REs (queue order on ties is id-based).
      EXPECT_NEAR(r1->cost, r2->cost, 1e-9) << name;
      EXPECT_NEAR(miner2.cost_model().Cost(r2->expression), r2->cost, 1e-9)
          << name;
    }
  }
}

TEST(PipelineTest, RkfRoundTripPreservesRemiResults) {
  KnowledgeBase kb = BuildCuratedKb();
  const std::string bytes = SerializeRkf(kb.dict(), BaseFacts(kb));
  auto data = DeserializeRkf(bytes);
  ASSERT_TRUE(data.ok());
  // The RKF dictionary also carries the (unused) inverse-predicate terms;
  // rebuilding re-materializes the same inverse facts.
  KnowledgeBase kb2 = KnowledgeBase::Build(std::move(data->dict),
                                           std::move(data->triples),
                                           CuratedKbOptions());
  EXPECT_EQ(kb2.NumFacts(), kb.NumFacts());

  RemiMiner miner1(&kb, RemiOptions{});
  RemiMiner miner2(&kb2, RemiOptions{});
  auto r1 = miner1.MineRe({*FindEntity(kb, "Rennes"),
                           *FindEntity(kb, "Nantes")});
  auto r2 = miner2.MineRe({*FindEntity(kb2, "Rennes"),
                           *FindEntity(kb2, "Nantes")});
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->found, r2->found);
  EXPECT_NEAR(r1->cost, r2->cost, 1e-9);
}

// Property: for every enumerated subgraph expression, the evaluator's
// match set equals the brute-force set {e : Matches(e, rho)}.
class MatchConsistencyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchConsistencyTest, MatchSetsAgreeWithMembership) {
  SyntheticKbConfig config;
  config.seed = GetParam();
  config.num_entities = 400;
  config.num_predicates = 16;
  config.num_classes = 6;
  config.num_facts = 3000;
  KnowledgeBase kb = BuildSyntheticKb(config);
  Evaluator evaluator(&kb);
  SubgraphEnumerator enumerator(&evaluator);

  // Probe a handful of entities; verify every enumerated expression.
  const auto classes = LargestClasses(kb, 2);
  ASSERT_FALSE(classes.empty());
  auto members = ClassMembersByProminence(kb, classes[0]);
  members.resize(std::min<size_t>(members.size(), 3));
  for (const TermId t : members) {
    auto expressions = enumerator.EnumerateFor(t);
    size_t checked = 0;
    for (const auto& rho : expressions) {
      if (++checked > 40) break;  // bound the quadratic work
      auto matches = evaluator.Match(rho);
      // Brute force over all entities.
      std::vector<TermId> expected;
      for (const TermId e : kb.EntitiesByProminence()) {
        if (evaluator.Matches(e, rho)) expected.push_back(e);
      }
      // Match sets may include blank nodes / literals as x only if they
      // are subjects; EntitiesByProminence excludes predicates, so filter
      // the evaluator output the same way for comparison.
      std::vector<TermId> actual;
      for (const TermId e : *matches) {
        if (kb.IsEntity(e)) actual.push_back(e);
      }
      EXPECT_EQ(MatchSet(actual.begin(), actual.end()),
                MatchSet(expected.begin(), expected.end()))
          << rho.ToString(kb.dict());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchConsistencyTest,
                         ::testing::Values(101, 202, 303));

// Property: REMI's answer is never more expensive than any RE formed by a
// conjunction of at most 3 ranked subgraph expressions (brute force).
class OptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalityTest, RemiBeatsBruteForceSmallConjunctions) {
  SyntheticKbConfig config;
  config.seed = GetParam();
  config.num_entities = 300;
  config.num_predicates = 14;
  config.num_classes = 6;
  config.num_facts = 2500;
  KnowledgeBase kb = BuildSyntheticKb(config);
  RemiMiner miner(&kb, RemiOptions{});

  const auto classes = LargestClasses(kb, 3);
  Rng rng(GetParam() * 7 + 1);
  WorkloadConfig wconfig;
  wconfig.num_sets = 6;
  const auto sets = SampleEntitySets(kb, classes, wconfig, &rng);

  for (const auto& set : sets) {
    auto result = miner.MineRe(set.entities);
    ASSERT_TRUE(result.ok());
    auto ranked = miner.RankedCommonSubgraphs(set.entities);
    ASSERT_TRUE(ranked.ok());
    if (ranked->size() > 24) continue;  // keep the brute force bounded

    MatchSet targets(set.entities.begin(), set.entities.end());

    double best_bf = CostModel::kInfiniteCost;
    const size_t n = ranked->size();
    for (size_t i = 0; i < n; ++i) {
      Expression e1 = Expression::Top().Conjoin((*ranked)[i].expression);
      if (miner.evaluator()->IsReferringExpression(e1, targets)) {
        best_bf = std::min(best_bf, miner.cost_model().Cost(e1));
      }
      for (size_t j = i + 1; j < n; ++j) {
        Expression e2 = e1.Conjoin((*ranked)[j].expression);
        if (miner.evaluator()->IsReferringExpression(e2, targets)) {
          best_bf = std::min(best_bf, miner.cost_model().Cost(e2));
        }
        for (size_t k = j + 1; k < n; ++k) {
          Expression e3 = e2.Conjoin((*ranked)[k].expression);
          if (miner.evaluator()->IsReferringExpression(e3, targets)) {
            best_bf = std::min(best_bf, miner.cost_model().Cost(e3));
          }
        }
      }
    }

    if (best_bf < CostModel::kInfiniteCost) {
      ASSERT_TRUE(result->found);
      EXPECT_LE(result->cost, best_bf + 1e-9);
    }
    if (result->found) {
      // Postcondition: the result is a real RE.
      EXPECT_TRUE(miner.evaluator()->IsReferringExpression(
          result->expression, targets));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace remi
