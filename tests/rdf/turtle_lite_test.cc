#include "rdf/turtle_lite.h"

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "rdf/ntriples.h"

namespace remi {
namespace {

class TurtleLiteTest : public ::testing::Test {
 protected:
  Result<std::vector<Triple>> Parse(const std::string& doc) {
    TurtleLiteParser parser(&dict_);
    return parser.ParseString(doc);
  }
  std::string Lex(TermId id) { return std::string(dict_.lexical(id)); }
  Dictionary dict_;
};

TEST_F(TurtleLiteTest, PrefixedNamesExpand) {
  auto triples = Parse(
      "@prefix dbr: <http://dbpedia.org/resource/> .\n"
      "@prefix dbo: <http://dbpedia.org/ontology/> .\n"
      "dbr:Paris dbo:capitalOf dbr:France .\n");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 1u);
  EXPECT_EQ(Lex((*triples)[0].s), "http://dbpedia.org/resource/Paris");
  EXPECT_EQ(Lex((*triples)[0].p), "http://dbpedia.org/ontology/capitalOf");
}

TEST_F(TurtleLiteTest, SparqlStylePrefix) {
  auto triples = Parse(
      "PREFIX ex: <http://ex/>\n"
      "ex:a ex:p ex:b .\n");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(triples->size(), 1u);
}

TEST_F(TurtleLiteTest, AKeywordIsRdfType) {
  auto triples = Parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:Paris a ex:City .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(Lex((*triples)[0].p), kRdfTypeIri);
}

TEST_F(TurtleLiteTest, PredicateAndObjectLists) {
  auto triples = Parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:Paris ex:cityIn ex:France ;\n"
      "         ex:label \"Paris\"@fr , \"Paris\"@en ;\n"
      "         a ex:City .\n");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 4u);
  // All four share the subject.
  for (const Triple& t : *triples) {
    EXPECT_EQ(Lex(t.s), "http://ex/Paris");
  }
  EXPECT_EQ(Lex((*triples)[1].o), "\"Paris\"@fr");
  EXPECT_EQ(Lex((*triples)[2].o), "\"Paris\"@en");
}

TEST_F(TurtleLiteTest, BaseResolvesRelativeIris) {
  auto triples = Parse(
      "@base <http://ex/kb/> .\n"
      "<Paris> <capitalOf> <France> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(Lex((*triples)[0].s), "http://ex/kb/Paris");
  EXPECT_EQ(Lex((*triples)[0].o), "http://ex/kb/France");
}

TEST_F(TurtleLiteTest, AbsoluteIrisIgnoreBase) {
  auto triples = Parse(
      "@base <http://ex/kb/> .\n"
      "<http://other/x> <p> <y> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(Lex((*triples)[0].s), "http://other/x");
}

TEST_F(TurtleLiteTest, DefaultPrefixesAvailable) {
  auto triples = Parse("<http://ex/a> rdf:type <http://ex/T> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(Lex((*triples)[0].p), kRdfTypeIri);
}

TEST_F(TurtleLiteTest, BlankNodesAndLiterals) {
  auto triples = Parse(
      "@prefix ex: <http://ex/> .\n"
      "_:b1 ex:p \"v\\n\"^^<http://ex/dt> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.kind((*triples)[0].s), TermKind::kBlank);
  EXPECT_EQ(Lex((*triples)[0].o), "\"v\n\"^^<http://ex/dt>");
}

TEST_F(TurtleLiteTest, CommentsAreSkipped) {
  auto triples = Parse(
      "# header\n"
      "@prefix ex: <http://ex/> . # trailing\n"
      "ex:a ex:p ex:b . # done\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 1u);
}

TEST_F(TurtleLiteTest, UndeclaredPrefixFails) {
  auto triples = Parse("nope:a nope:p nope:b .\n");
  ASSERT_FALSE(triples.ok());
  EXPECT_NE(triples.status().message().find("undeclared prefix"),
            std::string::npos);
}

TEST_F(TurtleLiteTest, MissingDotFails) {
  EXPECT_FALSE(Parse("@prefix ex: <http://ex/> .\nex:a ex:p ex:b\n").ok());
}

TEST_F(TurtleLiteTest, LiteralSubjectFails) {
  EXPECT_FALSE(Parse("\"lit\" <http://ex/p> <http://ex/b> .\n").ok());
}

TEST_F(TurtleLiteTest, LiteralPredicateFails) {
  EXPECT_FALSE(
      Parse("<http://ex/a> \"lit\" <http://ex/b> .\n").ok());
}

TEST_F(TurtleLiteTest, UnsupportedConstructsAreExplicitErrors) {
  EXPECT_FALSE(Parse("<http://ex/a> <http://ex/p> [ ] .\n").ok());
  EXPECT_FALSE(Parse("<http://ex/a> <http://ex/p> ( 1 2 ) .\n").ok());
  EXPECT_FALSE(
      Parse("<http://ex/a> <http://ex/p> \"\"\"multi\"\"\" .\n").ok());
}

TEST_F(TurtleLiteTest, ErrorsCarryLineNumbers) {
  auto triples = Parse(
      "@prefix ex: <http://ex/> .\n"
      "ex:a ex:p ex:b .\n"
      "nope:x ex:p ex:b .\n");
  ASSERT_FALSE(triples.ok());
  EXPECT_NE(triples.status().message().find("line 3"), std::string::npos);
}

TEST_F(TurtleLiteTest, EquivalentToNTriplesForSharedSubset) {
  // The same facts in both syntaxes must intern identical terms.
  TurtleLiteParser turtle(&dict_);
  auto from_turtle = turtle.ParseString(
      "@prefix ex: <http://ex/> .\n"
      "ex:Paris ex:capitalOf ex:France ; a ex:City .\n");
  ASSERT_TRUE(from_turtle.ok());

  NTriplesParser nt(&dict_);
  auto from_nt = nt.ParseString(
      "<http://ex/Paris> <http://ex/capitalOf> <http://ex/France> .\n"
      "<http://ex/Paris> "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/City> "
      ".\n");
  ASSERT_TRUE(from_nt.ok());
  ASSERT_EQ(from_turtle->size(), from_nt->size());
  for (size_t i = 0; i < from_nt->size(); ++i) {
    EXPECT_EQ((*from_turtle)[i], (*from_nt)[i]);
  }
}

}  // namespace
}  // namespace remi
