#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

class NTriplesTest : public ::testing::Test {
 protected:
  Dictionary dict_;
};

TEST_F(NTriplesTest, ParsesSimpleTriple) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "<http://x/Paris> <http://x/capitalOf> <http://x/France> .\n");
  ASSERT_TRUE(triples.ok());
  ASSERT_EQ(triples->size(), 1u);
  const Triple& t = (*triples)[0];
  EXPECT_EQ(dict_.lexical(t.s), "http://x/Paris");
  EXPECT_EQ(dict_.lexical(t.p), "http://x/capitalOf");
  EXPECT_EQ(dict_.lexical(t.o), "http://x/France");
}

TEST_F(NTriplesTest, ParsesLiteralObject) {
  NTriplesParser parser(&dict_);
  auto triples =
      parser.ParseString("<http://x/a> <http://x/name> \"Paris\" .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.kind((*triples)[0].o), TermKind::kLiteral);
  EXPECT_EQ(dict_.lexical((*triples)[0].o), "\"Paris\"");
}

TEST_F(NTriplesTest, ParsesLanguageTaggedLiteral) {
  NTriplesParser parser(&dict_);
  auto triples =
      parser.ParseString("<http://x/a> <http://x/name> \"Paris\"@fr .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.lexical((*triples)[0].o), "\"Paris\"@fr");
}

TEST_F(NTriplesTest, ParsesDatatypedLiteral) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "<http://x/a> <http://x/pop> "
      "\"2148000\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.lexical((*triples)[0].o),
            "\"2148000\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST_F(NTriplesTest, ParsesBlankNodes) {
  NTriplesParser parser(&dict_);
  auto triples =
      parser.ParseString("_:b1 <http://x/p> _:b2 .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.kind((*triples)[0].s), TermKind::kBlank);
  EXPECT_EQ(dict_.lexical((*triples)[0].s), "b1");
  EXPECT_EQ(dict_.kind((*triples)[0].o), TermKind::kBlank);
}

TEST_F(NTriplesTest, DecodesEscapes) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "<http://x/a> <http://x/q> \"line1\\nline2\\t\\\"quoted\\\"\" .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.lexical((*triples)[0].o), "\"line1\nline2\t\"quoted\"\"");
}

TEST_F(NTriplesTest, DecodesUnicodeEscapes) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "<http://x/a> <http://x/q> \"caf\\u00E9 \\U0001F600\" .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(dict_.lexical((*triples)[0].o),
            "\"caf\xC3\xA9 \xF0\x9F\x98\x80\"");
}

TEST_F(NTriplesTest, SkipsCommentsAndBlankLines) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "# a comment\n"
      "\n"
      "<http://x/a> <http://x/p> <http://x/b> . # trailing comment\n"
      "   \n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 1u);
  EXPECT_EQ(parser.stats().comments, 1u);
}

TEST_F(NTriplesTest, RejectsMissingDot) {
  NTriplesParser parser(&dict_);
  auto triples =
      parser.ParseString("<http://x/a> <http://x/p> <http://x/b>\n");
  ASSERT_FALSE(triples.ok());
  EXPECT_TRUE(triples.status().IsParseError());
  EXPECT_NE(triples.status().message().find("line 1"), std::string::npos);
}

TEST_F(NTriplesTest, RejectsLiteralSubject) {
  NTriplesParser parser(&dict_);
  EXPECT_FALSE(parser.ParseString("\"lit\" <http://x/p> <http://x/b> .\n")
                   .ok());
}

TEST_F(NTriplesTest, RejectsBlankNodePredicate) {
  NTriplesParser parser(&dict_);
  EXPECT_FALSE(parser.ParseString("<http://x/a> _:p <http://x/b> .\n").ok());
}

TEST_F(NTriplesTest, RejectsUnterminatedIri) {
  NTriplesParser parser(&dict_);
  EXPECT_FALSE(
      parser.ParseString("<http://x/a <http://x/p> <http://x/b> .\n").ok());
}

TEST_F(NTriplesTest, RejectsUnterminatedLiteral) {
  NTriplesParser parser(&dict_);
  EXPECT_FALSE(
      parser.ParseString("<http://x/a> <http://x/p> \"oops .\n").ok());
}

TEST_F(NTriplesTest, RejectsTrailingGarbage) {
  NTriplesParser parser(&dict_);
  EXPECT_FALSE(parser
                   .ParseString(
                       "<http://x/a> <http://x/p> <http://x/b> . garbage\n")
                   .ok());
}

TEST_F(NTriplesTest, LenientModeSkipsBadLines) {
  NTriplesParser parser(&dict_, /*lenient=*/true);
  auto triples = parser.ParseString(
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "this is not a triple\n"
      "<http://x/c> <http://x/p> <http://x/d> .\n");
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 2u);
  EXPECT_EQ(parser.skipped_lines(), 1u);
}

TEST_F(NTriplesTest, ErrorsCarryLineNumbers) {
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/broken\n");
  ASSERT_FALSE(triples.ok());
  EXPECT_NE(triples.status().message().find("line 2"), std::string::npos);
}

TEST_F(NTriplesTest, RoundTripThroughWriter) {
  const std::string doc =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/a> <http://x/name> \"caf\\u00E9\\n\"@fr .\n"
      "_:b1 <http://x/p> \"v\"^^<http://x/dt> .\n";
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseString(doc);
  ASSERT_TRUE(triples.ok());
  const std::string serialized = WriteNTriples(dict_, *triples);

  Dictionary dict2;
  NTriplesParser parser2(&dict2);
  auto reparsed = parser2.ParseString(serialized);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), triples->size());
  for (size_t i = 0; i < triples->size(); ++i) {
    EXPECT_EQ(dict2.term((*reparsed)[i].s), dict_.term((*triples)[i].s));
    EXPECT_EQ(dict2.term((*reparsed)[i].p), dict_.term((*triples)[i].p));
    EXPECT_EQ(dict2.term((*reparsed)[i].o), dict_.term((*triples)[i].o));
  }
}

TEST_F(NTriplesTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ntriples_test.nt";
  {
    Dictionary d;
    NTriplesParser p(&d);
    auto t = p.ParseString("<http://x/a> <http://x/p> <http://x/b> .\n");
    ASSERT_TRUE(t.ok());
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    const std::string out = WriteNTriples(d, *t);
    fwrite(out.data(), 1, out.size(), f);
    fclose(f);
  }
  NTriplesParser parser(&dict_);
  auto triples = parser.ParseFile(path);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 1u);
}

TEST_F(NTriplesTest, MissingFileIsIoError) {
  NTriplesParser parser(&dict_);
  EXPECT_TRUE(parser.ParseFile("/nonexistent/xyz.nt").status().IsIoError());
}

TEST(EscapesTest, EncodeDecodeInverse) {
  const std::string raw = "tab\there \"q\" back\\slash\nnewline";
  auto decoded = DecodeEscapes(EncodeEscapes(raw));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, raw);
}

TEST(EscapesTest, RejectsDanglingBackslash) {
  EXPECT_FALSE(DecodeEscapes("abc\\").ok());
}

TEST(EscapesTest, RejectsUnknownEscape) {
  EXPECT_FALSE(DecodeEscapes("\\x41").ok());
}

TEST(EscapesTest, RejectsBadHex) {
  EXPECT_FALSE(DecodeEscapes("\\u12G4").ok());
  EXPECT_FALSE(DecodeEscapes("\\u12").ok());
}

}  // namespace
}  // namespace remi
