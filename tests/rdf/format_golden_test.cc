// Golden-file format-stability tests.
//
// Tiny canonical .rkf / .rkf2 fixtures live in tests/data/. The tests
// rebuild the same KB programmatically and assert byte-identical
// serialization plus load-equality against the checked-in bytes, so a
// future PR cannot silently change the on-disk formats (a format change
// must bump the version and regenerate the fixtures deliberately).
//
// Regenerate after an *intentional* format change with:
//   REMI_UPDATE_GOLDEN=1 ./build/remi_tests --gtest_filter='FormatGolden*'

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "rdf/rkf.h"
#include "util/status.h"

#ifndef REMI_TESTDATA_DIR
#define REMI_TESTDATA_DIR "tests/data"
#endif

namespace remi {
namespace {

/// The canonical golden KB. Never change this without regenerating the
/// fixtures — its whole purpose is to stay frozen.
struct GoldenKb {
  Dictionary dict;
  std::vector<Triple> triples;

  GoldenKb() {
    const TermId berlin = dict.InternIri("http://golden.example/Berlin");
    const TermId paris = dict.InternIri("http://golden.example/Paris");
    const TermId germany = dict.InternIri("http://golden.example/Germany");
    const TermId france = dict.InternIri("http://golden.example/France");
    const TermId capital = dict.InternIri("http://golden.example/capitalOf");
    const TermId pop = dict.InternIri("http://golden.example/population");
    const TermId type_pred = dict.InternIri(kRdfTypeIri);
    const TermId label_pred = dict.InternIri(kRdfsLabelIri);
    const TermId city = dict.InternIri("http://golden.example/City");
    const TermId country = dict.InternIri("http://golden.example/Country");
    const TermId pop_b =
        dict.Intern(TermKind::kLiteral, "\"3644826\"");
    const TermId label_b = dict.Intern(TermKind::kLiteral, "\"Berlin\"@de");
    const TermId blank = dict.Intern(TermKind::kBlank, "b0");
    triples = {
        {berlin, capital, germany},  {paris, capital, france},
        {berlin, type_pred, city},   {paris, type_pred, city},
        {germany, type_pred, country}, {france, type_pred, country},
        {berlin, pop, pop_b},        {berlin, label_pred, label_b},
        {blank, capital, germany},
    };
  }
};

std::string FixturePath(const std::string& name) {
  return std::string(REMI_TESTDATA_DIR) + "/" + name;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("missing fixture " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool UpdateGoldenRequested() {
  const char* env = std::getenv("REMI_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void WriteOrCompare(const std::string& name, const std::string& bytes) {
  const std::string path = FixturePath(name);
  if (UpdateGoldenRequested()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    GTEST_SKIP() << "regenerated " << path;
  }
  auto golden = ReadFileBytes(path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString()
                           << " (run with REMI_UPDATE_GOLDEN=1 to create)";
  ASSERT_EQ(bytes.size(), golden->size())
      << name << ": serialized size drifted from the golden fixture";
  EXPECT_TRUE(bytes == *golden)
      << name << ": serialized bytes drifted from the golden fixture";
}

TEST(FormatGoldenTest, Rkf1SerializationIsStable) {
  GoldenKb golden;
  WriteOrCompare("golden.rkf", SerializeRkf(golden.dict, golden.triples));
}

TEST(FormatGoldenTest, Rkf1FixtureLoadsAndMatches) {
  auto bytes = ReadFileBytes(FixturePath("golden.rkf"));
  if (UpdateGoldenRequested() && !bytes.ok()) {
    GTEST_SKIP() << "fixture not generated yet";
  }
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto data = DeserializeRkf(*bytes);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  GoldenKb golden;
  ASSERT_EQ(data->dict.size(), golden.dict.size());
  for (TermId id = 0; id < golden.dict.size(); ++id) {
    EXPECT_EQ(data->dict.term(id), golden.dict.term(id)) << "term " << id;
  }
  std::vector<Triple> expected = golden.triples;
  std::sort(expected.begin(), expected.end(), OrderPso());
  EXPECT_EQ(data->triples, expected);
  // Re-serialization of the loaded payload must reproduce the fixture.
  EXPECT_EQ(SerializeRkf(data->dict, data->triples), *bytes);
}

TEST(FormatGoldenTest, Rkf2SerializationIsStable) {
  GoldenKb golden;
  const KnowledgeBase kb =
      KnowledgeBase::Build(std::move(golden.dict), std::move(golden.triples));
  WriteOrCompare("golden.rkf2", kb.SerializeSnapshot());
}

TEST(FormatGoldenTest, Rkf2FixtureLoadsAndMatches) {
  auto bytes = ReadFileBytes(FixturePath("golden.rkf2"));
  if (UpdateGoldenRequested() && !bytes.ok()) {
    GTEST_SKIP() << "fixture not generated yet";
  }
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  auto opened = KnowledgeBase::OpenSnapshotBuffer(*bytes);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  GoldenKb golden;
  const KnowledgeBase built =
      KnowledgeBase::Build(std::move(golden.dict), std::move(golden.triples));
  ASSERT_EQ(opened->NumFacts(), built.NumFacts());
  ASSERT_EQ(opened->NumBaseFacts(), built.NumBaseFacts());
  ASSERT_EQ(opened->NumEntities(), built.NumEntities());
  ASSERT_EQ(opened->dict().size(), built.dict().size());
  for (TermId id = 0; id < built.dict().size(); ++id) {
    EXPECT_EQ(opened->dict().lexical(id), built.dict().lexical(id));
  }
  const auto prom_a = opened->EntitiesByProminence();
  const auto prom_b = built.EntitiesByProminence();
  EXPECT_TRUE(std::equal(prom_a.begin(), prom_a.end(), prom_b.begin(),
                         prom_b.end()));
  // A KB opened from the fixture re-serializes to the fixture, bit for bit.
  EXPECT_EQ(opened->SerializeSnapshot(), *bytes);
}

}  // namespace
}  // namespace remi
