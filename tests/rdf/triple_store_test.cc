#include "rdf/triple_store.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/random.h"

namespace remi {
namespace {

// Small fixture: ids are plain numbers.
//   p=100: 1->2, 1->3, 2->3
//   p=101: 1->2, 3->2
TEST(TripleStoreTest, BasicLookups) {
  TripleStore store = TripleStore::Build({
      {1, 100, 2},
      {1, 100, 3},
      {2, 100, 3},
      {1, 101, 2},
      {3, 101, 2},
  });
  EXPECT_EQ(store.size(), 5u);
  EXPECT_EQ(store.BySubject(1).size(), 3u);
  EXPECT_EQ(store.ByPredicate(100).size(), 3u);
  EXPECT_EQ(store.ByPredicateSubject(100, 1).size(), 2u);
  EXPECT_EQ(store.ByPredicateObject(101, 2).size(), 2u);
  EXPECT_TRUE(store.Contains(1, 100, 2));
  EXPECT_FALSE(store.Contains(2, 101, 1));
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store = TripleStore::Build({});
  EXPECT_TRUE(store.empty());
  EXPECT_TRUE(store.BySubject(1).empty());
  EXPECT_TRUE(store.ByPredicate(1).empty());
  EXPECT_TRUE(store.ByPredicateObject(1, 2).empty());
  EXPECT_FALSE(store.Contains(1, 2, 3));
  EXPECT_TRUE(store.predicates().empty());
}

TEST(TripleStoreTest, DeduplicatesInput) {
  TripleStore store = TripleStore::Build({
      {1, 100, 2},
      {1, 100, 2},
      {1, 100, 2},
  });
  EXPECT_EQ(store.size(), 1u);
}

TEST(TripleStoreTest, MissingKeysYieldEmptyRanges) {
  TripleStore store = TripleStore::Build({{1, 100, 2}});
  EXPECT_TRUE(store.BySubject(9).empty());
  EXPECT_TRUE(store.ByPredicate(9).empty());
  EXPECT_TRUE(store.ByPredicateSubject(100, 9).empty());
  EXPECT_TRUE(store.ByPredicateObject(100, 9).empty());
  EXPECT_TRUE(store.ByPredicateSubject(9, 1).empty());
}

TEST(TripleStoreTest, PredicatesAndSubjectsAreSortedDistinct) {
  TripleStore store = TripleStore::Build({
      {5, 200, 1},
      {3, 100, 1},
      {5, 100, 2},
      {3, 200, 2},
  });
  EXPECT_EQ(store.predicates(), (std::vector<TermId>{100, 200}));
  EXPECT_EQ(store.subjects(), (std::vector<TermId>{3, 5}));
}

TEST(TripleStoreTest, RangesAreProperlyOrdered) {
  TripleStore store = TripleStore::Build({
      {2, 100, 9},
      {2, 100, 1},
      {2, 100, 5},
  });
  const auto range = store.ByPredicateSubject(100, 2);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      range.begin(), range.end(),
      [](const Triple& a, const Triple& b) { return a.o < b.o; }));
}

TEST(TripleStoreTest, ByPredicateObjectOrderGroupsObjects) {
  TripleStore store = TripleStore::Build({
      {1, 100, 7},
      {2, 100, 7},
      {3, 100, 4},
  });
  const auto range = store.ByPredicateObjectOrder(100);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0].o, 4u);
  EXPECT_EQ(range[1].o, 7u);
  EXPECT_EQ(range[2].o, 7u);
}

TEST(TripleStoreTest, CountersMatchRangeSizes) {
  TripleStore store = TripleStore::Build({
      {1, 100, 2},
      {1, 100, 3},
      {4, 100, 3},
      {1, 101, 2},
  });
  EXPECT_EQ(store.CountPredicate(100), 3u);
  EXPECT_EQ(store.CountPredicateSubject(100, 1), 2u);
  EXPECT_EQ(store.CountPredicateObject(100, 3), 2u);
}

// Property test: random triple sets agree with a brute-force scan.
class TripleStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TripleStorePropertyTest, RangesMatchBruteForce) {
  Rng rng(GetParam());
  std::vector<Triple> triples;
  const size_t n = 400;
  for (size_t i = 0; i < n; ++i) {
    triples.push_back(Triple{static_cast<TermId>(rng.NextBounded(20)),
                             static_cast<TermId>(rng.NextBounded(6) + 100),
                             static_cast<TermId>(rng.NextBounded(20))});
  }
  TripleStore store = TripleStore::Build(triples);

  // Deduplicate reference set.
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  EXPECT_EQ(store.size(), triples.size());

  for (TermId s = 0; s < 20; ++s) {
    size_t expected = 0;
    for (const auto& t : triples) {
      if (t.s == s) ++expected;
    }
    EXPECT_EQ(store.BySubject(s).size(), expected) << "s=" << s;
  }
  for (TermId p = 100; p < 106; ++p) {
    for (TermId o = 0; o < 20; ++o) {
      size_t expected = 0;
      for (const auto& t : triples) {
        if (t.p == p && t.o == o) ++expected;
      }
      EXPECT_EQ(store.ByPredicateObject(p, o).size(), expected);
    }
  }
  for (const auto& t : triples) {
    EXPECT_TRUE(store.Contains(t.s, t.p, t.o));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace remi
