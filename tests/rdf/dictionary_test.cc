#include "rdf/dictionary.h"

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(DictionaryTest, InternAssignsSequentialIds) {
  Dictionary dict;
  EXPECT_EQ(dict.InternIri("http://x/a"), 0u);
  EXPECT_EQ(dict.InternIri("http://x/b"), 1u);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const TermId a = dict.InternIri("http://x/a");
  EXPECT_EQ(dict.InternIri("http://x/a"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, KindsAreDistinctNamespaces) {
  Dictionary dict;
  const TermId iri = dict.Intern(TermKind::kIri, "same");
  const TermId lit = dict.Intern(TermKind::kLiteral, "same");
  const TermId blank = dict.Intern(TermKind::kBlank, "same");
  EXPECT_NE(iri, lit);
  EXPECT_NE(iri, blank);
  EXPECT_NE(lit, blank);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, LookupFindsInternedTerm) {
  Dictionary dict;
  const TermId a = dict.Intern(TermKind::kLiteral, "\"42\"");
  auto found = dict.Lookup(TermKind::kLiteral, "\"42\"");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
}

TEST(DictionaryTest, LookupMissingIsNotFound) {
  Dictionary dict;
  EXPECT_TRUE(dict.Lookup(TermKind::kIri, "http://x/a").status().IsNotFound());
}

TEST(DictionaryTest, LookupRespectsKind) {
  Dictionary dict;
  dict.Intern(TermKind::kIri, "x");
  EXPECT_TRUE(dict.Lookup(TermKind::kBlank, "x").status().IsNotFound());
}

TEST(DictionaryTest, TermAccessorsRoundTrip) {
  Dictionary dict;
  const TermId id = dict.Intern(TermKind::kBlank, "b0");
  EXPECT_EQ(dict.kind(id), TermKind::kBlank);
  EXPECT_EQ(dict.lexical(id), "b0");
  EXPECT_TRUE(dict.IsBlank(id));
  EXPECT_FALSE(dict.IsIri(id));
  EXPECT_FALSE(dict.IsLiteral(id));
  EXPECT_EQ(dict.term(id), (Term{TermKind::kBlank, "b0"}));
}

TEST(DictionaryTest, EmptyLexicalFormsAreValidTerms) {
  Dictionary dict;
  const TermId a = dict.Intern(TermKind::kLiteral, "");
  auto found = dict.Lookup(TermKind::kLiteral, "");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, a);
}

TEST(DictionaryTest, ManyTermsKeepStableIds) {
  Dictionary dict;
  std::vector<TermId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(dict.InternIri("http://x/e" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.InternIri("http://x/e" + std::to_string(i)), ids[i]);
  }
}

TEST(TermKindTest, Names) {
  EXPECT_STREQ(TermKindToString(TermKind::kIri), "IRI");
  EXPECT_STREQ(TermKindToString(TermKind::kLiteral), "Literal");
  EXPECT_STREQ(TermKindToString(TermKind::kBlank), "Blank");
}

}  // namespace
}  // namespace remi
