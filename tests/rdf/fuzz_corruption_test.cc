// Corruption fuzz harness for the RKF1 and RKF2 on-disk formats.
//
// Property: for ANY mutation of a valid image — random byte flips,
// truncations, garbage extensions, section-table lies, and the nasty
// variant where all checksums are recomputed so only structural validation
// stands between the decoder and the lie — loading must either succeed
// with internally consistent data or fail with Corruption. It must never
// crash, hang, or hand back structures that later reads can fall off of.
// The suite runs thousands of seeded cases and is part of the ASan+UBSan
// CI job, which turns any out-of-bounds read into a test failure.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "rdf/rkf.h"
#include "rdf/rkf2.h"
#include "util/fnv.h"
#include "util/random.h"

namespace remi {
namespace {

// --- fixture images ---------------------------------------------------------

/// A small but structurally rich KB: classes, labels, literals, blanks,
/// enough shared prefixes to exercise front coding, and inverse predicates.
KnowledgeBase FuzzKb() {
  Dictionary dict;
  std::vector<Triple> triples;
  Rng rng(4242);
  std::vector<TermId> entities;
  for (int i = 0; i < 40; ++i) {
    entities.push_back(
        dict.InternIri("http://fuzz.remi.example/resource/Entity" +
                       std::to_string(i)));
  }
  std::vector<TermId> preds;
  for (int i = 0; i < 6; ++i) {
    preds.push_back(dict.InternIri(
        "http://fuzz.remi.example/ontology/predicate" + std::to_string(i)));
  }
  const TermId type_pred = dict.InternIri(kRdfTypeIri);
  const TermId label_pred = dict.InternIri(kRdfsLabelIri);
  const TermId cls_a = dict.InternIri("http://fuzz.remi.example/class/A");
  const TermId cls_b = dict.InternIri("http://fuzz.remi.example/class/B");
  const TermId blank = dict.Intern(TermKind::kBlank, "b0");
  for (int i = 0; i < 150; ++i) {
    triples.push_back(
        Triple{entities[rng.NextBounded(entities.size())],
               preds[rng.NextBounded(preds.size())],
               entities[rng.NextBounded(entities.size())]});
  }
  for (size_t i = 0; i < entities.size(); ++i) {
    triples.push_back(
        Triple{entities[i], type_pred, i % 2 == 0 ? cls_a : cls_b});
    triples.push_back(Triple{
        entities[i], label_pred,
        dict.Intern(TermKind::kLiteral,
                    "\"entity " + std::to_string(i) + "\"@en")});
  }
  triples.push_back(Triple{blank, preds[0], entities[0]});
  return KnowledgeBase::Build(std::move(dict), std::move(triples));
}

std::string Rkf1Image() {
  const KnowledgeBase kb = FuzzKb();
  return SerializeRkf(kb.dict(), kb.store().spo());
}

std::string Rkf2ImageBytes() { return FuzzKb().SerializeSnapshot(); }

// --- checksum fix-up (the adversary's half of the harness) ------------------

uint32_t ReadU32(const std::string& image, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(image[at + i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const std::string& image, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(image[at + i]))
         << (8 * i);
  }
  return v;
}

void WriteU64(std::string* image, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*image)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

/// Recomputes the RKF1 footer checksum after a body mutation.
void FixRkf1Checksum(std::string* image) {
  if (image->size() < 12) return;
  WriteU64(image, image->size() - 8,
           Fnv1a64(std::string_view(image->data(), image->size() - 8)));
}

/// Recomputes RKF2 per-section checksums (for every table entry whose
/// payload range still lies within the file) plus the header/table footer,
/// so mutated content sails past every checksum and only structural
/// validation is left to refuse it.
void FixRkf2Checksums(std::string* image) {
  if (image->size() < kRkf2HeaderSize + kRkf2FooterSize) return;
  const uint32_t count = ReadU32(*image, 12);
  const uint64_t table_end =
      kRkf2HeaderSize + static_cast<uint64_t>(count) * kRkf2TableEntrySize;
  if (count <= kRkf2MaxSections &&
      table_end + kRkf2FooterSize <= image->size()) {
    for (uint32_t i = 0; i < count; ++i) {
      const size_t entry = kRkf2HeaderSize + i * kRkf2TableEntrySize;
      const uint64_t offset = ReadU64(*image, entry + 8);
      const uint64_t length = ReadU64(*image, entry + 16);
      if (offset > image->size() - kRkf2FooterSize ||
          length > image->size() - kRkf2FooterSize - offset) {
        continue;
      }
      WriteU64(
          image, entry + 24,
          Fnv1a64Wide(std::string_view(image->data() + offset, length)));
    }
    WriteU64(image, image->size() - 8,
             Fnv1a64Wide(std::string_view(image->data(), table_end)));
  }
}

// --- mutators ---------------------------------------------------------------

std::string FlipByte(const std::string& image, Rng* rng) {
  std::string mutated = image;
  mutated[rng->NextBounded(mutated.size())] ^=
      static_cast<char>(1 + rng->NextBounded(255));
  return mutated;
}

std::string Truncate(const std::string& image, Rng* rng) {
  return image.substr(0, rng->NextBounded(image.size()));
}

std::string Extend(const std::string& image, Rng* rng) {
  std::string mutated = image;
  const size_t extra = 1 + rng->NextBounded(16);
  for (size_t i = 0; i < extra; ++i) {
    mutated.push_back(static_cast<char>(rng->NextBounded(256)));
  }
  return mutated;
}

/// Overwrites a random field of a random RKF2 section-table entry with a
/// lie (small perturbation or a huge value), then fixes all checksums.
std::string SectionTableLie(const std::string& image, Rng* rng) {
  std::string mutated = image;
  const uint32_t count = ReadU32(mutated, 12);
  if (count == 0) return mutated;
  const size_t entry =
      kRkf2HeaderSize + rng->NextBounded(count) * kRkf2TableEntrySize;
  const size_t field = entry + 8 * (1 + rng->NextBounded(2));  // offset|length
  const uint64_t old = ReadU64(mutated, field);
  uint64_t lie;
  switch (rng->NextBounded(4)) {
    case 0: lie = old + 1 + rng->NextBounded(64); break;
    case 1: lie = old > 64 ? old - 1 - rng->NextBounded(64) : old + 8; break;
    case 2: lie = rng->Next(); break;
    default: lie = mutated.size() + rng->NextBounded(1 << 20); break;
  }
  WriteU64(&mutated, field, lie);
  FixRkf2Checksums(&mutated);
  return mutated;
}

// --- consistency probes (catch "silently returns data") ---------------------

void ProbeRkf1(const RkfData& data) {
  const uint64_t limit = data.dict.size();
  const Triple* prev = nullptr;
  for (const Triple& t : data.triples) {
    ASSERT_LT(t.s, limit);
    ASSERT_LT(t.p, limit);
    ASSERT_LT(t.o, limit);
    if (prev != nullptr) ASSERT_TRUE(OrderPso()(*prev, t));
    prev = &t;
  }
  for (TermId id = 0; id < data.dict.size(); ++id) {
    ASSERT_LE(static_cast<int>(data.dict.kind(id)),
              static_cast<int>(TermKind::kBlank));
    (void)data.dict.lexical(id);
  }
}

/// Walks every access path a loaded snapshot exposes; under ASan/UBSan any
/// unvalidated index would fault here. Checksum-fixed mutations may yield
/// *different* (safe) data, so the probe asserts only the invariants the
/// loader's validation pass promises, and otherwise just traverses.
void ProbeKb(const KnowledgeBase& kb) {
  ASSERT_EQ(kb.NumFacts(), kb.store().spo().size());
  size_t touched = 0;
  for (TermId id = 0; id < kb.dict().size(); ++id) {
    touched += kb.dict().lexical(id).size();
    (void)kb.dict().kind(id);
  }
  for (const TermId s : kb.store().subjects()) {
    for (const Triple& t : kb.store().BySubject(s)) {
      ASSERT_EQ(t.s, s);  // guaranteed: subject offsets validated vs SPO
      (void)kb.store().Contains(t.s, t.p, t.o);
    }
  }
  for (const TermId p : kb.store().predicates()) {
    for (const Triple& t : kb.store().ByPredicate(p)) {
      ASSERT_EQ(t.p, p);  // guaranteed: PSO tiling validated
    }
    for (const TermId s : kb.store().DistinctSubjectsOf(p)) {
      for (const Triple& t : kb.store().ByPredicateSubject(p, s)) {
        (void)t;
        ++touched;
      }
    }
    for (const TermId o : kb.store().DistinctObjectsOf(p)) {
      touched += kb.store().ByPredicateObject(p, o).size();
    }
    (void)kb.InverseOf(p);
  }
  for (const TermId e : kb.EntitiesByProminence()) {
    (void)kb.EntityFrequency(e);
    touched += kb.Label(e).size();
  }
  for (const TermId cls : kb.classes()) {
    for (const TermId member : kb.EntitiesOfClass(cls)) {
      ASSERT_LT(member, kb.dict().size());  // guaranteed: members validated
    }
  }
  (void)touched;
}

void CheckRkf1Load(const std::string& image, const char* what, size_t i) {
  SCOPED_TRACE(std::string(what) + " case " + std::to_string(i));
  auto data = DeserializeRkf(image);
  if (data.ok()) {
    ProbeRkf1(*data);
  } else {
    EXPECT_TRUE(data.status().IsCorruption()) << data.status().ToString();
  }
}

void CheckRkf2Load(const std::string& image, const char* what, size_t i) {
  SCOPED_TRACE(std::string(what) + " case " + std::to_string(i));
  auto kb = KnowledgeBase::OpenSnapshotBuffer(image);
  if (kb.ok()) {
    ProbeKb(*kb);
  } else {
    EXPECT_TRUE(kb.status().IsCorruption()) << kb.status().ToString();
  }
}

// --- the harness ------------------------------------------------------------

TEST(RkfFuzzTest, ByteFlipsNeverCrash) {
  const std::string image = Rkf1Image();
  Rng rng(101);
  for (size_t i = 0; i < 400; ++i) {
    CheckRkf1Load(FlipByte(image, &rng), "rkf1-flip", i);
  }
}

TEST(RkfFuzzTest, TruncationsAndExtensionsNeverCrash) {
  const std::string image = Rkf1Image();
  Rng rng(102);
  for (size_t i = 0; i < 150; ++i) {
    CheckRkf1Load(Truncate(image, &rng), "rkf1-trunc", i);
  }
  for (size_t i = 0; i < 50; ++i) {
    CheckRkf1Load(Extend(image, &rng), "rkf1-extend", i);
  }
}

TEST(RkfFuzzTest, ChecksumFixedFlipsNeverCrash) {
  // The hard half: the checksum is repaired after the flip, so the decoder
  // must survive on structural validation alone.
  const std::string image = Rkf1Image();
  Rng rng(103);
  for (size_t i = 0; i < 400; ++i) {
    std::string mutated = FlipByte(image, &rng);
    FixRkf1Checksum(&mutated);
    CheckRkf1Load(mutated, "rkf1-fixed-flip", i);
  }
}

TEST(Rkf2FuzzTest, ByteFlipsNeverCrash) {
  const std::string image = Rkf2ImageBytes();
  Rng rng(201);
  for (size_t i = 0; i < 400; ++i) {
    CheckRkf2Load(FlipByte(image, &rng), "rkf2-flip", i);
  }
}

TEST(Rkf2FuzzTest, TruncationsAndExtensionsNeverCrash) {
  const std::string image = Rkf2ImageBytes();
  Rng rng(202);
  for (size_t i = 0; i < 150; ++i) {
    CheckRkf2Load(Truncate(image, &rng), "rkf2-trunc", i);
  }
  for (size_t i = 0; i < 50; ++i) {
    CheckRkf2Load(Extend(image, &rng), "rkf2-extend", i);
  }
}

TEST(Rkf2FuzzTest, ChecksumFixedFlipsNeverCrash) {
  const std::string image = Rkf2ImageBytes();
  Rng rng(203);
  for (size_t i = 0; i < 400; ++i) {
    std::string mutated = FlipByte(image, &rng);
    FixRkf2Checksums(&mutated);
    CheckRkf2Load(mutated, "rkf2-fixed-flip", i);
  }
}

TEST(Rkf2FuzzTest, SectionTableLiesNeverCrash) {
  const std::string image = Rkf2ImageBytes();
  Rng rng(204);
  for (size_t i = 0; i < 200; ++i) {
    CheckRkf2Load(SectionTableLie(image, &rng), "rkf2-table-lie", i);
  }
}

}  // namespace
}  // namespace remi
