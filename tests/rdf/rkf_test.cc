#include "rdf/rkf.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "util/random.h"

namespace remi {
namespace {

// Builds a small dictionary + triples for round-trip tests.
struct Fixture {
  Dictionary dict;
  std::vector<Triple> triples;

  Fixture() {
    const TermId paris = dict.InternIri("http://x/Paris");
    const TermId france = dict.InternIri("http://x/France");
    const TermId capital = dict.InternIri("http://x/capitalOf");
    const TermId name = dict.InternIri("http://x/name");
    const TermId label = dict.Intern(TermKind::kLiteral, "\"Paris\"@fr");
    const TermId blank = dict.Intern(TermKind::kBlank, "b0");
    triples = {
        {paris, capital, france},
        {paris, name, label},
        {blank, capital, france},
    };
  }
};

TEST(RkfTest, RoundTripPreservesEverything) {
  Fixture f;
  const std::string bytes = SerializeRkf(f.dict, f.triples);
  auto data = DeserializeRkf(bytes);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dict.size(), f.dict.size());
  for (TermId id = 0; id < f.dict.size(); ++id) {
    EXPECT_EQ(data->dict.term(id), f.dict.term(id)) << "term " << id;
  }
  std::vector<Triple> expected = f.triples;
  std::sort(expected.begin(), expected.end(), OrderPso());
  EXPECT_EQ(data->triples, expected);
}

TEST(RkfTest, DeduplicatesTriples) {
  Fixture f;
  f.triples.push_back(f.triples[0]);
  auto data = DeserializeRkf(SerializeRkf(f.dict, f.triples));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->triples.size(), 3u);
}

TEST(RkfTest, EmptyKb) {
  Dictionary dict;
  auto data = DeserializeRkf(SerializeRkf(dict, std::vector<Triple>{}));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dict.size(), 0u);
  EXPECT_TRUE(data->triples.empty());
}

TEST(RkfTest, BadMagicIsCorruption) {
  Fixture f;
  std::string bytes = SerializeRkf(f.dict, f.triples);
  bytes[0] = 'X';
  EXPECT_TRUE(DeserializeRkf(bytes).status().IsCorruption());
}

TEST(RkfTest, FlippedByteFailsChecksum) {
  Fixture f;
  std::string bytes = SerializeRkf(f.dict, f.triples);
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_TRUE(DeserializeRkf(bytes).status().IsCorruption());
}

TEST(RkfTest, TruncationIsCorruption) {
  Fixture f;
  std::string bytes = SerializeRkf(f.dict, f.triples);
  for (size_t keep : {size_t{0}, size_t{3}, bytes.size() / 2}) {
    EXPECT_TRUE(DeserializeRkf(bytes.substr(0, keep)).status().IsCorruption())
        << "keep=" << keep;
  }
}

TEST(RkfTest, FileRoundTrip) {
  Fixture f;
  const std::string path = ::testing::TempDir() + "/test.rkf";
  ASSERT_TRUE(WriteRkfFile(f.dict, f.triples, path).ok());
  auto data = ReadRkfFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->triples.size(), 3u);
}

TEST(RkfTest, MissingFileIsIoError) {
  EXPECT_TRUE(ReadRkfFile("/nonexistent/x.rkf").status().IsIoError());
}

TEST(RkfTest, CompressesRelativeToNTriples) {
  // Build a KB with realistic shared-prefix IRIs.
  Dictionary dict;
  std::vector<Triple> triples;
  Rng rng(99);
  std::vector<TermId> entities;
  for (int i = 0; i < 500; ++i) {
    entities.push_back(
        dict.InternIri("http://synth.remi.example/resource/Entity" +
                       std::to_string(i)));
  }
  std::vector<TermId> preds;
  for (int i = 0; i < 10; ++i) {
    preds.push_back(dict.InternIri(
        "http://synth.remi.example/ontology/predicate" + std::to_string(i)));
  }
  for (int i = 0; i < 3000; ++i) {
    triples.push_back(
        Triple{entities[rng.NextBounded(entities.size())],
               preds[rng.NextBounded(preds.size())],
               entities[rng.NextBounded(entities.size())]});
  }
  const std::string nt = WriteNTriples(dict, triples);
  const std::string rkf = SerializeRkf(dict, triples);
  // HDT-style front + delta coding should be far smaller than N-Triples.
  EXPECT_LT(rkf.size() * 4, nt.size())
      << "rkf=" << rkf.size() << " nt=" << nt.size();
  // And it must still round-trip.
  auto data = DeserializeRkf(rkf);
  ASSERT_TRUE(data.ok());
  std::sort(triples.begin(), triples.end(), OrderPso());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  EXPECT_EQ(data->triples, triples);
}

// Property: random dictionaries and triple sets always round-trip.
class RkfPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RkfPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  Dictionary dict;
  const size_t num_terms = 50 + rng.NextBounded(200);
  for (size_t i = 0; i < num_terms; ++i) {
    const auto kind = static_cast<TermKind>(rng.NextBounded(3));
    std::string lex;
    const size_t len = rng.NextBounded(30);
    for (size_t c = 0; c < len; ++c) {
      lex.push_back(static_cast<char>('a' + rng.NextBounded(26)));
    }
    dict.Intern(kind, "t" + std::to_string(i) + lex);
  }
  std::vector<Triple> triples;
  for (size_t i = 0; i < 500; ++i) {
    triples.push_back(
        Triple{static_cast<TermId>(rng.NextBounded(dict.size())),
               static_cast<TermId>(rng.NextBounded(dict.size())),
               static_cast<TermId>(rng.NextBounded(dict.size()))});
  }
  auto data = DeserializeRkf(SerializeRkf(dict, triples));
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dict.size(), dict.size());
  std::sort(triples.begin(), triples.end(), OrderPso());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  EXPECT_EQ(data->triples, triples);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RkfPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace remi
