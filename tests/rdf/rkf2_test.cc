#include "rdf/rkf2.h"

#include <gtest/gtest.h>

#include "util/fnv.h"

namespace remi {
namespace {

std::string TwoSectionImage() {
  Rkf2Writer writer;
  // Payloads must outlive Finish(): AddSection stores views, not copies.
  const std::string binary("\x01\x02\x03\x00\x04", 5);
  writer.AddSection(7, "hello");
  writer.AddSection(9, binary);
  return writer.Finish();
}

TEST(Rkf2Test, WriteParseRoundTrip) {
  const std::string image = TwoSectionImage();
  auto parsed = Rkf2Image::Parse(image);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_sections(), 2u);
  EXPECT_TRUE(parsed->Has(7));
  EXPECT_TRUE(parsed->Has(9));
  EXPECT_FALSE(parsed->Has(8));
  auto s7 = parsed->Section(7);
  ASSERT_TRUE(s7.ok());
  EXPECT_EQ(*s7, "hello");
  auto s9 = parsed->Section(9);
  ASSERT_TRUE(s9.ok());
  EXPECT_EQ(s9->size(), 5u);
  EXPECT_TRUE(parsed->Section(8).status().IsCorruption());
}

TEST(Rkf2Test, EmptyImageParses) {
  Rkf2Writer writer;
  const std::string image = writer.Finish();
  auto parsed = Rkf2Image::Parse(image);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_sections(), 0u);
}

TEST(Rkf2Test, SectionsAreAligned) {
  const std::string image = TwoSectionImage();
  auto parsed = Rkf2Image::Parse(image);
  ASSERT_TRUE(parsed.ok());
  for (const uint32_t id : {7u, 9u}) {
    auto payload = parsed->Section(id);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ((payload->data() - image.data()) % 8, 0) << "section " << id;
  }
}

TEST(Rkf2Test, BadMagicIsCorruption) {
  std::string image = TwoSectionImage();
  image[0] = 'X';
  EXPECT_TRUE(Rkf2Image::Parse(image).status().IsCorruption());
}

TEST(Rkf2Test, WrongVersionIsCorruption) {
  std::string image = TwoSectionImage();
  image[4] = static_cast<char>(kRkf2Version + 1);
  EXPECT_TRUE(Rkf2Image::Parse(image).status().IsCorruption());
}

TEST(Rkf2Test, TruncationIsCorruption) {
  const std::string image = TwoSectionImage();
  for (size_t keep : {size_t{0}, size_t{16}, size_t{40}, image.size() - 1}) {
    EXPECT_TRUE(Rkf2Image::Parse(image.substr(0, keep))
                    .status()
                    .IsCorruption())
        << "keep=" << keep;
  }
}

TEST(Rkf2Test, FlippedPayloadByteIsCorruption) {
  std::string image = TwoSectionImage();
  // Flip one byte inside the first payload (after header + table).
  image[kRkf2HeaderSize + 2 * kRkf2TableEntrySize + 1] ^= 0x20;
  EXPECT_TRUE(Rkf2Image::Parse(image).status().IsCorruption());
}

TEST(Rkf2Test, DuplicateSectionIdIsCorruption) {
  Rkf2Writer writer;
  writer.AddSection(7, "a");
  writer.AddSection(7, "b");
  EXPECT_TRUE(Rkf2Image::Parse(writer.Finish()).status().IsCorruption());
}

// Patches a section-table length field and recomputes the header/table
// footer checksum, so only the structural bounds check can catch the lie.
TEST(Rkf2Test, SectionLengthLieIsCorruption) {
  std::string image = TwoSectionImage();
  const size_t entry = kRkf2HeaderSize;  // first section's table entry
  const size_t length_at = entry + 16;
  uint64_t lie = image.size();  // extends past the footer
  for (int i = 0; i < 8; ++i) {
    image[length_at + i] = static_cast<char>((lie >> (8 * i)) & 0xff);
  }
  const size_t table_end = kRkf2HeaderSize + 2 * kRkf2TableEntrySize;
  const uint64_t footer =
      Fnv1a64Wide(std::string_view(image.data(), table_end));
  for (int i = 0; i < 8; ++i) {
    image[image.size() - 8 + i] =
        static_cast<char>((footer >> (8 * i)) & 0xff);
  }
  EXPECT_TRUE(Rkf2Image::Parse(image).status().IsCorruption());
}

}  // namespace
}  // namespace remi
