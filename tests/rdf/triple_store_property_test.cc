// Property test: every TripleStore lookup must agree with a naive
// full-scan oracle on randomized KBs. This pins the CSR offset tables to
// the semantics of the original binary-searched implementation.

#include "rdf/triple_store.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace remi {
namespace {

struct RandomKbShape {
  uint64_t seed;
  size_t num_triples;
  TermId max_subject;
  TermId max_predicate;
  TermId max_object;
};

class StoreOracleTest : public ::testing::TestWithParam<RandomKbShape> {};

std::vector<Triple> MakeRandomTriples(const RandomKbShape& shape) {
  Rng rng(shape.seed);
  std::vector<Triple> triples;
  triples.reserve(shape.num_triples);
  for (size_t i = 0; i < shape.num_triples; ++i) {
    triples.push_back(Triple{
        static_cast<TermId>(rng.NextBounded(shape.max_subject + 1)),
        static_cast<TermId>(rng.NextBounded(shape.max_predicate + 1)),
        static_cast<TermId>(rng.NextBounded(shape.max_object + 1))});
  }
  return triples;
}

// The oracle: deduplicated triples with no index at all.
std::vector<Triple> Dedup(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  return triples;
}

std::vector<TermId> SortedUnique(std::vector<TermId> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST_P(StoreOracleTest, LookupsAgreeWithFullScan) {
  const RandomKbShape& shape = GetParam();
  const std::vector<Triple> facts = Dedup(MakeRandomTriples(shape));
  const TripleStore store = TripleStore::Build(MakeRandomTriples(shape));
  ASSERT_EQ(store.size(), facts.size());

  // Probe every id in a window slightly beyond the generated ranges so
  // absent keys are exercised too.
  const TermId s_probe_end = shape.max_subject + 3;
  const TermId p_probe_end = shape.max_predicate + 3;
  const TermId o_probe_end = shape.max_object + 3;

  for (TermId s = 0; s <= s_probe_end; ++s) {
    std::vector<Triple> expected;
    for (const Triple& t : facts) {
      if (t.s == s) expected.push_back(t);
    }
    const auto span = store.BySubject(s);
    ASSERT_EQ(span.size(), expected.size()) << "s=" << s;
    EXPECT_TRUE(std::equal(span.begin(), span.end(), expected.begin()));
    EXPECT_EQ(store.SubjectDegree(s), expected.size());
  }

  for (TermId p = 0; p <= p_probe_end; ++p) {
    std::vector<Triple> expected;
    std::vector<TermId> exp_subjects, exp_objects;
    for (const Triple& t : facts) {
      if (t.p == p) {
        expected.push_back(t);
        exp_subjects.push_back(t.s);
        exp_objects.push_back(t.o);
      }
    }
    EXPECT_EQ(store.CountPredicate(p), expected.size()) << "p=" << p;
    EXPECT_EQ(store.ByPredicateObjectOrder(p).size(), expected.size());

    const auto subjects = store.DistinctSubjectsOf(p);
    const auto exp_s = SortedUnique(exp_subjects);
    EXPECT_TRUE(std::equal(subjects.begin(), subjects.end(), exp_s.begin(),
                           exp_s.end()))
        << "p=" << p;
    const auto objects = store.DistinctObjectsOf(p);
    const auto exp_o = SortedUnique(exp_objects);
    EXPECT_TRUE(std::equal(objects.begin(), objects.end(), exp_o.begin(),
                           exp_o.end()))
        << "p=" << p;

    for (TermId s = 0; s <= s_probe_end; ++s) {
      size_t count = 0;
      for (const Triple& t : facts) {
        if (t.p == p && t.s == s) ++count;
      }
      const auto span = store.ByPredicateSubject(p, s);
      ASSERT_EQ(span.size(), count) << "p=" << p << " s=" << s;
      for (const Triple& t : span) {
        EXPECT_EQ(t.p, p);
        EXPECT_EQ(t.s, s);
      }
      // Spans from the PSO ordering are sorted by object.
      EXPECT_TRUE(std::is_sorted(
          span.begin(), span.end(),
          [](const Triple& a, const Triple& b) { return a.o < b.o; }));
    }
    for (TermId o = 0; o <= o_probe_end; ++o) {
      size_t count = 0;
      for (const Triple& t : facts) {
        if (t.p == p && t.o == o) ++count;
      }
      const auto span = store.ByPredicateObject(p, o);
      ASSERT_EQ(span.size(), count) << "p=" << p << " o=" << o;
      for (const Triple& t : span) {
        EXPECT_EQ(t.p, p);
        EXPECT_EQ(t.o, o);
      }
      // Spans from the POS ordering are sorted by subject.
      EXPECT_TRUE(std::is_sorted(
          span.begin(), span.end(),
          [](const Triple& a, const Triple& b) { return a.s < b.s; }));
    }
  }

  // Contains: every present fact, plus random absent probes.
  for (const Triple& t : facts) {
    EXPECT_TRUE(store.Contains(t.s, t.p, t.o));
  }
  Rng probe_rng(shape.seed ^ 0x9e3779b97f4a7c15ULL);
  for (int i = 0; i < 500; ++i) {
    const Triple t{
        static_cast<TermId>(probe_rng.NextBounded(s_probe_end + 1)),
        static_cast<TermId>(probe_rng.NextBounded(p_probe_end + 1)),
        static_cast<TermId>(probe_rng.NextBounded(o_probe_end + 1))};
    const bool expected = std::binary_search(facts.begin(), facts.end(), t,
                                             OrderSpo());
    EXPECT_EQ(store.Contains(t.s, t.p, t.o), expected);
  }

  // Distinct subject / predicate lists.
  std::vector<TermId> exp_subjects, exp_predicates;
  for (const Triple& t : facts) {
    exp_subjects.push_back(t.s);
    exp_predicates.push_back(t.p);
  }
  EXPECT_EQ(store.subjects(), SortedUnique(exp_subjects));
  EXPECT_EQ(store.predicates(), SortedUnique(exp_predicates));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StoreOracleTest,
    ::testing::Values(
        // Dense little KB: many duplicate patterns.
        RandomKbShape{1, 600, 20, 5, 20},
        // Sparse ids: exercises the clamped per-predicate key ranges.
        RandomKbShape{2, 400, 300, 12, 300},
        // Skewed: few predicates, many objects.
        RandomKbShape{3, 800, 40, 2, 500},
        // Tiny.
        RandomKbShape{4, 5, 3, 1, 3},
        // Single predicate, single subject.
        RandomKbShape{5, 50, 0, 0, 30}));

TEST(StoreOracleTest, EmptyStoreHasNoMatches) {
  const TripleStore store = TripleStore::Build({});
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.num_terms(), 0u);
  EXPECT_TRUE(store.BySubject(7).empty());
  EXPECT_TRUE(store.ByPredicate(7).empty());
  EXPECT_TRUE(store.ByPredicateSubject(1, 2).empty());
  EXPECT_TRUE(store.ByPredicateObject(1, 2).empty());
  EXPECT_TRUE(store.DistinctSubjectsOf(1).empty());
  EXPECT_TRUE(store.DistinctObjectsOf(1).empty());
  EXPECT_EQ(store.SubjectDegree(3), 0u);
  EXPECT_FALSE(store.Contains(1, 2, 3));
}

}  // namespace
}  // namespace remi
