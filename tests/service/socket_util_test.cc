#include "service/socket_util.h"

#include <cerrno>
#include <string>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(ConsumedBufferTest, AppendConsumeRoundTrip) {
  ConsumedBuffer buffer;
  EXPECT_TRUE(buffer.Empty());
  EXPECT_EQ(buffer.PendingSize(), 0u);

  buffer.Append("hello ");
  buffer.Append("world");
  EXPECT_EQ(buffer.Pending(), "hello world");

  buffer.Consume(6);
  EXPECT_EQ(buffer.Pending(), "world");
  EXPECT_EQ(buffer.PendingSize(), 5u);

  buffer.Consume(5);
  EXPECT_TRUE(buffer.Empty());
  // Full consumption resets the storage entirely.
  EXPECT_EQ(buffer.StorageBytes(), 0u);
}

TEST(ConsumedBufferTest, InterleavedAppendAndConsume) {
  ConsumedBuffer buffer;
  std::string expected;
  for (int i = 0; i < 100; ++i) {
    const std::string piece = "chunk" + std::to_string(i) + ";";
    buffer.Append(piece);
    expected += piece;
    // Consume roughly half of what is pending each round.
    const size_t eat = buffer.PendingSize() / 2;
    EXPECT_EQ(buffer.Pending(), expected);
    buffer.Consume(eat);
    expected.erase(0, eat);
    EXPECT_EQ(buffer.Pending(), expected);
  }
}

TEST(ConsumedBufferTest, CompactionBoundsStorage) {
  // Feed and consume far more than the compaction threshold; the dead
  // prefix must not grow without bound (the O(n^2) erase-per-recv bug's
  // memory-shaped sibling).
  ConsumedBuffer buffer;
  const std::string piece(4096, 'x');
  for (int i = 0; i < 1000; ++i) {
    buffer.Append(piece);
    buffer.Consume(piece.size() / 2);  // always leave a pending tail
  }
  // Pending tail: 1000 * 2048 bytes. Storage may at most double it.
  EXPECT_GE(buffer.StorageBytes(), buffer.PendingSize());
  EXPECT_LE(buffer.StorageBytes(),
            2 * buffer.PendingSize() + 128 * 1024);
}

TEST(ConsumedBufferTest, ClearResets) {
  ConsumedBuffer buffer;
  buffer.Append("data");
  buffer.Consume(2);
  buffer.Clear();
  EXPECT_TRUE(buffer.Empty());
  EXPECT_EQ(buffer.StorageBytes(), 0u);
}

TEST(ClassifyAcceptErrorTest, TransientErrnosRetry) {
  EXPECT_EQ(ClassifyAcceptError(EINTR), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(ECONNABORTED), AcceptErrorAction::kRetry);
  EXPECT_EQ(ClassifyAcceptError(EAGAIN), AcceptErrorAction::kRetry);
}

TEST(ClassifyAcceptErrorTest, PendingNetworkErrorsAreCountedRetries) {
  // The original bug: EPROTO (a network error pending on the accepted
  // socket, reported through accept) silently ended the accept loop,
  // leaving a zombie server. It must classify as retry-with-counting.
  EXPECT_EQ(ClassifyAcceptError(EPROTO), AcceptErrorAction::kRetryCounted);
  EXPECT_EQ(ClassifyAcceptError(EPERM), AcceptErrorAction::kRetryCounted);
  EXPECT_EQ(ClassifyAcceptError(ENETDOWN), AcceptErrorAction::kRetryCounted);
  EXPECT_EQ(ClassifyAcceptError(EHOSTUNREACH),
            AcceptErrorAction::kRetryCounted);
}

TEST(ClassifyAcceptErrorTest, ResourceExhaustionBacksOff) {
  EXPECT_EQ(ClassifyAcceptError(EMFILE),
            AcceptErrorAction::kRetryAfterBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENFILE),
            AcceptErrorAction::kRetryAfterBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOBUFS),
            AcceptErrorAction::kRetryAfterBackoff);
  EXPECT_EQ(ClassifyAcceptError(ENOMEM),
            AcceptErrorAction::kRetryAfterBackoff);
}

TEST(ClassifyAcceptErrorTest, BrokenListenerIsFatal) {
  EXPECT_EQ(ClassifyAcceptError(EBADF), AcceptErrorAction::kFatal);
  EXPECT_EQ(ClassifyAcceptError(EINVAL), AcceptErrorAction::kFatal);
  EXPECT_EQ(ClassifyAcceptError(ENOTSOCK), AcceptErrorAction::kFatal);
}

TEST(ClassifyAcceptErrorTest, UnknownErrnosNeverKillTheLoop) {
  // Anything unlisted must retry (with logging/backoff), never exit:
  // an unknown errno classified as fatal is exactly the zombie bug.
  EXPECT_EQ(ClassifyAcceptError(EIO), AcceptErrorAction::kRetryAfterBackoff);
  EXPECT_EQ(ClassifyAcceptError(12345),
            AcceptErrorAction::kRetryAfterBackoff);
}

}  // namespace
}  // namespace remi
