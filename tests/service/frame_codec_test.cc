#include "service/frame_codec.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace remi {
namespace {

TEST(FrameCodecTest, EncodeDecodeRoundTrip) {
  std::string wire;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kMine), 42,
              R"({"targets":["Berlin"]})", &wire);
  EXPECT_EQ(wire.size(), kFrameHeaderBytes + 22);

  FrameDecoder decoder(1 << 20);
  decoder.Feed(wire);
  FrameView frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.verb, static_cast<uint8_t>(FrameVerb::kMine));
  EXPECT_EQ(frame.request_id, 42u);
  EXPECT_EQ(frame.payload, R"({"targets":["Berlin"]})");
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodecTest, EmptyPayloadAndLargeRequestId) {
  std::string wire;
  const uint64_t id = 0xDEADBEEFCAFEF00Dull;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), id, "", &wire);
  FrameDecoder decoder(1 << 20);
  decoder.Feed(wire);
  FrameView frame;
  ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
  EXPECT_EQ(frame.request_id, id);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodecTest, ByteByByteFeedYieldsTheSameFrames) {
  // A frame header (and payload) may arrive split at every possible
  // boundary; the decoder must reassemble regardless.
  std::string wire;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kSummarize), 7,
              R"({"entity":"Berlin","k":3})", &wire);
  AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), 8, "", &wire);

  FrameDecoder decoder(1 << 20);
  std::vector<FrameView> frames;
  std::vector<std::string> payloads;
  for (const char byte : wire) {
    decoder.Feed(std::string_view(&byte, 1));
    FrameView frame;
    while (decoder.Next(&frame) == FrameDecoder::Result::kFrame) {
      frames.push_back(frame);
      payloads.emplace_back(frame.payload);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].request_id, 7u);
  EXPECT_EQ(payloads[0], R"({"entity":"Berlin","k":3})");
  EXPECT_EQ(frames[1].request_id, 8u);
  EXPECT_TRUE(payloads[1].empty());
}

TEST(FrameCodecTest, PipelinedFramesInOneFeed) {
  std::string wire;
  for (uint64_t id = 1; id <= 16; ++id) {
    AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), id,
                "{\"n\":" + std::to_string(id) + "}", &wire);
  }
  FrameDecoder decoder(1 << 20);
  decoder.Feed(wire);
  for (uint64_t id = 1; id <= 16; ++id) {
    FrameView frame;
    ASSERT_EQ(decoder.Next(&frame), FrameDecoder::Result::kFrame);
    EXPECT_EQ(frame.request_id, id);
    EXPECT_EQ(frame.payload, "{\"n\":" + std::to_string(id) + "}");
  }
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodecTest, BadMagicPoisonsImmediately) {
  FrameDecoder decoder(1 << 20);
  decoder.Feed("GET / HTTP/1.1\r\n");
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.status().IsInvalidArgument());
  // Stays poisoned: frame boundaries cannot be re-synchronized.
  decoder.Feed("more bytes");
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameCodecTest, BadMagicDetectedOnPartialPrefix) {
  // Even a single wrong first byte is rejected before a full header
  // arrives — an NDJSON client on a binary decoder fails fast.
  FrameDecoder decoder(1 << 20);
  decoder.Feed("{");
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
}

TEST(FrameCodecTest, PartialMagicPrefixWaitsForMore) {
  // "RE" is a valid prefix of the magic: not yet an error.
  FrameDecoder decoder(1 << 20);
  decoder.Feed("RE");
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
  decoder.Feed("MI");
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kNeedMore);
}

TEST(FrameCodecTest, OversizeDeclaredPayloadRejectedBeforeBuffering) {
  std::string wire;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kMine), 99,
              std::string(2048, 'x'), &wire);
  FrameDecoder decoder(/*max_payload_bytes=*/1024);
  // Feed only the header: the declared length alone must trigger the
  // rejection — the decoder never waits for (or buffers) the payload.
  decoder.Feed(std::string_view(wire).substr(0, kFrameHeaderBytes));
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_TRUE(decoder.status().IsInvalidArgument());
  EXPECT_EQ(decoder.error_request_id(), 99u);
}

TEST(FrameCodecTest, NonzeroReservedBitsReject) {
  std::string wire;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), 5, "", &wire);
  wire[5] = 1;  // flags byte must be 0
  FrameDecoder decoder(1 << 20);
  decoder.Feed(wire);
  FrameView frame;
  EXPECT_EQ(decoder.Next(&frame), FrameDecoder::Result::kError);
  EXPECT_EQ(decoder.error_request_id(), 5u);
}

TEST(FrameCodecTest, VerbOpMappingIsTotalOverTheEnum) {
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kPing)), "ping");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kMine)), "mine");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kBatchMine)),
               "batch_mine");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kSummarize)),
               "summarize");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kCandidates)),
               "candidates");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kCounters)),
               "stats");
  EXPECT_STREQ(FrameVerbToOp(static_cast<uint8_t>(FrameVerb::kReload)),
               "reload");
  EXPECT_EQ(FrameVerbToOp(0), nullptr);
  EXPECT_EQ(FrameVerbToOp(200), nullptr);
}

TEST(FrameCodecTest, SniffWireMode) {
  EXPECT_EQ(SniffWireMode('R'), WireMode::kBinary);
  EXPECT_EQ(SniffWireMode('{'), WireMode::kNdjson);
  EXPECT_EQ(SniffWireMode(' '), WireMode::kNdjson);
  EXPECT_EQ(SniffWireMode('\n'), WireMode::kNdjson);
  EXPECT_EQ(SniffWireMode('G'), WireMode::kInvalid);
  EXPECT_EQ(SniffWireMode('\0'), WireMode::kInvalid);
}

}  // namespace
}  // namespace remi
