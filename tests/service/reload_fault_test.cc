// Fault-injection harness for the Service's epoch-pinned hot-swap.
//
// Replays the RKF2 corruption-fuzz mutation classes (random byte flips,
// truncations, garbage extensions, section-table lies with repaired
// checksums) as ReloadKb candidates against a LIVE service with mines in
// flight, and asserts the registry's contract end to end:
//
//   * every validation-rejected candidate fails closed — in-band
//     Corruption, serving generation unchanged, not one dropped or
//     altered request;
//   * good reloads publish atomically — requests pinned to the displaced
//     generation still complete byte-identical to a no-reload run;
//   * retired generations actually die — active_generations is back to 1
//     once the last pinned request completes (the CI fault-injection job
//     runs this file under ASan with leak detection, so an epoch kept
//     alive by a forgotten reference fails the build).
//
// The concurrent legs also run under TSan (CI filter *Reload*).

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "kb/knowledge_base.h"
#include "rdf/rkf2.h"
#include "util/fnv.h"
#include "util/random.h"

namespace remi {
namespace {

// --- fixture KB and snapshot image ------------------------------------------

/// Structurally rich but tiny: classes, labels, literals, a blank node,
/// and seeded random triples — the same shape as the rdf corruption-fuzz
/// fixture, so the mutation classes hit the same section layouts.
KnowledgeBase FaultKb() {
  Dictionary dict;
  std::vector<Triple> triples;
  Rng rng(4242);
  std::vector<TermId> entities;
  for (int i = 0; i < 40; ++i) {
    entities.push_back(
        dict.InternIri("http://fuzz.remi.example/resource/Entity" +
                       std::to_string(i)));
  }
  std::vector<TermId> preds;
  for (int i = 0; i < 6; ++i) {
    preds.push_back(dict.InternIri(
        "http://fuzz.remi.example/ontology/predicate" + std::to_string(i)));
  }
  const TermId type_pred = dict.InternIri(kRdfTypeIri);
  const TermId label_pred = dict.InternIri(kRdfsLabelIri);
  const TermId cls_a = dict.InternIri("http://fuzz.remi.example/class/A");
  const TermId cls_b = dict.InternIri("http://fuzz.remi.example/class/B");
  const TermId blank = dict.Intern(TermKind::kBlank, "b0");
  for (int i = 0; i < 150; ++i) {
    triples.push_back(
        Triple{entities[rng.NextBounded(entities.size())],
               preds[rng.NextBounded(preds.size())],
               entities[rng.NextBounded(entities.size())]});
  }
  for (size_t i = 0; i < entities.size(); ++i) {
    triples.push_back(
        Triple{entities[i], type_pred, i % 2 == 0 ? cls_a : cls_b});
    triples.push_back(Triple{
        entities[i], label_pred,
        dict.Intern(TermKind::kLiteral,
                    "\"entity " + std::to_string(i) + "\"@en")});
  }
  triples.push_back(Triple{blank, preds[0], entities[0]});
  return KnowledgeBase::Build(std::move(dict), std::move(triples));
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- mutators (the rdf corruption-fuzz classes) -----------------------------

uint32_t ReadU32(const std::string& image, size_t at) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(image[at + i]))
         << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const std::string& image, size_t at) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(image[at + i]))
         << (8 * i);
  }
  return v;
}

void WriteU64(std::string* image, size_t at, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    (*image)[at + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

/// Repairs every checksum after a mutation, so only the loader's
/// structural validation stands between the registry and the lie.
void FixRkf2Checksums(std::string* image) {
  if (image->size() < kRkf2HeaderSize + kRkf2FooterSize) return;
  const uint32_t count = ReadU32(*image, 12);
  const uint64_t table_end =
      kRkf2HeaderSize + static_cast<uint64_t>(count) * kRkf2TableEntrySize;
  if (count <= kRkf2MaxSections &&
      table_end + kRkf2FooterSize <= image->size()) {
    for (uint32_t i = 0; i < count; ++i) {
      const size_t entry = kRkf2HeaderSize + i * kRkf2TableEntrySize;
      const uint64_t offset = ReadU64(*image, entry + 8);
      const uint64_t length = ReadU64(*image, entry + 16);
      if (offset > image->size() - kRkf2FooterSize ||
          length > image->size() - kRkf2FooterSize - offset) {
        continue;
      }
      WriteU64(
          image, entry + 24,
          Fnv1a64Wide(std::string_view(image->data() + offset, length)));
    }
    WriteU64(image, image->size() - 8,
             Fnv1a64Wide(std::string_view(image->data(), table_end)));
  }
}

std::string FlipByte(const std::string& image, Rng* rng) {
  std::string mutated = image;
  mutated[rng->NextBounded(mutated.size())] ^=
      static_cast<char>(1 + rng->NextBounded(255));
  return mutated;
}

std::string Truncate(const std::string& image, Rng* rng) {
  // Keep at least the magic: a sub-4-byte stub is no longer *an RKF2
  // image* and would be (correctly) routed to the text parsers instead.
  return image.substr(0, 4 + rng->NextBounded(image.size() - 4));
}

std::string Extend(const std::string& image, Rng* rng) {
  std::string mutated = image;
  const size_t extra = 1 + rng->NextBounded(16);
  for (size_t i = 0; i < extra; ++i) {
    mutated.push_back(static_cast<char>(rng->NextBounded(256)));
  }
  return mutated;
}

std::string SectionTableLie(const std::string& image, Rng* rng) {
  std::string mutated = image;
  const uint32_t count = ReadU32(mutated, 12);
  if (count == 0) return mutated;
  const size_t entry =
      kRkf2HeaderSize + rng->NextBounded(count) * kRkf2TableEntrySize;
  const size_t field = entry + 8 * (1 + rng->NextBounded(2));  // offset|length
  const uint64_t old = ReadU64(mutated, field);
  uint64_t lie;
  switch (rng->NextBounded(4)) {
    case 0: lie = old + 1 + rng->NextBounded(64); break;
    case 1: lie = old > 64 ? old - 1 - rng->NextBounded(64) : old + 8; break;
    case 2: lie = rng->Next(); break;
    default: lie = mutated.size() + rng->NextBounded(1 << 20); break;
  }
  WriteU64(&mutated, field, lie);
  FixRkf2Checksums(&mutated);
  return mutated;
}

/// The seeded corruption classes, pre-filtered to mutants the snapshot
/// loader's validation actually rejects (a checksum-repaired flip can be
/// semantically harmless and load fine — such a mutant would legitimately
/// publish, so it does not belong in the must-fail-closed legs) and whose
/// magic survived (a destroyed magic routes to the text parsers — a
/// different, also-covered failure mode, but not a Corruption one).
std::vector<std::string> RejectedMutants(const std::string& image) {
  std::vector<std::string> kept;
  Rng rng(7001);
  std::vector<std::string> raw;
  for (int i = 0; i < 40; ++i) raw.push_back(FlipByte(image, &rng));
  for (int i = 0; i < 20; ++i) raw.push_back(Truncate(image, &rng));
  for (int i = 0; i < 10; ++i) raw.push_back(Extend(image, &rng));
  for (int i = 0; i < 15; ++i) raw.push_back(SectionTableLie(image, &rng));
  for (std::string& mutant : raw) {
    if (mutant.compare(0, 4, "RKF2") != 0) continue;
    auto kb = KnowledgeBase::OpenSnapshotBuffer(mutant);
    if (kb.ok()) continue;
    EXPECT_TRUE(kb.status().IsCorruption()) << kb.status().ToString();
    kept.push_back(std::move(mutant));
  }
  // The classes are seeded: a near-empty rejection set would mean the
  // harness is replaying no-ops, not that the loader got better.
  EXPECT_GT(kept.size(), 30u);
  return kept;
}

// --- harness fixture --------------------------------------------------------

struct BaselineResult {
  bool found = false;
  std::string expression_text;
  double cost = 0.0;
  std::vector<std::string> target_labels;
};

class ReloadFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    image_ = FaultKb().SerializeSnapshot();
    dir_ = ::testing::TempDir();
    good_path_ = dir_ + "/reload_fault_good.rkf2";
    WriteFile(good_path_, image_);

    KbSpec spec;
    spec.path = good_path_;
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);

    // Baseline: one no-reload run per target set, recorded before any
    // swap. Every response produced during and after the reload storm
    // must be byte-identical to these.
    for (const auto& names : kTargetSets()) {
      MineRequest request;
      request.targets.names = names;
      auto response = service_->Mine(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_TRUE(response->status.ok());
      BaselineResult baseline;
      baseline.found = response->found;
      baseline.expression_text = response->expression_text;
      baseline.cost = response->cost;
      baseline.target_labels = response->target_labels;
      baselines_.push_back(std::move(baseline));
    }
  }

  static const std::vector<std::vector<std::string>>& kTargetSets() {
    static const std::vector<std::vector<std::string>> sets = {
        {"Entity0"}, {"Entity7"}, {"Entity13", "Entity21"}};
    return sets;
  }

  /// Mines every target set once and asserts byte-identity against the
  /// baselines. `failures` counts silently-diverged responses so worker
  /// threads can report without gtest's thread caveats.
  void MineAllAndCompare(std::atomic<size_t>* failures) {
    for (size_t i = 0; i < kTargetSets().size(); ++i) {
      MineRequest request;
      request.targets.names = kTargetSets()[i];
      auto response = service_->Mine(request);
      const BaselineResult& want = baselines_[i];
      if (!response.ok() || !response->status.ok() ||
          response->found != want.found ||
          response->expression_text != want.expression_text ||
          response->cost != want.cost ||
          response->target_labels != want.target_labels) {
        failures->fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  std::string image_;
  std::string dir_;
  std::string good_path_;
  std::unique_ptr<Service> service_;
  std::vector<BaselineResult> baselines_;
};

// --- the storm --------------------------------------------------------------

TEST_F(ReloadFaultTest, CorruptionClassesFailClosedUnderLiveTraffic) {
  const std::vector<std::string> mutants = RejectedMutants(image_);

  // Three miners hammer the service for the whole storm.
  std::atomic<bool> stop{false};
  std::atomic<size_t> divergent{0};
  std::atomic<size_t> mines{0};
  std::vector<std::thread> miners;
  for (int t = 0; t < 3; ++t) {
    miners.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        MineAllAndCompare(&divergent);
        mines.fetch_add(kTargetSets().size(), std::memory_order_relaxed);
      }
    });
  }

  const std::string mutant_path = dir_ + "/reload_fault_mutant.rkf2";
  size_t good_reloads = 0;
  uint64_t expected_generation = 1;
  for (size_t i = 0; i < mutants.size(); ++i) {
    // Rejected candidates never get mapped by an epoch, so reusing one
    // path is safe; good candidates each get a fresh file because a
    // published snapshot stays memory-mapped for the epoch's lifetime
    // and must never be overwritten underneath it.
    WriteFile(mutant_path, mutants[i]);
    ReloadKbRequest reload;
    reload.spec.path = mutant_path;
    const ReloadKbResponse response = service_->ReloadKb(reload);
    EXPECT_TRUE(response.status.IsCorruption())
        << "mutant " << i << ": " << response.status.ToString();
    EXPECT_EQ(response.generation, expected_generation) << "mutant " << i;
    EXPECT_EQ(service_->generation(), expected_generation) << "mutant " << i;

    if (i % 5 == 4) {
      // Interleaved good reload: pristine bytes, so epochs differ only
      // by generation and the miners' byte-identity checks stay exact.
      const std::string path = dir_ + "/reload_fault_good_" +
                               std::to_string(good_reloads) + ".rkf2";
      WriteFile(path, image_);
      ReloadKbRequest good;
      good.spec.path = path;
      const ReloadKbResponse published = service_->ReloadKb(good);
      ASSERT_TRUE(published.status.ok()) << published.status.ToString();
      ++good_reloads;
      ++expected_generation;
      EXPECT_EQ(published.generation, expected_generation);
      EXPECT_EQ(published.facts, service_->kb().NumFacts());
    }
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& miner : miners) miner.join();

  EXPECT_EQ(divergent.load(), 0u);
  EXPECT_GT(mines.load(), 0u);

  const ServiceCounters counters = service_->counters();
  EXPECT_EQ(counters.reloads_rejected, mutants.size());
  EXPECT_EQ(counters.reloads_ok, good_reloads);
  EXPECT_EQ(counters.generation, expected_generation);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.completed_ok, counters.admitted);
  // Drain check: with the miners joined, every displaced generation must
  // have been destroyed — only the serving epoch is alive.
  EXPECT_EQ(counters.active_generations, 1u);

  std::remove(mutant_path.c_str());
  for (size_t i = 0; i < good_reloads; ++i) {
    std::remove((dir_ + "/reload_fault_good_" + std::to_string(i) + ".rkf2")
                    .c_str());
  }
}

TEST_F(ReloadFaultTest, GarbageThatLosesTheMagicAlsoFailsClosed) {
  // A truncation below 4 bytes (or a flip in the magic) stops being an
  // RKF2 image: format sniffing routes it to the text parsers. With
  // strict parsing the garbage is a ParseError; either way the failure
  // is in-band and the serving generation survives.
  const std::string path = dir_ + "/reload_fault_garbage.bin";
  WriteFile(path, std::string("\x01\x02garbage\xff not a kb\n", 20));
  ReloadKbRequest reload;
  reload.spec.path = path;
  reload.spec.lenient_parse = false;
  const ReloadKbResponse response = service_->ReloadKb(reload);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(response.generation, 1u);
  EXPECT_EQ(service_->generation(), 1u);

  // Missing file: IoError (or NotFound), same fail-closed shape.
  ReloadKbRequest missing;
  missing.spec.path = dir_ + "/reload_fault_does_not_exist.rkf2";
  const ReloadKbResponse missing_response = service_->ReloadKb(missing);
  EXPECT_FALSE(missing_response.status.ok());
  EXPECT_EQ(service_->generation(), 1u);

  EXPECT_EQ(service_->counters().reloads_rejected, 2u);
  std::remove(path.c_str());
}

TEST_F(ReloadFaultTest, RequestPinnedAcrossSwapCompletesByteIdentical) {
  // Occupy the service with a batch big enough to straddle the swap,
  // then publish a new (pristine) generation mid-flight. The batch's
  // responses must be byte-identical to the no-reload baselines and its
  // displaced epoch must be destroyed once the batch completes.
  BatchMineRequest batch;
  for (int round = 0; round < 32; ++round) {
    for (const auto& names : kTargetSets()) {
      TargetSpec spec;
      spec.names = names;
      batch.target_sets.push_back(spec);
    }
  }
  Result<BatchMineResponse> result = Status::Internal("not run");
  // A cache-warm batch can finish inside one scheduling quantum on a
  // single-core host, closing the in_flight window before this thread
  // ever observes it — so the poll must also exit on worker completion
  // (the byte-identity and epoch assertions below hold either way).
  std::atomic<bool> worker_done{false};
  std::thread worker([&] {
    result = service_->BatchMine(batch);
    worker_done.store(true);
  });
  while (service_->counters().in_flight == 0 && !worker_done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const std::string path = dir_ + "/reload_fault_pinned_good.rkf2";
  WriteFile(path, image_);
  ReloadKbRequest reload;
  reload.spec.path = path;
  const ReloadKbResponse published = service_->ReloadKb(reload);
  ASSERT_TRUE(published.status.ok()) << published.status.ToString();
  EXPECT_EQ(published.generation, 2u);

  worker.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->status.ok()) << result->status.ToString();
  ASSERT_EQ(result->results.size(), batch.target_sets.size());
  for (size_t i = 0; i < result->results.size(); ++i) {
    const BaselineResult& want = baselines_[i % kTargetSets().size()];
    const MineResponse& got = result->results[i];
    EXPECT_EQ(got.found, want.found) << i;
    EXPECT_EQ(got.expression_text, want.expression_text) << i;
    EXPECT_EQ(got.cost, want.cost) << i;
    EXPECT_EQ(got.target_labels, want.target_labels) << i;
  }

  // The whole batch ran under one pin: every per-item generation agrees,
  // and after completion only the serving epoch remains alive.
  EXPECT_EQ(service_->generation(), 2u);
  EXPECT_EQ(service_->counters().active_generations, 1u);
  std::remove(path.c_str());
}

TEST_F(ReloadFaultTest, ReloadToDifferentKbServesNewContent) {
  // Hot-swap to a genuinely different KB (sequential — content changes,
  // so byte-identity claims need the pin, exercised above). New lexical
  // resolutions must answer from the new generation's dictionary and
  // name index.
  Dictionary dict;
  std::vector<Triple> triples;
  const TermId fresh = dict.InternIri("http://other.example/FreshEntity");
  const TermId peer = dict.InternIri("http://other.example/PeerEntity");
  const TermId p = dict.InternIri("http://other.example/linksTo");
  triples.push_back(Triple{fresh, p, peer});
  triples.push_back(Triple{peer, p, fresh});
  const std::string path = dir_ + "/reload_fault_other.rkf2";
  {
    const KnowledgeBase other =
        KnowledgeBase::Build(std::move(dict), std::move(triples));
    ASSERT_TRUE(other.SaveSnapshot(path).ok());
  }

  ASSERT_FALSE(service_->ResolveTarget("FreshEntity").ok());
  ReloadKbRequest reload;
  reload.spec.path = path;
  const ReloadKbResponse published = service_->ReloadKb(reload);
  ASSERT_TRUE(published.status.ok()) << published.status.ToString();
  EXPECT_EQ(published.generation, 2u);
  EXPECT_EQ(published.entities, 2u);

  EXPECT_TRUE(service_->ResolveTarget("FreshEntity").ok());
  EXPECT_FALSE(service_->ResolveTarget("Entity0").ok());
  MineRequest request;
  request.targets.names = {"FreshEntity"};
  auto response = service_->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_EQ(response->service.generation, 2u);
  std::remove(path.c_str());
}

// --- concurrent hammer (also in the CI TSan filter) -------------------------

TEST(ServiceReloadHammerTest, ConcurrentMinesAndReloadsNeverDropARequest) {
  const std::string image = FaultKb().SerializeSnapshot();
  const std::string dir = ::testing::TempDir();
  const std::string good_path = dir + "/reload_hammer_good.rkf2";
  WriteFile(good_path, image);

  KbSpec spec;
  spec.path = good_path;
  ServiceOptions options;
  options.max_in_flight = 8;  // the hammer is about reloads, not admission
  auto opened = Service::Open(spec, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Service* service = opened->get();

  // One deterministic validation-rejected mutant per reloader thread —
  // pre-verified, so every corrupt reload in the storm MUST be rejected.
  const std::vector<std::string> mutants = RejectedMutants(image);
  ASSERT_GE(mutants.size(), 2u);

  BatchMineRequest batch;
  for (const char* name : {"Entity0", "Entity7", "Entity13"}) {
    TargetSpec target;
    target.names = {name};
    batch.target_sets.push_back(target);
  }
  auto baseline = service->BatchMine(batch);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->status.ok());

  constexpr int kMiners = 4;
  constexpr int kReloaders = 2;
  constexpr int kMinesPerThread = 12;
  constexpr int kReloadsPerThread = 8;

  std::atomic<size_t> dropped{0};
  std::atomic<size_t> divergent{0};
  std::atomic<size_t> nonmonotonic{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kMiners; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kMinesPerThread; ++i) {
        auto response = service->BatchMine(batch);
        if (!response.ok() || !response->status.ok() ||
            response->results.size() != baseline->results.size()) {
          dropped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (size_t j = 0; j < response->results.size(); ++j) {
          if (response->results[j].expression_text !=
                  baseline->results[j].expression_text ||
              response->results[j].cost != baseline->results[j].cost) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (int t = 0; t < kReloaders; ++t) {
    threads.emplace_back([&, t] {
      // Every good reload maps a fresh file (published snapshots stay
      // mmapped); the corrupt file per thread is reused — it never maps.
      const std::string corrupt_path =
          dir + "/reload_hammer_corrupt_" + std::to_string(t) + ".rkf2";
      WriteFile(corrupt_path, mutants[static_cast<size_t>(t)]);
      uint64_t last_generation = 0;
      for (int i = 0; i < kReloadsPerThread; ++i) {
        ReloadKbRequest reload;
        if (i % 2 == 0) {
          const std::string path = dir + "/reload_hammer_good_" +
                                   std::to_string(t) + "_" +
                                   std::to_string(i) + ".rkf2";
          WriteFile(path, image);
          reload.spec.path = path;
          const ReloadKbResponse response = service->ReloadKb(reload);
          if (!response.status.ok()) {
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
          if (response.generation < last_generation) {
            nonmonotonic.fetch_add(1, std::memory_order_relaxed);
          }
          last_generation = response.generation;
        } else {
          reload.spec.path = corrupt_path;
          const ReloadKbResponse response = service->ReloadKb(reload);
          if (!response.status.IsCorruption()) {
            dropped.fetch_add(1, std::memory_order_relaxed);
          }
          if (response.generation < last_generation) {
            nonmonotonic.fetch_add(1, std::memory_order_relaxed);
          }
          last_generation = response.generation;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(dropped.load(), 0u);
  EXPECT_EQ(divergent.load(), 0u);
  EXPECT_EQ(nonmonotonic.load(), 0u);

  const ServiceCounters counters = service->counters();
  const uint64_t good_total =
      static_cast<uint64_t>(kReloaders) * ((kReloadsPerThread + 1) / 2);
  EXPECT_EQ(counters.reloads_ok, good_total);
  EXPECT_EQ(counters.reloads_rejected,
            static_cast<uint64_t>(kReloaders) * (kReloadsPerThread / 2));
  EXPECT_EQ(counters.generation, 1u + good_total);
  EXPECT_EQ(counters.failed, 0u);
  EXPECT_EQ(counters.active_generations, 1u);

  for (int t = 0; t < kReloaders; ++t) {
    std::remove(
        (dir + "/reload_hammer_corrupt_" + std::to_string(t) + ".rkf2")
            .c_str());
    for (int i = 0; i < kReloadsPerThread; i += 2) {
      std::remove((dir + "/reload_hammer_good_" + std::to_string(t) + "_" +
                   std::to_string(i) + ".rkf2")
                      .c_str());
    }
  }
  std::remove(good_path.c_str());
}

}  // namespace
}  // namespace remi
