// Chaos harness: a LIVE multi-tenant Service behind a real EventServer,
// subjected to the FaultInjector's full OS failure surface (EINTR/EAGAIN
// storms, short reads/writes, injected disconnects, accept-time fd
// exhaustion, mmap refusals) while reloads run concurrently.
//
// The contract under chaos, asserted at quiescence:
//   * liveness — every blocking client read completes or sees a clean
//     EOF within a bounded time; a timeout is a hang and fails the test;
//   * byte-identity — a response line that ARRIVES is byte-identical to
//     the fault-free baseline (faults may kill a connection, never
//     corrupt a surviving response);
//   * exact accounting — per-tenant counters sum to the global counters
//     and admitted == completed_ok + deadline_exceeded + cancelled +
//     failed, with in_flight back to zero.
//
// CI runs this file under TSan (filter Chaos*) and the longer seeded
// variant as bench/chaos_soak.cc under ASan with leak detection.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "kb/knowledge_base.h"
#include "service/event_server.h"
#include "service/service.h"
#include "util/io_hooks.h"

namespace remi {
namespace {

/// Small two-community KB with labels, enough for deterministic
/// summarize output on a named entity.
KnowledgeBase ChaosKb() {
  Dictionary dict;
  std::vector<Triple> triples;
  const TermId label_pred = dict.InternIri(kRdfsLabelIri);
  const TermId type_pred = dict.InternIri(kRdfTypeIri);
  const TermId cls = dict.InternIri("http://chaos.example/class/Node");
  const TermId link = dict.InternIri("http://chaos.example/linksTo");
  std::vector<TermId> nodes;
  for (int i = 0; i < 24; ++i) {
    const TermId node =
        dict.InternIri("http://chaos.example/Node" + std::to_string(i));
    nodes.push_back(node);
    triples.push_back(Triple{node, type_pred, cls});
    triples.push_back(Triple{
        node, label_pred,
        dict.Intern(TermKind::kLiteral,
                    "\"node " + std::to_string(i) + "\"@en")});
  }
  for (int i = 0; i < 24; ++i) {
    triples.push_back(Triple{nodes[i], link, nodes[(i + 1) % 24]});
    triples.push_back(Triple{nodes[i], link, nodes[(i + 7) % 24]});
  }
  return KnowledgeBase::Build(std::move(dict), std::move(triples));
}

/// A blocking NDJSON client on raw syscalls — deliberately NOT routed
/// through io::Hooks(), so it stays clean while the server is faulted.
class RawClient {
 public:
  enum class ReadResult { kLine, kEof, kTimeout };

  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    // Bounded reads: a stuck server must surface as kTimeout, not as a
    // hung test binary.
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool SendLine(const std::string& request) {
    const std::string wire = request + "\n";
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;  // injected disconnect closed our peer
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  ReadResult ReadLine(std::string* line) {
    line->clear();
    char c = 0;
    for (;;) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 1) {
        if (c == '\n') return ReadResult::kLine;
        line->push_back(c);
        continue;
      }
      if (n == 0 || errno == ECONNRESET) return ReadResult::kEof;
      if (errno == EINTR) continue;
      return ReadResult::kTimeout;  // SO_RCVTIMEO fired: the server hung
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class ChaosServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir();
    image_ = ChaosKb().SerializeSnapshot();
    default_path_ = dir_ + "/chaos_default.rkf2";
    alpha_path_ = dir_ + "/chaos_alpha.rkf2";
    WriteImage(default_path_);
    WriteImage(alpha_path_);

    KbSpec spec;
    spec.path = default_path_;
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
    KbSpec alpha;
    alpha.path = alpha_path_;
    ASSERT_TRUE(service_->AttachKb("alpha", alpha).ok());

    server_ =
        std::make_unique<EventServer>(service_.get(), EventServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    std::remove(default_path_.c_str());
    std::remove(alpha_path_.c_str());
    for (const std::string& path : reload_paths_) std::remove(path.c_str());
  }

  void WriteImage(const std::string& path) {
    FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr) << path;
    ASSERT_EQ(std::fwrite(image_.data(), 1, image_.size(), out),
              image_.size());
    ASSERT_EQ(std::fclose(out), 0);
  }

  /// The request mix: one deterministic line per entry, verbatim. Mine
  /// responses carry wall-clock timings, so byte-identity uses the
  /// timing-free verbs only.
  static const std::vector<std::string>& Requests() {
    static const std::vector<std::string> requests = {
        R"({"op":"ping"})",
        R"({"op":"summarize","entity":"Node3","k":3})",
        R"({"op":"summarize","entity":"Node3","k":3,"kb":"alpha"})",
        R"({"op":"candidates","targets":["Node5"],"limit":2})",
    };
    return requests;
  }

  /// Fault-free baselines, one response line per request.
  std::vector<std::string> CollectBaselines() {
    std::vector<std::string> baselines;
    RawClient client(server_->port());
    EXPECT_TRUE(client.connected());
    for (const std::string& request : Requests()) {
      EXPECT_TRUE(client.SendLine(request));
      std::string line;
      EXPECT_EQ(client.ReadLine(&line), RawClient::ReadResult::kLine);
      baselines.push_back(line);
    }
    return baselines;
  }

  /// Sums every tenant's slice and checks it reconciles exactly with the
  /// global counters — under chaos nothing may be double- or un-counted.
  void ExpectExactAccounting() {
    const ServiceCounters global = service_->counters();
    TenantCounters sum;
    for (const KbInfo& info : service_->ListKbs()) {
      if (!info.open) continue;
      auto slice = service_->CountersFor(info.name);
      ASSERT_TRUE(slice.ok()) << info.name;
      sum.admitted += slice->admitted;
      sum.completed_ok += slice->completed_ok;
      sum.deadline_exceeded += slice->deadline_exceeded;
      sum.cancelled += slice->cancelled;
      sum.rejected += slice->rejected;
      sum.failed += slice->failed;
      sum.shed_expired_in_queue += slice->shed_expired_in_queue;
      sum.in_flight += slice->in_flight;
    }
    EXPECT_EQ(sum.admitted, global.admitted);
    EXPECT_EQ(sum.completed_ok, global.completed_ok);
    EXPECT_EQ(sum.deadline_exceeded, global.deadline_exceeded);
    EXPECT_EQ(sum.cancelled, global.cancelled);
    EXPECT_EQ(sum.rejected, global.rejected);
    EXPECT_EQ(sum.failed, global.failed);
    EXPECT_EQ(sum.shed_expired_in_queue, global.shed_expired_in_queue);
    EXPECT_EQ(sum.in_flight, 0u);
    EXPECT_EQ(global.in_flight, 0u);
    // The admission ledger balances: every admitted request reached
    // exactly one terminal outcome.
    EXPECT_EQ(global.admitted, global.completed_ok +
                                   global.deadline_exceeded +
                                   global.cancelled + global.failed);
    // Quiescent epochs: nothing pinned, nothing leaked.
    EXPECT_EQ(global.active_generations, global.tenants_active);
  }

  std::string dir_;
  std::string image_;
  std::string default_path_;
  std::string alpha_path_;
  std::vector<std::string> reload_paths_;
  std::unique_ptr<Service> service_;
  std::unique_ptr<EventServer> server_;
};

TEST_F(ChaosServiceTest, FaultStormPreservesLivenessIdentityAndAccounting) {
  const std::vector<std::string> baselines = CollectBaselines();
  ASSERT_EQ(baselines.size(), Requests().size());

  std::atomic<size_t> delivered{0};
  std::atomic<size_t> divergent{0};
  std::atomic<size_t> severed{0};
  std::atomic<size_t> hung{0};
  std::atomic<size_t> reloads_ok{0};
  {
    io::FaultProfile profile;
    profile.seed = 20260808;
    profile.eintr_probability = 0.05;
    profile.eagain_probability = 0.05;
    profile.short_write_probability = 0.2;
    profile.short_read_probability = 0.2;
    profile.disconnect_probability = 0.01;
    profile.accept_resource_probability = 0.02;
    profile.mmap_fail_probability = 0.2;
    io::FaultInjector injector(profile);
    io::ScopedHooks scoped(&injector);

    constexpr int kClients = 4;
    constexpr int kRoundsPerClient = 25;
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&] {
        for (int round = 0; round < kRoundsPerClient; ++round) {
          RawClient client(server_->port());
          if (!client.connected()) continue;  // injected EMFILE burst
          for (size_t i = 0; i < Requests().size(); ++i) {
            if (!client.SendLine(Requests()[i])) {
              severed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            std::string line;
            const auto result = client.ReadLine(&line);
            if (result == RawClient::ReadResult::kEof) {
              // An injected disconnect killed this connection; the
              // request did not survive, so no identity claim applies.
              severed.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            if (result == RawClient::ReadResult::kTimeout) {
              hung.fetch_add(1, std::memory_order_relaxed);
              break;
            }
            delivered.fetch_add(1, std::memory_order_relaxed);
            if (line != baselines[i]) {
              divergent.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    // Reloads concurrent with the faulted traffic: the reload path runs
    // under the same injector (mmap refusals exercise the read
    // fallback), and both tenants keep swapping while clients mine.
    threads.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        const std::string path =
            dir_ + "/chaos_reload_" + std::to_string(i) + ".rkf2";
        WriteImage(path);
        reload_paths_.push_back(path);
        ReloadKbRequest reload;
        reload.spec.path = path;
        if (i % 2 == 1) reload.kb = "alpha";
        const ReloadKbResponse response = service_->ReloadKb(reload);
        if (response.status.ok()) {
          reloads_ok.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
    for (std::thread& thread : threads) thread.join();
  }

  EXPECT_EQ(hung.load(), 0u) << "a faulted connection stopped the server";
  EXPECT_EQ(divergent.load(), 0u)
      << "a surviving response diverged from the fault-free baseline";
  EXPECT_GT(delivered.load(), 0u) << "the storm let nothing through";
  // The same image was reloaded every time; with the read fallback
  // behind mmap refusals, every reload must have published.
  EXPECT_EQ(reloads_ok.load(), 6u);

  // The hooks are gone: a clean client gets baseline answers again.
  RawClient after(server_->port());
  ASSERT_TRUE(after.connected());
  ASSERT_TRUE(after.SendLine(Requests()[0]));
  std::string line;
  ASSERT_EQ(after.ReadLine(&line), RawClient::ReadResult::kLine);
  EXPECT_EQ(line, baselines[0]);

  ExpectExactAccounting();
}

TEST_F(ChaosServiceTest, AcceptExhaustionStormLeavesTheListenerAlive) {
  const std::vector<std::string> baselines = CollectBaselines();
  size_t refused = 0;
  {
    io::FaultProfile profile;
    profile.seed = 99;
    profile.accept_resource_probability = 0.5;
    io::FaultInjector injector(profile);
    io::ScopedHooks scoped(&injector);
    // Under an EMFILE/ENFILE/ENOMEM storm half the accepts fail; the
    // loop must survive every one of them and keep accepting the rest.
    for (int i = 0; i < 8; ++i) {
      RawClient client(server_->port());
      if (!client.connected()) {
        ++refused;
        continue;
      }
      if (!client.SendLine(Requests()[0])) continue;
      std::string line;
      const auto result = client.ReadLine(&line);
      if (result == RawClient::ReadResult::kLine) {
        EXPECT_EQ(line, baselines[0]);
      }
    }
    EXPECT_GT(injector.injected(io::IoOp::kAccept), 0u);
  }

  // The listener survived the storm: a clean connect works first try.
  RawClient after(server_->port());
  ASSERT_TRUE(after.connected());
  ASSERT_TRUE(after.SendLine(Requests()[0]));
  std::string line;
  ASSERT_EQ(after.ReadLine(&line), RawClient::ReadResult::kLine);
  EXPECT_EQ(line, baselines[0]);
  EXPECT_GT(service_->counters().accept_errors_retried, 0u);
  EXPECT_EQ(service_->counters().accept_errors_fatal, 0u);
}

}  // namespace
}  // namespace remi
