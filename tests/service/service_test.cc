// remi::Service contract tests: KB opening & format sniffing, lexical
// target resolution, request execution, per-request deadlines (including
// expiry mid-DFS), cooperative cancellation, admission control, and the
// batch == N-times-single equivalence — the serving guarantees of the API.

#include "service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"
#include "rdf/ntriples.h"
#include "util/timer.h"

#ifndef REMI_TESTDATA_DIR
#define REMI_TESTDATA_DIR "tests/data"
#endif

namespace remi {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(REMI_TESTDATA_DIR) + "/" + name;
}

std::unique_ptr<Service> OpenSmoke(const ServiceOptions& options = {}) {
  KbSpec spec;
  spec.path = TestDataPath("smoke.nt");
  auto service = Service::Open(spec, options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(*service);
}

/// The deadline workload: 2^p entities, one per p-bit pattern, with
/// bit j of entity i materialized as b_j(e_i, m_j). Every conjunction of
/// bit atoms strictly halves the match set, so with the prunings disabled
/// the DFS for the all-ones entity visits all 2^p subsets — a perfectly
/// deterministic, perfectly parallel-free long search (~2^16 nodes).
KnowledgeBase BuildBitLatticeKb(int p) {
  Dictionary dict;
  std::vector<Triple> triples;
  std::vector<TermId> preds(p), marks(p);
  for (int j = 0; j < p; ++j) {
    preds[j] = dict.InternIri("http://ex/b" + std::to_string(j));
    marks[j] = dict.InternIri("http://ex/m" + std::to_string(j));
  }
  const size_t n = size_t{1} << p;
  for (size_t i = 0; i < n; ++i) {
    const TermId e = dict.InternIri("http://ex/e" + std::to_string(i));
    for (int j = 0; j < p; ++j) {
      if (i >> j & 1) triples.push_back(Triple{e, preds[j], marks[j]});
    }
  }
  KbOptions options;
  options.inverse_top_fraction = 0;  // keep the build lean
  return KnowledgeBase::Build(std::move(dict), std::move(triples), options);
}

/// Mining options that make the bit-lattice search exhaustive.
RemiOptions ExhaustiveMining() {
  RemiOptions mining;
  mining.depth_pruning = false;
  mining.side_pruning = false;
  mining.best_bound_pruning = false;
  return mining;
}

constexpr int kBitKbBits = 16;

// --- opening & format sniffing ----------------------------------------------

TEST(ServiceOpenTest, OpensNTriples) {
  auto service = OpenSmoke();
  EXPECT_GT(service->kb().NumFacts(), 0u);
  EXPECT_GT(service->kb().NumEntities(), 0u);
}

TEST(ServiceOpenTest, OpensRkf1AndRkf2ByMagic) {
  for (const char* name : {"golden.rkf", "golden.rkf2"}) {
    KbSpec spec;
    spec.path = TestDataPath(name);
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << name << ": " << service.status().ToString();
    EXPECT_GT((*service)->kb().NumFacts(), 0u) << name;
  }
}

TEST(ServiceOpenTest, SniffsMagicOverMisleadingExtension) {
  // An RKF2 snapshot renamed to .nt must still open as a snapshot.
  std::ifstream in(TestDataPath("golden.rkf2"), std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string path =
      ::testing::TempDir() + "/misnamed_snapshot_test.nt";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  KbSpec spec;
  spec.path = path;
  auto service = Service::Open(spec);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_GT((*service)->kb().NumFacts(), 0u);
  std::remove(path.c_str());
}

TEST(ServiceOpenTest, MissingFileFailsWithContext) {
  KbSpec spec;
  spec.path = TestDataPath("does_not_exist.nt");
  auto service = Service::Open(spec);
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("does_not_exist"),
            std::string::npos);
}

// --- lexical target resolution ----------------------------------------------

TEST(ServiceResolveTest, ResolvesFullIriAndUniqueSuffix) {
  auto service = OpenSmoke();
  auto by_iri = service->ResolveTarget("http://example.org/Berlin");
  auto by_suffix = service->ResolveTarget("Berlin");
  ASSERT_TRUE(by_iri.ok());
  ASSERT_TRUE(by_suffix.ok());
  EXPECT_EQ(*by_iri, *by_suffix);
}

TEST(ServiceResolveTest, MultiSegmentSuffixUsesBoundaryCheckedScan) {
  auto service = OpenSmoke();
  // "example.org/Berlin" is a suffix of <http://example.org/Berlin> at a
  // '/' boundary — resolved by the fallback scan, not the local-name
  // index, and must agree with the plain local-name lookup.
  auto by_long_suffix = service->ResolveTarget("example.org/Berlin");
  ASSERT_TRUE(by_long_suffix.ok()) << by_long_suffix.status().ToString();
  EXPECT_EQ(*by_long_suffix, *service->ResolveTarget("Berlin"));
}

TEST(ServiceResolveTest, PredicateIriIsNotATarget) {
  auto service = OpenSmoke();
  // The exact-IRI path must enforce the entity contract: a predicate
  // resolves to NotFound, not to its TermId.
  auto resolved = service->ResolveTarget("http://example.org/prop/cityIn");
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsNotFound());
}

TEST(ServiceResolveTest, UnknownNameIsNotFound) {
  auto service = OpenSmoke();
  auto resolved = service->ResolveTarget("Atlantis");
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsNotFound());
}

TEST(ServiceResolveTest, AmbiguousSuffixIsInvalidArgument) {
  Dictionary dict;
  NTriplesParser parser(&dict);
  auto triples = parser.ParseString(
      "<http://a/Paris> <http://x/p> <http://x/o> .\n"
      "<http://b/Paris> <http://x/p> <http://x/o> .\n");
  ASSERT_TRUE(triples.ok());
  auto service = Service::Create(
      KnowledgeBase::Build(std::move(dict), std::move(*triples)));
  auto resolved = service->ResolveTarget("Paris");
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsInvalidArgument());
}

TEST(ServiceResolveTest, MergesIdsAndNamesDeduplicated) {
  auto service = OpenSmoke();
  const TermId berlin = *service->ResolveTarget("Berlin");
  TargetSpec spec;
  spec.ids = {berlin};
  spec.names = {"Berlin", "Hamburg"};
  auto resolved = service->ResolveTargets(spec);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->size(), 2u);
}

TEST(ServiceResolveTest, OutOfRangeIdIsInvalidArgument) {
  auto service = OpenSmoke();
  TargetSpec spec;
  spec.ids = {static_cast<TermId>(service->kb().dict().size() + 100)};
  auto resolved = service->ResolveTargets(spec);
  ASSERT_FALSE(resolved.ok());
  EXPECT_TRUE(resolved.status().IsInvalidArgument());
}

TEST(ServiceResolveTest, EmptyTargetsIsInvalidArgument) {
  auto service = OpenSmoke();
  MineRequest request;
  auto response = service->Mine(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
}

// --- basic mining through the façade ----------------------------------------

TEST(ServiceMineTest, MatchesDirectMinerByteForByte) {
  auto service = OpenSmoke();
  MineRequest request;
  request.targets.names = {"Berlin"};
  request.verbalize = true;
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok());
  ASSERT_TRUE(response->found);
  EXPECT_FALSE(response->verbalization.empty());

  RemiMiner direct(&service->kb(), service->options().mining);
  auto reference = direct.MineRe(response->targets);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->found);
  EXPECT_EQ(response->expression_text,
            reference->expression.ToString(service->kb().dict()));
  EXPECT_EQ(response->cost, reference->cost);
}

TEST(ServiceMineTest, PerRequestCostOverrideSelectsMetric) {
  auto service = OpenSmoke();
  MineRequest request;
  request.targets.names = {"Berlin", "Hamburg"};
  CostModelOptions pr;
  pr.metric = ProminenceMetric::kPageRank;
  request.cost = pr;
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->found);

  RemiOptions pr_options = service->options().mining;
  pr_options.cost = pr;
  RemiMiner direct(&service->kb(), pr_options);
  auto reference = direct.MineRe(response->targets);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(response->expression_text,
            reference->expression.ToString(service->kb().dict()));
  EXPECT_EQ(response->cost, reference->cost);
}

TEST(ServiceMineTest, ExceptionsAreReportedWithLabels) {
  auto service = OpenSmoke();
  MineRequest request;
  request.targets.names = {"Berlin"};
  request.max_exceptions = 2;
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->found);
  EXPECT_EQ(response->exceptions.size(),
            response->exception_labels.size());
  EXPECT_LE(response->exceptions.size(), 2u);
}

TEST(ServiceSummarizeTest, TopKAtoms) {
  auto service = OpenSmoke();
  SummarizeRequest request;
  request.entity.names = {"Berlin"};
  request.k = 3;
  auto response = service->Summarize(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(response->status.ok());
  EXPECT_EQ(response->entity_label, "Berlin");
  EXPECT_LE(response->items.size(), 3u);
  EXPECT_GT(response->items.size(), 0u);
  EXPECT_EQ(response->items.size(), response->item_labels.size());
}

TEST(ServiceSummarizeTest, MultipleEntitiesRejected) {
  auto service = OpenSmoke();
  SummarizeRequest request;
  request.entity.names = {"Berlin", "Hamburg"};
  auto response = service->Summarize(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
}

TEST(ServiceCandidatesTest, RankedQueueAscendingAndLimited) {
  auto service = OpenSmoke();
  CandidatesRequest request;
  request.targets.names = {"Berlin"};
  auto all = service->Candidates(request);
  ASSERT_TRUE(all.ok());
  ASSERT_GT(all->size(), 2u);
  for (size_t i = 1; i < all->size(); ++i) {
    EXPECT_LE((*all)[i - 1].cost, (*all)[i].cost);
  }
  request.limit = 2;
  auto limited = service->Candidates(request);
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->size(), 2u);
  EXPECT_EQ((*limited)[0].expression, (*all)[0].expression);
}

// --- batch == N x single ----------------------------------------------------

TEST(ServiceBatchTest, BatchEqualsIndividualMines) {
  ServiceOptions options;
  options.mining.num_threads = 4;  // exercise the shared pool
  options.mining.clamp_threads_to_hardware = false;
  auto service = Service::Create(BuildCuratedKb(), options);

  const std::vector<std::vector<std::string>> names = {
      {"Paris"}, {"Marie_Curie"}, {"Guyana", "Suriname"},
      {"Rennes", "Nantes"}, {"Agrofert"}};
  BatchMineRequest batch;
  for (const auto& set : names) {
    TargetSpec spec;
    spec.names = set;
    batch.target_sets.push_back(spec);
  }
  auto batched = service->BatchMine(batch);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_TRUE(batched->status.ok());
  ASSERT_EQ(batched->results.size(), names.size());

  for (size_t i = 0; i < names.size(); ++i) {
    MineRequest single;
    single.targets.names = names[i];
    auto response = service->Mine(single);
    ASSERT_TRUE(response.ok());
    const MineResponse& from_batch = batched->results[i];
    EXPECT_EQ(from_batch.found, response->found) << i;
    if (response->found) {
      EXPECT_EQ(from_batch.expression_text, response->expression_text) << i;
      EXPECT_EQ(from_batch.cost, response->cost) << i;
    }
  }
}

TEST(ServiceBatchTest, EmptyBatchRejected) {
  auto service = OpenSmoke();
  BatchMineRequest request;
  auto response = service->BatchMine(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument());
}

// --- deadlines --------------------------------------------------------------

class ServiceDeadlineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildBitLatticeKb(kBitKbBits));
    all_ones_ = *kb_->dict().Lookup(
        TermKind::kIri,
        "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1));
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }

  /// The service owns its KB, so service-backed tests build their own
  /// (deterministic) copy; kb_ exists for direct-miner comparisons.
  static std::unique_ptr<Service> MakeService() {
    ServiceOptions options;
    options.mining = ExhaustiveMining();
    return Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  }

  static KnowledgeBase* kb_;
  static TermId all_ones_;
};

KnowledgeBase* ServiceDeadlineTest::kb_ = nullptr;
TermId ServiceDeadlineTest::all_ones_ = kNullTerm;

TEST_F(ServiceDeadlineTest, ShortDeadlineExpiresMidDfsWithinGracePeriod) {
  auto service = MakeService();
  const TermId target = *service->ResolveTarget(
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1));

  MineRequest request;
  request.targets.ids = {target};
  request.control.deadline_seconds = 0.005;

  Timer timer;
  auto response = service->Mine(request);
  const double elapsed = timer.ElapsedSeconds();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsDeadlineExceeded())
      << response->status.ToString();
  // Cooperative checkpointing: the DFS polls per node, so expiry must
  // surface within a bounded grace period, not after the full 2^16-node
  // search (and certainly not hang).
  EXPECT_LT(elapsed, 5.0);
  // Partial stats: strictly fewer nodes than the exhaustive search
  // visits (the status assert above already rules out a completed run).
  // Whether the best-so-far RE was already found when the deadline fired
  // is timing-dependent (it usually is — the first DFS descent reaches
  // it within the first |G| nodes), so `found` is not asserted here.
  EXPECT_LT(response->stats.nodes_visited,
            (uint64_t{1} << kBitKbBits) - 1);
  EXPECT_EQ(service->counters().deadline_exceeded, 1u);
}

TEST_F(ServiceDeadlineTest, NoDeadlineMatchesDirectMinerByteForByte) {
  auto service = MakeService();
  const TermId target = *service->ResolveTarget(
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1));

  MineRequest request;  // identical request, no deadline
  request.targets.ids = {target};
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok());
  ASSERT_TRUE(response->status.ok());
  ASSERT_TRUE(response->found);
  // The exhaustive search visits every subset of the 16 bit-atoms.
  EXPECT_EQ(response->stats.nodes_visited,
            (uint64_t{1} << kBitKbBits) - 1);

  // Byte-identical to driving RemiMiner directly with the same options
  // (the shared KB instance is id-compatible with the service's own KB:
  // both are built by the same deterministic constructor).
  RemiMiner direct(kb_, ExhaustiveMining());
  auto reference = direct.MineRe({all_ones_});
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->found);
  EXPECT_EQ(response->expression_text,
            reference->expression.ToString(kb_->dict()));
  EXPECT_EQ(response->cost, reference->cost);
  EXPECT_EQ(response->stats.nodes_visited, reference->stats.nodes_visited);
}

TEST(ServiceDeadlineQueueTest, DeadlineCoversBatch) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  BatchMineRequest request;
  for (int i = 0; i < 4; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    request.target_sets.push_back(spec);
  }
  request.control.deadline_seconds = 0.005;
  auto response = service->BatchMine(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.IsDeadlineExceeded());
}

// --- cancellation -----------------------------------------------------------

TEST(ServiceCancelTest, CancellationStopsARunningRequest) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  CancellationSource source;
  BatchMineRequest request;  // a batch long enough to outlive the cancel
  for (int i = 0; i < 64; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    request.target_sets.push_back(spec);
  }
  request.control.cancel = source.token();

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.RequestCancellation();
  });
  auto response = service->BatchMine(request);
  canceller.join();
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->status.IsCancelled())
      << response->status.ToString();
  EXPECT_EQ(service->counters().cancelled, 1u);
}

// --- hot-swap registry basics (the fault harness lives in
// reload_fault_test.cc; these cover the API contract) -------------------------

TEST(ServiceReloadTest, FirstGenerationCountersAndPinnedLabels) {
  auto service = OpenSmoke();
  const ServiceCounters before = service->counters();
  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(before.active_generations, 1u);
  EXPECT_EQ(before.reloads_ok, 0u);
  EXPECT_EQ(before.reloads_rejected, 0u);

  MineRequest request;
  request.targets.names = {"Berlin"};
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->service.generation, 1u);
  // Labels are rendered under the pin so the wire layer never has to
  // consult the (possibly swapped) live KB.
  ASSERT_EQ(response->target_labels.size(), response->targets.size());
  EXPECT_EQ(response->target_labels[0], "Berlin");
}

TEST(ServiceReloadTest, SharedKbPinKeepsDisplacedGenerationAlive) {
  auto service = OpenSmoke();
  std::shared_ptr<const KnowledgeBase> pinned = service->SharedKb();
  const size_t facts = pinned->NumFacts();

  ReloadKbRequest reload;
  reload.spec.path = TestDataPath("smoke.nt");
  const ReloadKbResponse published = service->ReloadKb(reload);
  ASSERT_TRUE(published.status.ok()) << published.status.ToString();
  EXPECT_EQ(published.generation, 2u);
  EXPECT_EQ(service->generation(), 2u);

  // The displaced generation survives exactly as long as its last pin.
  EXPECT_EQ(service->counters().active_generations, 2u);
  EXPECT_EQ(pinned->NumFacts(), facts);
  pinned.reset();
  EXPECT_EQ(service->counters().active_generations, 1u);
}

// --- admission control ------------------------------------------------------

TEST(ServiceAdmissionTest, OverflowReturnsResourceExhausted) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 1;
  options.max_queued = 0;
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  // Occupy the single slot with a long cancellable batch.
  CancellationSource source;
  BatchMineRequest slow;
  for (int i = 0; i < 256; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    slow.target_sets.push_back(spec);
  }
  slow.control.cancel = source.token();
  std::thread occupant([&] { (void)service->BatchMine(slow); });

  // Wait for the occupant to hold the slot.
  while (service->counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  MineRequest request;
  request.targets.names = {entity};
  auto rejected = service->Mine(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_EQ(service->counters().rejected, 1u);

  source.RequestCancellation();
  occupant.join();

  // The slot is free again: the same request now executes.
  request.control.deadline_seconds = 0.005;
  auto accepted = service->Mine(request);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
}

TEST(ServiceAdmissionTest, QueuedRequestHonorsDeadline) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 1;
  options.max_queued = 4;
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  CancellationSource source;
  BatchMineRequest slow;
  for (int i = 0; i < 256; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    slow.target_sets.push_back(spec);
  }
  slow.control.cancel = source.token();
  std::thread occupant([&] { (void)service->BatchMine(slow); });
  while (service->counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // This request queues behind the occupant and must give up in-band
  // when its deadline expires while waiting.
  MineRequest queued;
  queued.targets.names = {entity};
  queued.control.deadline_seconds = 0.05;
  auto response = service->Mine(queued);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsDeadlineExceeded());
  EXPECT_GT(response->service.queue_wait_seconds, 0.0);
  EXPECT_EQ(response->stats.nodes_visited, 0u);  // it never ran

  source.RequestCancellation();
  occupant.join();
}

// --- deadline-aware shedding ------------------------------------------------

TEST(ServiceSheddingTest, ExpiredAtAdmissionShedsBeforeMining) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);
  ASSERT_EQ(service->counters().nodes_visited_total, 0u);

  MineRequest request;
  request.targets.names = {entity};
  // Expired before Admit even looks at it: the deadline budget is gone
  // by the first Expired() check.
  request.control.deadline_seconds = 1e-9;
  auto response = service->Mine(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsDeadlineExceeded())
      << response->status.ToString();

  const ServiceCounters c = service->counters();
  EXPECT_EQ(c.shed_expired_in_queue, 1u);
  EXPECT_EQ(c.deadline_exceeded, 1u);
  EXPECT_EQ(c.admitted, 1u);  // shed is an admitted outcome, not a reject
  EXPECT_EQ(c.rejected, 0u);
  // The whole point of shedding: no mining work happened for the corpse.
  EXPECT_EQ(c.nodes_visited_total, 0u);

  // The per-tenant slice reconciles with the global counter.
  auto slice = service->CountersFor("");
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  EXPECT_EQ(slice->shed_expired_in_queue, 1u);
  EXPECT_EQ(slice->admitted, 1u);
}

TEST(ServiceSheddingTest, ExpiredWhileQueuedCountsAsShed) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 1;
  options.max_queued = 4;
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  CancellationSource source;
  BatchMineRequest slow;
  for (int i = 0; i < 256; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    slow.target_sets.push_back(spec);
  }
  slow.control.cancel = source.token();
  std::thread occupant([&] { (void)service->BatchMine(slow); });
  while (service->counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  MineRequest queued;
  queued.targets.names = {entity};
  queued.control.deadline_seconds = 0.05;
  auto response = service->Mine(queued);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.IsDeadlineExceeded());
  EXPECT_EQ(response->stats.nodes_visited, 0u);  // shed, never mined
  EXPECT_EQ(service->counters().shed_expired_in_queue, 1u);
  auto slice = service->CountersFor("");
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->shed_expired_in_queue, 1u);

  source.RequestCancellation();
  occupant.join();
}

// --- brownout ---------------------------------------------------------------

TEST(ServiceBrownoutTest, SustainedQueueWaitTightensAdmission) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 1;
  options.max_queued = 4;
  options.brownout_p99_queue_wait_ms = 1.0;  // any real queueing trips it
  options.brownout_queue_fraction = 0.25;    // 4 -> 1 effective slot
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const std::string entity =
      "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);

  CancellationSource source;
  BatchMineRequest slow;
  for (int i = 0; i < 256; ++i) {
    TargetSpec spec;
    spec.names = {entity};
    slow.target_sets.push_back(spec);
  }
  slow.control.cancel = source.token();
  std::thread occupant([&] { (void)service->BatchMine(slow); });
  while (service->counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Two requests queue behind the occupant and expire after ~30 ms of
  // waiting; their recorded queue waits push the window's p99 far above
  // the 1 ms bound.
  for (int i = 0; i < 2; ++i) {
    MineRequest waiting;
    waiting.targets.names = {entity};
    waiting.control.deadline_seconds = 0.03;
    auto shed = service->Mine(waiting);
    ASSERT_TRUE(shed.ok());
    EXPECT_TRUE(shed->status.IsDeadlineExceeded());
  }
  EXPECT_TRUE(service->counters().brownout_active);

  // Brownout tightened the queue to one slot: park one waiter in it,
  // then the next arrival is rejected even though the nominal queue
  // depth (4) has room.
  std::thread parked([&] {
    MineRequest waiting;
    waiting.targets.names = {entity};
    waiting.control.deadline_seconds = 5.0;
    (void)service->Mine(waiting);
  });
  for (;;) {
    auto slice = service->CountersFor("");
    ASSERT_TRUE(slice.ok());
    if (slice->queued >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  MineRequest overflow;
  overflow.targets.names = {entity};
  overflow.control.deadline_seconds = 5.0;
  auto rejected = service->Mine(overflow);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  const ServiceCounters c = service->counters();
  EXPECT_GE(c.brownout_rejected, 1u);
  EXPECT_EQ(c.rejected, 1u);

  source.RequestCancellation();
  occupant.join();
  parked.join();
}

TEST(ServiceBrownoutTest, DisabledByDefault) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  auto service = Service::Create(BuildBitLatticeKb(kBitKbBits), options);
  const ServiceCounters c = service->counters();
  EXPECT_FALSE(c.brownout_active);
  EXPECT_EQ(c.brownout_rejected, 0u);
}

}  // namespace
}  // namespace remi
