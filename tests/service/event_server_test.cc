// EventServer integration tests: an in-process epoll server on an
// ephemeral loopback port, driven through real TCP sockets in both wire
// modes — the same code path tools/remi_server.cc serves in its default
// --mode epoll, minus the flag parsing.

#include "service/event_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "service/frame_codec.h"
#include "service/json_codec.h"
#include "service/line_server.h"
#include "util/io_hooks.h"
#include "util/json.h"

#ifndef REMI_TESTDATA_DIR
#define REMI_TESTDATA_DIR "tests/data"
#endif

namespace remi {
namespace {

/// A blocking client over one TCP connection, usable for both wire modes
/// (raw byte send plus line- and frame-oriented reads).
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~TestClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  void SendRaw(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Sends the bytes one at a time — the adversarial recv-boundary case.
  void SendByteByByte(std::string_view data) {
    for (const char byte : data) {
      SendRaw(std::string_view(&byte, 1));
    }
  }

  void SendLine(const std::string& request) { SendRaw(request + "\n"); }

  void SendFrame(FrameVerb verb, uint64_t request_id,
                 const std::string& payload) {
    std::string wire;
    AppendFrame(static_cast<uint8_t>(verb), request_id, payload, &wire);
    SendRaw(wire);
  }

  /// Reads one response line (fails the test on EOF).
  std::string ReadLine() {
    std::string line;
    char c = 0;
    while (recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    ADD_FAILURE() << "connection closed before a full response line";
    return line;
  }

  /// Reads one complete response frame.
  bool ReadFrame(uint8_t* verb, uint64_t* request_id, std::string* payload) {
    char chunk[4096];
    for (;;) {
      FrameView frame;
      const auto result = decoder_.Next(&frame);
      if (result == FrameDecoder::Result::kFrame) {
        *verb = frame.verb;
        *request_id = frame.request_id;
        payload->assign(frame.payload.data(), frame.payload.size());
        return true;
      }
      if (result == FrameDecoder::Result::kError) return false;
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      decoder_.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    }
  }

  /// True iff the server closed its end (clean EOF).
  bool AtEof() {
    char c = 0;
    return recv(fd_, &c, 1, 0) == 0;
  }

  void ShutdownWrite() { shutdown(fd_, SHUT_WR); }

 private:
  int fd_ = -1;
  bool connected_ = false;
  FrameDecoder decoder_{64u << 20};
};

class EventServerTest : public ::testing::Test {
 protected:
  void StartServer(const EventServerOptions& options = {}) {
    KbSpec spec;
    spec.path = std::string(REMI_TESTDATA_DIR) + "/smoke.nt";
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
    server_ = std::make_unique<EventServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  JsonValue Parse(const std::string& doc) {
    auto parsed = ParseJson(doc);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << doc;
    return parsed.ok() ? *parsed : JsonValue();
  }

  // A peer observes EOF the instant the fd closes, a beat before the
  // loop thread decrements the connection count — poll, don't assert.
  void ExpectConnectionsDrain() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (server_->open_connections() != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(server_->open_connections(), 0u);
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<EventServer> server_;
};

TEST_F(EventServerTest, NdjsonDebugModeServesTheLineProtocol) {
  StartServer();
  TestClient client(server_->port());

  client.SendLine(R"({"op":"ping"})");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "OK");

  client.SendLine(R"({"op":"mine","targets":["Berlin"],"verbalize":true})");
  JsonValue mine = Parse(client.ReadLine());
  EXPECT_EQ(mine.Find("status")->AsString(), "OK");
  EXPECT_TRUE(mine.Find("found")->AsBool());
}

TEST_F(EventServerTest, PipelinedNdjsonAcrossArbitraryRecvBoundaries) {
  StartServer();
  TestClient client(server_->port());

  // Several requests pipelined into one stream, delivered byte by byte:
  // the server sees every possible partial-line state.
  std::string stream;
  const int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) {
    stream += R"({"op":"ping"})";
    stream += "\n";
    stream += R"({"op":"summarize","entity":"Berlin","k":2})";
    stream += "\n";
  }
  client.SendByteByByte(stream);

  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "OK");
    JsonValue summary = Parse(client.ReadLine());
    EXPECT_EQ(summary.Find("status")->AsString(), "OK");
    EXPECT_EQ(summary.Find("entity")->AsString(), "Berlin");
  }
}

TEST_F(EventServerTest, BinaryFramesAcrossArbitraryRecvBoundaries) {
  StartServer();
  TestClient client(server_->port());

  // Frame headers and payloads split at every byte boundary.
  std::string wire;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), 11, "", &wire);
  AppendFrame(static_cast<uint8_t>(FrameVerb::kSummarize), 12,
              R"({"entity":"Berlin","k":2})", &wire);
  client.SendByteByByte(wire);

  std::map<uint64_t, std::string> responses;
  for (int i = 0; i < 2; ++i) {
    uint8_t verb = 0;
    uint64_t id = 0;
    std::string payload;
    ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
    responses[id] = payload;
    // Responses echo the request verb.
    EXPECT_EQ(verb, id == 11 ? static_cast<uint8_t>(FrameVerb::kPing)
                             : static_cast<uint8_t>(FrameVerb::kSummarize));
  }
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(Parse(responses[11]).Find("status")->AsString(), "OK");
  JsonValue summary = Parse(responses[12]);
  EXPECT_EQ(summary.Find("status")->AsString(), "OK");
  EXPECT_EQ(summary.Find("entity")->AsString(), "Berlin");
}

TEST_F(EventServerTest, MultiplexedResponsesMatchedByRequestId) {
  EventServerOptions options;
  options.dispatch_threads = 4;
  StartServer(options);
  TestClient client(server_->port());

  // Many in-flight requests of mixed cost on ONE connection. Responses
  // may legally arrive in any order (that is the point of the id); the
  // test asserts the multiplexing contract — every id answered exactly
  // once, each response carrying its request's verb and a valid payload.
  const int kMines = 6;
  const int kPings = 6;
  for (int i = 0; i < kMines; ++i) {
    client.SendFrame(FrameVerb::kMine, 100 + static_cast<uint64_t>(i),
                     R"({"targets":["Berlin","Hamburg"]})");
  }
  for (int i = 0; i < kPings; ++i) {
    client.SendFrame(FrameVerb::kPing, 200 + static_cast<uint64_t>(i), "");
  }

  std::map<uint64_t, uint8_t> verbs;
  std::map<uint64_t, std::string> payloads;
  for (int i = 0; i < kMines + kPings; ++i) {
    uint8_t verb = 0;
    uint64_t id = 0;
    std::string payload;
    ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
    EXPECT_EQ(verbs.count(id), 0u) << "duplicate response for id " << id;
    verbs[id] = verb;
    payloads[id] = payload;
  }
  ASSERT_EQ(verbs.size(), static_cast<size_t>(kMines + kPings));
  for (int i = 0; i < kMines; ++i) {
    const uint64_t id = 100 + static_cast<uint64_t>(i);
    EXPECT_EQ(verbs[id], static_cast<uint8_t>(FrameVerb::kMine));
    JsonValue mine = Parse(payloads[id]);
    EXPECT_EQ(mine.Find("status")->AsString(), "OK");
    EXPECT_TRUE(mine.Find("found")->AsBool());
  }
  for (int i = 0; i < kPings; ++i) {
    const uint64_t id = 200 + static_cast<uint64_t>(i);
    EXPECT_EQ(verbs[id], static_cast<uint8_t>(FrameVerb::kPing));
    EXPECT_EQ(Parse(payloads[id]).Find("status")->AsString(), "OK");
  }
}

TEST_F(EventServerTest, NdjsonAndBinaryResponsesAreByteIdentical) {
  StartServer();

  // Deterministic requests only (mine responses carry timing floats):
  // the response payload must be byte-identical across wire modes.
  const struct {
    FrameVerb verb;
    std::string payload;
  } kCases[] = {
      {FrameVerb::kPing, R"({"op":"ping"})"},
      {FrameVerb::kSummarize,
       R"({"op":"summarize","entity":"Berlin","k":3})"},
      {FrameVerb::kCandidates,
       R"({"op":"candidates","targets":["Berlin"],"limit":3})"},
      {FrameVerb::kMine,
       R"({"op":"mine","targets":["NoSuchEntityAnywhere"]})"},
  };
  for (const auto& test_case : kCases) {
    TestClient ndjson(server_->port());
    ndjson.SendLine(test_case.payload);
    const std::string line_response = ndjson.ReadLine();

    TestClient binary(server_->port());
    binary.SendFrame(test_case.verb, 1, test_case.payload);
    uint8_t verb = 0;
    uint64_t id = 0;
    std::string frame_response;
    ASSERT_TRUE(binary.ReadFrame(&verb, &id, &frame_response));
    EXPECT_EQ(id, 1u);
    EXPECT_EQ(frame_response, line_response)
        << "wire modes disagree for " << test_case.payload;
  }
}

TEST_F(EventServerTest, UnknownVerbIsARequestLevelError) {
  StartServer();
  TestClient client(server_->port());
  client.SendFrame(static_cast<FrameVerb>(99), 7, "");
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(Parse(payload).Find("status")->AsString(), "InvalidArgument");

  // The connection survives a request-level error.
  client.SendFrame(FrameVerb::kPing, 8, "");
  ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
  EXPECT_EQ(id, 8u);
  EXPECT_EQ(Parse(payload).Find("status")->AsString(), "OK");
}

TEST_F(EventServerTest, OversizeFrameIsRejectedAndPoisonsTheStream) {
  EventServerOptions options;
  options.max_frame_payload_bytes = 1024;
  StartServer(options);
  TestClient client(server_->port());

  // A valid request first, so the poison provably flushes prior work.
  client.SendFrame(FrameVerb::kPing, 1, "");
  std::string oversize;
  AppendFrame(static_cast<uint8_t>(FrameVerb::kMine), 2,
              std::string(4096, 'x'), &oversize);
  client.SendRaw(oversize);

  std::map<uint64_t, std::string> responses;
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  while (client.ReadFrame(&verb, &id, &payload)) {
    responses[id] = payload;
  }
  // The admitted ping answered; the oversize frame rejected by id with a
  // stream-level error (verb 0); then EOF.
  ASSERT_EQ(responses.count(1), 1u);
  EXPECT_EQ(Parse(responses[1]).Find("status")->AsString(), "OK");
  ASSERT_EQ(responses.count(2), 1u);
  EXPECT_EQ(Parse(responses[2]).Find("status")->AsString(),
            "InvalidArgument");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(EventServerTest, OversizeNdjsonLinePoisonsTheConnection) {
  EventServerOptions options;
  options.max_line_bytes = 256;
  StartServer(options);
  TestClient client(server_->port());

  // The oversize line arrives complete (newline included) in one burst:
  // the per-line check must reject it even though the leftover tail is
  // empty afterwards.
  std::string oversize = R"({"op":"ping","pad":")";
  oversize += std::string(512, 'x');
  oversize += "\"}";
  client.SendLine(oversize);
  JsonValue error = Parse(client.ReadLine());
  EXPECT_EQ(error.Find("status")->AsString(), "InvalidArgument");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(EventServerTest, UnrecognizedProtocolIsRejected) {
  StartServer();
  TestClient client(server_->port());
  client.SendRaw("GET / HTTP/1.1\r\n\r\n");
  JsonValue error = Parse(client.ReadLine());
  EXPECT_EQ(error.Find("status")->AsString(), "InvalidArgument");
  EXPECT_TRUE(client.AtEof());
}

TEST_F(EventServerTest, BackpressureStillDeliversEverything) {
  EventServerOptions options;
  // A tiny write budget forces pause/resume cycles while the client
  // pipelines without reading.
  options.max_write_buffer_bytes = 512;
  StartServer(options);
  TestClient client(server_->port());

  const int kRequests = 64;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    AppendFrame(static_cast<uint8_t>(FrameVerb::kCandidates),
                static_cast<uint64_t>(i),
                R"({"targets":["Berlin"],"limit":5})", &wire);
  }
  // Send everything first, read only afterwards: responses far exceed
  // the write budget, so the server must pause reads and resume as the
  // client drains.
  std::thread sender([&] { client.SendRaw(wire); });
  std::map<uint64_t, std::string> responses;
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  while (responses.size() < static_cast<size_t>(kRequests)) {
    ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
    EXPECT_EQ(responses.count(id), 0u);
    responses[id] = payload;
  }
  sender.join();
  for (const auto& [response_id, doc] : responses) {
    EXPECT_EQ(Parse(doc).Find("status")->AsString(), "OK")
        << "id " << response_id;
  }
}

TEST_F(EventServerTest, DrainUnderLoadFlushesAdmittedRequests) {
  EventServerOptions options;
  options.dispatch_threads = 2;
  StartServer(options);
  TestClient binary(server_->port());
  TestClient ndjson(server_->port());

  // Load both wire modes, then drain while responses are in flight.
  const int kFrames = 4;
  for (int i = 0; i < kFrames; ++i) {
    binary.SendFrame(FrameVerb::kMine, static_cast<uint64_t>(i),
                     R"({"targets":["Berlin"]})");
  }
  ndjson.SendLine(R"({"op":"summarize","entity":"Berlin","k":3})");

  std::thread drainer([&] { EXPECT_TRUE(server_->Drain(30.0)); });

  // Every admitted request's response must still arrive, then EOF.
  std::map<uint64_t, std::string> responses;
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  while (responses.size() < static_cast<size_t>(kFrames) &&
         binary.ReadFrame(&verb, &id, &payload)) {
    responses[id] = payload;
  }
  ASSERT_EQ(responses.size(), static_cast<size_t>(kFrames));
  for (const auto& [response_id, doc] : responses) {
    EXPECT_EQ(Parse(doc).Find("status")->AsString(), "OK")
        << "id " << response_id;
  }
  EXPECT_TRUE(binary.AtEof());

  JsonValue summary = Parse(ndjson.ReadLine());
  EXPECT_EQ(summary.Find("status")->AsString(), "OK");
  EXPECT_TRUE(ndjson.AtEof());

  drainer.join();
  server_.reset();  // already stopped by Drain
}

TEST_F(EventServerTest, CountersVerbExportsServiceCounters) {
  StartServer();
  TestClient client(server_->port());
  client.SendFrame(FrameVerb::kMine, 1, R"({"targets":["Berlin"]})");
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));

  client.SendFrame(FrameVerb::kCounters, 2, "");
  ASSERT_TRUE(client.ReadFrame(&verb, &id, &payload));
  EXPECT_EQ(id, 2u);
  JsonValue counters = Parse(payload);
  EXPECT_EQ(counters.Find("status")->AsString(), "OK");
  EXPECT_GE(counters.Find("admitted")->AsNumber(), 1.0);
  EXPECT_GE(counters.Find("completed_ok")->AsNumber(), 1.0);
  // The new aggregates: one mine visited nodes and took measurable time.
  EXPECT_GT(counters.Find("nodes_visited_total")->AsNumber(), 0.0);
  ASSERT_NE(counters.Find("mine_micros_total"), nullptr);
  ASSERT_NE(counters.Find("accept_errors_retried"), nullptr);
  ASSERT_NE(counters.Find("accept_errors_fatal"), nullptr);
}

TEST_F(EventServerTest, EofWithPipelinedRequestsStillAnswersThem) {
  StartServer();
  TestClient client(server_->port());
  std::string wire;
  for (uint64_t id = 1; id <= 4; ++id) {
    AppendFrame(static_cast<uint8_t>(FrameVerb::kPing), id, "", &wire);
  }
  client.SendRaw(wire);
  client.ShutdownWrite();  // half-close: EOF after the pipelined bytes

  std::map<uint64_t, std::string> responses;
  uint8_t verb = 0;
  uint64_t id = 0;
  std::string payload;
  while (client.ReadFrame(&verb, &id, &payload)) {
    responses[id] = payload;
  }
  EXPECT_EQ(responses.size(), 4u);
}

// --- connection lifecycle timeouts ------------------------------------------

TEST_F(EventServerTest, SlowLorisPartialRequestIsReapedOnIdleTimeout) {
  EventServerOptions options;
  options.idle_timeout_ms = 120;
  StartServer(options);
  TestClient loris(server_->port());
  // A torn NDJSON request that never completes: no newline, then
  // silence. Without the idle timeout this connection lives forever.
  loris.SendRaw(R"({"op":"pi)");

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(loris.AtEof());  // blocks until the server reaps us
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "reap took too long";
  EXPECT_EQ(service_->counters().connections_reaped_idle, 1u);
  EXPECT_EQ(service_->counters().connections_reaped_write_stall, 0u);
  ExpectConnectionsDrain();
}

TEST_F(EventServerTest, SlowLorisReapLeavesHealthyPeersUnaffected) {
  EventServerOptions options;
  options.idle_timeout_ms = 100;
  StartServer(options);
  TestClient loris(server_->port());
  loris.SendRaw("R");  // a torn binary frame header, then silence

  // A healthy peer keeps round-tripping the whole time the loris ages
  // out; every request must answer promptly (its activity clock resets
  // per round trip, so it is never reaped).
  TestClient healthy(server_->port());
  std::atomic<bool> loris_gone{false};
  std::thread watcher([&] {
    loris_gone.store(loris.AtEof());
  });
  for (int i = 0; i < 20; ++i) {
    healthy.SendLine(R"({"op":"ping"})");
    EXPECT_EQ(Parse(healthy.ReadLine()).Find("status")->AsString(), "OK");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  watcher.join();
  EXPECT_TRUE(loris_gone.load());
  EXPECT_GE(service_->counters().connections_reaped_idle, 1u);
  // The healthy connection survived the sweep.
  healthy.SendLine(R"({"op":"ping"})");
  EXPECT_EQ(Parse(healthy.ReadLine()).Find("status")->AsString(), "OK");
}

TEST_F(EventServerTest, HandshakeTimeoutReapsProtocollessConnections) {
  EventServerOptions options;
  options.handshake_timeout_ms = 100;
  StartServer(options);
  TestClient mute(server_->port());  // connects, never sends a byte
  EXPECT_TRUE(mute.AtEof());
  EXPECT_EQ(service_->counters().connections_reaped_idle, 1u);

  // A connection that *did* finish the protocol sniff is exempt.
  TestClient talker(server_->port());
  talker.SendLine(R"({"op":"ping"})");
  EXPECT_EQ(Parse(talker.ReadLine()).Find("status")->AsString(), "OK");
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  talker.SendLine(R"({"op":"ping"})");
  EXPECT_EQ(Parse(talker.ReadLine()).Find("status")->AsString(), "OK");
}

namespace {
/// Blocks every server-side send with EAGAIN while leaving reads (and
/// the test client's raw syscalls) untouched — simulates a peer whose
/// receive window never opens.
class BlockSends : public io::IoHooks {
 public:
  ssize_t Send(int fd, const void* buf, size_t len, int flags) override {
    (void)fd;
    (void)buf;
    (void)len;
    (void)flags;
    errno = EAGAIN;
    return -1;
  }
};
}  // namespace

TEST_F(EventServerTest, WriteStallReapsAPeerThatStopsReading) {
  EventServerOptions options;
  options.write_stall_timeout_ms = 150;
  StartServer(options);
  BlockSends block;
  io::ScopedHooks scoped(&block);

  TestClient client(server_->port());
  client.SendLine(R"({"op":"ping"})");
  // The response is computed but no byte of it ever leaves the write
  // buffer; after 150ms of zero progress the connection is reaped.
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(service_->counters().connections_reaped_write_stall, 1u);
  EXPECT_EQ(service_->counters().connections_reaped_idle, 0u);
  ExpectConnectionsDrain();
}

}  // namespace
}  // namespace remi
