// TimerWheel unit tests: slot hashing, lazy expiry, overdue clamping,
// and the epoll-timeout bound NextDelayMs provides.

#include "service/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace remi {
namespace {

using Clock = TimerWheel::Clock;

TEST(TimerWheelTest, EmptyWheelPopsNothingAndHasNoDelay) {
  TimerWheel wheel;
  std::vector<uint64_t> out;
  const auto now = Clock::now();
  wheel.PopExpired(now, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(wheel.NextDelayMs(now), -1);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, EntryPopsOnceItsDeadlinePasses) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  wheel.Schedule(7, now + std::chrono::milliseconds(100));
  EXPECT_EQ(wheel.size(), 1u);

  std::vector<uint64_t> out;
  wheel.PopExpired(now + std::chrono::milliseconds(10), &out);
  EXPECT_TRUE(out.empty()) << "deadline is 90ms away";

  wheel.PopExpired(now + std::chrono::milliseconds(150), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheelTest, AlreadyOverdueDeadlinePopsImmediately) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  // Establish the cursor at `now` first, then schedule into the past —
  // the regression this guards: a past deadline hashed to a slot the
  // cursor already swept would hide for a full wheel rotation.
  std::vector<uint64_t> out;
  wheel.PopExpired(now, &out);
  wheel.Schedule(3, now - std::chrono::seconds(5));
  wheel.PopExpired(now + std::chrono::milliseconds(20), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 3u);
}

TEST(TimerWheelTest, FutureRotationEntriesStayPut) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  // 256 slots * 16ms = ~4.1s per rotation; 5s lands one rotation ahead,
  // in a slot the cursor passes before the deadline arrives.
  wheel.Schedule(1, now + std::chrono::seconds(5));
  std::vector<uint64_t> out;
  wheel.PopExpired(now + std::chrono::seconds(1), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(wheel.size(), 1u);
  wheel.PopExpired(now + std::chrono::seconds(6), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1u);
}

TEST(TimerWheelTest, ManyEntriesPopInTheRightBuckets) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  for (uint64_t id = 0; id < 100; ++id) {
    wheel.Schedule(id, now + std::chrono::milliseconds(10 * (id + 1)));
  }
  std::vector<uint64_t> early;
  wheel.PopExpired(now + std::chrono::milliseconds(500), &early);
  // Ids 0..48 have deadlines <= 490ms < 500ms; 49 lands exactly at 500.
  EXPECT_GE(early.size(), 49u);
  std::vector<uint64_t> late;
  wheel.PopExpired(now + std::chrono::seconds(2), &late);
  EXPECT_EQ(early.size() + late.size(), 100u);
  std::vector<uint64_t> all = early;
  all.insert(all.end(), late.begin(), late.end());
  std::sort(all.begin(), all.end());
  for (uint64_t id = 0; id < 100; ++id) EXPECT_EQ(all[id], id);
}

TEST(TimerWheelTest, NextDelayBoundsTheEarliestDeadline) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  wheel.Schedule(1, now + std::chrono::milliseconds(300));
  wheel.Schedule(2, now + std::chrono::milliseconds(80));
  const int delay = wheel.NextDelayMs(now);
  EXPECT_GE(delay, 80);
  EXPECT_LE(delay, 100);
  // A due entry still reports a positive (minimal) delay, never 0 or
  // negative — epoll_wait(0) in a loop would spin.
  EXPECT_EQ(wheel.NextDelayMs(now + std::chrono::seconds(1)), 1);
}

TEST(TimerWheelTest, StalledCursorRecoversWithinOneRotation) {
  TimerWheel wheel(/*tick_ms=*/16);
  const auto now = Clock::now();
  std::vector<uint64_t> out;
  wheel.PopExpired(now, &out);
  wheel.Schedule(9, now + std::chrono::milliseconds(50));
  // Simulate a loop thread that stalls for many rotations; the sweep
  // must still find the entry without walking every missed tick.
  wheel.PopExpired(now + std::chrono::minutes(5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 9u);
}

}  // namespace
}  // namespace remi
