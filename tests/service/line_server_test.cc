// remi_server smoke test: an in-process LineServer on an ephemeral
// loopback port, driven through a real TCP socket — the same code path
// tools/remi_server.cc serves, minus the flag parsing.

#include "service/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>

#include "service/json_codec.h"
#include "util/json.h"

#ifndef REMI_TESTDATA_DIR
#define REMI_TESTDATA_DIR "tests/data"
#endif

namespace remi {
namespace {

/// A blocking line-oriented client over one TCP connection.
class LineClient {
 public:
  explicit LineClient(int port, bool expect_connect = true) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0;
    if (expect_connect) EXPECT_TRUE(connected_);
  }
  ~LineClient() {
    if (fd_ >= 0) close(fd_);
  }

  bool connected() const { return connected_; }

  /// Sends one request line without waiting for the response.
  void Send(const std::string& request) {
    std::string out = request + "\n";
    EXPECT_EQ(send(fd_, out.data(), out.size(), 0),
              static_cast<ssize_t>(out.size()));
  }

  /// Reads one response line (empty + failure on EOF).
  std::string ReadLine() {
    std::string line;
    char c = 0;
    while (recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    ADD_FAILURE() << "connection closed before a full response line";
    return line;
  }

  /// True iff the server closed its end (clean EOF).
  bool AtEof() {
    char c = 0;
    return recv(fd_, &c, 1, 0) == 0;
  }

  /// Sends one request line and reads one response line.
  std::string RoundTrip(const std::string& request) {
    Send(request);
    return ReadLine();
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class LineServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    KbSpec spec;
    spec.path = std::string(REMI_TESTDATA_DIR) + "/smoke.nt";
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
    server_ = std::make_unique<LineServer>(service_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  JsonValue Request(LineClient* client, const std::string& line) {
    auto parsed = ParseJson(client->RoundTrip(line));
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    return parsed.ok() ? *parsed : JsonValue();
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<LineServer> server_;
};

TEST_F(LineServerTest, PingMineSummarizeStatsOverOneConnection) {
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());

  JsonValue ping = Request(&client, R"({"op":"ping"})");
  EXPECT_EQ(ping.Find("status")->AsString(), "OK");

  JsonValue mine = Request(
      &client,
      R"({"op":"mine","targets":["Berlin"],"verbalize":true})");
  EXPECT_EQ(mine.Find("status")->AsString(), "OK");
  EXPECT_TRUE(mine.Find("found")->AsBool());
  EXPECT_FALSE(mine.Find("expression")->AsString().empty());
  EXPECT_FALSE(mine.Find("verbalization")->AsString().empty());
  EXPECT_GT(mine.Find("cost")->AsNumber(), 0.0);

  JsonValue summary = Request(
      &client, R"({"op":"summarize","entity":"Berlin","k":3})");
  EXPECT_EQ(summary.Find("status")->AsString(), "OK");
  EXPECT_EQ(summary.Find("entity")->AsString(), "Berlin");
  EXPECT_GT(summary.Find("items")->items().size(), 0u);

  JsonValue batch = Request(
      &client,
      R"({"op":"batch_mine","target_sets":[["Berlin"],["Hamburg"]]})");
  EXPECT_EQ(batch.Find("status")->AsString(), "OK");
  EXPECT_EQ(batch.Find("results")->items().size(), 2u);

  JsonValue candidates = Request(
      &client, R"({"op":"candidates","targets":["Berlin"],"limit":3})");
  EXPECT_EQ(candidates.Find("status")->AsString(), "OK");
  EXPECT_EQ(candidates.Find("candidates")->items().size(), 3u);

  JsonValue stats = Request(&client, R"({"op":"stats"})");
  EXPECT_EQ(stats.Find("status")->AsString(), "OK");
  // ping/stats bypass mining; mine + summarize + batch + candidates ran.
  EXPECT_GE(stats.Find("admitted")->AsNumber(), 3.0);
  EXPECT_GT(stats.Find("facts")->AsNumber(), 0.0);
}

TEST_F(LineServerTest, ServesConcurrentConnections) {
  LineClient a(server_->port());
  LineClient b(server_->port());
  ASSERT_TRUE(a.connected());
  ASSERT_TRUE(b.connected());
  JsonValue ra =
      Request(&a, R"({"op":"mine","targets":["Berlin"]})");
  JsonValue rb =
      Request(&b, R"({"op":"mine","targets":["Hamburg"]})");
  EXPECT_EQ(ra.Find("status")->AsString(), "OK");
  EXPECT_EQ(rb.Find("status")->AsString(), "OK");
}

TEST_F(LineServerTest, ErrorsAreInBandAndConnectionSurvives) {
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());

  JsonValue malformed = Request(&client, "{not json");
  EXPECT_EQ(malformed.Find("status")->AsString(), "ParseError");

  JsonValue unknown_op = Request(&client, R"({"op":"fly"})");
  EXPECT_EQ(unknown_op.Find("status")->AsString(), "InvalidArgument");

  JsonValue unknown_target = Request(
      &client, R"({"op":"mine","targets":["Atlantis"]})");
  EXPECT_EQ(unknown_target.Find("status")->AsString(), "NotFound");

  // The connection still answers after three error responses.
  JsonValue ping = Request(&client, R"({"op":"ping"})");
  EXPECT_EQ(ping.Find("status")->AsString(), "OK");
}

TEST_F(LineServerTest, RejectsOutOfRangeNumbersInsteadOfCasting) {
  // 1e999 parses to +inf; casting it to size_t/TermId would be UB, so
  // the codec must reject it as InvalidArgument (covers ReadSize and the
  // numeric-id path of ReadTargetSpec).
  for (const char* line :
       {R"({"op":"mine","targets":["Berlin"],"max_exceptions":1e999})",
        R"({"op":"mine","targets":[1e999]})",
        R"({"op":"mine","targets":[1.5]})",
        R"({"op":"mine","targets":[99999999999]})",
        R"({"op":"summarize","entity":"Berlin","k":-1})",
        R"({"op":"mine","targets":["Berlin"],"deadline_ms":1e999})",
        R"({"op":"mine","targets":["Berlin"],"deadline_ms":1e13})"}) {
    auto response = ParseJson(HandleRequestLine(service_.get(), line));
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_EQ(response->Find("status")->AsString(), "InvalidArgument")
        << line;
  }
}

TEST_F(LineServerTest, DeadlineTravelsOverTheWire) {
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // deadline_ms of 0.000001 (sub-microsecond) expires before mining.
  JsonValue response = Request(
      &client,
      R"({"op":"mine","targets":["Berlin"],"deadline_ms":0.000001})");
  EXPECT_EQ(response.Find("status")->AsString(), "DeadlineExceeded");
}

TEST_F(LineServerTest, ReloadVerbSwapsGenerationsInBand) {
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // Good reload: re-open the same smoke KB as generation 2.
  const std::string smoke = std::string(REMI_TESTDATA_DIR) + "/smoke.nt";
  JsonValue good = Request(
      &client, std::string(R"({"op":"reload","path":")") + smoke + "\"}");
  EXPECT_EQ(good.Find("status")->AsString(), "OK");
  EXPECT_EQ(good.Find("generation")->AsNumber(), 2.0);
  EXPECT_GT(good.Find("facts")->AsNumber(), 0.0);

  // Corrupt candidate: valid magic, garbage body. Fail closed in-band —
  // the connection survives and generation 2 keeps serving.
  const std::string corrupt_path =
      ::testing::TempDir() + "/line_server_corrupt.rkf2";
  {
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out << "RKF2 this is not a snapshot";
  }
  JsonValue corrupt = Request(
      &client,
      std::string(R"({"op":"reload","path":")") + corrupt_path + "\"}");
  EXPECT_EQ(corrupt.Find("status")->AsString(), "Corruption");
  EXPECT_EQ(corrupt.Find("generation")->AsNumber(), 2.0);

  // Still mining, and the stats op reports the registry counters.
  JsonValue mine =
      Request(&client, R"({"op":"mine","targets":["Berlin"]})");
  EXPECT_EQ(mine.Find("status")->AsString(), "OK");
  JsonValue stats = Request(&client, R"({"op":"stats"})");
  EXPECT_EQ(stats.Find("generation")->AsNumber(), 2.0);
  EXPECT_EQ(stats.Find("reloads_ok")->AsNumber(), 1.0);
  EXPECT_EQ(stats.Find("reloads_rejected")->AsNumber(), 1.0);
  EXPECT_GE(stats.Find("active_generations")->AsNumber(), 1.0);
  std::remove(corrupt_path.c_str());
}

TEST_F(LineServerTest, AdmissionOverflowCarriesRetryAfterHint) {
  // A service with one never-queued slot, occupied by a long cancellable
  // batch: the next wire request must come back ResourceExhausted with
  // the retry_after_ms back-off hint.
  KbSpec spec;
  spec.path = std::string(REMI_TESTDATA_DIR) + "/smoke.nt";
  ServiceOptions options;
  options.max_in_flight = 1;
  options.max_queued = 0;
  auto opened = Service::Open(spec, options);
  ASSERT_TRUE(opened.ok());
  Service* service = opened->get();

  CancellationSource source;
  BatchMineRequest slow;
  for (int i = 0; i < 4096; ++i) {
    TargetSpec target;
    target.names = {"Berlin"};
    slow.target_sets.push_back(target);
  }
  slow.control.cancel = source.token();
  std::thread occupant([&] { (void)service->BatchMine(slow); });
  while (service->counters().in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto response = ParseJson(HandleRequestLine(
      service, R"({"op":"mine","targets":["Berlin"]})"));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->Find("status")->AsString(), "ResourceExhausted");
  ASSERT_NE(response->Find("retry_after_ms"), nullptr);
  EXPECT_GT(response->Find("retry_after_ms")->AsNumber(), 0.0);

  source.RequestCancellation();
  occupant.join();
}

TEST_F(LineServerTest, RetryHintGrowsWithQueueDepth) {
  // The hint is derived from admission state, not a constant: at equal
  // jitter, deeper queues must produce strictly larger hints until the
  // cap, and the jitter band keeps any hint within [0.75x, 1.25x) base.
  uint64_t previous = 0;
  for (size_t queued = 0; queued < 64; ++queued) {
    const uint64_t hint = Service::ComputeRetryAfterMs(
        queued, /*max_in_flight=*/4, /*mean_service_ms=*/40.0,
        /*jitter256=*/128);
    EXPECT_GT(hint, previous) << "queued=" << queued;
    previous = hint;
  }
  // Cold start (no completions yet) still floors at a sane minimum.
  const uint64_t cold = Service::ComputeRetryAfterMs(0, 4, 0.0, 128);
  EXPECT_GE(cold, 25u);
  // The cap bounds even absurd backlogs.
  const uint64_t capped = Service::ComputeRetryAfterMs(
      1u << 20, 1, 5000.0, 255);
  EXPECT_LE(capped, 13000u);
  // Jitter spreads retries instead of synchronizing them.
  const uint64_t low = Service::ComputeRetryAfterMs(8, 4, 40.0, 0);
  const uint64_t high = Service::ComputeRetryAfterMs(8, 4, 40.0, 255);
  EXPECT_LT(low, high);
}

TEST_F(LineServerTest, OversizeCompleteLinePoisonsTheConnection) {
  // The historical check only bounded the *partial* tail, so an oversize
  // line whose newline arrived in the same recv() slipped through. The
  // limit must apply to complete lines too.
  KbSpec spec;
  spec.path = std::string(REMI_TESTDATA_DIR) + "/smoke.nt";
  auto opened = Service::Open(spec);
  ASSERT_TRUE(opened.ok());
  LineServerOptions options;
  options.port = 0;
  options.max_line_bytes = 128;
  LineServer server(opened->get(), options);
  ASSERT_TRUE(server.Start().ok());

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::string oversize = R"({"op":"ping","pad":")";
  oversize += std::string(512, 'x');
  oversize += "\"}";
  client.Send(oversize);  // appends the newline: a complete line
  auto parsed = ParseJson(client.ReadLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("status")->AsString(), "InvalidArgument");
  EXPECT_TRUE(client.AtEof());
  server.Stop();
}

TEST_F(LineServerTest, DrainFlushesBufferedResponsesThenCloses) {
  LineClient client(server_->port());
  ASSERT_TRUE(client.connected());
  EXPECT_EQ(Request(&client, R"({"op":"ping"})").Find("status")->AsString(),
            "OK");

  // A request already on the wire when Drain() starts must still be
  // answered; afterwards the server closes its end and refuses new
  // connections.
  client.Send(R"({"op":"mine","targets":["Berlin"]})");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(server_->Drain(/*grace_seconds=*/10.0));

  auto parsed = ParseJson(client.ReadLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("status")->AsString(), "OK");
  EXPECT_TRUE(client.AtEof());

  LineClient late(server_->port(), /*expect_connect=*/false);
  EXPECT_FALSE(late.connected());
}

TEST_F(LineServerTest, StopUnblocksOpenConnections) {
  auto client = std::make_unique<LineClient>(server_->port());
  ASSERT_TRUE(client->connected());
  JsonValue ping = Request(client.get(), R"({"op":"ping"})");
  EXPECT_EQ(ping.Find("status")->AsString(), "OK");
  server_->Stop();  // must join the connection thread without hanging
}

}  // namespace
}  // namespace remi
