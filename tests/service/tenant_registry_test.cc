// Multi-tenant registry tests: attach/detach lifecycle, lazy catalog
// opens, per-tenant reload independence (byte-identical pinned results
// for tenant B during tenant A's reload), per-tenant admission quotas
// (a hot tenant is throttled while others keep serving), counter
// reconciliation across tenants, the in-band NotFound contract for an
// unknown "kb" on both wire protocols, and the binary kUseKb handshake.
//
// The ReloadFaultTenant suite is the cross-tenant half of the reload
// fault-injection harness and runs leak-checked in the CI
// reload-fault-injection job (filter ReloadFault*): detach must drain —
// a pinned epoch is never torn down while a request holds it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/event_server.h"
#include "service/frame_codec.h"
#include "service/json_codec.h"
#include "service/service.h"
#include "service/tenant_registry.h"
#include "util/json.h"

#ifndef REMI_TESTDATA_DIR
#define REMI_TESTDATA_DIR "tests/data"
#endif

namespace remi {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(REMI_TESTDATA_DIR) + "/" + name;
}

/// A tiny KB whose IRIs all live under http://ex/<tag>/ — two tenants
/// built with different tags share no IRI, so a full-IRI target proves
/// which tenant served the request. Every entity carries one unique
/// marker atom (marks = Mark<i>), making {Entity<i>} trivially
/// describable and the mine fast.
KnowledgeBase BuildTaggedKb(const std::string& tag) {
  Dictionary dict;
  std::vector<Triple> triples;
  const TermId pred = dict.InternIri("http://ex/" + tag + "/marks");
  for (int i = 0; i < 12; ++i) {
    const TermId e =
        dict.InternIri("http://ex/" + tag + "/Entity" + std::to_string(i));
    const TermId m =
        dict.InternIri("http://ex/" + tag + "/Mark" + std::to_string(i));
    triples.push_back(Triple{e, pred, m});
  }
  KbOptions options;
  options.inverse_top_fraction = 0;
  return KnowledgeBase::Build(std::move(dict), std::move(triples), options);
}

/// The deadline/occupancy workload from service_test.cc: 2^p entities,
/// one per p-bit pattern; with the prunings disabled the DFS for the
/// all-ones entity visits all 2^p subsets — a long, cancellable search
/// for occupying admission slots deterministically.
KnowledgeBase BuildBitLatticeKb(int p) {
  Dictionary dict;
  std::vector<Triple> triples;
  std::vector<TermId> preds(static_cast<size_t>(p));
  std::vector<TermId> marks(static_cast<size_t>(p));
  for (int j = 0; j < p; ++j) {
    preds[static_cast<size_t>(j)] =
        dict.InternIri("http://ex/b" + std::to_string(j));
    marks[static_cast<size_t>(j)] =
        dict.InternIri("http://ex/m" + std::to_string(j));
  }
  const size_t n = size_t{1} << p;
  for (size_t i = 0; i < n; ++i) {
    const TermId e = dict.InternIri("http://ex/e" + std::to_string(i));
    for (int j = 0; j < p; ++j) {
      if (i >> j & 1) {
        triples.push_back(Triple{e, preds[static_cast<size_t>(j)],
                                 marks[static_cast<size_t>(j)]});
      }
    }
  }
  KbOptions options;
  options.inverse_top_fraction = 0;
  return KnowledgeBase::Build(std::move(dict), std::move(triples), options);
}

RemiOptions ExhaustiveMining() {
  RemiOptions mining;
  mining.depth_pruning = false;
  mining.side_pruning = false;
  mining.best_bound_pruning = false;
  return mining;
}

constexpr int kBitKbBits = 14;

std::string BitKbTopEntity() {
  return "http://ex/e" + std::to_string((size_t{1} << kBitKbBits) - 1);
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

MineRequest MineFor(const std::string& kb, const std::string& target) {
  MineRequest request;
  request.kb = kb;
  request.targets.names = {target};
  return request;
}

/// A slow cancellable batch that occupies one of `kb`'s slots.
BatchMineRequest SlowBatch(const std::string& kb,
                           const CancellationToken& cancel) {
  BatchMineRequest batch;
  batch.kb = kb;
  for (int i = 0; i < 256; ++i) {
    TargetSpec spec;
    spec.names = {BitKbTopEntity()};
    batch.target_sets.push_back(spec);
  }
  batch.control.cancel = cancel;
  return batch;
}

// --- lifecycle: attach / serve / detach -------------------------------------

TEST(TenantRegistryTest, AttachServeDetachLifecycle) {
  auto service = Service::Create(BuildTaggedKb("a"));
  EXPECT_TRUE(service->HasKb(""));
  EXPECT_FALSE(service->HasKb("b"));

  // The default name is reserved.
  EXPECT_TRUE(service->AttachKb("", BuildTaggedKb("x")).IsInvalidArgument());

  ASSERT_TRUE(service->AttachKb("b", BuildTaggedKb("b")).ok());
  EXPECT_EQ(service->AttachKb("b", BuildTaggedKb("b")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(service->counters().tenants_active, 2u);

  // Full IRIs prove the routing: http://ex/b/Entity3 exists only in "b".
  auto on_b = service->Mine(MineFor("b", "http://ex/b/Entity3"));
  ASSERT_TRUE(on_b.ok()) << on_b.status().ToString();
  EXPECT_TRUE(on_b->found);
  auto on_default = service->Mine(MineFor("", "http://ex/b/Entity3"));
  ASSERT_FALSE(on_default.ok());
  EXPECT_TRUE(on_default.status().IsNotFound());

  const std::vector<KbInfo> listed = service->ListKbs();
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0].name, "");  // default sorts first
  EXPECT_EQ(listed[1].name, "b");
  EXPECT_TRUE(listed[1].open);
  EXPECT_EQ(listed[1].generation, 1u);

  ASSERT_TRUE(service->DetachKb("b").ok());
  EXPECT_FALSE(service->HasKb("b"));
  auto gone = service->Mine(MineFor("b", "http://ex/b/Entity3"));
  ASSERT_FALSE(gone.ok());
  EXPECT_TRUE(gone.status().IsNotFound());
  EXPECT_TRUE(service->DetachKb("b").IsNotFound());
  EXPECT_TRUE(service->DetachKb("").IsInvalidArgument());
  EXPECT_EQ(service->counters().tenants_active, 1u);
}

TEST(TenantRegistryTest, UnknownKbIsNotFoundOnEveryRequestSurface) {
  auto service = Service::Create(BuildTaggedKb("a"));
  EXPECT_TRUE(service->Mine(MineFor("ghost", "Entity1")).status()
                  .IsNotFound());
  SummarizeRequest summarize;
  summarize.kb = "ghost";
  summarize.entity.names = {"Entity1"};
  EXPECT_TRUE(service->Summarize(summarize).status().IsNotFound());
  CandidatesRequest candidates;
  candidates.kb = "ghost";
  candidates.targets.names = {"Entity1"};
  EXPECT_TRUE(service->Candidates(candidates).status().IsNotFound());
  EXPECT_TRUE(service->CountersFor("ghost").status().IsNotFound());
  ReloadKbRequest reload;
  reload.kb = "ghost";
  reload.spec.path = TestDataPath("smoke.nt");
  EXPECT_TRUE(service->ReloadKb(reload).status.IsNotFound());
  EXPECT_EQ(service->counters().reloads_rejected, 1u);
}

// --- catalog: lazy opens ----------------------------------------------------

TEST(TenantRegistryTest, CatalogEntriesOpenLazilyAndFailAtomically) {
  KbSpec spec;
  spec.path = TestDataPath("smoke.nt");
  auto opened = Service::Open(spec);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  Service* service = opened->get();

  const std::string dir = ::testing::TempDir();
  const std::string catalog_path = dir + "/tenant_catalog.json";
  WriteFile(catalog_path,
            std::string("{\"kbs\":[{\"name\":\"lazy1\",\"path\":\"") +
                TestDataPath("smoke.nt") +
                "\"},{\"name\":\"lazy2\",\"path\":\"" +
                TestDataPath("smoke.nt") + "\",\"max_in_flight\":2}]}");
  auto registered = service->LoadCatalogFile(catalog_path);
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_EQ(*registered, 2u);

  // Registered, not opened: serveable by name but no tenant yet.
  EXPECT_TRUE(service->HasKb("lazy1"));
  EXPECT_EQ(service->counters().tenants_active, 1u);
  EXPECT_TRUE(service->CountersFor("lazy1").status().IsNotFound());
  const std::vector<KbInfo> listed = service->ListKbs();
  ASSERT_EQ(listed.size(), 3u);
  EXPECT_FALSE(listed[1].open);
  EXPECT_TRUE(listed[1].from_catalog);

  // First request opens it.
  auto mined = service->Mine(MineFor("lazy1", "Berlin"));
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_EQ(service->counters().tenants_active, 2u);
  auto slice = service->CountersFor("lazy1");
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->generation, 1u);
  EXPECT_EQ(slice->admitted, 1u);

  // A duplicate name anywhere in a catalog file registers NOTHING.
  const std::string dup_path = dir + "/tenant_catalog_dup.json";
  WriteFile(dup_path,
            std::string("{\"kbs\":[{\"name\":\"fresh\",\"path\":\"") +
                TestDataPath("smoke.nt") +
                "\"},{\"name\":\"lazy2\",\"path\":\"" +
                TestDataPath("smoke.nt") + "\"}]}");
  EXPECT_FALSE(service->LoadCatalogFile(dup_path).ok());
  EXPECT_FALSE(service->HasKb("fresh"));

  // A catalog entry whose load fails reports in-band and stays
  // registered, so a fixed file serves on retry without re-attaching.
  KbSpec broken;
  broken.path = dir + "/tenant_no_such_file.nt";
  ASSERT_TRUE(service->AddCatalogKb("broken", broken).ok());
  EXPECT_FALSE(service->Mine(MineFor("broken", "Berlin")).ok());
  EXPECT_TRUE(service->HasKb("broken"));
}

TEST(TenantRegistryTest, ParseKbCatalogValidatesEntries) {
  EXPECT_FALSE(ParseKbCatalog("not json").ok());
  EXPECT_FALSE(ParseKbCatalog("{\"kbs\":[{\"path\":\"x\"}]}").ok());
  EXPECT_FALSE(ParseKbCatalog("{\"kbs\":[{\"name\":\"a\"}]}").ok());
  EXPECT_FALSE(
      ParseKbCatalog("{\"kbs\":[{\"name\":\"\",\"path\":\"x\"}]}").ok());
  EXPECT_FALSE(ParseKbCatalog("{\"kbs\":[{\"name\":\"a\",\"path\":\"x\"},"
                              "{\"name\":\"a\",\"path\":\"y\"}]}")
                   .ok());
  auto parsed = ParseKbCatalog(
      "{\"kbs\":[{\"name\":\"a\",\"path\":\"x\",\"lenient\":false,"
      "\"max_in_flight\":3,\"max_queued\":9}]}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "a");
  EXPECT_FALSE((*parsed)[0].spec.lenient_parse);
  ASSERT_TRUE((*parsed)[0].quota.has_value());
  EXPECT_EQ((*parsed)[0].quota->max_in_flight, 3u);
  EXPECT_EQ((*parsed)[0].quota->max_queued, 9u);
}

// --- per-tenant reload ------------------------------------------------------

TEST(TenantRegistryTest, ReloadIsPerTenant) {
  auto service = Service::Create(BuildTaggedKb("a"));
  ASSERT_TRUE(service->AttachKb("b", BuildTaggedKb("b")).ok());

  auto baseline = service->Mine(MineFor("b", "http://ex/b/Entity3"));
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(baseline->found);

  // Swap the DEFAULT tenant to a different KB.
  const std::string path = ::testing::TempDir() + "/tenant_reload_a2.rkf2";
  WriteFile(path, BuildTaggedKb("a2").SerializeSnapshot());
  ReloadKbRequest reload;
  reload.spec.path = path;
  const ReloadKbResponse swapped = service->ReloadKb(reload);
  ASSERT_TRUE(swapped.status.ok()) << swapped.status.ToString();
  EXPECT_EQ(swapped.generation, 2u);
  EXPECT_EQ(service->generation(), 2u);

  // "b" was not touched: generation 1, byte-identical answers.
  auto b_slice = service->CountersFor("b");
  ASSERT_TRUE(b_slice.ok());
  EXPECT_EQ(b_slice->generation, 1u);
  auto again = service->Mine(MineFor("b", "http://ex/b/Entity3"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->expression_text, baseline->expression_text);
  EXPECT_EQ(again->cost, baseline->cost);

  // The default tenant really serves the new KB now.
  EXPECT_TRUE(service->Mine(MineFor("", "http://ex/a2/Entity3"))->found);
  EXPECT_TRUE(
      service->Mine(MineFor("", "http://ex/a/Entity3")).status().IsNotFound());

  // And a named reload swaps only that tenant.
  const std::string b2 = ::testing::TempDir() + "/tenant_reload_b2.rkf2";
  WriteFile(b2, BuildTaggedKb("b2").SerializeSnapshot());
  ReloadKbRequest named;
  named.kb = "b";
  named.spec.path = b2;
  ASSERT_TRUE(service->ReloadKb(named).status.ok());
  EXPECT_EQ(service->CountersFor("b")->generation, 2u);
  EXPECT_EQ(service->generation(), 2u);  // default untouched
  EXPECT_TRUE(service->Mine(MineFor("b", "http://ex/b2/Entity3"))->found);
}

// --- per-tenant quotas ------------------------------------------------------

TEST(TenantRegistryTest, QuotaThrottlesHotTenantWhileOthersServe) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 4;
  options.max_queued = 16;
  auto service = Service::Create(BuildTaggedKb("base"), options);
  TenantQuota quota;
  quota.max_in_flight = 1;
  quota.max_queued = 0;
  ASSERT_TRUE(
      service->AttachKb("hot", BuildBitLatticeKb(kBitKbBits), quota).ok());
  ASSERT_TRUE(service->AttachKb("cold", BuildTaggedKb("cold")).ok());

  // Occupy the hot tenant's single slot with a long cancellable batch.
  CancellationSource source;
  const BatchMineRequest slow = SlowBatch("hot", source.token());
  std::thread occupant([&] { (void)service->BatchMine(slow); });
  while (service->CountersFor("hot")->in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The global controller has 3 free slots, but the hot tenant's quota is
  // exhausted: its next request bounces without touching the shared
  // queue, and the error names the quota.
  auto rejected = service->Mine(MineFor("hot", BitKbTopEntity()));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted())
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().message().find("tenant quota"),
            std::string::npos)
      << rejected.status().message();

  // Everyone else keeps serving.
  auto cold = service->Mine(MineFor("cold", "http://ex/cold/Entity3"));
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->found);
  auto base = service->Mine(MineFor("", "http://ex/base/Entity3"));
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  // The reject is attributed to the hot tenant alone, globally and in
  // the per-tenant slice.
  EXPECT_EQ(service->CountersFor("hot")->rejected, 1u);
  EXPECT_EQ(service->CountersFor("cold")->rejected, 0u);
  EXPECT_EQ(service->counters().rejected, 1u);
  EXPECT_GT(service->RetryAfterMsHint("hot"), 0u);

  source.RequestCancellation();
  occupant.join();
}

TEST(TenantRegistryTest, CountersReconcileAcrossTenantsAtQuiescence) {
  auto service = Service::Create(BuildTaggedKb("a"));
  ASSERT_TRUE(service->AttachKb("x", BuildTaggedKb("x")).ok());
  ASSERT_TRUE(service->AttachKb("y", BuildTaggedKb("y")).ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service->Mine(MineFor("x", "http://ex/x/Entity1")).ok());
  }
  ASSERT_TRUE(service->Mine(MineFor("y", "http://ex/y/Entity2")).ok());
  ASSERT_TRUE(service->Mine(MineFor("", "http://ex/a/Entity3")).ok());
  // An admitted-but-invalid run (unresolvable target in y's KB) counts
  // as failed for y.
  EXPECT_FALSE(service->Mine(MineFor("y", "http://ex/x/Entity1")).ok());

  const ServiceCounters global = service->counters();
  TenantCounters sum;
  for (const char* name : {"", "x", "y"}) {
    auto slice = service->CountersFor(name);
    ASSERT_TRUE(slice.ok()) << name;
    // Per-tenant identity at quiescence.
    EXPECT_EQ(slice->admitted, slice->completed_ok +
                                   slice->deadline_exceeded +
                                   slice->cancelled + slice->failed)
        << name;
    sum.admitted += slice->admitted;
    sum.completed_ok += slice->completed_ok;
    sum.failed += slice->failed;
    sum.rejected += slice->rejected;
    sum.nodes_visited_total += slice->nodes_visited_total;
    sum.mine_micros_total += slice->mine_micros_total;
  }
  // The per-tenant slices sum exactly to the service-wide counters.
  EXPECT_EQ(sum.admitted, global.admitted);
  EXPECT_EQ(sum.completed_ok, global.completed_ok);
  EXPECT_EQ(sum.failed, global.failed);
  EXPECT_EQ(sum.rejected, global.rejected);
  EXPECT_EQ(sum.nodes_visited_total, global.nodes_visited_total);
  EXPECT_EQ(sum.mine_micros_total, global.mine_micros_total);
  // One live epoch per open tenant once everything drained.
  EXPECT_EQ(global.active_generations, global.tenants_active);
  EXPECT_EQ(global.tenants_active, 3u);
}

// --- wire protocols ---------------------------------------------------------

/// A blocking client over one TCP connection, usable for both wire modes
/// (same shape as event_server_test.cc's client).
class WireClient {
 public:
  explicit WireClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
              0);
  }
  ~WireClient() {
    if (fd_ >= 0) close(fd_);
  }

  void SendRaw(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  void SendLine(const std::string& request) { SendRaw(request + "\n"); }

  void SendFrame(FrameVerb verb, uint64_t request_id,
                 const std::string& payload) {
    std::string wire;
    AppendFrame(static_cast<uint8_t>(verb), request_id, payload, &wire);
    SendRaw(wire);
  }

  std::string ReadLine() {
    std::string line;
    char c = 0;
    while (recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    ADD_FAILURE() << "connection closed before a full response line";
    return line;
  }

  bool ReadFrame(uint8_t* verb, uint64_t* request_id, std::string* payload) {
    char chunk[4096];
    for (;;) {
      FrameView frame;
      const auto result = decoder_.Next(&frame);
      if (result == FrameDecoder::Result::kFrame) {
        *verb = frame.verb;
        *request_id = frame.request_id;
        payload->assign(frame.payload.data(), frame.payload.size());
        return true;
      }
      if (result == FrameDecoder::Result::kError) return false;
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      decoder_.Feed(std::string_view(chunk, static_cast<size_t>(n)));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_{64u << 20};
};

class TenantRegistryWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    KbSpec spec;
    spec.path = TestDataPath("smoke.nt");
    auto service = Service::Open(spec);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    service_ = std::move(*service);
    ASSERT_TRUE(service_->AttachKb("alt", BuildTaggedKb("alt")).ok());
    server_ = std::make_unique<EventServer>(service_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  JsonValue Parse(const std::string& doc) {
    auto parsed = ParseJson(doc);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << ": " << doc;
    return parsed.ok() ? *parsed : JsonValue();
  }

  /// One frame round trip (requests and responses matched by id here,
  /// so a fixed id per call is fine on a fresh client).
  std::string Frame(WireClient* client, FrameVerb verb,
                    const std::string& payload, uint64_t id = 1) {
    client->SendFrame(verb, id, payload);
    uint8_t response_verb = 0;
    uint64_t response_id = 0;
    std::string response;
    EXPECT_TRUE(
        client->ReadFrame(&response_verb, &response_id, &response));
    EXPECT_EQ(response_id, id);
    return response;
  }

  std::unique_ptr<Service> service_;
  std::unique_ptr<EventServer> server_;
};

TEST_F(TenantRegistryWireTest, UnknownKbIsNotFoundInBandOnBothProtocols) {
  // NDJSON: the error is a response, not a dropped connection.
  WireClient ndjson(server_->port());
  ndjson.SendLine(R"({"op":"mine","kb":"ghost","targets":["Berlin"]})");
  JsonValue line = Parse(ndjson.ReadLine());
  EXPECT_EQ(line.Find("status")->AsString(), "NotFound");
  ndjson.SendLine(R"({"op":"ping"})");
  EXPECT_EQ(Parse(ndjson.ReadLine()).Find("status")->AsString(), "OK");

  // Binary: same in-band contract, connection survives.
  WireClient binary(server_->port());
  JsonValue frame = Parse(Frame(
      &binary, FrameVerb::kMine,
      R"({"kb":"ghost","targets":["Berlin"]})", 7));
  EXPECT_EQ(frame.Find("status")->AsString(), "NotFound");
  EXPECT_EQ(Parse(Frame(&binary, FrameVerb::kPing, "{}", 8))
                .Find("status")
                ->AsString(),
            "OK");
}

TEST_F(TenantRegistryWireTest, PerRequestKbRoutesBothProtocols) {
  WireClient ndjson(server_->port());
  ndjson.SendLine(
      R"({"op":"mine","kb":"alt","targets":["http://ex/alt/Entity3"]})");
  JsonValue line = Parse(ndjson.ReadLine());
  EXPECT_EQ(line.Find("status")->AsString(), "OK");
  EXPECT_TRUE(line.Find("found")->AsBool());

  WireClient binary(server_->port());
  JsonValue frame = Parse(Frame(
      &binary, FrameVerb::kMine,
      R"({"kb":"alt","targets":["http://ex/alt/Entity3"]})"));
  EXPECT_EQ(frame.Find("status")->AsString(), "OK");
  EXPECT_TRUE(frame.Find("found")->AsBool());

  // Per-tenant stats slice via the "kb" field.
  JsonValue slice =
      Parse(Frame(&binary, FrameVerb::kCounters, R"({"kb":"alt"})", 2));
  EXPECT_EQ(slice.Find("kb")->AsString(), "alt");
  EXPECT_EQ(slice.Find("admitted")->AsNumber(), 2.0);
  // The service-wide document carries the registry gauges + breakdown.
  JsonValue global = Parse(Frame(&binary, FrameVerb::kCounters, "{}", 3));
  EXPECT_EQ(global.Find("tenants_active")->AsNumber(), 2.0);
  ASSERT_NE(global.Find("tenants"), nullptr);
  EXPECT_NE(global.Find("tenants")->Find("alt"), nullptr);
}

TEST_F(TenantRegistryWireTest, UseKbHandshakeSetsTheConnectionDefault) {
  WireClient client(server_->port());
  JsonValue ok =
      Parse(Frame(&client, FrameVerb::kUseKb, R"({"kb":"alt"})", 1));
  EXPECT_EQ(ok.Find("status")->AsString(), "OK");
  EXPECT_EQ(ok.Find("kb")->AsString(), "alt");

  // Frames without a "kb" now serve from "alt".
  JsonValue mined = Parse(Frame(
      &client, FrameVerb::kMine, R"({"targets":["http://ex/alt/Entity3"]})",
      2));
  EXPECT_EQ(mined.Find("status")->AsString(), "OK");
  EXPECT_TRUE(mined.Find("found")->AsBool());
  JsonValue stats = Parse(Frame(&client, FrameVerb::kCounters, "{}", 3));
  EXPECT_EQ(stats.Find("kb")->AsString(), "alt");

  // An explicit "kb" — including "" — overrides the handshake default.
  JsonValue overridden = Parse(Frame(
      &client, FrameVerb::kMine, R"({"kb":"","targets":["Berlin"]})", 4));
  EXPECT_EQ(overridden.Find("status")->AsString(), "OK");

  // A failed handshake leaves the previous default in place.
  JsonValue bad =
      Parse(Frame(&client, FrameVerb::kUseKb, R"({"kb":"ghost"})", 5));
  EXPECT_EQ(bad.Find("status")->AsString(), "NotFound");
  EXPECT_EQ(Parse(Frame(&client, FrameVerb::kCounters, "{}", 6))
                .Find("kb")
                ->AsString(),
            "alt");

  // use_kb {""} resets to the default tenant (service-wide stats again).
  Parse(Frame(&client, FrameVerb::kUseKb, R"({"kb":""})", 7));
  JsonValue global = Parse(Frame(&client, FrameVerb::kCounters, "{}", 8));
  EXPECT_EQ(global.Find("kb"), nullptr);
  EXPECT_NE(global.Find("tenants_active"), nullptr);

  // NDJSON has no handshake: the op is rejected with a pointer to the
  // per-request field.
  WireClient ndjson(server_->port());
  ndjson.SendLine(R"({"op":"use_kb","kb":"alt"})");
  EXPECT_EQ(Parse(ndjson.ReadLine()).Find("status")->AsString(),
            "InvalidArgument");
}

TEST_F(TenantRegistryWireTest, AdminVerbsAttachListDetach) {
  const std::string path = ::testing::TempDir() + "/tenant_wire_w.rkf2";
  WriteFile(path, BuildTaggedKb("w").SerializeSnapshot());

  WireClient client(server_->port());
  client.SendLine(std::string("{\"op\":\"attach\",\"kb\":\"w\",\"path\":\"") +
                  path + "\",\"max_in_flight\":2}");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "OK");

  client.SendLine(R"({"op":"list_kbs"})");
  JsonValue listed = Parse(client.ReadLine());
  ASSERT_NE(listed.Find("kbs"), nullptr);
  size_t found_w = 0;
  for (const JsonValue& item : listed.Find("kbs")->items()) {
    if (item.Find("kb")->AsString() == "w") {
      ++found_w;
      EXPECT_TRUE(item.Find("open")->AsBool());
      EXPECT_EQ(item.Find("max_in_flight")->AsNumber(), 2.0);
    }
  }
  EXPECT_EQ(found_w, 1u);

  client.SendLine(
      R"({"op":"mine","kb":"w","targets":["http://ex/w/Entity5"]})");
  EXPECT_TRUE(Parse(client.ReadLine()).Find("found")->AsBool());

  // Error taxonomy over the wire: duplicate attach, reserved name,
  // unknown detach.
  client.SendLine(std::string("{\"op\":\"attach\",\"kb\":\"w\",\"path\":\"") +
                  path + "\"}");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(),
            "AlreadyExists");
  client.SendLine(std::string("{\"op\":\"attach\",\"kb\":\"\",\"path\":\"") +
                  path + "\"}");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(),
            "InvalidArgument");
  client.SendLine(R"({"op":"detach","kb":"ghost"})");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "NotFound");

  client.SendLine(R"({"op":"detach","kb":"w"})");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "OK");
  client.SendLine(
      R"({"op":"mine","kb":"w","targets":["http://ex/w/Entity5"]})");
  EXPECT_EQ(Parse(client.ReadLine()).Find("status")->AsString(), "NotFound");
}

// --- cross-tenant fault/drain harness (CI: reload-fault-injection job) ------

TEST(ReloadFaultTenantTest, DetachUnderPinDrainsWithoutTeardown) {
  ServiceOptions options;
  options.mining = ExhaustiveMining();
  options.max_in_flight = 4;
  auto service = Service::Create(BuildTaggedKb("base"), options);
  ASSERT_TRUE(
      service->AttachKb("pin", BuildBitLatticeKb(kBitKbBits)).ok());

  // A long cancellable batch pins the tenant's epoch.
  CancellationSource source;
  const BatchMineRequest slow = SlowBatch("pin", source.token());
  std::atomic<bool> occupant_failed{false};
  std::thread occupant([&] {
    auto response = service->BatchMine(slow);
    // The request was admitted before the detach: it must complete
    // in-band (Cancelled when we fire the token), never fail out.
    if (!response.ok()) occupant_failed.store(true);
  });
  while (service->CountersFor("pin").ok() &&
         service->CountersFor("pin")->in_flight == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Detach unmaps the name immediately...
  ASSERT_TRUE(service->DetachKb("pin").ok());
  EXPECT_FALSE(service->HasKb("pin"));
  EXPECT_TRUE(
      service->Mine(MineFor("pin", BitKbTopEntity())).status().IsNotFound());
  EXPECT_EQ(service->counters().tenants_active, 1u);
  // ...but the pinned epoch survives until the request completes.
  EXPECT_GE(service->counters().active_generations, 2u);

  source.RequestCancellation();
  occupant.join();
  EXPECT_FALSE(occupant_failed.load());

  // Drained: the detached tenant's epoch chain is gone (leak-checked —
  // this test runs under ASan in the reload-fault-injection job).
  EXPECT_EQ(service->counters().active_generations,
            service->counters().tenants_active);
  EXPECT_EQ(service->counters().tenants_active, 1u);
}

TEST(ReloadFaultTenantTest, CrossTenantHammerKeepsTenantsIsolated) {
  auto service = Service::Create(BuildTaggedKb("d"), [] {
    ServiceOptions options;
    options.max_in_flight = 8;
    return options;
  }());
  for (const char* name : {"t0", "t1", "t2"}) {
    ASSERT_TRUE(service->AttachKb(name, BuildTaggedKb(name)).ok());
  }
  const std::string reload_path =
      ::testing::TempDir() + "/tenant_hammer_t0.rkf2";
  WriteFile(reload_path, BuildTaggedKb("t0").SerializeSnapshot());

  // Per-tenant baselines (the byte-identity reference).
  std::map<std::string, MineResponse> baselines;
  for (const std::string name : {"d", "t0", "t1", "t2"}) {
    const std::string kb = name == "d" ? "" : name;
    auto response =
        service->Mine(MineFor(kb, "http://ex/" + name + "/Entity7"));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_TRUE(response->found);
    baselines[kb] = *response;
  }

  constexpr int kMinesPerThread = 40;
  constexpr int kReloads = 8;
  std::atomic<size_t> dropped{0};
  std::atomic<size_t> divergent{0};
  std::atomic<bool> t2_detached{false};
  std::vector<std::thread> threads;

  // Two miners per tenant, each comparing against its tenant's baseline.
  for (const std::string name : {"d", "t0", "t1", "t2"}) {
    const std::string kb = name == "d" ? "" : name;
    const std::string target = "http://ex/" + name + "/Entity7";
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, kb, target] {
        for (int i = 0; i < kMinesPerThread; ++i) {
          auto response = service->Mine(MineFor(kb, target));
          if (!response.ok()) {
            // The only legal failure: t2 resolved after its detach. The
            // flag is set BEFORE DetachKb, so any NotFound implies it.
            if (!(kb == "t2" && response.status().IsNotFound() &&
                  t2_detached.load())) {
              dropped.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          if (!response->found ||
              response->expression_text !=
                  baselines[kb].expression_text ||
              response->cost != baselines[kb].cost) {
            divergent.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }
  // One reloader hammers t0 with good snapshots: its miners must stay
  // byte-identical across every generation, and t1/t2/default must
  // never notice.
  threads.emplace_back([&] {
    for (int i = 0; i < kReloads; ++i) {
      ReloadKbRequest reload;
      reload.kb = "t0";
      reload.spec.path = reload_path;
      if (!service->ReloadKb(reload).status.ok()) {
        dropped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // One detacher removes t2 mid-storm; in-flight pins drain, the name
  // vanishes immediately.
  threads.emplace_back([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t2_detached.store(true);
    if (!service->DetachKb("t2").ok()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(dropped.load(), 0u);
  EXPECT_EQ(divergent.load(), 0u);

  // Quiescence: t1 and the default never reloaded (generation 1), t0 is
  // at 1 + kReloads, t2 is gone, and every tenant's counter identity
  // holds. No epoch outlived its last pin (ASan-leak-checked).
  const ServiceCounters global = service->counters();
  EXPECT_EQ(global.tenants_active, 3u);
  EXPECT_EQ(global.active_generations, global.tenants_active);
  EXPECT_EQ(global.admitted, global.completed_ok +
                                 global.deadline_exceeded +
                                 global.cancelled + global.failed);
  EXPECT_EQ(service->CountersFor("t0")->generation,
            1u + static_cast<uint64_t>(kReloads));
  EXPECT_EQ(service->CountersFor("t1")->generation, 1u);
  EXPECT_TRUE(service->CountersFor("t2").status().IsNotFound());
  for (const char* kb : {"", "t0", "t1"}) {
    auto slice = service->CountersFor(kb);
    ASSERT_TRUE(slice.ok());
    EXPECT_EQ(slice->admitted, slice->completed_ok +
                                   slice->deadline_exceeded +
                                   slice->cancelled + slice->failed)
        << "tenant '" << kb << "'";
  }
}

}  // namespace
}  // namespace remi
