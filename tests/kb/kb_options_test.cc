// KbOptions behaviours: custom schema predicates (Wikidata-style IRIs)
// and inverse-materialization fractions.

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "rdf/dictionary.h"

namespace remi {
namespace {

// A Wikidata-flavoured mini KB: P31 = instance-of, custom label property.
constexpr const char* kInstanceOf =
    "http://www.wikidata.org/prop/direct/P31";
constexpr const char* kWdLabel = "http://schema.org/name";

KnowledgeBase BuildWikidataStyleKb(double inverse_fraction) {
  Dictionary dict;
  std::vector<Triple> triples;
  const auto iri = [&dict](const std::string& local) {
    return dict.InternIri("http://www.wikidata.org/entity/" + local);
  };
  const TermId p31 = dict.InternIri(kInstanceOf);
  const TermId name = dict.InternIri(kWdLabel);
  const TermId p361 =
      dict.InternIri("http://www.wikidata.org/prop/direct/P361");
  const TermId q_paris = iri("Q90");
  const TermId q_france = iri("Q142");
  const TermId q_city = iri("Q515");
  triples.push_back({q_paris, p31, q_city});
  triples.push_back({q_paris, p361, q_france});
  triples.push_back({q_paris, name,
                     dict.Intern(TermKind::kLiteral, "\"Paris\"@fr")});
  triples.push_back({iri("Q456"), p31, q_city});   // Lyon
  triples.push_back({iri("Q456"), p361, q_france});

  KbOptions options;
  options.type_predicate_iri = kInstanceOf;
  options.label_predicate_iri = kWdLabel;
  options.inverse_top_fraction = inverse_fraction;
  return KnowledgeBase::Build(std::move(dict), std::move(triples), options);
}

TEST(KbOptionsTest, CustomTypePredicateDrivesClassIndex) {
  KnowledgeBase kb = BuildWikidataStyleKb(0.0);
  auto city = kb.dict().Lookup(TermKind::kIri,
                               "http://www.wikidata.org/entity/Q515");
  ASSERT_TRUE(city.ok());
  EXPECT_EQ(kb.EntitiesOfClass(*city).size(), 2u);
  EXPECT_EQ(kb.classes().size(), 1u);
}

TEST(KbOptionsTest, CustomLabelPredicateDrivesLabels) {
  KnowledgeBase kb = BuildWikidataStyleKb(0.0);
  auto paris = kb.dict().Lookup(TermKind::kIri,
                                "http://www.wikidata.org/entity/Q90");
  ASSERT_TRUE(paris.ok());
  EXPECT_EQ(kb.Label(*paris), "Paris");
}

TEST(KbOptionsTest, LabelFallsBackToQidLocalName) {
  KnowledgeBase kb = BuildWikidataStyleKb(0.0);
  auto lyon = kb.dict().Lookup(TermKind::kIri,
                               "http://www.wikidata.org/entity/Q456");
  ASSERT_TRUE(lyon.ok());
  EXPECT_EQ(kb.Label(*lyon), "Q456");
}

TEST(KbOptionsTest, ZeroFractionDisablesInverses) {
  KnowledgeBase kb = BuildWikidataStyleKb(0.0);
  EXPECT_EQ(kb.NumFacts(), kb.NumBaseFacts());
}

TEST(KbOptionsTest, FullFractionMaterializesAllEntityObjects) {
  KnowledgeBase kb = BuildWikidataStyleKb(1.0);
  // All non-type/label facts with entity objects get inverses: the two
  // P361 facts (P31 never gets an inverse).
  EXPECT_EQ(kb.NumFacts(), kb.NumBaseFacts() + 2);
  auto p361 = kb.dict().Lookup(TermKind::kIri,
                               "http://www.wikidata.org/prop/direct/P361");
  ASSERT_TRUE(p361.ok());
  EXPECT_NE(kb.InverseOf(*p361), kNullTerm);
}

TEST(KbOptionsTest, LiteralObjectsNeverGetInverseFacts) {
  KnowledgeBase kb = BuildWikidataStyleKb(1.0);
  // The schema.org/name literal fact must not be inverted (p⁻¹ is only
  // defined for o ∈ I ∪ B).
  for (const Triple& t : kb.store().spo()) {
    if (kb.IsInversePredicate(t.p)) {
      EXPECT_NE(kb.dict().kind(t.s), TermKind::kLiteral);
    }
  }
}

}  // namespace
}  // namespace remi
