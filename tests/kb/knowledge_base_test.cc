#include "kb/knowledge_base.h"

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/kb_builder.h"

namespace remi {
namespace {

// A tiny hand-built KB:
//   a --likes--> b   (x3 objects: b, c, d)
//   everyone likes d (d is the hub)
KnowledgeBase MakeTinyKb(double inverse_fraction = 0.34) {
  KbBuilder b;
  b.Fact("a", "likes", "b");
  b.Fact("a", "likes", "c");
  b.Fact("a", "likes", "d");
  b.Fact("b", "likes", "d");
  b.Fact("c", "likes", "d");
  b.Fact("e", "knows", "d");
  b.Type("a", "Person");
  b.Type("b", "Person");
  b.Type("c", "Robot");
  b.Label("a", "Alice");
  KbOptions options;
  options.inverse_top_fraction = inverse_fraction;
  return std::move(b).Build(options);
}

TEST(KnowledgeBaseTest, CountsBaseAndTotalFacts) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  EXPECT_EQ(kb.NumBaseFacts(), 10u);
  EXPECT_EQ(kb.NumFacts(), 10u);  // no inverses materialized
}

TEST(KnowledgeBaseTest, EntityFrequencyCountsSubjectAndObjectMentions) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  auto d = FindEntity(kb, "d");
  ASSERT_TRUE(d.ok());
  // d: object of 4 facts, subject of none.
  EXPECT_EQ(kb.EntityFrequency(*d), 4u);
  auto a = FindEntity(kb, "a");
  ASSERT_TRUE(a.ok());
  // a: subject of 3 likes + 1 type + 1 label.
  EXPECT_EQ(kb.EntityFrequency(*a), 5u);
}

TEST(KnowledgeBaseTest, PredicatesAreNotEntities) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  auto likes = kb.dict().Lookup(TermKind::kIri, "http://remi.example/likes");
  ASSERT_TRUE(likes.ok());
  EXPECT_TRUE(kb.IsPredicateTerm(*likes));
  EXPECT_FALSE(kb.IsEntity(*likes));
  auto d = FindEntity(kb, "d");
  EXPECT_TRUE(kb.IsEntity(*d));
}

TEST(KnowledgeBaseTest, ProminenceRankingIsDescendingByFrequency) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  const auto& order = kb.EntitiesByProminence();
  ASSERT_GT(order.size(), 2u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(kb.EntityFrequency(order[i - 1]),
              kb.EntityFrequency(order[i]));
  }
  EXPECT_EQ(kb.EntityProminenceRank(order[0]), 1u);
}

TEST(KnowledgeBaseTest, TopProminentEntityRespectsFraction) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  const auto& order = kb.EntitiesByProminence();
  EXPECT_TRUE(kb.IsTopProminentEntity(order[0], 0.05));
  EXPECT_FALSE(kb.IsTopProminentEntity(order.back(), 0.05));
  // Rank 0 (unknown term) is never prominent.
  EXPECT_FALSE(kb.IsTopProminentEntity(kNullTerm, 0.5));
}

TEST(KnowledgeBaseTest, InverseMaterializationForTopObjects) {
  // 34% of ~10 entities: the top hub d gets inverse facts.
  KnowledgeBase kb = MakeTinyKb(0.34);
  EXPECT_GT(kb.NumFacts(), kb.NumBaseFacts());
  auto likes = kb.dict().Lookup(TermKind::kIri, "http://remi.example/likes");
  ASSERT_TRUE(likes.ok());
  const TermId inv = kb.InverseOf(*likes);
  ASSERT_NE(inv, kNullTerm);
  EXPECT_TRUE(kb.IsInversePredicate(inv));
  EXPECT_FALSE(kb.IsInversePredicate(*likes));
  EXPECT_EQ(kb.BasePredicateOf(inv), *likes);
  EXPECT_EQ(kb.InverseOf(inv), *likes);

  // likes⁻¹(d, a) must exist because likes(a, d) exists and d is top.
  auto a = FindEntity(kb, "a");
  auto d = FindEntity(kb, "d");
  EXPECT_TRUE(kb.store().Contains(*d, inv, *a));
}

TEST(KnowledgeBaseTest, InversesAreNotMaterializedForRareObjects) {
  // Top 30% of 7 entities = {a (freq 5), d (freq 4)}; b stays out.
  KnowledgeBase kb = MakeTinyKb(0.3);
  auto likes = kb.dict().Lookup(TermKind::kIri, "http://remi.example/likes");
  const TermId inv = kb.InverseOf(*likes);
  ASSERT_NE(inv, kNullTerm);
  auto a = FindEntity(kb, "a");
  auto b = FindEntity(kb, "b");
  auto d = FindEntity(kb, "d");
  EXPECT_TRUE(kb.store().Contains(*d, inv, *a));
  // likes(a, b) exists but b is not in the top 30%, so no inverse fact.
  EXPECT_FALSE(kb.store().Contains(*b, inv, *a));
}

TEST(KnowledgeBaseTest, TypeAndLabelPredicatesGetNoInverses) {
  KnowledgeBase kb = MakeTinyKb(1.0);  // everything is "top"
  EXPECT_EQ(kb.InverseOf(kb.type_predicate()), kNullTerm);
  EXPECT_EQ(kb.InverseOf(kb.label_predicate()), kNullTerm);
}

TEST(KnowledgeBaseTest, ClassIndex) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  auto person = FindEntity(kb, "Person");
  ASSERT_TRUE(person.ok());
  const auto members = kb.EntitiesOfClass(*person);
  EXPECT_EQ(members.size(), 2u);
  auto a = FindEntity(kb, "a");
  EXPECT_EQ(kb.ClassesOf(*a), std::vector<TermId>{*person});
  EXPECT_TRUE(kb.ClassesOf(*FindEntity(kb, "d")).empty());
  EXPECT_EQ(kb.classes().size(), 2u);
}

TEST(KnowledgeBaseTest, LabelPrefersRdfsLabel) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  auto a = FindEntity(kb, "a");
  EXPECT_EQ(kb.Label(*a), "Alice");
}

TEST(KnowledgeBaseTest, LabelFallsBackToLocalName) {
  KnowledgeBase kb = MakeTinyKb(0.0);
  auto b = FindEntity(kb, "b");
  EXPECT_EQ(kb.Label(*b), "b");
}

TEST(KnowledgeBaseTest, CuratedKbSmoke) {
  KnowledgeBase kb = BuildCuratedKb();
  EXPECT_GT(kb.NumBaseFacts(), 400u);
  EXPECT_GT(kb.NumFacts(), kb.NumBaseFacts());  // inverses materialized
  EXPECT_GT(kb.NumEntities(), 100u);

  auto paris = FindEntity(kb, "Paris");
  ASSERT_TRUE(paris.ok());
  EXPECT_EQ(kb.Label(*paris), "Paris");
  // Paris is one of the most frequent entities of the curated world.
  EXPECT_TRUE(kb.IsTopProminentEntity(*paris, 0.2));

  auto city = FindEntity(kb, "City");
  ASSERT_TRUE(city.ok());
  EXPECT_GE(kb.EntitiesOfClass(*city).size(), 30u);
}

TEST(KnowledgeBaseTest, CuratedKbHasPaperFacts) {
  KnowledgeBase kb = BuildCuratedKb();
  const auto id = [&](const char* name) { return *FindEntity(kb, name); };
  const auto pred = [&](const char* name) {
    return *kb.dict().Lookup(TermKind::kIri,
                             std::string("http://remi.example/") + name);
  };
  EXPECT_TRUE(kb.store().Contains(id("Paris"), pred("capitalOf"),
                                  id("France")));
  EXPECT_TRUE(kb.store().Contains(id("Paris"), pred("capitalOf"),
                                  id("Kingdom_of_France")));
  EXPECT_TRUE(kb.store().Contains(id("Johann_J_Mueller"),
                                  pred("supervisorOf"), id("Alfred_Kleiner")));
  EXPECT_TRUE(kb.store().Contains(id("Alfred_Kleiner"), pred("supervisorOf"),
                                  id("Albert_Einstein")));
  EXPECT_TRUE(kb.store().Contains(id("Rennes"), pred("belongedTo"),
                                  id("Brittany")));
  EXPECT_TRUE(kb.store().Contains(id("Marie_Curie"), pred("diedOf"),
                                  id("Aplastic_Anemia")));
}

}  // namespace
}  // namespace remi
