// Round-trip property tests for RKF2 KB snapshots: Build -> snapshot ->
// OpenSnapshot must agree with the original KB on every statistic, index,
// and — the acceptance bar — on the exact expressions the miner returns.

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "util/io_hooks.h"
#include "kbgen/synthetic.h"
#include "kbgen/workload.h"
#include "rdf/rkf2.h"
#include "remi/remi.h"
#include "util/random.h"
#include "util/varint.h"

namespace remi {
namespace {

SyntheticKbConfig SmallConfig(uint64_t seed) {
  SyntheticKbConfig config;
  config.seed = seed;
  config.num_entities = 300;
  config.num_predicates = 24;
  config.num_classes = 8;
  config.num_facts = 2500;
  return config;
}

void ExpectKbsEqual(const KnowledgeBase& a, const KnowledgeBase& b) {
  ASSERT_EQ(a.NumFacts(), b.NumFacts());
  ASSERT_EQ(a.NumBaseFacts(), b.NumBaseFacts());
  ASSERT_EQ(a.NumEntities(), b.NumEntities());
  ASSERT_EQ(a.NumPredicates(), b.NumPredicates());
  ASSERT_EQ(a.dict().size(), b.dict().size());
  EXPECT_EQ(a.type_predicate(), b.type_predicate());
  EXPECT_EQ(a.label_predicate(), b.label_predicate());
  EXPECT_EQ(a.options().inverse_top_fraction,
            b.options().inverse_top_fraction);

  for (TermId id = 0; id < a.dict().size(); ++id) {
    ASSERT_EQ(a.dict().kind(id), b.dict().kind(id)) << "term " << id;
    ASSERT_EQ(a.dict().lexical(id), b.dict().lexical(id)) << "term " << id;
  }

  // Prominence ranking and frequencies.
  const auto prom_a = a.EntitiesByProminence();
  const auto prom_b = b.EntitiesByProminence();
  ASSERT_TRUE(std::equal(prom_a.begin(), prom_a.end(), prom_b.begin(),
                         prom_b.end()));
  for (const TermId e : prom_a) {
    ASSERT_EQ(a.EntityFrequency(e), b.EntityFrequency(e)) << "entity " << e;
    ASSERT_EQ(a.EntityProminenceRank(e), b.EntityProminenceRank(e));
  }

  // Inverse-predicate map, both directions.
  for (const TermId p : a.store().predicates()) {
    EXPECT_EQ(a.InverseOf(p), b.InverseOf(p)) << "predicate " << p;
    EXPECT_EQ(a.BasePredicateOf(p), b.BasePredicateOf(p));
    EXPECT_EQ(a.IsInversePredicate(p), b.IsInversePredicate(p));
  }

  // Class index.
  ASSERT_EQ(a.classes(), b.classes());
  for (const TermId cls : a.classes()) {
    const auto ma = a.EntitiesOfClass(cls);
    const auto mb = b.EntitiesOfClass(cls);
    ASSERT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin(), mb.end()))
        << "class " << cls;
  }

  // Store adjacency on a sample of subjects and predicates.
  ASSERT_EQ(a.store().subjects(), b.store().subjects());
  for (size_t i = 0; i < a.store().subjects().size(); i += 7) {
    const TermId s = a.store().subjects()[i];
    const auto fa = a.store().BySubject(s);
    const auto fb = b.store().BySubject(s);
    ASSERT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin(), fb.end()))
        << "subject " << s;
  }
  for (const TermId p : a.store().predicates()) {
    ASSERT_EQ(a.store().CountPredicate(p), b.store().CountPredicate(p));
    const auto da = a.store().DistinctSubjectsOf(p);
    const auto db = b.store().DistinctSubjectsOf(p);
    ASSERT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
  }
}

class SnapshotRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRoundTripTest, BufferRoundTripPreservesEverything) {
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(GetParam()));
  const std::string image = kb.SerializeSnapshot();
  auto opened = KnowledgeBase::OpenSnapshotBuffer(image);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectKbsEqual(kb, *opened);
}

TEST_P(SnapshotRoundTripTest, ReserializationIsByteIdentical) {
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(GetParam()));
  const std::string image = kb.SerializeSnapshot();
  auto opened = KnowledgeBase::OpenSnapshotBuffer(image);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // A view-mode KB must re-serialize to the exact same bytes, so the
  // on-disk format cannot drift through save/open/save cycles.
  EXPECT_EQ(opened->SerializeSnapshot(), image);
}

TEST_P(SnapshotRoundTripTest, MinerReturnsIdenticalExpressions) {
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(GetParam()));
  auto opened = KnowledgeBase::OpenSnapshotBuffer(kb.SerializeSnapshot());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  const auto classes = LargestClasses(kb, 4);
  ASSERT_FALSE(classes.empty());
  Rng rng(GetParam() * 977 + 5);
  WorkloadConfig wconfig;
  wconfig.num_sets = 8;
  const auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  ASSERT_FALSE(sets.empty());

  RemiMiner miner_a(&kb);
  RemiMiner miner_b(&*opened);
  for (const TargetSet& set : sets) {
    auto ra = miner_a.MineRe(set.entities);
    auto rb = miner_b.MineRe(set.entities);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    EXPECT_EQ(ra->found, rb->found);
    EXPECT_EQ(ra->cost, rb->cost);
    EXPECT_EQ(ra->expression.ToString(kb.dict()),
              rb->expression.ToString(opened->dict()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundTripTest,
                         ::testing::Values(3, 17, 2026));

TEST(SnapshotTest, FileRoundTripViaMmap) {
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(11));
  const std::string path = ::testing::TempDir() + "/roundtrip.rkf2";
  ASSERT_TRUE(kb.SaveSnapshot(path).ok());
  auto opened = KnowledgeBase::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExpectKbsEqual(kb, *opened);
}

TEST(SnapshotTest, EmptyKbRoundTrips) {
  const KnowledgeBase kb = KnowledgeBase::Build(Dictionary(), {});
  auto opened = KnowledgeBase::OpenSnapshotBuffer(kb.SerializeSnapshot());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->NumFacts(), 0u);
  EXPECT_EQ(opened->NumEntities(), 0u);
  // type/label predicates are interned even in an empty KB.
  EXPECT_EQ(opened->dict().size(), kb.dict().size());
}

TEST(SnapshotTest, ViewDictionarySupportsLookupAndIntern) {
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(29));
  auto opened = KnowledgeBase::OpenSnapshotBuffer(kb.SerializeSnapshot());
  ASSERT_TRUE(opened.ok());
  // Lookup lazily builds the reverse index over the view.
  const TermId probe = opened->EntitiesByProminence()[0];
  auto found = opened->dict().Lookup(opened->dict().kind(probe),
                                     opened->dict().lexical(probe));
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, probe);
  // Interning an existing term returns its id; a new term appends.
  Dictionary dict = opened->dict();  // copy keeps the view base
  EXPECT_EQ(dict.Intern(dict.kind(probe), dict.lexical(probe)), probe);
  const TermId fresh = dict.InternIri("http://snapshot.test/NewTerm");
  EXPECT_EQ(fresh, dict.size() - 1);
  EXPECT_EQ(dict.lexical(fresh), "http://snapshot.test/NewTerm");
}

TEST(SnapshotTest, OverflowingMetaCountIsCorruption) {
  // Regression: a triples count of true_count + 2^62 makes
  // count * sizeof(Triple) wrap back to the true byte length, so an
  // unguarded multiply-based length check would accept it and the
  // validation loops would run 2^62 iterations off the end of the image.
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(7));
  const std::string image = kb.SerializeSnapshot();
  auto parsed = Rkf2Image::Parse(image);
  ASSERT_TRUE(parsed.ok());
  auto meta = parsed->Section(1);  // meta is section id 1
  ASSERT_TRUE(meta.ok());
  const std::string meta_bytes(*meta);
  size_t pos = 0;
  std::string patched;
  for (int i = 0; i < 16; ++i) {  // snapshot version + 15 counts
    auto v = GetVarint64(meta_bytes, &pos);
    ASSERT_TRUE(v.ok());
    // Count index 4 is the triple count (version, dict_terms, blob_bytes,
    // store_terms, triples, ...).
    PutVarint64(&patched, i == 4 ? *v + (uint64_t{1} << 62) : *v);
  }
  patched.append(meta_bytes, pos, std::string::npos);
  Rkf2Writer writer;
  writer.AddSection(1, patched);
  for (uint32_t id = 2; id <= 64; ++id) {
    if (!parsed->Has(id)) continue;
    writer.AddSection(id, *parsed->Section(id));
  }
  auto opened = KnowledgeBase::OpenSnapshotBuffer(writer.Finish());
  ASSERT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCorruption())
      << opened.status().ToString();
}

TEST(SnapshotTest, OwnedDictionaryCopyOutlivesSnapshot) {
  // Regression: extracting the dictionary from a snapshot KB and dropping
  // the KB must not leave dangling views into the unmapped image.
  Dictionary dict;
  {
    const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(31));
    const std::string path = ::testing::TempDir() + "/owned_copy.rkf2";
    ASSERT_TRUE(kb.SaveSnapshot(path).ok());
    auto opened = KnowledgeBase::OpenSnapshot(path);
    ASSERT_TRUE(opened.ok());
    dict = opened->dict().OwnedCopy();
    ASSERT_EQ(dict.size(), kb.dict().size());
  }  // snapshot KB and its mapping are gone
  for (TermId id = 0; id < dict.size(); ++id) {
    ASSERT_FALSE(dict.lexical(id).empty() &&
                 dict.kind(id) == TermKind::kIri);
  }
  EXPECT_TRUE(
      dict.Lookup(TermKind::kIri, kRdfTypeIri).ok());
}

TEST(SnapshotTest, MissingFileIsIoError) {
  EXPECT_TRUE(
      KnowledgeBase::OpenSnapshot("/nonexistent/kb.rkf2").status().IsIoError());
}

// --- crash-safe save ---------------------------------------------------------

/// Opens `path` and checks it is a fully valid snapshot of `reference`.
void ExpectSnapshotIntact(const std::string& path,
                          const KnowledgeBase& reference) {
  auto opened = KnowledgeBase::OpenSnapshot(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->NumFacts(), reference.NumFacts());
  EXPECT_EQ(opened->dict().size(), reference.dict().size());
}

TEST(SnapshotCrashSafetyTest, WriterKilledMidStreamLeavesOldSnapshotIntact) {
  const KnowledgeBase old_kb = BuildSyntheticKb(SmallConfig(41));
  const KnowledgeBase new_kb = BuildSyntheticKb(SmallConfig(42));
  const std::string path = ::testing::TempDir() + "/crash_mid_write.rkf2";
  ASSERT_TRUE(old_kb.SaveSnapshot(path).ok());

  // "Kill" the writer partway through the data stream: the first write
  // of the replacement snapshot fails hard. The destination must still
  // be the old, fully valid snapshot — the torn bytes only ever touched
  // the temp file, which is cleaned up.
  io::FaultInjector injector{io::FaultProfile{}};
  injector.FailNth(io::IoOp::kWrite, 1, EIO);
  {
    io::ScopedHooks scoped(&injector);
    EXPECT_TRUE(new_kb.SaveSnapshot(path).IsIoError());
  }
  ExpectSnapshotIntact(path, old_kb);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0)
      << "temp file must not survive a failed save";
}

TEST(SnapshotCrashSafetyTest, FsyncFailureRejectsTheSaveAndKeepsTheOld) {
  const KnowledgeBase old_kb = BuildSyntheticKb(SmallConfig(43));
  const KnowledgeBase new_kb = BuildSyntheticKb(SmallConfig(44));
  const std::string path = ::testing::TempDir() + "/crash_fsync.rkf2";
  ASSERT_TRUE(old_kb.SaveSnapshot(path).ok());

  io::FaultInjector injector{io::FaultProfile{}};
  injector.FailNth(io::IoOp::kFsync, 1, EIO);  // the temp-file fsync
  {
    io::ScopedHooks scoped(&injector);
    EXPECT_TRUE(new_kb.SaveSnapshot(path).IsIoError());
  }
  ExpectSnapshotIntact(path, old_kb);
}

TEST(SnapshotCrashSafetyTest, RenameFailureRejectsTheSaveAndKeepsTheOld) {
  const KnowledgeBase old_kb = BuildSyntheticKb(SmallConfig(45));
  const KnowledgeBase new_kb = BuildSyntheticKb(SmallConfig(46));
  const std::string path = ::testing::TempDir() + "/crash_rename.rkf2";
  ASSERT_TRUE(old_kb.SaveSnapshot(path).ok());

  io::FaultInjector injector{io::FaultProfile{}};
  injector.FailNth(io::IoOp::kRename, 1, EXDEV);
  {
    io::ScopedHooks scoped(&injector);
    EXPECT_TRUE(new_kb.SaveSnapshot(path).IsIoError());
  }
  ExpectSnapshotIntact(path, old_kb);
  EXPECT_NE(::access((path + ".tmp").c_str(), F_OK), 0);
}

TEST(SnapshotCrashSafetyTest, EintrStormsAndShortWritesStillSaveCorrectly) {
  // The save loop must absorb retryable noise without corrupting a byte:
  // under an EINTR storm plus pervasive short writes, the published
  // snapshot still round-trips exactly.
  const KnowledgeBase kb = BuildSyntheticKb(SmallConfig(47));
  const std::string path = ::testing::TempDir() + "/noisy_save.rkf2";
  io::FaultProfile profile;
  profile.seed = 7;
  profile.eintr_probability = 0.2;
  profile.short_write_probability = 0.8;
  io::FaultInjector injector(profile);
  {
    io::ScopedHooks scoped(&injector);
    ASSERT_TRUE(kb.SaveSnapshot(path).ok());
  }
  EXPECT_GT(injector.injected_total(), 0u) << "the storm never hit";
  ExpectSnapshotIntact(path, kb);
}

}  // namespace
}  // namespace remi
