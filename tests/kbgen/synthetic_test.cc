#include "kbgen/synthetic.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/powerlaw.h"

namespace remi {
namespace {

SyntheticKbConfig SmallConfig(uint64_t seed = 7) {
  SyntheticKbConfig config;
  config.seed = seed;
  config.num_entities = 2000;
  config.num_predicates = 40;
  config.num_classes = 12;
  config.num_facts = 20000;
  return config;
}

TEST(SyntheticKbTest, GeneratesRequestedScale) {
  KnowledgeBase kb = BuildSyntheticKb(SmallConfig());
  // type + label facts are added on top of the 20k content facts, but the
  // KB is a triple *set*: Zipf-head duplicates collapse on dedup, so the
  // distinct count lands somewhat below generated + type + label.
  EXPECT_GT(kb.NumBaseFacts(), 18000u);
  EXPECT_GT(kb.NumEntities(), 1500u);
  EXPECT_GT(kb.NumPredicates(), 30u);
}

TEST(SyntheticKbTest, DeterministicForSameSeed) {
  KnowledgeBase a = BuildSyntheticKb(SmallConfig(5));
  KnowledgeBase b = BuildSyntheticKb(SmallConfig(5));
  EXPECT_EQ(a.NumBaseFacts(), b.NumBaseFacts());
  EXPECT_EQ(a.NumFacts(), b.NumFacts());
  EXPECT_EQ(a.dict().size(), b.dict().size());
  // Spot-check identical triples.
  for (size_t i = 0; i < a.store().spo().size(); i += 997) {
    EXPECT_EQ(a.store().spo()[i], b.store().spo()[i]);
  }
}

TEST(SyntheticKbTest, DifferentSeedsDiffer) {
  KnowledgeBase a = BuildSyntheticKb(SmallConfig(5));
  KnowledgeBase b = BuildSyntheticKb(SmallConfig(6));
  EXPECT_NE(a.NumBaseFacts(), b.NumBaseFacts());
}

TEST(SyntheticKbTest, EveryEntityHasTypeAndLabel) {
  KnowledgeBase kb = BuildSyntheticKb(SmallConfig());
  size_t typed = 0;
  for (const TermId cls : kb.classes()) {
    typed += kb.EntitiesOfClass(cls).size();
  }
  // Every generated entity got exactly one type fact (classes partition
  // entities; blank nodes and literals are not typed).
  EXPECT_GE(typed, 2000u);
}

TEST(SyntheticKbTest, PredicateFrequenciesFollowPowerLaw) {
  KnowledgeBase kb = BuildSyntheticKb(SmallConfig());
  std::vector<double> freqs;
  for (const TermId p : kb.store().predicates()) {
    if (p == kb.type_predicate() || p == kb.label_predicate()) continue;
    if (kb.IsInversePredicate(p)) continue;
    freqs.push_back(static_cast<double>(kb.store().CountPredicate(p)));
  }
  std::sort(freqs.rbegin(), freqs.rend());
  auto fit = FitPowerLaw(freqs);
  // The generator samples budgets from an exact Zipf law; the log-log fit
  // must be strong (this mirrors the paper's §3.5.3 premise).
  EXPECT_GT(fit.r2, 0.8);
}

TEST(SyntheticKbTest, ConditionalObjectFrequenciesAreSkewed) {
  KnowledgeBase kb = BuildSyntheticKb(SmallConfig());
  // Pick the busiest content predicate and check its object distribution
  // is head-heavy: the top object accounts for >2% of facts.
  TermId best = kNullTerm;
  size_t best_count = 0;
  for (const TermId p : kb.store().predicates()) {
    if (p == kb.type_predicate() || p == kb.label_predicate()) continue;
    if (kb.IsInversePredicate(p)) continue;
    const size_t count = kb.store().CountPredicate(p);
    if (count > best_count) {
      best = p;
      best_count = count;
    }
  }
  ASSERT_NE(best, kNullTerm);
  size_t max_group = 0;
  size_t current = 0;
  TermId current_o = kNullTerm;
  for (const Triple& t : kb.store().ByPredicateObjectOrder(best)) {
    if (t.o != current_o) {
      current_o = t.o;
      current = 0;
    }
    ++current;
    max_group = std::max(max_group, current);
  }
  EXPECT_GT(static_cast<double>(max_group),
            0.02 * static_cast<double>(best_count));
}

TEST(SyntheticKbTest, BlankNodesExist) {
  SyntheticKbConfig config = SmallConfig();
  config.blank_node_fraction = 0.05;
  KnowledgeBase kb = BuildSyntheticKb(config);
  size_t blanks = 0;
  for (const Triple& t : kb.store().spo()) {
    if (kb.dict().kind(t.o) == TermKind::kBlank) ++blanks;
  }
  EXPECT_GT(blanks, 0u);
}

TEST(SyntheticKbTest, LiteralPredicatesProduceLiteralObjects) {
  KnowledgeBase kb = BuildSyntheticKb(SmallConfig());
  size_t literal_facts = 0;
  for (const Triple& t : kb.store().spo()) {
    if (t.p == kb.label_predicate()) continue;
    if (kb.dict().kind(t.o) == TermKind::kLiteral) ++literal_facts;
  }
  EXPECT_GT(literal_facts, 100u);
}

TEST(SyntheticKbTest, PresetsHaveDistinctShapes) {
  auto db = SyntheticKbConfig::DBpediaLike(0.05);
  auto wd = SyntheticKbConfig::WikidataLike(0.05);
  EXPECT_GT(db.num_predicates, wd.num_predicates);
  EXPECT_GT(db.num_facts, wd.num_facts);
  EXPECT_NE(db.base_iri, wd.base_iri);
}

TEST(SyntheticKbTest, ScaleGrowsTheKb) {
  auto small = SyntheticKbConfig::DBpediaLike(0.02);
  auto large = SyntheticKbConfig::DBpediaLike(0.04);
  KnowledgeBase a = BuildSyntheticKb(small);
  KnowledgeBase c = BuildSyntheticKb(large);
  EXPECT_GT(c.NumBaseFacts(), a.NumBaseFacts());
}

}  // namespace
}  // namespace remi
