#include "kbgen/workload.h"

#include <set>

#include <gtest/gtest.h>

#include "kbgen/curated.h"
#include "kbgen/synthetic.h"

namespace remi {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    kb_ = new KnowledgeBase(BuildCuratedKb());
  }
  static void TearDownTestSuite() {
    delete kb_;
    kb_ = nullptr;
  }
  static KnowledgeBase* kb_;
};

KnowledgeBase* WorkloadTest::kb_ = nullptr;

TEST_F(WorkloadTest, LargestClassesAreSortedBySize) {
  auto classes = LargestClasses(*kb_, 4);
  ASSERT_GE(classes.size(), 2u);
  for (size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GE(kb_->EntitiesOfClass(classes[i - 1]).size(),
              kb_->EntitiesOfClass(classes[i]).size());
  }
}

TEST_F(WorkloadTest, LargestClassesHonoursMinMembers) {
  auto classes = LargestClasses(*kb_, 100, /*min_members=*/5);
  for (const TermId cls : classes) {
    EXPECT_GE(kb_->EntitiesOfClass(cls).size(), 5u);
  }
}

TEST_F(WorkloadTest, ClassMembersOrderedByProminence) {
  auto classes = LargestClasses(*kb_, 1);
  ASSERT_FALSE(classes.empty());
  auto members = ClassMembersByProminence(*kb_, classes[0]);
  for (size_t i = 1; i < members.size(); ++i) {
    EXPECT_GE(kb_->EntityFrequency(members[i - 1]),
              kb_->EntityFrequency(members[i]));
  }
}

TEST_F(WorkloadTest, SampleRespectsSizeProportions) {
  Rng rng(1);
  WorkloadConfig config;
  config.num_sets = 100;
  auto classes = LargestClasses(*kb_, 4);
  auto sets = SampleEntitySets(*kb_, classes, config, &rng);
  ASSERT_EQ(sets.size(), 100u);
  size_t by_size[4] = {0, 0, 0, 0};
  for (const auto& set : sets) {
    ASSERT_GE(set.entities.size(), 1u);
    ASSERT_LE(set.entities.size(), 3u);
    ++by_size[set.entities.size()];
  }
  // Paper proportions: 50% / 30% / 20%.
  EXPECT_EQ(by_size[1], 50u);
  EXPECT_EQ(by_size[2], 30u);
  EXPECT_EQ(by_size[3], 20u);
}

TEST_F(WorkloadTest, SetMembersShareTheClass) {
  Rng rng(2);
  WorkloadConfig config;
  config.num_sets = 40;
  auto classes = LargestClasses(*kb_, 4);
  for (const auto& set : SampleEntitySets(*kb_, classes, config, &rng)) {
    const auto members = kb_->EntitiesOfClass(set.cls);
    for (const TermId e : set.entities) {
      EXPECT_TRUE(std::find(members.begin(), members.end(), e) !=
                  members.end());
    }
  }
}

TEST_F(WorkloadTest, SetMembersAreDistinct) {
  Rng rng(3);
  WorkloadConfig config;
  config.num_sets = 60;
  auto classes = LargestClasses(*kb_, 4);
  for (const auto& set : SampleEntitySets(*kb_, classes, config, &rng)) {
    std::set<TermId> unique(set.entities.begin(), set.entities.end());
    EXPECT_EQ(unique.size(), set.entities.size());
  }
}

TEST_F(WorkloadTest, TopFractionRestrictsToProminentEntities) {
  Rng rng(4);
  WorkloadConfig config;
  config.num_sets = 30;
  config.top_fraction = 0.05;
  auto classes = LargestClasses(*kb_, 2);
  auto sets = SampleEntitySets(*kb_, classes, config, &rng);
  ASSERT_FALSE(sets.empty());
  for (const auto& set : sets) {
    auto members = ClassMembersByProminence(*kb_, set.cls);
    const size_t cutoff = std::max<size_t>(
        3, static_cast<size_t>(0.05 * static_cast<double>(members.size())));
    for (const TermId e : set.entities) {
      const auto pos = std::find(members.begin(), members.end(), e);
      ASSERT_NE(pos, members.end());
      EXPECT_LT(static_cast<size_t>(pos - members.begin()), cutoff);
    }
  }
}

TEST_F(WorkloadTest, DeterministicGivenSeed) {
  WorkloadConfig config;
  config.num_sets = 20;
  auto classes = LargestClasses(*kb_, 4);
  Rng rng1(9), rng2(9);
  auto a = SampleEntitySets(*kb_, classes, config, &rng1);
  auto b = SampleEntitySets(*kb_, classes, config, &rng2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].entities, b[i].entities);
    EXPECT_EQ(a[i].cls, b[i].cls);
  }
}

TEST_F(WorkloadTest, EmptyClassListYieldsNoSets) {
  Rng rng(5);
  EXPECT_TRUE(SampleEntitySets(*kb_, {}, WorkloadConfig{}, &rng).empty());
}

TEST_F(WorkloadTest, WorksOnSyntheticKb) {
  SyntheticKbConfig config;
  config.num_entities = 1000;
  config.num_predicates = 20;
  config.num_classes = 8;
  config.num_facts = 8000;
  KnowledgeBase kb = BuildSyntheticKb(config);
  Rng rng(6);
  WorkloadConfig wconfig;
  wconfig.num_sets = 50;
  auto classes = LargestClasses(kb, 4);
  auto sets = SampleEntitySets(kb, classes, wconfig, &rng);
  EXPECT_EQ(sets.size(), 50u);
}

}  // namespace
}  // namespace remi
