#include "rdf/ntriples.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace remi {

namespace {

bool IsWs(char c) { return c == ' ' || c == '\t'; }

void SkipWs(std::string_view s, size_t* pos) {
  while (*pos < s.size() && IsWs(s[*pos])) ++(*pos);
}

// Appends the UTF-8 encoding of a code point.
Status AppendUtf8(uint32_t cp, std::string* out) {
  if (cp <= 0x7f) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0xffff) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp <= 0x10ffff) {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    return Status::ParseError("code point out of range");
  }
  return Status::OK();
}

Result<uint32_t> ParseHex(std::string_view s, size_t pos, size_t len) {
  if (pos + len > s.size()) {
    return Status::ParseError("truncated \\u escape");
  }
  uint32_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    const char c = s[pos + i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return Status::ParseError("bad hex digit in escape");
    }
    value = (value << 4) | digit;
  }
  return value;
}

bool IsBlankNodeChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
}

bool IsLangChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-';
}

}  // namespace

Result<std::string> DecodeEscapes(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '\\') {
      out.push_back(raw[i]);
      continue;
    }
    if (i + 1 >= raw.size()) {
      return Status::ParseError("dangling backslash");
    }
    const char c = raw[++i];
    switch (c) {
      case 't':
        out.push_back('\t');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case '"':
        out.push_back('"');
        break;
      case '\'':
        out.push_back('\'');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'u': {
        auto cp = ParseHex(raw, i + 1, 4);
        if (!cp.ok()) return cp.status();
        REMI_RETURN_NOT_OK(AppendUtf8(*cp, &out));
        i += 4;
        break;
      }
      case 'U': {
        auto cp = ParseHex(raw, i + 1, 8);
        if (!cp.ok()) return cp.status();
        REMI_RETURN_NOT_OK(AppendUtf8(*cp, &out));
        i += 8;
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape \\") + c);
    }
  }
  return out;
}

std::string EncodeEscapes(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\f':
        out += "\\f";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Status NTriplesParser::Error(const std::string& message) const {
  return Status::ParseError("line " + std::to_string(line_number_) + ": " +
                            message);
}

Result<TermId> NTriplesParser::ParseTerm(std::string_view line, size_t* pos,
                                         bool allow_literal) {
  SkipWs(line, pos);
  if (*pos >= line.size()) return Error("unexpected end of line");
  const char first = line[*pos];
  if (first == '<') {
    const size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) return Error("unterminated IRI");
    std::string_view iri = line.substr(*pos + 1, end - *pos - 1);
    *pos = end + 1;
    if (iri.empty()) return Error("empty IRI");
    return dict_->Intern(TermKind::kIri, iri);
  }
  if (first == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Error("malformed blank node");
    }
    size_t end = *pos + 2;
    while (end < line.size() && IsBlankNodeChar(line[end])) ++end;
    if (end == *pos + 2) return Error("empty blank node label");
    std::string_view label = line.substr(*pos + 2, end - *pos - 2);
    *pos = end;
    return dict_->Intern(TermKind::kBlank, label);
  }
  if (first == '"') {
    if (!allow_literal) return Error("literal not allowed here");
    // Scan to the closing unescaped quote.
    size_t i = *pos + 1;
    while (i < line.size()) {
      if (line[i] == '\\') {
        i += 2;
        continue;
      }
      if (line[i] == '"') break;
      ++i;
    }
    if (i >= line.size()) return Error("unterminated literal");
    auto body = DecodeEscapes(line.substr(*pos + 1, i - *pos - 1));
    if (!body.ok()) return Error(body.status().message());
    size_t after = i + 1;
    std::string suffix;
    if (after < line.size() && line[after] == '@') {
      size_t end = after + 1;
      while (end < line.size() && IsLangChar(line[end])) ++end;
      if (end == after + 1) return Error("empty language tag");
      suffix = std::string(line.substr(after, end - after));
      after = end;
    } else if (after + 1 < line.size() && line[after] == '^' &&
               line[after + 1] == '^') {
      if (after + 2 >= line.size() || line[after + 2] != '<') {
        return Error("malformed datatype IRI");
      }
      const size_t end = line.find('>', after + 3);
      if (end == std::string_view::npos) {
        return Error("unterminated datatype IRI");
      }
      suffix = std::string(line.substr(after, end - after + 1));
      after = end + 1;
    }
    *pos = after;
    // Canonical internal form: quoted decoded body plus raw suffix.
    std::string lexical = "\"" + *body + "\"" + suffix;
    return dict_->Intern(TermKind::kLiteral, lexical);
  }
  return Error(std::string("unexpected character '") + first + "'");
}

Result<bool> NTriplesParser::ParseLine(std::string_view line, Triple* out) {
  ++line_number_;
  ++stats_.lines;
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty()) return false;
  if (trimmed[0] == '#') {
    ++stats_.comments;
    return false;
  }
  size_t pos = 0;
  auto s = ParseTerm(trimmed, &pos, /*allow_literal=*/false);
  if (!s.ok()) return s.status();
  auto p = ParseTerm(trimmed, &pos, /*allow_literal=*/false);
  if (!p.ok()) return p.status();
  if (dict_->kind(*p) != TermKind::kIri) {
    return Error("predicate must be an IRI");
  }
  auto o = ParseTerm(trimmed, &pos, /*allow_literal=*/true);
  if (!o.ok()) return o.status();
  SkipWs(trimmed, &pos);
  if (pos >= trimmed.size() || trimmed[pos] != '.') {
    return Error("missing terminating '.'");
  }
  ++pos;
  SkipWs(trimmed, &pos);
  if (pos < trimmed.size() && trimmed[pos] != '#') {
    return Error("trailing characters after '.'");
  }
  out->s = *s;
  out->p = *p;
  out->o = *o;
  ++stats_.triples;
  return true;
}

Result<std::vector<Triple>> NTriplesParser::ParseString(
    std::string_view text) {
  std::vector<Triple> triples;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    Triple t;
    auto r = ParseLine(line, &t);
    if (!r.ok()) {
      if (!lenient_) return r.status();
      ++skipped_;
    } else if (*r) {
      triples.push_back(t);
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return triples;
}

Result<std::vector<Triple>> NTriplesParser::ParseFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseString(buf.str());
}

std::string TermToNTriples(TermKind kind, std::string_view lexical) {
  switch (kind) {
    case TermKind::kIri: {
      std::string out = "<";
      out += lexical;
      out += '>';
      return out;
    }
    case TermKind::kBlank: {
      std::string out = "_:";
      out += lexical;
      return out;
    }
    case TermKind::kLiteral: {
      // Internal form: "decoded body" + suffix; split at the last quote.
      const size_t last_quote = lexical.rfind('"');
      if (last_quote == std::string::npos || lexical.empty() ||
          lexical[0] != '"') {
        // Not in canonical form; emit as a plain quoted literal.
        std::string out = "\"";
        out += EncodeEscapes(lexical);
        out += '"';
        return out;
      }
      std::string out = "\"";
      out += EncodeEscapes(lexical.substr(1, last_quote - 1));
      out += '"';
      out += lexical.substr(last_quote + 1);
      return out;
    }
  }
  return "";
}

std::string TermToNTriples(const Term& term) {
  return TermToNTriples(term.kind, term.lexical);
}

std::string WriteNTriples(const Dictionary& dict,
                          const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& t : triples) {
    // kind()/lexical() views avoid materializing three Terms per triple.
    out += TermToNTriples(dict.kind(t.s), dict.lexical(t.s));
    out += " ";
    out += TermToNTriples(dict.kind(t.p), dict.lexical(t.p));
    out += " ";
    out += TermToNTriples(dict.kind(t.o), dict.lexical(t.o));
    out += " .\n";
  }
  return out;
}

}  // namespace remi
