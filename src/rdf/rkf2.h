// RKF2: a versioned, section-table'd, checksummed container for zero-copy
// KB snapshots.
//
// RKF1 persists raw triples, so every load still re-sorts, rebuilds the CSR
// adjacency, and recomputes rankings. RKF2 instead stores the *built*
// KnowledgeBase: each index array becomes one section in a flat file that
// can be mmap'ed and adopted in place (paper §3.5.1's "open, don't
// rebuild" HDT philosophy, pushed one level further).
//
// On-disk layout (all integers little-endian; multi-byte array sections are
// written in host byte order and guarded by the endianness marker):
//
//   [0, 32)                      header
//     u8[4]  magic "RKF2"
//     u32    container version (kRkf2Version)
//     u32    endianness marker 0x0a0b0c0d (rejects cross-endian opens)
//     u32    section count
//     u32[2] reserved (zero)
//     u64    total file size in bytes
//   [32, 32 + 32*count)          section table, one entry per section
//     u32    section id          (opaque to the container)
//     u32    reserved (zero)
//     u64    payload offset      (8-byte aligned)
//     u64    payload length in bytes
//     u64    Fnv1a64Wide checksum of the payload
//   sections                     each padded to an 8-byte boundary
//   [size - 8, size)             u64 Fnv1a64Wide of the header + section
//                                table, i.e. bytes [0, 32 + 32*count)
//
// Integrity: every payload byte is covered by its section checksum and the
// header/table bytes by the footer, so nothing an adopted pointer can
// reach is unchecksummed (inter-section alignment padding carries no
// data). Checksums use the block-wise FNV variant, so verification runs at
// memory bandwidth rather than a byte-serial dependency chain.
//
// Rkf2Image::Parse validates structure and all checksums before exposing
// section views, so adopting a section pointer never reads out of bounds.
// Section *contents* are still untrusted: consumers must validate their own
// invariants (the KB snapshot codec in src/kb/snapshot.cc does).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace remi {

inline constexpr char kRkf2Magic[4] = {'R', 'K', 'F', '2'};
inline constexpr uint32_t kRkf2Version = 1;
inline constexpr uint32_t kRkf2EndianMarker = 0x0a0b0c0d;
inline constexpr size_t kRkf2HeaderSize = 32;
inline constexpr size_t kRkf2TableEntrySize = 32;
inline constexpr size_t kRkf2FooterSize = 8;
/// Upper bound on sections per image; rejects count lies early and keeps
/// duplicate-id detection trivially cheap.
inline constexpr uint32_t kRkf2MaxSections = 1024;

/// \brief Accumulates sections and serializes the container.
class Rkf2Writer {
 public:
  /// Adds a section. Ids must be unique. The payload is NOT copied — the
  /// caller's buffer must stay alive until Finish() returns. (Snapshot
  /// payloads are views over whole KB index arrays; copying them here
  /// would add a full extra KB of peak memory per save.)
  void AddSection(uint32_t id, std::string_view payload);

  /// Serializes header + table + aligned sections + footer checksum.
  std::string Finish() const;

 private:
  struct Section {
    uint32_t id;
    std::string_view payload;
  };
  std::vector<Section> sections_;
};

/// \brief A parsed, structurally validated RKF2 image.
///
/// Holds views into the caller's buffer; the buffer must outlive the image
/// and any section views obtained from it.
class Rkf2Image {
 public:
  /// Validates magic, version, endianness, bounds, alignment, and every
  /// checksum. Fails with Corruption (message includes the failing
  /// section/byte context) on any structural problem.
  static Result<Rkf2Image> Parse(std::string_view file);

  bool Has(uint32_t id) const;

  /// The payload of section `id`. Fails with Corruption if absent (an
  /// image missing a required section is a truncation lie).
  Result<std::string_view> Section(uint32_t id) const;

  size_t num_sections() const { return entries_.size(); }

 private:
  struct Entry {
    uint32_t id;
    std::string_view payload;
  };
  std::vector<Entry> entries_;
};

}  // namespace remi
