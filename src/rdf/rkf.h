// RKF ("REMI KB Format"): a compact single-file binary KB format.
//
// This plays the role HDT plays in the paper (§3.5.1): the KB is stored in
// one binary compressed file from which pattern-level access is rebuilt
// without re-parsing text. The layout is HDT-inspired:
//
//   magic "RKF1"
//   dictionary: term count, then terms in id order, each front-coded
//     against the previous term (kind byte, shared-prefix varint,
//     length-prefixed suffix)
//   triples: count, then PSO-sorted id triples delta-encoded with varints
//   footer: FNV-1a 64 checksum of everything before it
//
// Front coding plus delta coding typically shrinks an N-Triples document by
// 5-10x; see tests/rdf/rkf_test.cc for measured ratios.

#pragma once

#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace remi {

/// A deserialized RKF payload.
struct RkfData {
  Dictionary dict;
  std::vector<Triple> triples;  ///< PSO-sorted, deduplicated.
};

/// Serializes a dictionary + triple set to the RKF byte format.
/// The triples may be in any order; they are sorted and deduplicated in
/// place. The span overload copies first — pass (or move) a vector from
/// call sites that own one.
std::string SerializeRkf(const Dictionary& dict, std::vector<Triple> triples);
inline std::string SerializeRkf(const Dictionary& dict,
                                std::span<const Triple> triples) {
  return SerializeRkf(dict,
                      std::vector<Triple>(triples.begin(), triples.end()));
}

/// Parses an RKF byte string. Fails with Corruption (with a byte-offset
/// context in the message) on malformed input or checksum mismatch.
Result<RkfData> DeserializeRkf(const std::string& bytes);

/// Writes an RKF file to disk.
Status WriteRkfFile(const Dictionary& dict, std::vector<Triple> triples,
                    const std::string& path);
Status WriteRkfFile(const Dictionary& dict, std::span<const Triple> triples,
                    const std::string& path);

/// Reads an RKF file from disk.
Result<RkfData> ReadRkfFile(const std::string& path);

}  // namespace remi
