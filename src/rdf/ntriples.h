// N-Triples parsing and serialization.
//
// The paper loads DBpedia / Wikidata dump files; this module provides the
// corresponding parsing infrastructure. The grammar covered is the W3C
// N-Triples core: one triple per line,
//   <subject-iri> <predicate-iri> (<iri> | "literal"[@lang|^^<dt>] | _:bnode) .
// plus '#' comment lines and blank lines. Literal escape sequences
// (\t \b \n \r \f \" \\ \uXXXX \UXXXXXXXX) are decoded and re-encoded on
// output, so parse -> serialize round-trips.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace remi {

/// Parse statistics returned alongside the triples.
struct NTriplesStats {
  size_t lines = 0;
  size_t triples = 0;
  size_t comments = 0;
};

/// \brief Streaming N-Triples reader that interns terms into `dict`.
///
/// Errors carry 1-based line numbers. Parsing stops at the first malformed
/// line (strict mode, default) or skips it (lenient mode).
class NTriplesParser {
 public:
  /// \param dict target dictionary (not owned; must outlive the parser)
  /// \param lenient if true, malformed lines are counted and skipped.
  explicit NTriplesParser(Dictionary* dict, bool lenient = false)
      : dict_(dict), lenient_(lenient) {}

  /// Parses an entire document held in memory.
  Result<std::vector<Triple>> ParseString(std::string_view text);

  /// Parses a file from disk.
  Result<std::vector<Triple>> ParseFile(const std::string& path);

  /// Parses one line; returns true and fills *out if it held a triple,
  /// false for blank/comment lines.
  Result<bool> ParseLine(std::string_view line, Triple* out);

  const NTriplesStats& stats() const { return stats_; }
  size_t skipped_lines() const { return skipped_; }

 private:
  Result<TermId> ParseTerm(std::string_view line, size_t* pos,
                           bool allow_literal);
  Status Error(const std::string& message) const;

  Dictionary* dict_;
  bool lenient_;
  NTriplesStats stats_;
  size_t skipped_ = 0;
  size_t line_number_ = 0;
};

/// Serializes one term in N-Triples syntax.
std::string TermToNTriples(TermKind kind, std::string_view lexical);
std::string TermToNTriples(const Term& term);

/// Serializes triples (SPO order of the input vector) as an N-Triples
/// document.
std::string WriteNTriples(const Dictionary& dict,
                          const std::vector<Triple>& triples);

/// Decodes N-Triples string escapes inside a literal body.
Result<std::string> DecodeEscapes(std::string_view raw);

/// Encodes the characters that N-Triples requires to be escaped.
std::string EncodeEscapes(std::string_view raw);

}  // namespace remi
