// RDF term model (paper §2.1).
//
// A KB is a set of triples p(s, o) with s in I ∪ B and o in I ∪ L ∪ B,
// where I are IRIs (entities and predicates), L literals, and B blank
// nodes. Terms are dictionary-encoded to dense 32-bit ids; all algorithms
// operate on ids and only translate back to strings at the edges (parsing,
// serialization, verbalization).

#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace remi {

/// Dense dictionary id of a term. Ids are assigned in interning order.
using TermId = uint32_t;

/// Sentinel for "no term".
inline constexpr TermId kNullTerm = std::numeric_limits<TermId>::max();

/// The three RDF term kinds.
enum class TermKind : uint8_t {
  kIri = 0,      ///< named entity or predicate, e.g. <http://db/Paris>
  kLiteral = 1,  ///< string/number literal, e.g. "1889"^^xsd:integer
  kBlank = 2,    ///< anonymous node, e.g. _:b42
};

const char* TermKindToString(TermKind kind);

/// \brief A decoded term: kind plus lexical form.
///
/// For IRIs the lexical form is the IRI without angle brackets; for blank
/// nodes it is the label without the "_:" prefix; for literals it is the
/// full N-Triples literal including quotes and any datatype/lang suffix
/// (kept verbatim so round-tripping is lossless).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string lexical;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical;
  }
};

}  // namespace remi
