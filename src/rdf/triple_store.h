// An immutable in-memory triple store with CSR-style adjacency indexes.
//
// This replaces the paper's HDT + Apache Jena access layer (§3.5.1/3.5.2):
// HDT exposes pattern-level retrieval ("bindings for atoms p(X, Y)") and
// leaves joins to upper layers; TripleStore offers the same contract via
// spans over SPO / PSO / POS orderings. Internally the hot lookups are
// backed by offset tables keyed by the dictionary's dense TermIds:
//
//   * a global subject offset array over the SPO ordering makes
//     BySubject(s) a single array index;
//   * each predicate owns offset tables over its PSO range (keyed by
//     subject) and its POS range (keyed by object), so the DFS's dominant
//     lookups ByPredicateSubject / ByPredicateObject are O(1) + span,
//     with per-key degrees available for free as offset differences.
//
// Per-predicate offset tables span [min_key, max_key] of the keys that
// actually occur under that predicate, so memory stays proportional to the
// occupied id range rather than the whole dictionary.
//
// Storage comes in two modes sharing this one read path: Build constructs
// owning arrays in memory; an RKF2 snapshot load adopts the same arrays as
// views over the mapped file (see ArrayRef). To keep that possible, every
// per-predicate offset/distinct list lives in four flat pools indexed by a
// fixed-layout PredicateIndex record rather than in per-predicate vectors.

#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "rdf/triple.h"
#include "util/array_ref.h"
#include "util/status.h"

namespace remi {

/// \brief Immutable, fully indexed triple set.
///
/// Construction: collect triples (any order, duplicates allowed) and call
/// TripleStore::Build, or adopt a snapshot via the RKF2 loader.
/// Thread-safe for concurrent reads.
class TripleStore {
 public:
  /// Builds the store: sorts, deduplicates, and materializes the three
  /// index orderings plus the CSR offset tables.
  static TripleStore Build(std::vector<Triple> triples);

  TripleStore() = default;

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }

  /// All facts with subject `s`, grouped by predicate (SPO order).
  std::span<const Triple> BySubject(TermId s) const;

  /// All facts with predicate `p` (PSO order).
  std::span<const Triple> ByPredicate(TermId p) const;

  /// All facts with predicate `p` (POS order: grouped by object).
  std::span<const Triple> ByPredicateObjectOrder(TermId p) const;

  /// Facts p(s, *): objects of `s` under `p`.
  std::span<const Triple> ByPredicateSubject(TermId p, TermId s) const;

  /// Facts p(*, o): subjects with object `o` under `p`.
  std::span<const Triple> ByPredicateObject(TermId p, TermId o) const;

  /// Membership test for a fully bound fact.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// True if at least one fact uses predicate `p`.
  bool HasPredicate(TermId p) const { return FindPredicate(p) != nullptr; }

  /// Number of facts with predicate `p`.
  size_t CountPredicate(TermId p) const { return ByPredicate(p).size(); }

  /// Number of facts p(s, *).
  size_t CountPredicateSubject(TermId p, TermId s) const {
    return ByPredicateSubject(p, s).size();
  }

  /// Number of facts p(*, o).
  size_t CountPredicateObject(TermId p, TermId o) const {
    return ByPredicateObject(p, o).size();
  }

  // --- degree / adjacency statistics (CSR offset differences) --------------

  /// Number of facts with subject `s` (any predicate).
  size_t SubjectDegree(TermId s) const;

  /// Distinct subjects occurring under predicate `p`, ascending.
  std::span<const TermId> DistinctSubjectsOf(TermId p) const;

  /// Distinct objects occurring under predicate `p`, ascending.
  std::span<const TermId> DistinctObjectsOf(TermId p) const;

  /// One past the largest TermId present in any triple (0 when empty).
  /// EntitySet uses this as the default bitmap universe.
  size_t num_terms() const { return num_terms_; }

  /// Distinct predicates present, ascending.
  const std::vector<TermId>& predicates() const { return predicates_; }

  /// Distinct subjects present, ascending.
  const std::vector<TermId>& subjects() const { return subjects_; }

  /// The SPO-ordered triple list (for full scans / serialization).
  std::span<const Triple> spo() const { return spo_; }

  /// The PSO-ordered triple list.
  std::span<const Triple> pso() const { return pso_; }

 private:
  /// Per-predicate adjacency record: the predicate's contiguous ranges in
  /// pso_/pos_ plus its slices of the four flat pools. Fixed-layout POD so
  /// the whole pred_index_ array round-trips through RKF2 snapshots
  /// verbatim; every field is an absolute index into its pool/ordering.
  struct PredicateIndex {
    uint32_t pso_begin = 0;
    uint32_t pso_end = 0;
    uint32_t pos_begin = 0;
    uint32_t pos_end = 0;
    TermId s_base = 0;
    TermId o_base = 0;
    /// Slice of subj_offset_pool_; values are absolute offsets into pso_.
    /// Length = (max subject - s_base) + 2.
    uint32_t subj_off_begin = 0;
    uint32_t subj_off_end = 0;
    /// Slice of obj_offset_pool_; values are absolute offsets into pos_.
    uint32_t obj_off_begin = 0;
    uint32_t obj_off_end = 0;
    /// Slices of the distinct subject/object pools.
    uint32_t ds_begin = 0;
    uint32_t ds_end = 0;
    uint32_t do_begin = 0;
    uint32_t do_end = 0;
  };
  static_assert(std::is_trivially_copyable_v<PredicateIndex> &&
                    sizeof(PredicateIndex) == 56,
                "PredicateIndex is serialized verbatim in RKF2 snapshots");

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  const PredicateIndex* FindPredicate(TermId p) const {
    if (p >= pred_slot_.size() || pred_slot_[p] == kNoSlot) return nullptr;
    return &pred_index_[pred_slot_[p]];
  }

  /// The RKF2 snapshot codec serializes and reconstitutes the raw arrays.
  friend struct SnapshotCodec;

  ArrayRef<Triple> spo_;
  ArrayRef<Triple> pso_;
  ArrayRef<Triple> pos_;
  std::vector<TermId> predicates_;
  std::vector<TermId> subjects_;

  size_t num_terms_ = 0;
  /// CSR over spo_: facts of subject s live at [subject_offsets_[s],
  /// subject_offsets_[s + 1]).
  ArrayRef<uint32_t> subject_offsets_;
  /// TermId -> slot in pred_index_ (kNoSlot for non-predicates).
  ArrayRef<uint32_t> pred_slot_;
  ArrayRef<PredicateIndex> pred_index_;
  /// Flat pools backing the per-predicate slices in pred_index_.
  ArrayRef<uint32_t> subj_offset_pool_;
  ArrayRef<uint32_t> obj_offset_pool_;
  ArrayRef<TermId> distinct_subject_pool_;
  ArrayRef<TermId> distinct_object_pool_;
};

}  // namespace remi
