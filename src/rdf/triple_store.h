// An immutable in-memory triple store with three sorted indexes.
//
// This replaces the paper's HDT + Apache Jena access layer (§3.5.1/3.5.2):
// HDT exposes pattern-level retrieval ("bindings for atoms p(X, Y)") and
// leaves joins to upper layers; TripleStore offers the same contract via
// binary-searched ranges over SPO / PSO / POS orderings. All heavy REMI
// operations reduce to the range lookups below.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace remi {

/// \brief Immutable, fully indexed triple set.
///
/// Construction: collect triples (any order, duplicates allowed) and call
/// TripleStore::Build. Thread-safe for concurrent reads.
class TripleStore {
 public:
  /// Builds the store: sorts, deduplicates, and materializes the three
  /// index orderings.
  static TripleStore Build(std::vector<Triple> triples);

  TripleStore() = default;

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }

  /// All facts with subject `s`, grouped by predicate (SPO order).
  std::span<const Triple> BySubject(TermId s) const;

  /// All facts with predicate `p` (PSO order).
  std::span<const Triple> ByPredicate(TermId p) const;

  /// All facts with predicate `p` (POS order: grouped by object).
  std::span<const Triple> ByPredicateObjectOrder(TermId p) const;

  /// Facts p(s, *): objects of `s` under `p`.
  std::span<const Triple> ByPredicateSubject(TermId p, TermId s) const;

  /// Facts p(*, o): subjects with object `o` under `p`.
  std::span<const Triple> ByPredicateObject(TermId p, TermId o) const;

  /// Membership test for a fully bound fact.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// Number of facts with predicate `p`.
  size_t CountPredicate(TermId p) const { return ByPredicate(p).size(); }

  /// Number of facts p(s, *).
  size_t CountPredicateSubject(TermId p, TermId s) const {
    return ByPredicateSubject(p, s).size();
  }

  /// Number of facts p(*, o).
  size_t CountPredicateObject(TermId p, TermId o) const {
    return ByPredicateObject(p, o).size();
  }

  /// Distinct predicates present, ascending.
  const std::vector<TermId>& predicates() const { return predicates_; }

  /// Distinct subjects present, ascending.
  const std::vector<TermId>& subjects() const { return subjects_; }

  /// The SPO-ordered triple list (for full scans / serialization).
  const std::vector<Triple>& spo() const { return spo_; }

  /// The PSO-ordered triple list.
  const std::vector<Triple>& pso() const { return pso_; }

 private:
  std::vector<Triple> spo_;
  std::vector<Triple> pso_;
  std::vector<Triple> pos_;
  std::vector<TermId> predicates_;
  std::vector<TermId> subjects_;
};

}  // namespace remi
