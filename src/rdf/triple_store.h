// An immutable in-memory triple store with CSR-style adjacency indexes.
//
// This replaces the paper's HDT + Apache Jena access layer (§3.5.1/3.5.2):
// HDT exposes pattern-level retrieval ("bindings for atoms p(X, Y)") and
// leaves joins to upper layers; TripleStore offers the same contract via
// spans over SPO / PSO / POS orderings. Internally the hot lookups are
// backed by offset tables keyed by the dictionary's dense TermIds:
//
//   * a global subject offset array over the SPO ordering makes
//     BySubject(s) a single array index;
//   * each predicate owns offset tables over its PSO range (keyed by
//     subject) and its POS range (keyed by object), so the DFS's dominant
//     lookups ByPredicateSubject / ByPredicateObject are O(1) + span,
//     with per-key degrees available for free as offset differences.
//
// Per-predicate offset tables span [min_key, max_key] of the keys that
// actually occur under that predicate, so memory stays proportional to the
// occupied id range rather than the whole dictionary.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace remi {

/// \brief Immutable, fully indexed triple set.
///
/// Construction: collect triples (any order, duplicates allowed) and call
/// TripleStore::Build. Thread-safe for concurrent reads.
class TripleStore {
 public:
  /// Builds the store: sorts, deduplicates, and materializes the three
  /// index orderings plus the CSR offset tables.
  static TripleStore Build(std::vector<Triple> triples);

  TripleStore() = default;

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }

  /// All facts with subject `s`, grouped by predicate (SPO order).
  std::span<const Triple> BySubject(TermId s) const;

  /// All facts with predicate `p` (PSO order).
  std::span<const Triple> ByPredicate(TermId p) const;

  /// All facts with predicate `p` (POS order: grouped by object).
  std::span<const Triple> ByPredicateObjectOrder(TermId p) const;

  /// Facts p(s, *): objects of `s` under `p`.
  std::span<const Triple> ByPredicateSubject(TermId p, TermId s) const;

  /// Facts p(*, o): subjects with object `o` under `p`.
  std::span<const Triple> ByPredicateObject(TermId p, TermId o) const;

  /// Membership test for a fully bound fact.
  bool Contains(TermId s, TermId p, TermId o) const;

  /// Number of facts with predicate `p`.
  size_t CountPredicate(TermId p) const { return ByPredicate(p).size(); }

  /// Number of facts p(s, *).
  size_t CountPredicateSubject(TermId p, TermId s) const {
    return ByPredicateSubject(p, s).size();
  }

  /// Number of facts p(*, o).
  size_t CountPredicateObject(TermId p, TermId o) const {
    return ByPredicateObject(p, o).size();
  }

  // --- degree / adjacency statistics (CSR offset differences) --------------

  /// Number of facts with subject `s` (any predicate).
  size_t SubjectDegree(TermId s) const;

  /// Distinct subjects occurring under predicate `p`, ascending.
  std::span<const TermId> DistinctSubjectsOf(TermId p) const;

  /// Distinct objects occurring under predicate `p`, ascending.
  std::span<const TermId> DistinctObjectsOf(TermId p) const;

  /// One past the largest TermId present in any triple (0 when empty).
  /// EntitySet uses this as the default bitmap universe.
  size_t num_terms() const { return num_terms_; }

  /// Distinct predicates present, ascending.
  const std::vector<TermId>& predicates() const { return predicates_; }

  /// Distinct subjects present, ascending.
  const std::vector<TermId>& subjects() const { return subjects_; }

  /// The SPO-ordered triple list (for full scans / serialization).
  const std::vector<Triple>& spo() const { return spo_; }

  /// The PSO-ordered triple list.
  const std::vector<Triple>& pso() const { return pso_; }

 private:
  /// Per-predicate adjacency: its contiguous ranges in pso_/pos_ plus
  /// offset tables keyed by (subject - s_base) and (object - o_base).
  struct PredicateIndex {
    uint32_t pso_begin = 0;
    uint32_t pso_end = 0;
    uint32_t pos_begin = 0;
    uint32_t pos_end = 0;
    TermId s_base = 0;
    TermId o_base = 0;
    /// Absolute offsets into pso_; size = (max subject - s_base) + 2.
    std::vector<uint32_t> subj_offsets;
    /// Absolute offsets into pos_; size = (max object - o_base) + 2.
    std::vector<uint32_t> obj_offsets;
    std::vector<TermId> distinct_subjects;
    std::vector<TermId> distinct_objects;
  };

  static constexpr uint32_t kNoSlot = UINT32_MAX;

  const PredicateIndex* FindPredicate(TermId p) const {
    if (p >= pred_slot_.size() || pred_slot_[p] == kNoSlot) return nullptr;
    return &pred_index_[pred_slot_[p]];
  }

  std::vector<Triple> spo_;
  std::vector<Triple> pso_;
  std::vector<Triple> pos_;
  std::vector<TermId> predicates_;
  std::vector<TermId> subjects_;

  size_t num_terms_ = 0;
  /// CSR over spo_: facts of subject s live at [subject_offsets_[s],
  /// subject_offsets_[s + 1]).
  std::vector<uint32_t> subject_offsets_;
  /// TermId -> slot in pred_index_ (kNoSlot for non-predicates).
  std::vector<uint32_t> pred_slot_;
  std::vector<PredicateIndex> pred_index_;
};

}  // namespace remi
