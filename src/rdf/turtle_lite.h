// Turtle-lite: a pragmatic subset of W3C Turtle on top of the N-Triples
// core, covering what public KB dumps actually use:
//
//   @prefix dbr: <http://dbpedia.org/resource/> .      (and SPARQL PREFIX)
//   @base <http://dbpedia.org/> .
//   dbr:Paris dbo:capitalOf dbr:France ;               (predicate lists)
//             rdfs:label "Paris"@fr , "Paris"@en .     (object lists)
//   <relative> a dbo:City .                            ('a' = rdf:type)
//
// Not covered (rejected with ParseError): collections "(...)", anonymous
// blank nodes "[...]", numeric/boolean literal abbreviations, and
// multi-line """literals""".

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace remi {

/// \brief Parser for the Turtle subset described above.
///
/// Statement-oriented: the document is tokenized into '.'-terminated
/// statements; prefixes apply from their point of declaration onward.
class TurtleLiteParser {
 public:
  /// \param dict target dictionary (not owned).
  explicit TurtleLiteParser(Dictionary* dict) : dict_(dict) {}

  /// Parses a whole document.
  Result<std::vector<Triple>> ParseString(std::string_view text);

  /// Parses a file from disk.
  Result<std::vector<Triple>> ParseFile(const std::string& path);

  /// Declared prefixes after parsing (includes defaults like rdf:).
  const std::unordered_map<std::string, std::string>& prefixes() const {
    return prefixes_;
  }

 private:
  struct Token {
    enum class Kind {
      kIriRef,      // <...>
      kPrefixedName,  // ex:Paris or :Paris
      kLiteral,     // "..."[@lang|^^iri] (already canonicalized)
      kBlankNode,   // _:b1
      kA,           // the keyword 'a'
      kDot,
      kSemicolon,
      kComma,
      kAtPrefix,    // @prefix / PREFIX
      kAtBase,      // @base / BASE
    };
    Kind kind;
    std::string text;
    size_t line;
  };

  Result<std::vector<Token>> Tokenize(std::string_view text);
  Status ParseStatement(const std::vector<Token>& tokens, size_t* pos,
                        std::vector<Triple>* out);
  Result<TermId> ResolveTerm(const Token& token, bool allow_literal);
  Status Error(size_t line, const std::string& message) const;

  Dictionary* dict_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::string base_;
};

}  // namespace remi
