#include "rdf/rkf2.h"

#include <algorithm>

#include "util/fnv.h"
#include "util/varint.h"

namespace remi {

namespace {

Status Corrupt(const std::string& what) {
  return Status::Corruption("RKF2: " + what);
}

}  // namespace

void Rkf2Writer::AddSection(uint32_t id, std::string_view payload) {
  sections_.push_back(Section{id, payload});
}

std::string Rkf2Writer::Finish() const {
  const size_t table_end =
      kRkf2HeaderSize + sections_.size() * kRkf2TableEntrySize;

  // Lay out payloads on 8-byte boundaries.
  std::vector<uint64_t> offsets(sections_.size());
  size_t cursor = table_end;
  for (size_t i = 0; i < sections_.size(); ++i) {
    cursor = (cursor + 7) & ~size_t{7};
    offsets[i] = cursor;
    cursor += sections_[i].payload.size();
  }
  const size_t total = ((cursor + 7) & ~size_t{7}) + kRkf2FooterSize;

  std::string out;
  out.reserve(total);
  out.append(kRkf2Magic, sizeof(kRkf2Magic));
  PutFixed32(&out, kRkf2Version);
  PutFixed32(&out, kRkf2EndianMarker);
  PutFixed32(&out, static_cast<uint32_t>(sections_.size()));
  PutFixed32(&out, 0);  // reserved
  PutFixed32(&out, 0);  // reserved
  PutFixed64(&out, total);

  for (size_t i = 0; i < sections_.size(); ++i) {
    PutFixed32(&out, sections_[i].id);
    PutFixed32(&out, 0);  // reserved
    PutFixed64(&out, offsets[i]);
    PutFixed64(&out, sections_[i].payload.size());
    PutFixed64(&out, Fnv1a64Wide(sections_[i].payload));
  }

  for (size_t i = 0; i < sections_.size(); ++i) {
    out.append(offsets[i] - out.size(), '\0');  // alignment padding
    out.append(sections_[i].payload);
  }
  out.append(total - kRkf2FooterSize - out.size(), '\0');
  PutFixed64(&out, Fnv1a64Wide(std::string_view(out.data(), table_end)));
  return out;
}

Result<Rkf2Image> Rkf2Image::Parse(std::string_view file) {
  if (file.size() < kRkf2HeaderSize + kRkf2FooterSize) {
    return Corrupt("file too short (" + std::to_string(file.size()) +
                   " bytes)");
  }
  if (file.compare(0, sizeof(kRkf2Magic),
                   std::string_view(kRkf2Magic, sizeof(kRkf2Magic))) != 0) {
    return Corrupt("bad magic");
  }
  const uint32_t version = GetFixed32(file, 4);
  if (version != kRkf2Version) {
    return Corrupt("unsupported container version " + std::to_string(version));
  }
  if (GetFixed32(file, 8) != kRkf2EndianMarker) {
    return Corrupt("endianness mismatch");
  }
  const uint32_t count = GetFixed32(file, 12);
  if (count > kRkf2MaxSections) {
    return Corrupt("section count " + std::to_string(count) +
                   " exceeds limit");
  }
  const uint64_t declared_size = GetFixed64(file, 24);
  if (declared_size != file.size()) {
    return Corrupt("declared size " + std::to_string(declared_size) +
                   " != actual size " + std::to_string(file.size()));
  }
  const uint64_t table_end =
      kRkf2HeaderSize + static_cast<uint64_t>(count) * kRkf2TableEntrySize;
  if (table_end + kRkf2FooterSize > file.size()) {
    return Corrupt("section table exceeds file size");
  }

  const uint64_t footer =
      GetFixed64(file, file.size() - kRkf2FooterSize);
  if (footer != Fnv1a64Wide(file.substr(0, table_end))) {
    return Corrupt("header/table checksum mismatch");
  }

  Rkf2Image image;
  image.entries_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t entry = kRkf2HeaderSize + i * kRkf2TableEntrySize;
    const uint32_t id = GetFixed32(file, entry);
    const uint64_t offset = GetFixed64(file, entry + 8);
    const uint64_t length = GetFixed64(file, entry + 16);
    const uint64_t checksum = GetFixed64(file, entry + 24);
    const std::string ctx = "section " + std::to_string(id);
    if (offset % 8 != 0) return Corrupt(ctx + ": unaligned offset");
    if (offset < table_end || offset > file.size() - kRkf2FooterSize ||
        length > file.size() - kRkf2FooterSize - offset) {
      return Corrupt(ctx + ": payload [" + std::to_string(offset) + ", +" +
                     std::to_string(length) + ") out of bounds");
    }
    for (const Entry& seen : image.entries_) {
      if (seen.id == id) return Corrupt(ctx + ": duplicate section id");
    }
    const std::string_view payload = file.substr(offset, length);
    if (checksum != Fnv1a64Wide(payload)) {
      return Corrupt(ctx + ": payload checksum mismatch");
    }
    image.entries_.push_back(Entry{id, payload});
  }
  return image;
}

bool Rkf2Image::Has(uint32_t id) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

Result<std::string_view> Rkf2Image::Section(uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return e.payload;
  }
  return Corrupt("missing section " + std::to_string(id));
}

}  // namespace remi
