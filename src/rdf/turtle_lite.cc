#include "rdf/turtle_lite.h"

#include <fstream>
#include <sstream>

#include "rdf/ntriples.h"
#include "util/string_util.h"

namespace remi {

namespace {

constexpr const char* kRdfTypeFullIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

bool IsWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == '%';
}

}  // namespace

Status TurtleLiteParser::Error(size_t line,
                               const std::string& message) const {
  return Status::ParseError("line " + std::to_string(line) + ": " + message);
}

Result<std::vector<TurtleLiteParser::Token>> TurtleLiteParser::Tokenize(
    std::string_view text) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (IsWs(c)) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '.') {
      // Distinguish statement dot from a dot inside a prefixed name; a
      // statement dot is followed by whitespace/EOF/comment.
      tokens.push_back({Token::Kind::kDot, ".", line});
      ++i;
      continue;
    }
    if (c == ';') {
      tokens.push_back({Token::Kind::kSemicolon, ";", line});
      ++i;
      continue;
    }
    if (c == ',') {
      tokens.push_back({Token::Kind::kComma, ",", line});
      ++i;
      continue;
    }
    if (c == '<') {
      const size_t end = text.find('>', i + 1);
      if (end == std::string_view::npos) {
        return Error(line, "unterminated IRI");
      }
      tokens.push_back(
          {Token::Kind::kIriRef, std::string(text.substr(i + 1, end - i - 1)),
           line});
      i = end + 1;
      continue;
    }
    if (c == '"') {
      // Reuse the N-Triples literal scanner: find closing quote honouring
      // escapes, then the optional @lang / ^^<iri> suffix.
      if (i + 2 < text.size() && text[i + 1] == '"' && text[i + 2] == '"') {
        return Error(line, "multi-line \"\"\"literals\"\"\" not supported");
      }
      size_t j = i + 1;
      while (j < text.size()) {
        if (text[j] == '\\') {
          j += 2;
          continue;
        }
        if (text[j] == '"') break;
        if (text[j] == '\n') ++line;
        ++j;
      }
      if (j >= text.size()) return Error(line, "unterminated literal");
      auto body = DecodeEscapes(text.substr(i + 1, j - i - 1));
      if (!body.ok()) return Error(line, body.status().message());
      size_t after = j + 1;
      std::string suffix;
      if (after < text.size() && text[after] == '@') {
        size_t end = after + 1;
        while (end < text.size() &&
               ((text[end] >= 'a' && text[end] <= 'z') ||
                (text[end] >= 'A' && text[end] <= 'Z') ||
                (text[end] >= '0' && text[end] <= '9') || text[end] == '-')) {
          ++end;
        }
        suffix = std::string(text.substr(after, end - after));
        after = end;
      } else if (after + 1 < text.size() && text[after] == '^' &&
                 text[after + 1] == '^') {
        if (after + 2 >= text.size() || text[after + 2] != '<') {
          return Error(line, "expected <iri> after ^^");
        }
        const size_t end = text.find('>', after + 3);
        if (end == std::string_view::npos) {
          return Error(line, "unterminated datatype IRI");
        }
        suffix = std::string(text.substr(after, end - after + 1));
        after = end + 1;
      }
      tokens.push_back(
          {Token::Kind::kLiteral, "\"" + *body + "\"" + suffix, line});
      i = after;
      continue;
    }
    if (c == '_' && i + 1 < text.size() && text[i + 1] == ':') {
      size_t end = i + 2;
      while (end < text.size() && IsNameChar(text[end])) ++end;
      tokens.push_back(
          {Token::Kind::kBlankNode, std::string(text.substr(i + 2, end - i - 2)),
           line});
      i = end;
      continue;
    }
    if (c == '@') {
      size_t end = i + 1;
      while (end < text.size() && !IsWs(text[end])) ++end;
      const std::string keyword =
          AsciiToLower(text.substr(i + 1, end - i - 1));
      if (keyword == "prefix") {
        tokens.push_back({Token::Kind::kAtPrefix, "@prefix", line});
      } else if (keyword == "base") {
        tokens.push_back({Token::Kind::kAtBase, "@base", line});
      } else {
        return Error(line, "unknown directive @" + keyword);
      }
      i = end;
      continue;
    }
    if (c == '[' || c == '(') {
      return Error(line, std::string("unsupported Turtle construct '") + c +
                             "' (anonymous nodes/collections)");
    }
    // Bare word: 'a', PREFIX/BASE (SPARQL style), or a prefixed name.
    {
      size_t end = i;
      while (end < text.size() && !IsWs(text[end]) && text[end] != ';' &&
             text[end] != ',' && text[end] != '#') {
        ++end;
      }
      std::string word(text.substr(i, end - i));
      // A trailing '.' terminates the statement unless it is inside the
      // local name followed by more name chars (rare); treat trailing '.'
      // as the statement dot.
      bool trailing_dot = false;
      while (!word.empty() && word.back() == '.') {
        word.pop_back();
        trailing_dot = true;
        --end;
      }
      if (word == "a") {
        tokens.push_back({Token::Kind::kA, "a", line});
      } else if (AsciiToLower(word) == "prefix") {
        tokens.push_back({Token::Kind::kAtPrefix, "PREFIX", line});
      } else if (AsciiToLower(word) == "base") {
        tokens.push_back({Token::Kind::kAtBase, "BASE", line});
      } else if (word.find(':') != std::string::npos) {
        tokens.push_back({Token::Kind::kPrefixedName, word, line});
      } else if (!word.empty()) {
        return Error(line, "unexpected token '" + word + "'");
      }
      (void)trailing_dot;
      i = end;
      continue;
    }
  }
  return tokens;
}

Result<TermId> TurtleLiteParser::ResolveTerm(const Token& token,
                                             bool allow_literal) {
  switch (token.kind) {
    case Token::Kind::kIriRef: {
      // Resolve against @base for relative IRIs (no scheme).
      const std::string& iri = token.text;
      if (!base_.empty() && iri.find("://") == std::string::npos &&
          !StartsWith(iri, "urn:") && !StartsWith(iri, "mailto:")) {
        return dict_->InternIri(base_ + iri);
      }
      return dict_->InternIri(iri);
    }
    case Token::Kind::kPrefixedName: {
      const size_t colon = token.text.find(':');
      const std::string prefix = token.text.substr(0, colon);
      const std::string local = token.text.substr(colon + 1);
      auto it = prefixes_.find(prefix);
      if (it == prefixes_.end()) {
        return Error(token.line, "undeclared prefix '" + prefix + ":'");
      }
      return dict_->InternIri(it->second + local);
    }
    case Token::Kind::kLiteral:
      if (!allow_literal) {
        return Error(token.line, "literal not allowed here");
      }
      return dict_->Intern(TermKind::kLiteral, token.text);
    case Token::Kind::kBlankNode:
      return dict_->Intern(TermKind::kBlank, token.text);
    case Token::Kind::kA:
      return dict_->InternIri(kRdfTypeFullIri);
    default:
      return Error(token.line, "expected a term");
  }
}

Status TurtleLiteParser::ParseStatement(const std::vector<Token>& tokens,
                                        size_t* pos,
                                        std::vector<Triple>* out) {
  const Token& first = tokens[*pos];

  // Directives.
  if (first.kind == Token::Kind::kAtPrefix) {
    if (*pos + 2 >= tokens.size() ||
        tokens[*pos + 1].kind != Token::Kind::kPrefixedName ||
        tokens[*pos + 2].kind != Token::Kind::kIriRef) {
      return Error(first.line, "malformed @prefix directive");
    }
    const std::string& decl = tokens[*pos + 1].text;
    const size_t colon = decl.find(':');
    if (colon == std::string::npos || colon != decl.size() - 1) {
      return Error(first.line, "prefix declaration must end with ':'");
    }
    prefixes_[decl.substr(0, colon)] = tokens[*pos + 2].text;
    *pos += 3;
    // @prefix ends with '.'; SPARQL-style PREFIX does not.
    if (*pos < tokens.size() && tokens[*pos].kind == Token::Kind::kDot) {
      ++*pos;
    }
    return Status::OK();
  }
  if (first.kind == Token::Kind::kAtBase) {
    if (*pos + 1 >= tokens.size() ||
        tokens[*pos + 1].kind != Token::Kind::kIriRef) {
      return Error(first.line, "malformed @base directive");
    }
    base_ = tokens[*pos + 1].text;
    *pos += 2;
    if (*pos < tokens.size() && tokens[*pos].kind == Token::Kind::kDot) {
      ++*pos;
    }
    return Status::OK();
  }

  // Triple statement: subject (predicate objectList)+ '.'
  auto subject = ResolveTerm(first, /*allow_literal=*/false);
  if (!subject.ok()) return subject.status();
  ++*pos;

  for (;;) {
    if (*pos >= tokens.size()) {
      return Error(first.line, "statement missing '.'");
    }
    auto predicate = ResolveTerm(tokens[*pos], /*allow_literal=*/false);
    if (!predicate.ok()) return predicate.status();
    if (dict_->kind(*predicate) != TermKind::kIri) {
      return Error(tokens[*pos].line, "predicate must be an IRI");
    }
    ++*pos;

    for (;;) {
      if (*pos >= tokens.size()) {
        return Error(first.line, "object expected before end of input");
      }
      auto object = ResolveTerm(tokens[*pos], /*allow_literal=*/true);
      if (!object.ok()) return object.status();
      ++*pos;
      out->push_back(Triple{*subject, *predicate, *object});
      if (*pos < tokens.size() && tokens[*pos].kind == Token::Kind::kComma) {
        ++*pos;  // another object for the same predicate
        continue;
      }
      break;
    }

    if (*pos < tokens.size() &&
        tokens[*pos].kind == Token::Kind::kSemicolon) {
      ++*pos;  // another predicate for the same subject
      // Permit a trailing ';' before '.', as Turtle does.
      if (*pos < tokens.size() && tokens[*pos].kind == Token::Kind::kDot) {
        ++*pos;
        return Status::OK();
      }
      continue;
    }
    if (*pos < tokens.size() && tokens[*pos].kind == Token::Kind::kDot) {
      ++*pos;
      return Status::OK();
    }
    return Error(first.line, "expected ';', ',' or '.' in statement");
  }
}

Result<std::vector<Triple>> TurtleLiteParser::ParseString(
    std::string_view text) {
  // Default well-known prefixes.
  prefixes_.try_emplace("rdf",
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
  prefixes_.try_emplace("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
  prefixes_.try_emplace("xsd", "http://www.w3.org/2001/XMLSchema#");

  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  std::vector<Triple> out;
  size_t pos = 0;
  while (pos < tokens->size()) {
    REMI_RETURN_NOT_OK(ParseStatement(*tokens, &pos, &out));
  }
  return out;
}

Result<std::vector<Triple>> TurtleLiteParser::ParseFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return ParseString(buf.str());
}

}  // namespace remi
