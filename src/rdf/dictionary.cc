#include "rdf/dictionary.h"

#include "util/logging.h"

namespace remi {

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  base_kinds_ = other.base_kinds_;
  base_offsets_ = other.base_offsets_;
  base_blob_ = other.base_blob_;
  base_size_ = other.base_size_;
  tail_ = other.tail_;
  index_ = std::make_unique<ReverseIndex>();  // rebuilt lazily
  return *this;
}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  base_kinds_ = other.base_kinds_;
  base_offsets_ = other.base_offsets_;
  base_blob_ = other.base_blob_;
  base_size_ = other.base_size_;
  tail_ = std::move(other.tail_);
  index_ = std::move(other.index_);
  other.base_kinds_ = nullptr;
  other.base_offsets_ = nullptr;
  other.base_blob_ = nullptr;
  other.base_size_ = 0;
  other.tail_.clear();
  other.index_ = std::make_unique<ReverseIndex>();
  return *this;
}

Dictionary Dictionary::View(const uint8_t* kinds, const uint32_t* offsets,
                            const char* blob, size_t size) {
  Dictionary dict;
  dict.base_kinds_ = kinds;
  dict.base_offsets_ = offsets;
  dict.base_blob_ = blob;
  dict.base_size_ = size;
  return dict;
}

std::string Dictionary::MakeKey(TermKind kind, std::string_view lexical) {
  std::string key;
  key.reserve(lexical.size() + 1);
  key.push_back(static_cast<char>('0' + static_cast<int>(kind)));
  key.append(lexical);
  return key;
}

Dictionary::ReverseIndex& Dictionary::EnsureIndex() const {
  std::call_once(index_->once, [this] {
    index_->map.reserve(size());
    for (TermId id = 0; id < size(); ++id) {
      index_->map.emplace(MakeKey(kind(id), lexical(id)), id);
    }
  });
  return *index_;
}

TermId Dictionary::Intern(TermKind kind, std::string_view lexical) {
  ReverseIndex& index = EnsureIndex();
  std::string key = MakeKey(kind, lexical);
  auto it = index.map.find(key);
  if (it != index.map.end()) return it->second;
  REMI_CHECK(size() < kNullTerm);
  const TermId id = static_cast<TermId>(size());
  tail_.push_back(Term{kind, std::string(lexical)});
  index.map.emplace(std::move(key), id);
  return id;
}

Dictionary Dictionary::OwnedCopy() const {
  Dictionary copy;
  copy.tail_.reserve(size());
  for (TermId id = 0; id < size(); ++id) {
    copy.tail_.push_back(Term{kind(id), std::string(lexical(id))});
  }
  return copy;
}

Result<TermId> Dictionary::Lookup(TermKind kind,
                                  std::string_view lexical) const {
  const ReverseIndex& index = EnsureIndex();
  auto it = index.map.find(MakeKey(kind, lexical));
  if (it == index.map.end()) {
    return Status::NotFound("term not in dictionary: " +
                            std::string(lexical));
  }
  return it->second;
}

}  // namespace remi
