#include "rdf/dictionary.h"

#include "util/logging.h"

namespace remi {

std::string Dictionary::MakeKey(TermKind kind, std::string_view lexical) {
  std::string key;
  key.reserve(lexical.size() + 1);
  key.push_back(static_cast<char>('0' + static_cast<int>(kind)));
  key.append(lexical);
  return key;
}

TermId Dictionary::Intern(TermKind kind, std::string_view lexical) {
  std::string key = MakeKey(kind, lexical);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  REMI_CHECK(terms_.size() < kNullTerm);
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(Term{kind, std::string(lexical)});
  index_.emplace(std::move(key), id);
  return id;
}

Result<TermId> Dictionary::Lookup(TermKind kind,
                                  std::string_view lexical) const {
  auto it = index_.find(MakeKey(kind, lexical));
  if (it == index_.end()) {
    return Status::NotFound("term not in dictionary: " +
                            std::string(lexical));
  }
  return it->second;
}

}  // namespace remi
