// Dictionary encoding of RDF terms: string <-> dense TermId.
//
// This is the first half of the paper's HDT storage layer (§3.5.1): HDT
// dictionary-encodes all terms and stores triples as id tuples. Interning
// is idempotent; ids are stable for the lifetime of the dictionary.

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace remi {

/// \brief Append-only term dictionary.
///
/// Not thread-safe for interning; concurrent read-only lookup is safe after
/// construction completes.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id of (kind, lexical), interning it if new.
  TermId Intern(TermKind kind, std::string_view lexical);

  /// Convenience for IRIs.
  TermId InternIri(std::string_view iri) {
    return Intern(TermKind::kIri, iri);
  }

  /// Id of an existing term, or NotFound.
  Result<TermId> Lookup(TermKind kind, std::string_view lexical) const;

  /// The decoded term for an id. Id must be < size().
  const Term& term(TermId id) const { return terms_[id]; }

  TermKind kind(TermId id) const { return terms_[id].kind; }
  const std::string& lexical(TermId id) const { return terms_[id].lexical; }
  bool IsIri(TermId id) const { return kind(id) == TermKind::kIri; }
  bool IsLiteral(TermId id) const { return kind(id) == TermKind::kLiteral; }
  bool IsBlank(TermId id) const { return kind(id) == TermKind::kBlank; }

  size_t size() const { return terms_.size(); }

 private:
  static std::string MakeKey(TermKind kind, std::string_view lexical);

  std::vector<Term> terms_;
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace remi
