// Dictionary encoding of RDF terms: string <-> dense TermId.
//
// This is the first half of the paper's HDT storage layer (§3.5.1): HDT
// dictionary-encodes all terms and stores triples as id tuples. Interning
// is idempotent; ids are stable for the lifetime of the dictionary.
//
// The dictionary has two storage modes that share one read path:
//
//   * owning mode — the usual append-only in-memory dictionary, grown via
//     Intern;
//   * view mode — Dictionary::View adopts three external buffers (a kind
//     byte per term, a monotone offset table, and one concatenated lexical
//     blob), e.g. sections of an mmap'ed RKF2 snapshot. Nothing is copied;
//     the buffers must outlive the dictionary. A view dictionary still
//     supports Intern: new terms append to an owned tail after the base.
//
// The reverse index used by Lookup is built lazily on first use, so a
// snapshot load stays zero-copy until someone actually needs string ->
// id resolution.

#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace remi {

/// \brief Append-only term dictionary (owning or view-backed).
///
/// Not thread-safe for interning; concurrent read-only access (including
/// Lookup, which may build the reverse index once) is safe after
/// construction completes.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary& other) { *this = other; }
  Dictionary& operator=(const Dictionary& other);
  Dictionary(Dictionary&& other) noexcept { *this = std::move(other); }
  Dictionary& operator=(Dictionary&& other) noexcept;

  /// View mode: adopts external buffers for ids [0, size). `kinds` holds
  /// `size` TermKind bytes; `offsets` holds `size + 1` monotone byte
  /// offsets into `blob`. The buffers are not copied and must outlive the
  /// dictionary; the caller is responsible for having validated them
  /// (kind bytes <= kBlank, offsets monotone, offsets[size] == blob size).
  static Dictionary View(const uint8_t* kinds, const uint32_t* offsets,
                         const char* blob, size_t size);

  /// Returns the id of (kind, lexical), interning it if new.
  TermId Intern(TermKind kind, std::string_view lexical);

  /// Convenience for IRIs.
  TermId InternIri(std::string_view iri) {
    return Intern(TermKind::kIri, iri);
  }

  /// Id of an existing term, or NotFound.
  Result<TermId> Lookup(TermKind kind, std::string_view lexical) const;

  /// A fully owning deep copy (same ids). Copying a view dictionary with
  /// the copy constructor shares the external buffers; use this instead
  /// when the copy must outlive the buffer owner (e.g. extracting the
  /// dictionary from a snapshot-backed KnowledgeBase).
  Dictionary OwnedCopy() const;

  /// The decoded term for an id (by value: view mode has no materialized
  /// Term objects). Id must be < size().
  Term term(TermId id) const { return Term{kind(id), std::string(lexical(id))}; }

  TermKind kind(TermId id) const {
    return id < base_size_ ? static_cast<TermKind>(base_kinds_[id])
                           : tail_[id - base_size_].kind;
  }
  std::string_view lexical(TermId id) const {
    if (id < base_size_) {
      return {base_blob_ + base_offsets_[id],
              base_offsets_[id + 1] - base_offsets_[id]};
    }
    return tail_[id - base_size_].lexical;
  }
  bool IsIri(TermId id) const { return kind(id) == TermKind::kIri; }
  bool IsLiteral(TermId id) const { return kind(id) == TermKind::kLiteral; }
  bool IsBlank(TermId id) const { return kind(id) == TermKind::kBlank; }

  size_t size() const { return base_size_ + tail_.size(); }

 private:
  /// Lazily built reverse index. Wrapped in a unique_ptr because
  /// std::once_flag is neither movable nor copyable.
  struct ReverseIndex {
    std::once_flag once;
    std::unordered_map<std::string, TermId> map;
  };

  static std::string MakeKey(TermKind kind, std::string_view lexical);
  ReverseIndex& EnsureIndex() const;

  // View base: ids [0, base_size_). Null/empty in pure owning mode.
  const uint8_t* base_kinds_ = nullptr;
  const uint32_t* base_offsets_ = nullptr;
  const char* base_blob_ = nullptr;
  size_t base_size_ = 0;

  // Owned tail: ids [base_size_, size()).
  std::vector<Term> tail_;

  /// Always non-null so that concurrent Lookups only race inside
  /// call_once. Rebuilt empty on copy/move-from.
  mutable std::unique_ptr<ReverseIndex> index_ =
      std::make_unique<ReverseIndex>();
};

}  // namespace remi
