// Id-encoded RDF triple and its index orderings.

#pragma once

#include <tuple>

#include "rdf/term.h"

namespace remi {

/// \brief A fact p(s, o), stored as three dictionary ids.
struct Triple {
  TermId s = kNullTerm;
  TermId p = kNullTerm;
  TermId o = kNullTerm;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Ordering for the SPO index.
struct OrderSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};

/// Ordering for the PSO index.
struct OrderPso {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.s, a.o) < std::tie(b.p, b.s, b.o);
  }
};

/// Ordering for the POS index.
struct OrderPos {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};

}  // namespace remi
