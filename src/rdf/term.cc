#include "rdf/term.h"

namespace remi {

const char* TermKindToString(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "IRI";
    case TermKind::kLiteral:
      return "Literal";
    case TermKind::kBlank:
      return "Blank";
  }
  return "Unknown";
}

}  // namespace remi
