#include "rdf/triple_store.h"

#include <algorithm>

namespace remi {

TripleStore TripleStore::Build(std::vector<Triple> triples) {
  TripleStore store;
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  store.spo_ = std::move(triples);
  store.pso_ = store.spo_;
  std::sort(store.pso_.begin(), store.pso_.end(), OrderPso());
  store.pos_ = store.spo_;
  std::sort(store.pos_.begin(), store.pos_.end(), OrderPos());

  TermId max_id = 0;
  for (const Triple& t : store.spo_) {
    max_id = std::max({max_id, t.s, t.p, t.o});
  }
  store.num_terms_ = store.spo_.empty() ? 0 : static_cast<size_t>(max_id) + 1;

  // Global subject CSR over the SPO ordering.
  store.subject_offsets_.assign(store.num_terms_ + 1, 0);
  for (const Triple& t : store.spo_) {
    ++store.subject_offsets_[t.s + 1];
  }
  for (size_t i = 1; i < store.subject_offsets_.size(); ++i) {
    store.subject_offsets_[i] += store.subject_offsets_[i - 1];
  }
  for (const Triple& t : store.spo_) {
    if (store.subjects_.empty() || store.subjects_.back() != t.s) {
      store.subjects_.push_back(t.s);
    }
  }

  // Per-predicate adjacency. pso_ and pos_ hold each predicate's facts
  // contiguously; one pass over each ordering fills the offset tables.
  store.pred_slot_.assign(store.num_terms_, kNoSlot);
  for (size_t i = 0; i < store.pso_.size();) {
    const TermId p = store.pso_[i].p;
    size_t j = i;
    while (j < store.pso_.size() && store.pso_[j].p == p) ++j;

    PredicateIndex index;
    index.pso_begin = static_cast<uint32_t>(i);
    index.pso_end = static_cast<uint32_t>(j);
    index.s_base = store.pso_[i].s;
    const TermId s_max = store.pso_[j - 1].s;
    index.subj_offsets.assign(s_max - index.s_base + 2, 0);
    for (size_t k = i; k < j; ++k) {
      ++index.subj_offsets[store.pso_[k].s - index.s_base + 1];
      if (index.distinct_subjects.empty() ||
          index.distinct_subjects.back() != store.pso_[k].s) {
        index.distinct_subjects.push_back(store.pso_[k].s);
      }
    }
    uint32_t running = index.pso_begin;
    for (size_t k = 0; k < index.subj_offsets.size(); ++k) {
      running += index.subj_offsets[k];
      index.subj_offsets[k] = running;
    }

    store.predicates_.push_back(p);
    store.pred_slot_[p] = static_cast<uint32_t>(store.pred_index_.size());
    store.pred_index_.push_back(std::move(index));
    i = j;
  }
  for (size_t i = 0; i < store.pos_.size();) {
    const TermId p = store.pos_[i].p;
    size_t j = i;
    while (j < store.pos_.size() && store.pos_[j].p == p) ++j;

    PredicateIndex& index = store.pred_index_[store.pred_slot_[p]];
    index.pos_begin = static_cast<uint32_t>(i);
    index.pos_end = static_cast<uint32_t>(j);
    index.o_base = store.pos_[i].o;
    const TermId o_max = store.pos_[j - 1].o;
    index.obj_offsets.assign(o_max - index.o_base + 2, 0);
    for (size_t k = i; k < j; ++k) {
      ++index.obj_offsets[store.pos_[k].o - index.o_base + 1];
      if (index.distinct_objects.empty() ||
          index.distinct_objects.back() != store.pos_[k].o) {
        index.distinct_objects.push_back(store.pos_[k].o);
      }
    }
    uint32_t running = index.pos_begin;
    for (size_t k = 0; k < index.obj_offsets.size(); ++k) {
      running += index.obj_offsets[k];
      index.obj_offsets[k] = running;
    }
    i = j;
  }
  return store;
}

std::span<const Triple> TripleStore::BySubject(TermId s) const {
  if (s >= num_terms_) return {};
  const uint32_t b = subject_offsets_[s];
  const uint32_t e = subject_offsets_[s + 1];
  return {spo_.data() + b, static_cast<size_t>(e - b)};
}

size_t TripleStore::SubjectDegree(TermId s) const {
  if (s >= num_terms_) return 0;
  return subject_offsets_[s + 1] - subject_offsets_[s];
}

std::span<const Triple> TripleStore::ByPredicate(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {pso_.data() + index->pso_begin,
          static_cast<size_t>(index->pso_end - index->pso_begin)};
}

std::span<const Triple> TripleStore::ByPredicateObjectOrder(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {pos_.data() + index->pos_begin,
          static_cast<size_t>(index->pos_end - index->pos_begin)};
}

std::span<const Triple> TripleStore::ByPredicateSubject(TermId p,
                                                        TermId s) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr || s < index->s_base ||
      s - index->s_base + 1 >= index->subj_offsets.size()) {
    return {};
  }
  const uint32_t b = index->subj_offsets[s - index->s_base];
  const uint32_t e = index->subj_offsets[s - index->s_base + 1];
  return {pso_.data() + b, static_cast<size_t>(e - b)};
}

std::span<const Triple> TripleStore::ByPredicateObject(TermId p,
                                                       TermId o) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr || o < index->o_base ||
      o - index->o_base + 1 >= index->obj_offsets.size()) {
    return {};
  }
  const uint32_t b = index->obj_offsets[o - index->o_base];
  const uint32_t e = index->obj_offsets[o - index->o_base + 1];
  return {pos_.data() + b, static_cast<size_t>(e - b)};
}

std::span<const TermId> TripleStore::DistinctSubjectsOf(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return index->distinct_subjects;
}

std::span<const TermId> TripleStore::DistinctObjectsOf(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return index->distinct_objects;
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  const auto range = ByPredicateSubject(p, s);  // sorted by object
  auto it = std::lower_bound(
      range.begin(), range.end(), o,
      [](const Triple& t, TermId key) { return t.o < key; });
  return it != range.end() && it->o == o;
}

}  // namespace remi
