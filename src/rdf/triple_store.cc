#include "rdf/triple_store.h"

#include <algorithm>

namespace remi {

namespace {

// Returns the subrange of `v` matching the partial key via the given
// heterogeneous comparators (lo: element < key, hi: key < element).
template <typename Lo, typename Hi>
std::span<const Triple> Range(const std::vector<Triple>& v, Lo lo, Hi hi) {
  auto b = std::lower_bound(v.begin(), v.end(), 0, lo);
  auto e = std::upper_bound(b, v.end(), 0, hi);
  if (b == e) return {};
  return {v.data() + (b - v.begin()), static_cast<size_t>(e - b)};
}

}  // namespace

TripleStore TripleStore::Build(std::vector<Triple> triples) {
  TripleStore store;
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  store.spo_ = std::move(triples);
  store.pso_ = store.spo_;
  std::sort(store.pso_.begin(), store.pso_.end(), OrderPso());
  store.pos_ = store.spo_;
  std::sort(store.pos_.begin(), store.pos_.end(), OrderPos());

  for (const Triple& t : store.pso_) {
    if (store.predicates_.empty() || store.predicates_.back() != t.p) {
      store.predicates_.push_back(t.p);
    }
  }
  for (const Triple& t : store.spo_) {
    if (store.subjects_.empty() || store.subjects_.back() != t.s) {
      store.subjects_.push_back(t.s);
    }
  }
  return store;
}

std::span<const Triple> TripleStore::BySubject(TermId s) const {
  if (spo_.empty()) return {};
  auto lo = [s](const Triple& t, int) { return t.s < s; };
  auto hi = [s](int, const Triple& t) { return s < t.s; };
  return Range(spo_, lo, hi);
}

std::span<const Triple> TripleStore::ByPredicate(TermId p) const {
  if (pso_.empty()) return {};
  auto lo = [p](const Triple& t, int) { return t.p < p; };
  auto hi = [p](int, const Triple& t) { return p < t.p; };
  return Range(pso_, lo, hi);
}

std::span<const Triple> TripleStore::ByPredicateObjectOrder(TermId p) const {
  if (pos_.empty()) return {};
  auto lo = [p](const Triple& t, int) { return t.p < p; };
  auto hi = [p](int, const Triple& t) { return p < t.p; };
  return Range(pos_, lo, hi);
}

std::span<const Triple> TripleStore::ByPredicateSubject(TermId p,
                                                        TermId s) const {
  if (pso_.empty()) return {};
  auto lo = [p, s](const Triple& t, int) {
    return t.p < p || (t.p == p && t.s < s);
  };
  auto hi = [p, s](int, const Triple& t) {
    return p < t.p || (p == t.p && s < t.s);
  };
  return Range(pso_, lo, hi);
}

std::span<const Triple> TripleStore::ByPredicateObject(TermId p,
                                                       TermId o) const {
  if (pos_.empty()) return {};
  auto lo = [p, o](const Triple& t, int) {
    return t.p < p || (t.p == p && t.o < o);
  };
  auto hi = [p, o](int, const Triple& t) {
    return p < t.p || (p == t.p && o < t.o);
  };
  return Range(pos_, lo, hi);
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  const Triple key{s, p, o};
  return std::binary_search(spo_.begin(), spo_.end(), key, OrderSpo());
}

}  // namespace remi
