#include "rdf/triple_store.h"

#include <algorithm>

#include "util/logging.h"

namespace remi {

TripleStore TripleStore::Build(std::vector<Triple> triples) {
  TripleStore store;
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  std::vector<Triple> pso = triples;
  std::sort(pso.begin(), pso.end(), OrderPso());
  std::vector<Triple> pos = triples;
  std::sort(pos.begin(), pos.end(), OrderPos());

  TermId max_id = 0;
  for (const Triple& t : triples) {
    max_id = std::max({max_id, t.s, t.p, t.o});
  }
  store.num_terms_ = triples.empty() ? 0 : static_cast<size_t>(max_id) + 1;

  // Global subject CSR over the SPO ordering.
  std::vector<uint32_t> subject_offsets(store.num_terms_ + 1, 0);
  for (const Triple& t : triples) {
    ++subject_offsets[t.s + 1];
  }
  for (size_t i = 1; i < subject_offsets.size(); ++i) {
    subject_offsets[i] += subject_offsets[i - 1];
  }
  for (const Triple& t : triples) {
    if (store.subjects_.empty() || store.subjects_.back() != t.s) {
      store.subjects_.push_back(t.s);
    }
  }

  // Per-predicate adjacency. pso and pos hold each predicate's facts
  // contiguously; one pass over each ordering fills the offset tables.
  // All per-predicate arrays are slices of four shared pools so the
  // whole index round-trips through snapshots as a handful of flat
  // arrays (and Build does O(#predicates) fewer allocations).
  std::vector<uint32_t> pred_slot(store.num_terms_, kNoSlot);
  std::vector<PredicateIndex> pred_index;
  std::vector<uint32_t> subj_offset_pool;
  std::vector<uint32_t> obj_offset_pool;
  std::vector<TermId> distinct_subject_pool;
  std::vector<TermId> distinct_object_pool;

  for (size_t i = 0; i < pso.size();) {
    const TermId p = pso[i].p;
    size_t j = i;
    while (j < pso.size() && pso[j].p == p) ++j;

    PredicateIndex index;
    index.pso_begin = static_cast<uint32_t>(i);
    index.pso_end = static_cast<uint32_t>(j);
    index.s_base = pso[i].s;
    const TermId s_max = pso[j - 1].s;

    index.subj_off_begin = static_cast<uint32_t>(subj_offset_pool.size());
    subj_offset_pool.resize(subj_offset_pool.size() +
                                (s_max - index.s_base) + 2,
                            0);
    // The pool sums key ranges over all predicates, which is NOT bounded
    // by the triple count; past 2^32 entries the uint32 slice indexes in
    // PredicateIndex would silently wrap and alias other predicates.
    REMI_CHECK(subj_offset_pool.size() <= UINT32_MAX);
    index.subj_off_end = static_cast<uint32_t>(subj_offset_pool.size());
    uint32_t* counts = subj_offset_pool.data() + index.subj_off_begin;
    index.ds_begin = static_cast<uint32_t>(distinct_subject_pool.size());
    for (size_t k = i; k < j; ++k) {
      ++counts[pso[k].s - index.s_base + 1];
      if (distinct_subject_pool.size() == index.ds_begin ||
          distinct_subject_pool.back() != pso[k].s) {
        distinct_subject_pool.push_back(pso[k].s);
      }
    }
    index.ds_end = static_cast<uint32_t>(distinct_subject_pool.size());
    uint32_t running = index.pso_begin;
    for (uint32_t k = index.subj_off_begin; k < index.subj_off_end; ++k) {
      running += subj_offset_pool[k];
      subj_offset_pool[k] = running;
    }

    store.predicates_.push_back(p);
    pred_slot[p] = static_cast<uint32_t>(pred_index.size());
    pred_index.push_back(index);
    i = j;
  }
  for (size_t i = 0; i < pos.size();) {
    const TermId p = pos[i].p;
    size_t j = i;
    while (j < pos.size() && pos[j].p == p) ++j;

    PredicateIndex& index = pred_index[pred_slot[p]];
    index.pos_begin = static_cast<uint32_t>(i);
    index.pos_end = static_cast<uint32_t>(j);
    index.o_base = pos[i].o;
    const TermId o_max = pos[j - 1].o;

    index.obj_off_begin = static_cast<uint32_t>(obj_offset_pool.size());
    obj_offset_pool.resize(obj_offset_pool.size() + (o_max - index.o_base) + 2,
                           0);
    REMI_CHECK(obj_offset_pool.size() <= UINT32_MAX);
    index.obj_off_end = static_cast<uint32_t>(obj_offset_pool.size());
    uint32_t* counts = obj_offset_pool.data() + index.obj_off_begin;
    index.do_begin = static_cast<uint32_t>(distinct_object_pool.size());
    for (size_t k = i; k < j; ++k) {
      ++counts[pos[k].o - index.o_base + 1];
      if (distinct_object_pool.size() == index.do_begin ||
          distinct_object_pool.back() != pos[k].o) {
        distinct_object_pool.push_back(pos[k].o);
      }
    }
    index.do_end = static_cast<uint32_t>(distinct_object_pool.size());
    uint32_t running = index.pos_begin;
    for (uint32_t k = index.obj_off_begin; k < index.obj_off_end; ++k) {
      running += obj_offset_pool[k];
      obj_offset_pool[k] = running;
    }
    i = j;
  }

  store.spo_ = std::move(triples);
  store.pso_ = std::move(pso);
  store.pos_ = std::move(pos);
  store.subject_offsets_ = std::move(subject_offsets);
  store.pred_slot_ = std::move(pred_slot);
  store.pred_index_ = std::move(pred_index);
  store.subj_offset_pool_ = std::move(subj_offset_pool);
  store.obj_offset_pool_ = std::move(obj_offset_pool);
  store.distinct_subject_pool_ = std::move(distinct_subject_pool);
  store.distinct_object_pool_ = std::move(distinct_object_pool);
  return store;
}

std::span<const Triple> TripleStore::BySubject(TermId s) const {
  if (s >= num_terms_) return {};
  const uint32_t b = subject_offsets_[s];
  const uint32_t e = subject_offsets_[s + 1];
  return {spo_.data() + b, static_cast<size_t>(e - b)};
}

size_t TripleStore::SubjectDegree(TermId s) const {
  if (s >= num_terms_) return 0;
  return subject_offsets_[s + 1] - subject_offsets_[s];
}

std::span<const Triple> TripleStore::ByPredicate(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {pso_.data() + index->pso_begin,
          static_cast<size_t>(index->pso_end - index->pso_begin)};
}

std::span<const Triple> TripleStore::ByPredicateObjectOrder(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {pos_.data() + index->pos_begin,
          static_cast<size_t>(index->pos_end - index->pos_begin)};
}

std::span<const Triple> TripleStore::ByPredicateSubject(TermId p,
                                                        TermId s) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr || s < index->s_base) return {};
  const uint64_t rel = static_cast<uint64_t>(s) - index->s_base;
  if (rel + 1 >= index->subj_off_end - index->subj_off_begin) return {};
  const uint32_t* offsets =
      subj_offset_pool_.data() + index->subj_off_begin + rel;
  return {pso_.data() + offsets[0],
          static_cast<size_t>(offsets[1] - offsets[0])};
}

std::span<const Triple> TripleStore::ByPredicateObject(TermId p,
                                                       TermId o) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr || o < index->o_base) return {};
  const uint64_t rel = static_cast<uint64_t>(o) - index->o_base;
  if (rel + 1 >= index->obj_off_end - index->obj_off_begin) return {};
  const uint32_t* offsets =
      obj_offset_pool_.data() + index->obj_off_begin + rel;
  return {pos_.data() + offsets[0],
          static_cast<size_t>(offsets[1] - offsets[0])};
}

std::span<const TermId> TripleStore::DistinctSubjectsOf(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {distinct_subject_pool_.data() + index->ds_begin,
          static_cast<size_t>(index->ds_end - index->ds_begin)};
}

std::span<const TermId> TripleStore::DistinctObjectsOf(TermId p) const {
  const PredicateIndex* index = FindPredicate(p);
  if (index == nullptr) return {};
  return {distinct_object_pool_.data() + index->do_begin,
          static_cast<size_t>(index->do_end - index->do_begin)};
}

bool TripleStore::Contains(TermId s, TermId p, TermId o) const {
  const auto range = ByPredicateSubject(p, s);  // sorted by object
  auto it = std::lower_bound(
      range.begin(), range.end(), o,
      [](const Triple& t, TermId key) { return t.o < key; });
  return it != range.end() && it->o == o;
}

}  // namespace remi
