#include "rdf/rkf.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/fnv.h"
#include "util/string_util.h"
#include "util/varint.h"

namespace remi {

namespace {

constexpr char kMagic[4] = {'R', 'K', 'F', '1'};

/// Corruption status carrying the byte offset where decoding failed, so
/// the CLI can report "<file>: RKF: ... at byte N".
Status CorruptAt(size_t offset, const std::string& what) {
  return Status::Corruption("RKF: " + what + " at byte " +
                            std::to_string(offset));
}

}  // namespace

std::string SerializeRkf(const Dictionary& dict,
                         std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end(), OrderPso());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  std::string out(kMagic, sizeof(kMagic));

  // Dictionary section: front-coded terms in id order.
  PutVarint64(&out, dict.size());
  std::string_view prev;
  for (TermId id = 0; id < dict.size(); ++id) {
    const std::string_view lexical = dict.lexical(id);
    out.push_back(static_cast<char>(dict.kind(id)));
    const size_t shared = CommonPrefixLength(prev, lexical);
    PutVarint64(&out, shared);
    PutLengthPrefixed(&out, lexical.substr(shared));
    prev = lexical;
  }

  // Triple section: PSO order, delta-coded.
  PutVarint64(&out, triples.size());
  TermId prev_p = 0, prev_s = 0, prev_o = 0;
  for (const Triple& t : triples) {
    const uint32_t p_delta = t.p - prev_p;
    PutVarint32(&out, p_delta);
    if (p_delta > 0) {
      PutVarint32(&out, t.s);
      PutVarint32(&out, t.o);
    } else {
      const uint32_t s_delta = t.s - prev_s;
      PutVarint32(&out, s_delta);
      if (s_delta > 0) {
        PutVarint32(&out, t.o);
      } else {
        // Same p and s: o strictly increases after dedup.
        PutVarint32(&out, t.o - prev_o);
      }
    }
    prev_p = t.p;
    prev_s = t.s;
    prev_o = t.o;
  }

  PutFixed64(&out, Fnv1a64(out));
  return out;
}

Result<RkfData> DeserializeRkf(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 8) {
    return CorruptAt(bytes.size(), "file too short");
  }
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return CorruptAt(0, "bad magic");
  }
  const std::string_view body(bytes.data(), bytes.size() - 8);
  if (GetFixed64(bytes, bytes.size() - 8) != Fnv1a64(body)) {
    return CorruptAt(bytes.size() - 8, "checksum mismatch");
  }

  RkfData data;
  size_t pos = sizeof(kMagic);

  auto num_terms = GetVarint64(bytes, &pos);
  if (!num_terms.ok()) return num_terms.status();
  // Varint/length-prefixed reads bound against the *full* buffer, so pos
  // may legally reach into the checksum footer; reject before it can make
  // the body-remainder arithmetic below wrap.
  if (pos > body.size()) {
    return CorruptAt(pos, "header overlaps checksum footer");
  }
  // Every term costs at least 3 body bytes (kind + shared + length), so a
  // count beyond that bound is a lie; reject before looping (or letting
  // anyone reserve memory proportional to the claimed count).
  if (*num_terms > (body.size() - pos) / 3) {
    return CorruptAt(pos, "term count exceeds file size");
  }
  std::string prev;
  for (uint64_t i = 0; i < *num_terms; ++i) {
    if (pos >= body.size()) return CorruptAt(pos, "truncated term");
    const auto kind_raw = static_cast<uint8_t>(bytes[pos++]);
    if (kind_raw > static_cast<uint8_t>(TermKind::kBlank)) {
      return CorruptAt(pos - 1, "bad term kind");
    }
    auto shared = GetVarint64(bytes, &pos);
    if (!shared.ok()) return shared.status();
    if (*shared > prev.size()) {
      return CorruptAt(pos, "shared prefix exceeds previous term");
    }
    auto suffix = GetLengthPrefixed(bytes, &pos);
    if (!suffix.ok()) return suffix.status();
    std::string lexical = prev.substr(0, *shared) + *suffix;
    const TermId id =
        data.dict.Intern(static_cast<TermKind>(kind_raw), lexical);
    if (id != i) {
      return CorruptAt(pos, "duplicate term in dictionary");
    }
    prev = std::move(lexical);
  }

  auto num_triples = GetVarint64(bytes, &pos);
  if (!num_triples.ok()) return num_triples.status();
  if (pos > body.size()) {
    return CorruptAt(pos, "term data overlaps checksum footer");
  }
  // Each triple costs at least 2 body bytes (p delta + one more varint);
  // reject lying counts before the reserve below can balloon.
  if (*num_triples > (body.size() - pos) / 2) {
    return CorruptAt(pos, "triple count exceeds file size");
  }
  data.triples.reserve(*num_triples);
  TermId prev_p = 0, prev_s = 0, prev_o = 0;
  for (uint64_t i = 0; i < *num_triples; ++i) {
    auto p_delta = GetVarint32(bytes, &pos);
    if (!p_delta.ok()) return p_delta.status();
    Triple t;
    t.p = prev_p + *p_delta;
    if (*p_delta > 0) {
      auto s = GetVarint32(bytes, &pos);
      if (!s.ok()) return s.status();
      auto o = GetVarint32(bytes, &pos);
      if (!o.ok()) return o.status();
      t.s = *s;
      t.o = *o;
    } else {
      auto s_delta = GetVarint32(bytes, &pos);
      if (!s_delta.ok()) return s_delta.status();
      t.s = prev_s + *s_delta;
      auto o = GetVarint32(bytes, &pos);
      if (!o.ok()) return o.status();
      t.o = *s_delta > 0 ? *o : prev_o + *o;
    }
    const auto limit = static_cast<uint64_t>(data.dict.size());
    if (t.s >= limit || t.p >= limit || t.o >= limit) {
      return CorruptAt(pos, "triple references unknown term");
    }
    if (i > 0 && !OrderPso()(Triple{prev_s, prev_p, prev_o}, t)) {
      return CorruptAt(pos, "triples out of PSO order");
    }
    prev_p = t.p;
    prev_s = t.s;
    prev_o = t.o;
    data.triples.push_back(t);
  }
  if (pos != bytes.size() - 8) {
    return CorruptAt(pos, "trailing bytes");
  }
  return data;
}

Status WriteRkfFile(const Dictionary& dict, std::vector<Triple> triples,
                    const std::string& path) {
  const std::string bytes = SerializeRkf(dict, std::move(triples));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IoError("write failure on " + path);
  return Status::OK();
}

Status WriteRkfFile(const Dictionary& dict, std::span<const Triple> triples,
                    const std::string& path) {
  return WriteRkfFile(
      dict, std::vector<Triple>(triples.begin(), triples.end()), path);
}

Result<RkfData> ReadRkfFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failure on " + path);
  return DeserializeRkf(buf.str());
}

}  // namespace remi
