// Simulated user panels for the qualitative evaluation (paper §4.1).
//
// The paper's three user studies are re-run against a population model
// (DESIGN.md §5): each simulated user perceives the complexity of an
// expression as the model's Ĉ plus systematic biases the paper itself
// documents plus personal Gaussian noise:
//
//   * a strong preference for rdf:type atoms — §4.1.1 reports that
//     "people usually deem the predicate type the simplest whereas REMI
//     often ranks it second or third", the stated cause of the low p@1;
//   * a per-atom and per-existential-variable reading effort — §3.2 and
//     §4.1.3 note longer expressions and extra variables are harder;
//   * a penalty when an expression mixes in domain-unrelated concepts
//     is *not* modelled explicitly; it surfaces through the noise term.
//
// All randomness is derived deterministically from (seed, user,
// expression), so panels are reproducible and a user is self-consistent.

#pragma once

#include <cstdint>
#include <vector>

#include "complexity/cost_model.h"
#include "query/expression.h"

namespace remi {

/// Population parameters.
struct UserModelConfig {
  size_t num_users = 40;
  /// Bits subtracted from atoms over rdf:type (users find classes easy).
  double type_preference_bonus = 4.0;
  /// Extra perceived bits per atom beyond the first.
  double atom_penalty = 0.6;
  /// Extra perceived bits per existentially quantified variable.
  double existential_penalty = 0.8;
  /// Std dev of the per-(user, expression) Gaussian noise, in bits.
  double noise_sigma = 2.0;
  uint64_t seed = 4242;
};

/// \brief A reproducible panel of simulated users.
class SimulatedUserPanel {
 public:
  /// \param kb the KB (not owned)
  /// \param model the ground-truth Ĉ model users' perception is anchored
  ///        to (not owned)
  SimulatedUserPanel(const KnowledgeBase* kb, const CostModel* model,
                     const UserModelConfig& config = {});

  size_t num_users() const { return config_.num_users; }

  /// Perceived complexity (bits, lower = simpler) of `e` by user `user`.
  double PerceivedComplexity(size_t user, const Expression& e) const;

  /// Indices of `candidates` sorted by user-perceived simplicity.
  std::vector<size_t> RankBySimplicity(
      size_t user, const std::vector<Expression>& candidates) const;

  /// Index of the candidate the user prefers.
  size_t PreferBetween(size_t user, const Expression& a,
                       const Expression& b) const;

  /// 1-5 interestingness grade of an RE (§4.1.3): the user maps perceived
  /// complexity onto a Likert scale — cheap-but-unambiguous descriptions
  /// score high, convoluted or opaque ones low.
  int InterestingnessScore(size_t user, const Expression& e) const;

 private:
  double Noise(size_t user, const Expression& e) const;

  const KnowledgeBase* kb_;
  const CostModel* model_;
  UserModelConfig config_;
};

}  // namespace remi
