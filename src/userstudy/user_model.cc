#include "userstudy/user_model.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace remi {

SimulatedUserPanel::SimulatedUserPanel(const KnowledgeBase* kb,
                                       const CostModel* model,
                                       const UserModelConfig& config)
    : kb_(kb), model_(model), config_(config) {}

double SimulatedUserPanel::Noise(size_t user, const Expression& e) const {
  // Deterministic per (seed, user, expression).
  uint64_t h = config_.seed ^ (0x9e3779b97f4a7c15ULL * (user + 1));
  SubgraphExpressionHash hasher;
  for (const auto& part : e.parts) {
    h ^= hasher(part) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  Rng rng(h);
  return config_.noise_sigma * rng.NextGaussian();
}

double SimulatedUserPanel::PerceivedComplexity(size_t user,
                                               const Expression& e) const {
  double bits = model_->Cost(e);
  if (bits == CostModel::kInfiniteCost) return bits;
  int atoms = 0;
  int existentials = 0;
  for (const auto& part : e.parts) {
    atoms += part.num_atoms();
    if (part.has_existential_variable()) ++existentials;
    if (part.shape == SubgraphShape::kAtom &&
        part.p0 == kb_->type_predicate()) {
      bits -= config_.type_preference_bonus;
    }
  }
  if (atoms > 1) {
    bits += config_.atom_penalty * static_cast<double>(atoms - 1);
  }
  bits += config_.existential_penalty * static_cast<double>(existentials);
  return bits + Noise(user, e);
}

std::vector<size_t> SimulatedUserPanel::RankBySimplicity(
    size_t user, const std::vector<Expression>& candidates) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored.emplace_back(PerceivedComplexity(user, candidates[i]), i);
  }
  std::sort(scored.begin(), scored.end());
  std::vector<size_t> order;
  order.reserve(scored.size());
  for (const auto& [score, idx] : scored) {
    (void)score;
    order.push_back(idx);
  }
  return order;
}

size_t SimulatedUserPanel::PreferBetween(size_t user, const Expression& a,
                                         const Expression& b) const {
  return PerceivedComplexity(user, a) <= PerceivedComplexity(user, b) ? 0 : 1;
}

int SimulatedUserPanel::InterestingnessScore(size_t user,
                                             const Expression& e) const {
  const double bits = PerceivedComplexity(user, e);
  // Map perceived bits to a 1..5 Likert grade: expressions around a few
  // bits are fascinating shortcuts, >20 bits read as opaque trivia.
  if (bits == CostModel::kInfiniteCost) return 1;
  const double grade = 5.0 - 4.0 * std::clamp(bits / 20.0, 0.0, 1.0);
  return static_cast<int>(std::lround(std::clamp(grade, 1.0, 5.0)));
}

}  // namespace remi
