#include "userstudy/metrics.h"

#include <algorithm>
#include <cmath>

namespace remi {

double PrecisionAtK(const std::vector<size_t>& model_order,
                    const std::vector<size_t>& user_order, size_t k) {
  if (k == 0) return 0.0;
  const size_t mk = std::min(k, model_order.size());
  const size_t uk = std::min(k, user_order.size());
  size_t hits = 0;
  for (size_t i = 0; i < mk; ++i) {
    for (size_t j = 0; j < uk; ++j) {
      if (model_order[i] == user_order[j]) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecisionSingleRelevant(size_t relevant_candidate,
                                      const std::vector<size_t>& user_order) {
  for (size_t pos = 0; pos < user_order.size(); ++pos) {
    if (user_order[pos] == relevant_candidate) {
      return 1.0 / static_cast<double>(pos + 1);
    }
  }
  return 0.0;
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  out.n = values.size();
  if (values.empty()) return out;
  double sum = 0.0;
  for (const double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - out.mean) * (v - out.mean);
  out.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return out;
}

}  // namespace remi
