// Evaluation metrics of the qualitative studies (paper §4.1).

#pragma once

#include <cstddef>
#include <vector>

namespace remi {

/// precision@k between two rankings (index permutations of the same
/// candidate list): |top-k(model) ∩ top-k(user)| / k (paper Table 2).
double PrecisionAtK(const std::vector<size_t>& model_order,
                    const std::vector<size_t>& user_order, size_t k);

/// Average precision when a single item (identified by candidate index)
/// is relevant: 1 / (1 + position of the item in the user's ranking).
/// §4.1.2 computes MAP "when we assume REMI's solution as the only
/// relevant answer".
double AveragePrecisionSingleRelevant(size_t relevant_candidate,
                                      const std::vector<size_t>& user_order);

/// Mean and (population) standard deviation.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
  size_t n = 0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

}  // namespace remi
