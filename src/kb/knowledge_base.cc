#include "kb/knowledge_base.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace remi {

namespace {

/// Suffix appended to a predicate IRI to name its materialized inverse
/// (paper §2.1: p⁻¹ holds p⁻¹(o, s) iff p(s, o) ∈ K).
constexpr const char* kInverseSuffix = "#_inverse";

}  // namespace

KnowledgeBase KnowledgeBase::Build(Dictionary dict,
                                   std::vector<Triple> triples,
                                   const KbOptions& options) {
  KnowledgeBase kb;
  kb.options_ = options;
  // Deduplicate up front: RDF is a *set* of triples, and duplicated input
  // facts must not double-count frequencies or the base-fact tally.
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  kb.num_base_facts_ = triples.size();
  kb.type_predicate_ = dict.InternIri(options.type_predicate_iri);
  kb.label_predicate_ = dict.InternIri(options.label_predicate_iri);

  // Pass 1: predicate set and base entity frequencies. Frequencies follow
  // the paper's fr: "the number of facts where a concept occurs in the KB",
  // counted on base facts so inverse materialization does not double-count.
  std::unordered_set<TermId> predicate_set;
  std::unordered_map<TermId, uint64_t> entity_frequency;
  for (const Triple& t : triples) {
    predicate_set.insert(t.p);
  }
  for (const Triple& t : triples) {
    if (!predicate_set.count(t.s)) ++entity_frequency[t.s];
    const TermKind ok = dict.kind(t.o);
    if ((ok == TermKind::kIri || ok == TermKind::kBlank) &&
        !predicate_set.count(t.o)) {
      ++entity_frequency[t.o];
    }
  }

  // Global prominence ranking (fr descending, ties by lexical form for
  // determinism independent of interning order).
  std::vector<TermId> by_prominence;
  by_prominence.reserve(entity_frequency.size());
  for (const auto& [id, freq] : entity_frequency) {
    (void)freq;
    by_prominence.push_back(id);
  }
  std::sort(by_prominence.begin(), by_prominence.end(),
            [&entity_frequency, &dict](TermId a, TermId b) {
              const uint64_t fa = entity_frequency.at(a);
              const uint64_t fb = entity_frequency.at(b);
              if (fa != fb) return fa > fb;
              // Lexical tie-break: interning order depends on the input
              // serialization, the lexical form does not.
              return dict.lexical(a) < dict.lexical(b);
            });

  // Inverse materialization for objects in the top fraction (paper §4:
  // top 1% most frequent entities); p⁻¹ only for o ∈ I ∪ B.
  if (options.inverse_top_fraction > 0 && !by_prominence.empty()) {
    const size_t cutoff = static_cast<size_t>(
        options.inverse_top_fraction *
        static_cast<double>(by_prominence.size()));
    const size_t top_n = cutoff == 0 ? 1 : cutoff;
    std::unordered_set<TermId> top_objects;
    for (size_t i = 0; i < top_n && i < by_prominence.size(); ++i) {
      top_objects.insert(by_prominence[i]);
    }
    std::vector<Triple> inverse_facts;
    for (const Triple& t : triples) {
      const TermKind ok = dict.kind(t.o);
      if (ok != TermKind::kIri && ok != TermKind::kBlank) continue;
      if (!top_objects.count(t.o)) continue;
      if (t.p == kb.type_predicate_ || t.p == kb.label_predicate_) continue;
      auto [it, inserted] = kb.base_to_inverse_.try_emplace(t.p, kNullTerm);
      if (inserted) {
        const TermId inv = dict.InternIri(std::string(dict.lexical(t.p)) +
                                          kInverseSuffix);
        it->second = inv;
        kb.inverse_to_base_[inv] = t.p;
      }
      inverse_facts.push_back(Triple{t.o, it->second, t.s});
    }
    triples.insert(triples.end(), inverse_facts.begin(),
                   inverse_facts.end());
  }

  kb.store_ = TripleStore::Build(std::move(triples));
  kb.dict_ = std::move(dict);

  // Flatten the prominence ranking into snapshot-friendly dense arrays.
  std::vector<uint64_t> freq_by_rank(by_prominence.size());
  std::vector<uint32_t> rank_by_term(kb.dict_.size(), 0);
  for (size_t i = 0; i < by_prominence.size(); ++i) {
    freq_by_rank[i] = entity_frequency.at(by_prominence[i]);
    rank_by_term[by_prominence[i]] = static_cast<uint32_t>(i + 1);
  }
  kb.entities_by_prominence_ = std::move(by_prominence);
  kb.freq_by_rank_ = std::move(freq_by_rank);
  kb.rank_by_term_ = std::move(rank_by_term);

  // Class index: sorted classes with members pooled in one flat array.
  std::unordered_map<TermId, std::vector<TermId>> class_members;
  for (const Triple& t : kb.store_.ByPredicate(kb.type_predicate_)) {
    class_members[t.o].push_back(t.s);
  }
  kb.classes_.reserve(class_members.size());
  for (const auto& [cls, members] : class_members) {
    (void)members;
    kb.classes_.push_back(cls);
  }
  std::sort(kb.classes_.begin(), kb.classes_.end());
  std::vector<uint32_t> class_offsets;
  class_offsets.reserve(kb.classes_.size() + 1);
  class_offsets.push_back(0);
  std::vector<TermId> member_pool;
  for (const TermId cls : kb.classes_) {
    std::vector<TermId>& members = class_members[cls];
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    member_pool.insert(member_pool.end(), members.begin(), members.end());
    class_offsets.push_back(static_cast<uint32_t>(member_pool.size()));
  }
  kb.class_offsets_ = std::move(class_offsets);
  kb.class_members_ = std::move(member_pool);
  return kb;
}

bool KnowledgeBase::IsEntity(TermId t) const {
  if (t >= dict_.size()) return false;
  const TermKind k = dict_.kind(t);
  if (k != TermKind::kIri && k != TermKind::kBlank) return false;
  return !IsPredicateTerm(t);
}

TermId KnowledgeBase::InverseOf(TermId p) const {
  auto it = base_to_inverse_.find(p);
  if (it != base_to_inverse_.end()) return it->second;
  auto rit = inverse_to_base_.find(p);
  if (rit != inverse_to_base_.end()) return rit->second;
  return kNullTerm;
}

TermId KnowledgeBase::BasePredicateOf(TermId p) const {
  auto it = inverse_to_base_.find(p);
  return it == inverse_to_base_.end() ? p : it->second;
}

uint64_t KnowledgeBase::EntityFrequency(TermId t) const {
  const size_t rank = EntityProminenceRank(t);
  return rank == 0 ? 0 : freq_by_rank_[rank - 1];
}

uint64_t KnowledgeBase::PredicateFrequency(TermId p) const {
  return store_.CountPredicate(p);
}

bool KnowledgeBase::IsTopProminentEntity(TermId t, double fraction) const {
  const size_t rank = EntityProminenceRank(t);
  if (rank == 0) return false;
  const size_t cutoff = static_cast<size_t>(
      fraction * static_cast<double>(entities_by_prominence_.size()));
  return rank <= (cutoff == 0 ? 1 : cutoff);
}

std::span<const TermId> KnowledgeBase::EntitiesOfClass(TermId cls) const {
  const auto it = std::lower_bound(classes_.begin(), classes_.end(), cls);
  if (it == classes_.end() || *it != cls) return {};
  const size_t slot = static_cast<size_t>(it - classes_.begin());
  return {class_members_.data() + class_offsets_[slot],
          class_offsets_[slot + 1] - class_offsets_[slot]};
}

std::vector<TermId> KnowledgeBase::ClassesOf(TermId entity) const {
  std::vector<TermId> out;
  for (const Triple& t : store_.ByPredicateSubject(type_predicate_, entity)) {
    out.push_back(t.o);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string KnowledgeBase::Label(TermId t) const {
  if (t >= dict_.size()) return "?";
  for (const Triple& f :
       store_.ByPredicateSubject(label_predicate_, t)) {
    if (dict_.kind(f.o) != TermKind::kLiteral) continue;
    const std::string_view lex = dict_.lexical(f.o);
    // Canonical literal form: "body" + suffix.
    const size_t last_quote = lex.rfind('"');
    if (!lex.empty() && lex[0] == '"' && last_quote != std::string::npos &&
        last_quote >= 1) {
      return std::string(lex.substr(1, last_quote - 1));
    }
    return std::string(lex);
  }
  const TermKind kind = dict_.kind(t);
  const std::string_view lexical = dict_.lexical(t);
  if (kind == TermKind::kIri) {
    const size_t cut = lexical.find_last_of("/#");
    std::string local(cut == std::string::npos ? lexical
                                               : lexical.substr(cut + 1));
    std::replace(local.begin(), local.end(), '_', ' ');
    return local.empty() ? std::string(lexical) : local;
  }
  if (kind == TermKind::kBlank) return "_:" + std::string(lexical);
  const size_t last_quote = lexical.rfind('"');
  if (!lexical.empty() && lexical[0] == '"' &&
      last_quote != std::string::npos && last_quote >= 1) {
    return std::string(lexical.substr(1, last_quote - 1));
  }
  return std::string(lexical);
}

}  // namespace remi
