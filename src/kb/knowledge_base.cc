#include "kb/knowledge_base.h"

#include <algorithm>

namespace remi {

namespace {

/// Suffix appended to a predicate IRI to name its materialized inverse
/// (paper §2.1: p⁻¹ holds p⁻¹(o, s) iff p(s, o) ∈ K).
constexpr const char* kInverseSuffix = "#_inverse";

}  // namespace

KnowledgeBase KnowledgeBase::Build(Dictionary dict,
                                   std::vector<Triple> triples,
                                   const KbOptions& options) {
  KnowledgeBase kb;
  kb.options_ = options;
  // Deduplicate up front: RDF is a *set* of triples, and duplicated input
  // facts must not double-count frequencies or the base-fact tally.
  std::sort(triples.begin(), triples.end(), OrderSpo());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  kb.num_base_facts_ = triples.size();
  kb.type_predicate_ = dict.InternIri(options.type_predicate_iri);
  kb.label_predicate_ = dict.InternIri(options.label_predicate_iri);

  // Pass 1: predicate set and base entity frequencies. Frequencies follow
  // the paper's fr: "the number of facts where a concept occurs in the KB",
  // counted on base facts so inverse materialization does not double-count.
  for (const Triple& t : triples) {
    kb.predicate_set_.insert(t.p);
  }
  for (const Triple& t : triples) {
    if (!kb.predicate_set_.count(t.s)) ++kb.entity_frequency_[t.s];
    const TermKind ok = dict.kind(t.o);
    if ((ok == TermKind::kIri || ok == TermKind::kBlank) &&
        !kb.predicate_set_.count(t.o)) {
      ++kb.entity_frequency_[t.o];
    }
  }

  // Global prominence ranking (fr descending, ties by id for determinism).
  kb.entities_by_prominence_.reserve(kb.entity_frequency_.size());
  for (const auto& [id, freq] : kb.entity_frequency_) {
    (void)freq;
    kb.entities_by_prominence_.push_back(id);
  }
  std::sort(kb.entities_by_prominence_.begin(),
            kb.entities_by_prominence_.end(),
            [&kb, &dict](TermId a, TermId b) {
              const uint64_t fa = kb.entity_frequency_.at(a);
              const uint64_t fb = kb.entity_frequency_.at(b);
              if (fa != fb) return fa > fb;
              // Lexical tie-break: interning order depends on the input
              // serialization, the lexical form does not.
              return dict.lexical(a) < dict.lexical(b);
            });
  kb.entity_rank_.reserve(kb.entities_by_prominence_.size());
  for (size_t i = 0; i < kb.entities_by_prominence_.size(); ++i) {
    kb.entity_rank_[kb.entities_by_prominence_[i]] = i + 1;
  }

  // Inverse materialization for objects in the top fraction (paper §4:
  // top 1% most frequent entities); p⁻¹ only for o ∈ I ∪ B.
  if (options.inverse_top_fraction > 0 &&
      !kb.entities_by_prominence_.empty()) {
    const size_t cutoff = static_cast<size_t>(
        options.inverse_top_fraction *
        static_cast<double>(kb.entities_by_prominence_.size()));
    const size_t top_n = cutoff == 0 ? 1 : cutoff;
    std::unordered_set<TermId> top_objects;
    for (size_t i = 0; i < top_n && i < kb.entities_by_prominence_.size();
         ++i) {
      top_objects.insert(kb.entities_by_prominence_[i]);
    }
    std::vector<Triple> inverse_facts;
    for (const Triple& t : triples) {
      const TermKind ok = dict.kind(t.o);
      if (ok != TermKind::kIri && ok != TermKind::kBlank) continue;
      if (!top_objects.count(t.o)) continue;
      if (t.p == kb.type_predicate_ || t.p == kb.label_predicate_) continue;
      auto [it, inserted] = kb.base_to_inverse_.try_emplace(t.p, kNullTerm);
      if (inserted) {
        const TermId inv =
            dict.InternIri(dict.lexical(t.p) + kInverseSuffix);
        it->second = inv;
        kb.inverse_to_base_[inv] = t.p;
        kb.predicate_set_.insert(inv);
      }
      inverse_facts.push_back(Triple{t.o, it->second, t.s});
    }
    triples.insert(triples.end(), inverse_facts.begin(),
                   inverse_facts.end());
  }

  kb.store_ = TripleStore::Build(std::move(triples));
  kb.dict_ = std::move(dict);

  // Class index.
  for (const Triple& t : kb.store_.ByPredicate(kb.type_predicate_)) {
    kb.class_members_[t.o].push_back(t.s);
  }
  for (auto& [cls, members] : kb.class_members_) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    kb.classes_.push_back(cls);
  }
  std::sort(kb.classes_.begin(), kb.classes_.end());
  return kb;
}

bool KnowledgeBase::IsEntity(TermId t) const {
  if (t >= dict_.size()) return false;
  const TermKind k = dict_.kind(t);
  if (k != TermKind::kIri && k != TermKind::kBlank) return false;
  return !IsPredicateTerm(t);
}

TermId KnowledgeBase::InverseOf(TermId p) const {
  auto it = base_to_inverse_.find(p);
  if (it != base_to_inverse_.end()) return it->second;
  auto rit = inverse_to_base_.find(p);
  if (rit != inverse_to_base_.end()) return rit->second;
  return kNullTerm;
}

TermId KnowledgeBase::BasePredicateOf(TermId p) const {
  auto it = inverse_to_base_.find(p);
  return it == inverse_to_base_.end() ? p : it->second;
}

uint64_t KnowledgeBase::EntityFrequency(TermId t) const {
  auto it = entity_frequency_.find(t);
  return it == entity_frequency_.end() ? 0 : it->second;
}

uint64_t KnowledgeBase::PredicateFrequency(TermId p) const {
  return store_.CountPredicate(p);
}

size_t KnowledgeBase::EntityProminenceRank(TermId t) const {
  auto it = entity_rank_.find(t);
  return it == entity_rank_.end() ? 0 : it->second;
}

bool KnowledgeBase::IsTopProminentEntity(TermId t, double fraction) const {
  const size_t rank = EntityProminenceRank(t);
  if (rank == 0) return false;
  const size_t cutoff = static_cast<size_t>(
      fraction * static_cast<double>(entities_by_prominence_.size()));
  return rank <= (cutoff == 0 ? 1 : cutoff);
}

std::span<const TermId> KnowledgeBase::EntitiesOfClass(TermId cls) const {
  auto it = class_members_.find(cls);
  if (it == class_members_.end()) return {};
  return it->second;
}

std::vector<TermId> KnowledgeBase::ClassesOf(TermId entity) const {
  std::vector<TermId> out;
  for (const Triple& t : store_.ByPredicateSubject(type_predicate_, entity)) {
    out.push_back(t.o);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string KnowledgeBase::Label(TermId t) const {
  if (t >= dict_.size()) return "?";
  for (const Triple& f :
       store_.ByPredicateSubject(label_predicate_, t)) {
    if (dict_.kind(f.o) != TermKind::kLiteral) continue;
    const std::string& lex = dict_.lexical(f.o);
    // Canonical literal form: "body" + suffix.
    const size_t last_quote = lex.rfind('"');
    if (!lex.empty() && lex[0] == '"' && last_quote != std::string::npos &&
        last_quote >= 1) {
      return lex.substr(1, last_quote - 1);
    }
    return lex;
  }
  const Term& term = dict_.term(t);
  if (term.kind == TermKind::kIri) {
    size_t cut = term.lexical.find_last_of("/#");
    std::string local = cut == std::string::npos
                            ? term.lexical
                            : term.lexical.substr(cut + 1);
    std::replace(local.begin(), local.end(), '_', ' ');
    return local.empty() ? term.lexical : local;
  }
  if (term.kind == TermKind::kBlank) return "_:" + term.lexical;
  const size_t last_quote = term.lexical.rfind('"');
  if (!term.lexical.empty() && term.lexical[0] == '"' &&
      last_quote != std::string::npos && last_quote >= 1) {
    return term.lexical.substr(1, last_quote - 1);
  }
  return term.lexical;
}

}  // namespace remi
