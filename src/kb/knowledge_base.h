// The KnowledgeBase facade: an immutable RDF KB plus the derived artifacts
// REMI needs (paper §2.1, §3.5, §4):
//
//  * inverse-predicate materialization: p⁻¹(o, s) facts are added for every
//    base fact whose object is among the top `inverse_top_fraction` most
//    frequent entities (paper §4: top 1%), with p⁻¹ RDF-compliant (only for
//    o ∈ I ∪ B);
//  * term frequencies ("fr" prominence, §3.1) and the global entity
//    prominence ranking used by the enumerator's top-5% pruning rule;
//  * the rdf:type class index and rdfs:label store used by workloads,
//    the verbalizer, and the user-study harnesses.
//
// A built KB can be persisted as an RKF2 snapshot (SaveSnapshot) and later
// reopened with OpenSnapshot, which adopts the fully built indexes straight
// out of the (mmap'ed) image instead of re-running Build — the cold-start
// path goes from parse+sort+index to a page fault. All derived indexes are
// therefore stored as flat arrays (ArrayRef) rather than hash maps.

#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"
#include "util/array_ref.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace remi {

/// Well-known IRIs (DBpedia-style defaults).
inline constexpr const char* kRdfTypeIri =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfsLabelIri =
    "http://www.w3.org/2000/01/rdf-schema#label";

/// Construction options for a KnowledgeBase.
struct KbOptions {
  /// IRI of the instance-class predicate.
  std::string type_predicate_iri = kRdfTypeIri;
  /// IRI of the human-readable label predicate.
  std::string label_predicate_iri = kRdfsLabelIri;
  /// Materialize p⁻¹(o, s) for objects in the top fraction of the entity
  /// frequency ranking (paper §4 uses 0.01). Set to 0 to disable.
  double inverse_top_fraction = 0.01;
};

/// \brief Immutable knowledge base with statistics and derived indexes.
///
/// Thread-safe for concurrent reads after construction.
class KnowledgeBase {
 public:
  /// Builds a KB from a dictionary and base triples. The dictionary is
  /// moved in; inverse predicates intern new terms into it.
  static KnowledgeBase Build(Dictionary dict, std::vector<Triple> triples,
                             const KbOptions& options = KbOptions());

  // --- snapshots (RKF2) ------------------------------------------------------

  /// Serializes the fully built KB (dictionary, CSR indexes, inverse map,
  /// rankings, options) into an RKF2 image. Deterministic: equal KBs
  /// produce byte-identical images.
  std::string SerializeSnapshot() const;

  /// Writes SerializeSnapshot() to `path`.
  Status SaveSnapshot(const std::string& path) const;

  /// Opens an RKF2 snapshot without rebuilding anything: the file is
  /// mmap'ed (with a read-into-buffer fallback) and the index sections are
  /// adopted in place. Fails with Corruption on any structural or
  /// invariant violation.
  static Result<KnowledgeBase> OpenSnapshot(const std::string& path);

  /// Like OpenSnapshot, but from an in-memory image (copied into an
  /// aligned buffer). Useful for tests and fuzzing.
  static Result<KnowledgeBase> OpenSnapshotBuffer(std::string_view bytes);

  const Dictionary& dict() const { return dict_; }
  const TripleStore& store() const { return store_; }
  const KbOptions& options() const { return options_; }

  /// Total facts including materialized inverses.
  size_t NumFacts() const { return store_.size(); }
  /// Facts before inverse materialization.
  size_t NumBaseFacts() const { return num_base_facts_; }
  /// Distinct predicates including inverse predicates.
  size_t NumPredicates() const { return store_.predicates().size(); }
  /// Distinct entities (IRIs/blank nodes that are not predicates).
  size_t NumEntities() const { return entities_by_prominence_.size(); }

  // --- term classification -------------------------------------------------

  /// True if `t` occurs in predicate position (including inverses).
  bool IsPredicateTerm(TermId t) const { return store_.HasPredicate(t); }

  /// True if `t` is an entity: an IRI or blank node not used as predicate.
  bool IsEntity(TermId t) const;

  // --- inverse predicates ----------------------------------------------------

  /// True if `p` is a materialized inverse predicate.
  bool IsInversePredicate(TermId p) const {
    return inverse_to_base_.count(p) > 0;
  }

  /// The inverse id of a base predicate (kNullTerm if none materialized),
  /// or the base id of an inverse predicate.
  TermId InverseOf(TermId p) const;

  /// For an inverse predicate returns its base; otherwise returns `p`.
  TermId BasePredicateOf(TermId p) const;

  // --- prominence (fr) -------------------------------------------------------

  /// Number of base facts where `t` occurs as subject or object.
  uint64_t EntityFrequency(TermId t) const;

  /// Number of facts (incl. inverses) with predicate `p`.
  uint64_t PredicateFrequency(TermId p) const;

  /// 1-based rank of `t` in the entity frequency ranking; 0 if `t` is not
  /// a ranked entity.
  size_t EntityProminenceRank(TermId t) const {
    return t < rank_by_term_.size() ? rank_by_term_[t] : 0;
  }

  /// Entities sorted by descending frequency (ties by lexical form).
  std::span<const TermId> EntitiesByProminence() const {
    return entities_by_prominence_;
  }

  /// True if `t` ranks within the top `fraction` of entities (paper's 5%
  /// rule in §3.5.2 and 1% inverse rule in §4).
  bool IsTopProminentEntity(TermId t, double fraction) const;

  // --- classes ---------------------------------------------------------------

  TermId type_predicate() const { return type_predicate_; }
  TermId label_predicate() const { return label_predicate_; }

  /// Entities declared `rdf:type cls`, ascending by id.
  std::span<const TermId> EntitiesOfClass(TermId cls) const;

  /// Classes of an entity (ascending by id).
  std::vector<TermId> ClassesOf(TermId entity) const;

  /// All classes that have at least one instance, ascending by id.
  const std::vector<TermId>& classes() const { return classes_; }

  // --- labels ----------------------------------------------------------------

  /// Human-readable label: the rdfs:label literal body if present, else a
  /// prettified IRI local name ('_' -> ' '), else the lexical form.
  std::string Label(TermId t) const;

 private:
  /// The RKF2 snapshot codec (src/kb/snapshot.cc) reads and reconstitutes
  /// the raw arrays.
  friend struct SnapshotCodec;

  Dictionary dict_;
  TripleStore store_;
  KbOptions options_;
  size_t num_base_facts_ = 0;

  TermId type_predicate_ = kNullTerm;
  TermId label_predicate_ = kNullTerm;

  std::unordered_map<TermId, TermId> base_to_inverse_;
  std::unordered_map<TermId, TermId> inverse_to_base_;

  /// Entities sorted by descending frequency; rank r (1-based) has id
  /// entities_by_prominence_[r - 1] and frequency freq_by_rank_[r - 1].
  ArrayRef<TermId> entities_by_prominence_;
  ArrayRef<uint64_t> freq_by_rank_;
  /// Dense TermId -> 1-based rank (0 = not a ranked entity).
  ArrayRef<uint32_t> rank_by_term_;

  /// Class index: classes_ ascending; members of classes_[i] are
  /// class_members_[class_offsets_[i], class_offsets_[i + 1]).
  std::vector<TermId> classes_;
  ArrayRef<uint32_t> class_offsets_;
  ArrayRef<TermId> class_members_;

  /// Keeps the snapshot image alive for view-mode dict/store/indexes.
  std::shared_ptr<MmapFile> backing_;
};

}  // namespace remi
