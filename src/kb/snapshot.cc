// RKF2 KB snapshot codec: serializes a fully built KnowledgeBase into a
// section-table'd RKF2 image and reconstitutes it without rebuilding.
//
// SerializeSnapshot dumps every index array (dictionary buffers, the three
// triple orderings, CSR offset tables and pools, prominence rankings, the
// class index, the inverse-predicate map) as one section each, plus a
// varint-coded meta section holding the counts and KbOptions. Open adopts
// the arrays in place over the mmap'ed image (ArrayRef views) after a
// structural validation pass, so a snapshot load costs checksum + validate
// at memory bandwidth instead of parse + sort + hash + rank.
//
// Trust model: Rkf2Image::Parse guarantees the *container* (bounds,
// alignment, checksums). This codec guarantees the *contents*: every
// invariant the query paths rely on (id ranges, sorted orderings, offset
// monotonicity, range tiling) is checked before a single view escapes, so
// a lying image yields Corruption, never undefined behavior.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "kb/knowledge_base.h"
#include "util/io_hooks.h"
#include "rdf/rkf2.h"
#include "util/logging.h"
#include "util/varint.h"

namespace remi {

namespace {

// Section ids of the KB snapshot payloads inside the RKF2 container.
enum KbSection : uint32_t {
  kSecMeta = 1,
  kSecDictKinds = 2,
  kSecDictOffsets = 3,
  kSecDictBlob = 4,
  kSecSpo = 5,
  kSecPso = 6,
  kSecPos = 7,
  kSecPredicates = 8,
  kSecSubjects = 9,
  kSecSubjectOffsets = 10,
  kSecPredSlot = 11,
  kSecPredIndex = 12,
  kSecSubjOffPool = 13,
  kSecObjOffPool = 14,
  kSecDistinctSubjPool = 15,
  kSecDistinctObjPool = 16,
  kSecProminence = 17,
  kSecFreqByRank = 18,
  kSecRankByTerm = 19,
  kSecClasses = 20,
  kSecClassOffsets = 21,
  kSecClassMembers = 22,
  kSecInversePairs = 23,
};

constexpr uint64_t kSnapshotMetaVersion = 1;

static_assert(std::is_trivially_copyable_v<Triple> && sizeof(Triple) == 12,
              "Triple is serialized verbatim in RKF2 snapshots");

template <typename T>
std::string_view RawBytes(const T* data, size_t n) {
  return {reinterpret_cast<const char*>(data), n * sizeof(T)};
}

Status Corrupt(const std::string& what) {
  return Status::Corruption("RKF2 snapshot: " + what);
}

/// Counts and options decoded from the meta section.
struct Meta {
  uint64_t dict_terms = 0;
  uint64_t blob_bytes = 0;
  uint64_t store_terms = 0;
  uint64_t triples = 0;
  uint64_t predicates = 0;
  uint64_t subjects = 0;
  uint64_t subj_off_pool = 0;
  uint64_t obj_off_pool = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
  uint64_t entities = 0;
  uint64_t classes = 0;
  uint64_t class_members = 0;
  uint64_t inverse_pairs = 0;
  uint64_t base_facts = 0;
  TermId type_predicate = kNullTerm;
  TermId label_predicate = kNullTerm;
  KbOptions options;
};

Result<Meta> ParseMeta(std::string_view payload) {
  const std::string bytes(payload);  // varint helpers operate on strings
  size_t pos = 0;
  Meta meta;
  auto version = GetVarint64(bytes, &pos);
  if (!version.ok()) return version.status();
  if (*version != kSnapshotMetaVersion) {
    return Corrupt("unsupported snapshot version " +
                   std::to_string(*version));
  }
  uint64_t* const counts[] = {
      &meta.dict_terms,        &meta.blob_bytes,      &meta.store_terms,
      &meta.triples,           &meta.predicates,      &meta.subjects,
      &meta.subj_off_pool,     &meta.obj_off_pool,    &meta.distinct_subjects,
      &meta.distinct_objects,  &meta.entities,        &meta.classes,
      &meta.class_members,     &meta.inverse_pairs,   &meta.base_facts,
  };
  for (uint64_t* count : counts) {
    auto v = GetVarint64(bytes, &pos);
    if (!v.ok()) return v.status();
    *count = *v;
  }
  auto type_pred = GetVarint64(bytes, &pos);
  if (!type_pred.ok()) return type_pred.status();
  auto label_pred = GetVarint64(bytes, &pos);
  if (!label_pred.ok()) return label_pred.status();
  if (*type_pred > kNullTerm || *label_pred > kNullTerm) {
    return Corrupt("predicate id out of range");
  }
  meta.type_predicate = static_cast<TermId>(*type_pred);
  meta.label_predicate = static_cast<TermId>(*label_pred);

  auto type_iri = GetLengthPrefixed(bytes, &pos);
  if (!type_iri.ok()) return type_iri.status();
  auto label_iri = GetLengthPrefixed(bytes, &pos);
  if (!label_iri.ok()) return label_iri.status();
  if (pos + 8 > bytes.size()) return Corrupt("meta section truncated");
  const uint64_t fraction_bits = GetFixed64(bytes, pos);
  pos += 8;
  if (pos != bytes.size()) return Corrupt("trailing bytes in meta section");
  meta.options.type_predicate_iri = std::move(*type_iri);
  meta.options.label_predicate_iri = std::move(*label_iri);
  meta.options.inverse_top_fraction = std::bit_cast<double>(fraction_bits);
  return meta;
}

/// Typed view of one section, with an exact length check against the
/// element count declared in meta (catches section-length lies). Compares
/// by division so a count near 2^64 / sizeof(T) cannot wrap the multiply
/// and smuggle a huge element count past the check.
template <typename T>
Result<const T*> CastSection(const Rkf2Image& image, uint32_t id,
                             uint64_t count, const char* what) {
  auto payload = image.Section(id);
  if (!payload.ok()) return payload.status();
  if (payload->size() % sizeof(T) != 0 ||
      payload->size() / sizeof(T) != count) {
    return Corrupt(std::string(what) + ": expected " + std::to_string(count) +
                   " elements of " + std::to_string(sizeof(T)) +
                   " bytes, found " + std::to_string(payload->size()) +
                   " bytes");
  }
  return reinterpret_cast<const T*>(payload->data());
}

/// A strictly monotone offset array over [0, limit] starting at `first`
/// and ending at `last` would be too strict (offsets repeat for empty
/// keys); require nondecreasing with fixed endpoints.
Status CheckOffsets(const uint32_t* offsets, size_t n, uint64_t first,
                    uint64_t last, const char* what) {
  if (n == 0) return Corrupt(std::string(what) + ": empty offset table");
  if (offsets[0] != first || offsets[n - 1] != last) {
    return Corrupt(std::string(what) + ": offset endpoints mismatch");
  }
  for (size_t i = 1; i < n; ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Corrupt(std::string(what) + ": offsets not monotone at " +
                     std::to_string(i));
    }
  }
  return Status::OK();
}

Status CheckAscendingIds(const TermId* ids, size_t n, uint64_t limit,
                         const char* what) {
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= limit) {
      return Corrupt(std::string(what) + ": id out of range at " +
                     std::to_string(i));
    }
    if (i > 0 && ids[i] <= ids[i - 1]) {
      return Corrupt(std::string(what) + ": ids not ascending at " +
                     std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

/// Friend of KnowledgeBase and TripleStore: moves raw arrays in and out.
struct SnapshotCodec {
  static std::string Serialize(const KnowledgeBase& kb);
  static Result<KnowledgeBase> Open(std::shared_ptr<MmapFile> backing);
};

std::string SnapshotCodec::Serialize(const KnowledgeBase& kb) {
  const Dictionary& dict = kb.dict_;
  const TripleStore& store = kb.store_;

  // Dictionary buffers (works for owning and view dictionaries alike).
  const size_t num_terms = dict.size();
  std::vector<uint8_t> kinds(num_terms);
  std::vector<uint32_t> offsets(num_terms + 1, 0);
  std::string blob;
  for (TermId id = 0; id < num_terms; ++id) {
    kinds[id] = static_cast<uint8_t>(dict.kind(id));
    blob.append(dict.lexical(id));
    REMI_CHECK(blob.size() <= UINT32_MAX);
    offsets[id + 1] = static_cast<uint32_t>(blob.size());
  }

  // Inverse map as a flat (base, inverse) pair list sorted by base id.
  std::vector<uint32_t> inverse_pairs;
  inverse_pairs.reserve(kb.base_to_inverse_.size() * 2);
  {
    std::vector<std::pair<TermId, TermId>> pairs(
        kb.base_to_inverse_.begin(), kb.base_to_inverse_.end());
    std::sort(pairs.begin(), pairs.end());
    for (const auto& [base, inverse] : pairs) {
      inverse_pairs.push_back(base);
      inverse_pairs.push_back(inverse);
    }
  }

  std::string meta;
  PutVarint64(&meta, kSnapshotMetaVersion);
  for (const uint64_t count : {
           static_cast<uint64_t>(num_terms),
           static_cast<uint64_t>(blob.size()),
           static_cast<uint64_t>(store.num_terms_),
           static_cast<uint64_t>(store.spo_.size()),
           static_cast<uint64_t>(store.predicates_.size()),
           static_cast<uint64_t>(store.subjects_.size()),
           static_cast<uint64_t>(store.subj_offset_pool_.size()),
           static_cast<uint64_t>(store.obj_offset_pool_.size()),
           static_cast<uint64_t>(store.distinct_subject_pool_.size()),
           static_cast<uint64_t>(store.distinct_object_pool_.size()),
           static_cast<uint64_t>(kb.entities_by_prominence_.size()),
           static_cast<uint64_t>(kb.classes_.size()),
           static_cast<uint64_t>(kb.class_members_.size()),
           static_cast<uint64_t>(inverse_pairs.size() / 2),
           static_cast<uint64_t>(kb.num_base_facts_),
       }) {
    PutVarint64(&meta, count);
  }
  PutVarint64(&meta, kb.type_predicate_);
  PutVarint64(&meta, kb.label_predicate_);
  PutLengthPrefixed(&meta, kb.options_.type_predicate_iri);
  PutLengthPrefixed(&meta, kb.options_.label_predicate_iri);
  PutFixed64(&meta,
             std::bit_cast<uint64_t>(kb.options_.inverse_top_fraction));

  Rkf2Writer writer;
  writer.AddSection(kSecMeta, meta);
  writer.AddSection(kSecDictKinds, RawBytes(kinds.data(), kinds.size()));
  writer.AddSection(kSecDictOffsets,
                    RawBytes(offsets.data(), offsets.size()));
  writer.AddSection(kSecDictBlob, blob);
  writer.AddSection(kSecSpo, RawBytes(store.spo_.data(), store.spo_.size()));
  writer.AddSection(kSecPso, RawBytes(store.pso_.data(), store.pso_.size()));
  writer.AddSection(kSecPos, RawBytes(store.pos_.data(), store.pos_.size()));
  writer.AddSection(
      kSecPredicates,
      RawBytes(store.predicates_.data(), store.predicates_.size()));
  writer.AddSection(kSecSubjects,
                    RawBytes(store.subjects_.data(), store.subjects_.size()));
  writer.AddSection(kSecSubjectOffsets,
                    RawBytes(store.subject_offsets_.data(),
                             store.subject_offsets_.size()));
  writer.AddSection(
      kSecPredSlot, RawBytes(store.pred_slot_.data(), store.pred_slot_.size()));
  writer.AddSection(
      kSecPredIndex,
      RawBytes(store.pred_index_.data(), store.pred_index_.size()));
  writer.AddSection(kSecSubjOffPool,
                    RawBytes(store.subj_offset_pool_.data(),
                             store.subj_offset_pool_.size()));
  writer.AddSection(kSecObjOffPool,
                    RawBytes(store.obj_offset_pool_.data(),
                             store.obj_offset_pool_.size()));
  writer.AddSection(kSecDistinctSubjPool,
                    RawBytes(store.distinct_subject_pool_.data(),
                             store.distinct_subject_pool_.size()));
  writer.AddSection(kSecDistinctObjPool,
                    RawBytes(store.distinct_object_pool_.data(),
                             store.distinct_object_pool_.size()));
  writer.AddSection(kSecProminence,
                    RawBytes(kb.entities_by_prominence_.data(),
                             kb.entities_by_prominence_.size()));
  writer.AddSection(
      kSecFreqByRank,
      RawBytes(kb.freq_by_rank_.data(), kb.freq_by_rank_.size()));
  writer.AddSection(
      kSecRankByTerm,
      RawBytes(kb.rank_by_term_.data(), kb.rank_by_term_.size()));
  writer.AddSection(kSecClasses,
                    RawBytes(kb.classes_.data(), kb.classes_.size()));
  writer.AddSection(
      kSecClassOffsets,
      RawBytes(kb.class_offsets_.data(), kb.class_offsets_.size()));
  writer.AddSection(
      kSecClassMembers,
      RawBytes(kb.class_members_.data(), kb.class_members_.size()));
  writer.AddSection(
      kSecInversePairs,
      RawBytes(inverse_pairs.data(), inverse_pairs.size()));
  return writer.Finish();
}

Result<KnowledgeBase> SnapshotCodec::Open(std::shared_ptr<MmapFile> backing) {
  REMI_ASSIGN_OR_RETURN(const Rkf2Image image,
                        Rkf2Image::Parse(backing->data()));
  auto meta_payload = image.Section(kSecMeta);
  if (!meta_payload.ok()) return meta_payload.status();
  REMI_ASSIGN_OR_RETURN(const Meta meta, ParseMeta(*meta_payload));

  if (meta.store_terms > meta.dict_terms) {
    return Corrupt("store term universe exceeds dictionary size");
  }
  if (meta.base_facts > meta.triples) {
    return Corrupt("base fact count exceeds total facts");
  }
  if (meta.dict_terms >= kNullTerm) {
    return Corrupt("dictionary too large");
  }
  // Every count describes elements of >= 1 byte stored in this image, so
  // any count beyond the image size is a lie. Rejecting here also keeps
  // later count arithmetic (e.g. inverse_pairs * 2) far from overflow.
  const uint64_t image_bytes = backing->data().size();
  for (const uint64_t count :
       {meta.dict_terms, meta.blob_bytes, meta.store_terms, meta.triples,
        meta.predicates, meta.subjects, meta.subj_off_pool,
        meta.obj_off_pool, meta.distinct_subjects, meta.distinct_objects,
        meta.entities, meta.classes, meta.class_members,
        meta.inverse_pairs, meta.base_facts}) {
    if (count > image_bytes) {
      return Corrupt("meta count " + std::to_string(count) +
                     " exceeds image size");
    }
  }

  // Typed section views; every length is cross-checked against meta.
  REMI_ASSIGN_OR_RETURN(
      const uint8_t* kinds,
      CastSection<uint8_t>(image, kSecDictKinds, meta.dict_terms,
                           "dictionary kinds"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* dict_offsets,
      CastSection<uint32_t>(image, kSecDictOffsets, meta.dict_terms + 1,
                            "dictionary offsets"));
  REMI_ASSIGN_OR_RETURN(
      const char* blob,
      CastSection<char>(image, kSecDictBlob, meta.blob_bytes,
                        "dictionary blob"));
  REMI_ASSIGN_OR_RETURN(
      const Triple* spo,
      CastSection<Triple>(image, kSecSpo, meta.triples, "SPO triples"));
  REMI_ASSIGN_OR_RETURN(
      const Triple* pso,
      CastSection<Triple>(image, kSecPso, meta.triples, "PSO triples"));
  REMI_ASSIGN_OR_RETURN(
      const Triple* pos,
      CastSection<Triple>(image, kSecPos, meta.triples, "POS triples"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* predicates,
      CastSection<TermId>(image, kSecPredicates, meta.predicates,
                          "predicate list"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* subjects,
      CastSection<TermId>(image, kSecSubjects, meta.subjects,
                          "subject list"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* subject_offsets,
      CastSection<uint32_t>(image, kSecSubjectOffsets, meta.store_terms + 1,
                            "subject offsets"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* pred_slot,
      CastSection<uint32_t>(image, kSecPredSlot, meta.store_terms,
                            "predicate slots"));
  using PredicateIndex = TripleStore::PredicateIndex;
  REMI_ASSIGN_OR_RETURN(
      const PredicateIndex* pred_index,
      CastSection<PredicateIndex>(image, kSecPredIndex, meta.predicates,
                                  "predicate index"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* subj_off_pool,
      CastSection<uint32_t>(image, kSecSubjOffPool, meta.subj_off_pool,
                            "subject offset pool"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* obj_off_pool,
      CastSection<uint32_t>(image, kSecObjOffPool, meta.obj_off_pool,
                            "object offset pool"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* ds_pool,
      CastSection<TermId>(image, kSecDistinctSubjPool,
                          meta.distinct_subjects, "distinct subject pool"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* do_pool,
      CastSection<TermId>(image, kSecDistinctObjPool, meta.distinct_objects,
                          "distinct object pool"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* prominence,
      CastSection<TermId>(image, kSecProminence, meta.entities,
                          "prominence ranking"));
  REMI_ASSIGN_OR_RETURN(
      const uint64_t* freq_by_rank,
      CastSection<uint64_t>(image, kSecFreqByRank, meta.entities,
                            "frequency ranking"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* rank_by_term,
      CastSection<uint32_t>(image, kSecRankByTerm, meta.dict_terms,
                            "rank table"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* classes,
      CastSection<TermId>(image, kSecClasses, meta.classes, "class list"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* class_offsets,
      CastSection<uint32_t>(image, kSecClassOffsets, meta.classes + 1,
                            "class offsets"));
  REMI_ASSIGN_OR_RETURN(
      const TermId* class_members,
      CastSection<TermId>(image, kSecClassMembers, meta.class_members,
                          "class member pool"));
  REMI_ASSIGN_OR_RETURN(
      const uint32_t* inverse_pairs,
      CastSection<uint32_t>(image, kSecInversePairs, meta.inverse_pairs * 2,
                            "inverse pairs"));

  // --- dictionary invariants ----------------------------------------------
  for (uint64_t i = 0; i < meta.dict_terms; ++i) {
    if (kinds[i] > static_cast<uint8_t>(TermKind::kBlank)) {
      return Corrupt("bad term kind at id " + std::to_string(i));
    }
  }
  REMI_RETURN_NOT_OK(CheckOffsets(dict_offsets, meta.dict_terms + 1, 0,
                                  meta.blob_bytes, "dictionary offsets"));

  // --- triple ordering invariants ------------------------------------------
  const uint64_t n = meta.triples;
  const uint64_t terms = meta.store_terms;
  for (uint64_t i = 0; i < n; ++i) {
    const Triple& t = spo[i];
    if (t.s >= terms || t.p >= terms || t.o >= terms) {
      return Corrupt("SPO triple id out of range at " + std::to_string(i));
    }
    if (i > 0 && !OrderSpo()(spo[i - 1], t)) {
      return Corrupt("SPO triples out of order at " + std::to_string(i));
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    const Triple& t = pso[i];
    if (t.s >= terms || t.p >= terms || t.o >= terms) {
      return Corrupt("PSO triple id out of range at " + std::to_string(i));
    }
    if (i > 0 && !OrderPso()(pso[i - 1], t)) {
      return Corrupt("PSO triples out of order at " + std::to_string(i));
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    const Triple& t = pos[i];
    if (t.s >= terms || t.p >= terms || t.o >= terms) {
      return Corrupt("POS triple id out of range at " + std::to_string(i));
    }
    if (i > 0 && !OrderPos()(pos[i - 1], t)) {
      return Corrupt("POS triples out of order at " + std::to_string(i));
    }
  }

  // --- CSR invariants -------------------------------------------------------
  REMI_RETURN_NOT_OK(CheckOffsets(subject_offsets, meta.store_terms + 1, 0, n,
                                  "subject offsets"));
  for (uint64_t s = 0; s < meta.store_terms; ++s) {
    for (uint64_t k = subject_offsets[s]; k < subject_offsets[s + 1]; ++k) {
      if (spo[k].s != s) {
        return Corrupt("subject offsets disagree with SPO at " +
                       std::to_string(k));
      }
    }
  }
  REMI_RETURN_NOT_OK(CheckAscendingIds(subjects, meta.subjects, terms,
                                       "subject list"));
  // The subject list must be exactly the distinct subjects of the SPO
  // ordering (workload sampling and scans trust it).
  uint64_t subj_cursor = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (i > 0 && spo[i].s == spo[i - 1].s) continue;
    if (subj_cursor >= meta.subjects || subjects[subj_cursor] != spo[i].s) {
      return Corrupt("subject list disagrees with SPO ordering");
    }
    ++subj_cursor;
  }
  if (subj_cursor != meta.subjects) {
    return Corrupt("subject list disagrees with SPO ordering");
  }
  REMI_RETURN_NOT_OK(CheckAscendingIds(predicates, meta.predicates, terms,
                                       "predicate list"));

  // pred_slot must be the exact inverse of the predicate list.
  uint64_t used_slots = 0;
  for (uint64_t t = 0; t < meta.store_terms; ++t) {
    const uint32_t slot = pred_slot[t];
    if (slot == UINT32_MAX) continue;
    if (slot >= meta.predicates || predicates[slot] != t) {
      return Corrupt("predicate slot mismatch for term " + std::to_string(t));
    }
    ++used_slots;
  }
  if (used_slots != meta.predicates) {
    return Corrupt("predicate slot table incomplete");
  }

  // Per-predicate ranges must tile the PSO/POS orderings in slot order and
  // reference monotone offset slices bounded by their range.
  uint64_t pso_cursor = 0, pos_cursor = 0;
  uint64_t subj_pool_cursor = 0, obj_pool_cursor = 0;
  uint64_t ds_cursor = 0, do_cursor = 0;
  for (uint64_t k = 0; k < meta.predicates; ++k) {
    const PredicateIndex& idx = pred_index[k];
    const TermId p = predicates[k];
    const std::string ctx = "predicate " + std::to_string(p);
    if (idx.pso_begin != pso_cursor || idx.pso_end < idx.pso_begin ||
        idx.pso_end > n || idx.pso_end == idx.pso_begin) {
      return Corrupt(ctx + ": PSO range does not tile");
    }
    if (pso[idx.pso_begin].p != p || pso[idx.pso_end - 1].p != p) {
      return Corrupt(ctx + ": PSO range covers wrong predicate");
    }
    pso_cursor = idx.pso_end;
    if (idx.pos_begin != pos_cursor || idx.pos_end < idx.pos_begin ||
        idx.pos_end > n || idx.pos_end == idx.pos_begin) {
      return Corrupt(ctx + ": POS range does not tile");
    }
    if (pos[idx.pos_begin].p != p || pos[idx.pos_end - 1].p != p) {
      return Corrupt(ctx + ": POS range covers wrong predicate");
    }
    pos_cursor = idx.pos_end;

    if (idx.s_base != pso[idx.pso_begin].s || idx.o_base != pos[idx.pos_begin].o) {
      return Corrupt(ctx + ": key base mismatch");
    }
    if (idx.subj_off_begin != subj_pool_cursor ||
        idx.subj_off_end <= idx.subj_off_begin ||
        idx.subj_off_end > meta.subj_off_pool) {
      return Corrupt(ctx + ": subject offset slice does not tile");
    }
    REMI_RETURN_NOT_OK(CheckOffsets(
        subj_off_pool + idx.subj_off_begin,
        idx.subj_off_end - idx.subj_off_begin, idx.pso_begin, idx.pso_end,
        (ctx + " subject offsets").c_str()));
    subj_pool_cursor = idx.subj_off_end;
    if (idx.obj_off_begin != obj_pool_cursor ||
        idx.obj_off_end <= idx.obj_off_begin ||
        idx.obj_off_end > meta.obj_off_pool) {
      return Corrupt(ctx + ": object offset slice does not tile");
    }
    REMI_RETURN_NOT_OK(CheckOffsets(
        obj_off_pool + idx.obj_off_begin,
        idx.obj_off_end - idx.obj_off_begin, idx.pos_begin, idx.pos_end,
        (ctx + " object offsets").c_str()));
    obj_pool_cursor = idx.obj_off_end;

    if (idx.ds_begin != ds_cursor || idx.ds_end < idx.ds_begin ||
        idx.ds_end > meta.distinct_subjects) {
      return Corrupt(ctx + ": distinct subject slice does not tile");
    }
    REMI_RETURN_NOT_OK(CheckAscendingIds(
        ds_pool + idx.ds_begin, idx.ds_end - idx.ds_begin, terms,
        (ctx + " distinct subjects").c_str()));
    ds_cursor = idx.ds_end;
    if (idx.do_begin != do_cursor || idx.do_end < idx.do_begin ||
        idx.do_end > meta.distinct_objects) {
      return Corrupt(ctx + ": distinct object slice does not tile");
    }
    REMI_RETURN_NOT_OK(CheckAscendingIds(
        do_pool + idx.do_begin, idx.do_end - idx.do_begin, terms,
        (ctx + " distinct objects").c_str()));
    do_cursor = idx.do_end;
  }
  if (pso_cursor != n || pos_cursor != n ||
      subj_pool_cursor != meta.subj_off_pool ||
      obj_pool_cursor != meta.obj_off_pool ||
      ds_cursor != meta.distinct_subjects ||
      do_cursor != meta.distinct_objects) {
    return Corrupt("predicate index does not cover all pools");
  }

  // --- prominence invariants ------------------------------------------------
  for (uint64_t i = 0; i < meta.entities; ++i) {
    if (prominence[i] >= meta.dict_terms) {
      return Corrupt("prominence entry out of range at " + std::to_string(i));
    }
    if (rank_by_term[prominence[i]] != i + 1) {
      return Corrupt("rank table disagrees with prominence order at " +
                     std::to_string(i));
    }
    if (i > 0 && freq_by_rank[i] > freq_by_rank[i - 1]) {
      return Corrupt("frequencies not descending at rank " +
                     std::to_string(i + 1));
    }
  }
  uint64_t ranked = 0;
  for (uint64_t t = 0; t < meta.dict_terms; ++t) {
    if (rank_by_term[t] == 0) continue;
    if (rank_by_term[t] > meta.entities) {
      return Corrupt("rank out of range for term " + std::to_string(t));
    }
    ++ranked;
  }
  if (ranked != meta.entities) {
    return Corrupt("rank table entry count mismatch");
  }

  // --- class index invariants -----------------------------------------------
  REMI_RETURN_NOT_OK(CheckAscendingIds(classes, meta.classes,
                                       meta.dict_terms, "class list"));
  REMI_RETURN_NOT_OK(CheckOffsets(class_offsets, meta.classes + 1, 0,
                                  meta.class_members, "class offsets"));
  for (uint64_t c = 0; c < meta.classes; ++c) {
    // Build sorts and deduplicates each class's members; consumers
    // (workload sampling, set operations) rely on it.
    REMI_RETURN_NOT_OK(CheckAscendingIds(
        class_members + class_offsets[c],
        class_offsets[c + 1] - class_offsets[c], meta.dict_terms,
        ("class " + std::to_string(classes[c]) + " members").c_str()));
  }

  // --- inverse map invariants -----------------------------------------------
  std::unordered_map<TermId, TermId> base_to_inverse;
  std::unordered_map<TermId, TermId> inverse_to_base;
  base_to_inverse.reserve(meta.inverse_pairs);
  inverse_to_base.reserve(meta.inverse_pairs);
  for (uint64_t i = 0; i < meta.inverse_pairs; ++i) {
    const TermId base = inverse_pairs[2 * i];
    const TermId inverse = inverse_pairs[2 * i + 1];
    if (base >= meta.dict_terms || inverse >= meta.dict_terms) {
      return Corrupt("inverse pair out of range at " + std::to_string(i));
    }
    if (!base_to_inverse.try_emplace(base, inverse).second ||
        !inverse_to_base.try_emplace(inverse, base).second) {
      return Corrupt("duplicate inverse pair at " + std::to_string(i));
    }
  }

  if (meta.type_predicate != kNullTerm &&
      meta.type_predicate >= meta.dict_terms) {
    return Corrupt("type predicate out of range");
  }
  if (meta.label_predicate != kNullTerm &&
      meta.label_predicate >= meta.dict_terms) {
    return Corrupt("label predicate out of range");
  }

  // --- adopt everything in place --------------------------------------------
  KnowledgeBase kb;
  kb.dict_ = Dictionary::View(kinds, dict_offsets, blob, meta.dict_terms);

  TripleStore store;
  store.spo_ = ArrayRef<Triple>::View(spo, n);
  store.pso_ = ArrayRef<Triple>::View(pso, n);
  store.pos_ = ArrayRef<Triple>::View(pos, n);
  store.predicates_.assign(predicates, predicates + meta.predicates);
  store.subjects_.assign(subjects, subjects + meta.subjects);
  store.num_terms_ = meta.store_terms;
  store.subject_offsets_ =
      ArrayRef<uint32_t>::View(subject_offsets, meta.store_terms + 1);
  store.pred_slot_ = ArrayRef<uint32_t>::View(pred_slot, meta.store_terms);
  store.pred_index_ =
      ArrayRef<PredicateIndex>::View(pred_index, meta.predicates);
  store.subj_offset_pool_ =
      ArrayRef<uint32_t>::View(subj_off_pool, meta.subj_off_pool);
  store.obj_offset_pool_ =
      ArrayRef<uint32_t>::View(obj_off_pool, meta.obj_off_pool);
  store.distinct_subject_pool_ =
      ArrayRef<TermId>::View(ds_pool, meta.distinct_subjects);
  store.distinct_object_pool_ =
      ArrayRef<TermId>::View(do_pool, meta.distinct_objects);
  kb.store_ = std::move(store);

  kb.options_ = meta.options;
  kb.num_base_facts_ = meta.base_facts;
  kb.type_predicate_ = meta.type_predicate;
  kb.label_predicate_ = meta.label_predicate;
  kb.base_to_inverse_ = std::move(base_to_inverse);
  kb.inverse_to_base_ = std::move(inverse_to_base);
  kb.entities_by_prominence_ =
      ArrayRef<TermId>::View(prominence, meta.entities);
  kb.freq_by_rank_ = ArrayRef<uint64_t>::View(freq_by_rank, meta.entities);
  kb.rank_by_term_ =
      ArrayRef<uint32_t>::View(rank_by_term, meta.dict_terms);
  kb.classes_.assign(classes, classes + meta.classes);
  kb.class_offsets_ =
      ArrayRef<uint32_t>::View(class_offsets, meta.classes + 1);
  kb.class_members_ =
      ArrayRef<TermId>::View(class_members, meta.class_members);
  kb.backing_ = std::move(backing);
  return kb;
}

std::string KnowledgeBase::SerializeSnapshot() const {
  return SnapshotCodec::Serialize(*this);
}

Status KnowledgeBase::SaveSnapshot(const std::string& path) const {
  const std::string bytes = SerializeSnapshot();
  // Crash-safe publish: write a temp file *in the target directory* (a
  // cross-filesystem rename is not atomic), fsync it, rename over the
  // destination, then fsync the directory so the rename itself is
  // durable. A writer killed at any step leaves either the old snapshot
  // or a stray .tmp — never a torn destination file.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + " for writing: " +
                           std::strerror(errno));
  }
  auto fail = [&](const std::string& what) {
    const Status status =
        Status::IoError(what + " " + tmp + ": " + std::strerror(errno));
    io::Hooks().Close(fd);
    ::unlink(tmp.c_str());
    return status;
  };
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        io::Hooks().Write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write failure on");
    }
    written += static_cast<size_t>(n);
  }
  if (io::Hooks().Fsync(fd) != 0) return fail("fsync failure on");
  if (io::Hooks().Close(fd) != 0) {
    // close(2) can report a deferred write error; the data may be torn.
    const Status status =
        Status::IoError("close failure on " + tmp + ": " +
                        std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  if (io::Hooks().Rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status = Status::IoError("rename " + tmp + " -> " + path +
                                          ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return status;
  }
  // Durability of the rename: fsync the containing directory. Failure
  // here is reported (the data might vanish on power loss) but the new
  // snapshot is already visible and intact.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status::IoError("cannot open directory " + dir +
                           " for fsync: " + std::strerror(errno));
  }
  if (io::Hooks().Fsync(dir_fd) != 0) {
    const Status status = Status::IoError("fsync failure on directory " +
                                          dir + ": " + std::strerror(errno));
    io::Hooks().Close(dir_fd);
    return status;
  }
  io::Hooks().Close(dir_fd);
  return Status::OK();
}

Result<KnowledgeBase> KnowledgeBase::OpenSnapshot(const std::string& path) {
  REMI_ASSIGN_OR_RETURN(MmapFile file, MmapFile::Open(path));
  return SnapshotCodec::Open(std::make_shared<MmapFile>(std::move(file)));
}

Result<KnowledgeBase> KnowledgeBase::OpenSnapshotBuffer(
    std::string_view bytes) {
  return SnapshotCodec::Open(
      std::make_shared<MmapFile>(MmapFile::FromBytes(bytes)));
}

}  // namespace remi
