#include "util/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define REMI_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/io_hooks.h"
#endif

namespace remi {

namespace {

/// Reads the whole file into an 8-byte-aligned buffer.
Status ReadWholeFile(const std::string& path, std::vector<uint64_t>* heap,
                     size_t* size) {
#if REMI_HAVE_MMAP
  // Raw read(2) through the I/O seam: the chaos harness exercises this
  // fallback with EINTR storms and torn short reads.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t n = static_cast<size_t>(st.st_size);
  heap->assign((n + 7) / 8, 0);
  char* dst = reinterpret_cast<char*>(heap->data());
  size_t got = 0;
  while (got < n) {
    const ssize_t r = io::Hooks().Read(fd, dst + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read failure on " + path);
    }
    if (r == 0) break;  // truncated between fstat and read
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  if (got != n) return Status::IoError("short read on " + path);
  *size = n;
  return Status::OK();
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IoError("cannot open " + path);
  const std::streamoff end = in.tellg();
  if (end < 0) return Status::IoError("cannot stat " + path);
  const size_t n = static_cast<size_t>(end);
  heap->assign((n + 7) / 8, 0);
  in.seekg(0);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(heap->data()),
            static_cast<std::streamsize>(n));
    if (!in) return Status::IoError("read failure on " + path);
  }
  *size = n;
  return Status::OK();
#endif
}

}  // namespace

MmapFile::~MmapFile() { Reset(); }

void MmapFile::Reset() {
#if REMI_HAVE_MMAP
  if (mapped_ && size_ > 0) {
    ::munmap(const_cast<void*>(base_), size_);
  }
#endif
  base_ = "";
  size_ = 0;
  mapped_ = false;
  heap_.clear();
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  heap_ = std::move(other.heap_);
  // Heap storage moved with the vector; re-derive the base pointer so it
  // stays valid regardless of the vector implementation.
  base_ = other.mapped_ ? other.base_
                        : (heap_.empty() ? static_cast<const void*>("") : heap_.data());
  size_ = other.size_;
  mapped_ = other.mapped_;
  other.base_ = "";
  other.size_ = 0;
  other.mapped_ = false;
  other.heap_.clear();
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  MmapFile file;
#if REMI_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode)) {
      const size_t n = static_cast<size_t>(st.st_size);
      if (n == 0) {
        ::close(fd);
        return file;  // empty file: empty view, nothing to map
      }
      void* map = io::Hooks().Mmap(nullptr, n, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        file.base_ = map;
        file.size_ = n;
        file.mapped_ = true;
        return file;
      }
      // mmap refused (e.g. filesystem without mapping support): fall back.
    } else {
      ::close(fd);
    }
  }
#endif
  REMI_RETURN_NOT_OK(ReadWholeFile(path, &file.heap_, &file.size_));
  file.base_ = file.heap_.empty() ? static_cast<const void*>("") : file.heap_.data();
  return file;
}

MmapFile MmapFile::FromBytes(std::string_view bytes) {
  MmapFile file;
  file.heap_.assign((bytes.size() + 7) / 8, 0);
  if (!bytes.empty()) {
    std::memcpy(file.heap_.data(), bytes.data(), bytes.size());
  }
  file.base_ = file.heap_.empty() ? static_cast<const void*>("") : file.heap_.data();
  file.size_ = bytes.size();
  return file;
}

}  // namespace remi
