// FNV-1a 64-bit hashing, shared by the RKF/RKF2 on-disk formats for
// footer and per-section checksums.

#pragma once

#include <cstdint>
#include <string_view>

namespace remi {

inline constexpr uint64_t kFnv1a64Seed = 0xcbf29ce484222325ULL;

/// Extends an FNV-1a 64 hash with `data` (pass kFnv1a64Seed to start).
inline uint64_t Fnv1a64Extend(uint64_t h, std::string_view data) {
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// FNV-1a 64 hash of `data`.
inline uint64_t Fnv1a64(std::string_view data) {
  return Fnv1a64Extend(kFnv1a64Seed, data);
}

/// Block-wise FNV-1a variant: folds 8 little-endian bytes per multiply,
/// then the tail byte-wise. ~8x faster than byte-at-a-time FNV at the same
/// (non-cryptographic) integrity level; RKF2 section checksums use this so
/// snapshot opens hash at memory bandwidth. NOT interchangeable with
/// Fnv1a64 — it is a different function of the input.
inline uint64_t Fnv1a64Wide(std::string_view data) {
  uint64_t h = kFnv1a64Seed;
  size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    uint64_t block = 0;
    for (int b = 0; b < 8; ++b) {
      block |= static_cast<uint64_t>(
                   static_cast<unsigned char>(data[i + b]))
               << (8 * b);
    }
    h ^= block;
    h *= 0x100000001b3ULL;
  }
  return Fnv1a64Extend(h, data.substr(i));
}

}  // namespace remi
