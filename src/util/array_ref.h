// ArrayRef<T>: an immutable array that either owns its storage (a
// std::vector built in memory) or is a non-owning view over external
// buffers (e.g. a section of an mmap'ed RKF2 snapshot).
//
// The RKF2 zero-copy load path adopts snapshot sections in place instead of
// copying them into vectors; every index structure that participates in a
// snapshot stores its arrays as ArrayRef so the owning (Build) and
// non-owning (OpenSnapshot) representations share one read path. Views do
// not manage lifetime: whoever creates a view must keep the backing buffer
// alive (KnowledgeBase retains the snapshot's MmapFile).

#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace remi {

template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  /// Owning mode: adopts the vector.
  ArrayRef(std::vector<T> owned)  // NOLINT(runtime/explicit)
      : owned_(std::move(owned)), data_(owned_.data()), size_(owned_.size()) {}

  /// Non-owning view over `size` elements at `data`. The backing memory
  /// must outlive this ArrayRef and every copy of it.
  static ArrayRef View(const T* data, size_t size) {
    ArrayRef ref;
    ref.data_ = data;
    ref.size_ = size;
    return ref;
  }

  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    if (other.owns()) {
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      data_ = other.data_;
      size_ = other.size_;
    }
    return *this;
  }

  ArrayRef(ArrayRef&& other) noexcept { *this = std::move(other); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this == &other) return *this;
    const bool was_owned = other.owns();
    owned_ = std::move(other.owned_);
    if (was_owned) {
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      data_ = other.data_;
      size_ = other.size_;
    }
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }

  std::span<const T> span() const { return {data_, size_}; }
  operator std::span<const T>() const { return span(); }  // NOLINT

  /// True when this ArrayRef owns its storage (vs viewing external memory).
  bool owns() const { return !owned_.empty(); }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace remi
