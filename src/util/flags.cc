#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace remi {

void Flags::DefineString(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  flags_[name] = FlagInfo{Type::kString, default_value, default_value, help};
}

void Flags::DefineInt(const std::string& name, int64_t default_value,
                      const std::string& help) {
  const std::string v = std::to_string(default_value);
  flags_[name] = FlagInfo{Type::kInt, v, v, help};
}

void Flags::DefineDouble(const std::string& name, double default_value,
                         const std::string& help) {
  const std::string v = FormatDouble(default_value, 6);
  flags_[name] = FlagInfo{Type::kDouble, v, v, help};
}

void Flags::DefineBool(const std::string& name, bool default_value,
                       const std::string& help) {
  const std::string v = default_value ? "true" : "false";
  flags_[name] = FlagInfo{Type::kBool, v, v, help};
}

Status Flags::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  FlagInfo& info = it->second;
  switch (info.type) {
    case Type::kInt: {
      char* end = nullptr;
      (void)strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      char* end = nullptr;
      (void)strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kString:
      break;
  }
  info.value = value;
  info.set = true;
  return Status::OK();
}

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      REMI_RETURN_NOT_OK(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // --flag value, or boolean --flag / --no-flag.
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      it->second.value = "true";
      it->second.set = true;
      continue;
    }
    if (StartsWith(arg, "no-")) {
      auto neg = flags_.find(arg.substr(3));
      if (neg != flags_.end() && neg->second.type == Type::kBool) {
        neg->second.value = "false";
        neg->second.set = true;
        continue;
      }
    }
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " is missing a value");
    }
    REMI_RETURN_NOT_OK(SetValue(arg, argv[++i]));
  }
  return Status::OK();
}

std::string Flags::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  REMI_CHECK(it != flags_.end());
  return it->second.value;
}

int64_t Flags::GetInt(const std::string& name) const {
  auto it = flags_.find(name);
  REMI_CHECK(it != flags_.end() && it->second.type == Type::kInt);
  return strtoll(it->second.value.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  REMI_CHECK(it != flags_.end());
  return strtod(it->second.value.c_str(), nullptr);
}

bool Flags::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  REMI_CHECK(it != flags_.end());
  return it->second.set;
}

bool Flags::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  REMI_CHECK(it != flags_.end() && it->second.type == Type::kBool);
  return it->second.value == "true" || it->second.value == "1";
}

std::string Flags::Help() const {
  std::string out = "Flags:\n";
  for (const auto& [name, info] : flags_) {
    out += "  --" + name + " (default: " + info.default_value + ")\n      " +
           info.help + "\n";
  }
  return out;
}

}  // namespace remi
