#include "util/thread_pool.h"

namespace remi {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  std::queue<std::function<void()>> empty;
  tasks_.swap(empty);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace remi
