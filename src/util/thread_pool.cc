#include "util/thread_pool.h"

namespace remi {

namespace {

// Identifies the pool (and worker slot) the current thread belongs to, so
// Submit() can route a worker's tasks to its own deque and OnWorkerThread()
// can detect nested use.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker_index = 0;

}  // namespace

void TaskGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ += n;
}

void TaskGroup::Done(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ -= n;
  if (pending_ == 0) cv_.notify_all();
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  shutdown_.store(true, std::memory_order_release);
  {
    // Empty critical section: a worker between its predicate check and its
    // cv wait holds mu_, so acquiring it here orders the store before the
    // notification it is about to wait for.
    std::lock_guard<std::mutex> lock(mu_);
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(nullptr, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  if (shutdown_.load(std::memory_order_relaxed)) return;
  if (group != nullptr) group->Add(1);
  unfinished_.fetch_add(1, std::memory_order_relaxed);

  // A worker submits to its own deque (back = run next, depth-first);
  // external threads append to the FIFO inbox so unrelated submissions
  // run in roughly arrival order.
  if (OnWorkerThread()) {
    Worker& w = *queues_[tls_worker_index];
    std::lock_guard<std::mutex> lock(w.mu);
    w.tasks.push_back(Task{std::move(task), group});
  } else {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(Task{std::move(task), group});
  }
  // Eventcount-style wake elision: publish the task (A), then check for
  // sleepers (B). A worker going to sleep increments idle_ (C) before its
  // predicate re-reads queued_ (D); all four are seq_cst, so if B reads 0
  // the single total order puts A < B < C < D and D must observe the new
  // task — the worker cannot sleep through it. Skipping the mutex+notify
  // when every worker is busy removes the dominant Submit cost in the
  // saturated steady state (P-REMI spilling under load).
  queued_.fetch_add(1, std::memory_order_seq_cst);
  if (idle_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);  // pair with sleeper's check
  }
  task_cv_.notify_one();
}

bool ThreadPool::FindTask(size_t self, Task* out) {
  {
    Worker& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (!inbox_.empty()) {
      *out = std::move(inbox_.front());
      inbox_.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t i = 1; i < queues_.size(); ++i) {
    Worker& victim = *queues_[(self + i) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(Task task) {
  task.fn();
  if (task.group != nullptr) task.group->Done(1);
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    Task task;
    if (FindTask(index, &task)) {
      RunTask(std::move(task));
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    // seq_cst increment before the predicate's queued_ read: pairs with
    // the wake-elision check in Submit() (see comment there).
    idle_.fetch_add(1, std::memory_order_seq_cst);
    task_cv_.wait(lock, [this] {
      return shutdown_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_seq_cst) > 0;
    });
    idle_.fetch_sub(1, std::memory_order_relaxed);
    if (shutdown_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      // Destructor semantics: drain every queued task before exiting.
      return;
    }
  }
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return unfinished_.load(std::memory_order_acquire) ==
                                0; });
}

void ThreadPool::Cancel() {
  size_t dropped = 0;
  std::deque<Task> victims;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    victims.swap(inbox_);
  }
  for (Task& task : victims) {
    if (task.group != nullptr) task.group->Done(1);
    ++dropped;
  }
  for (auto& worker : queues_) {
    std::deque<Task> worker_victims;
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker_victims.swap(worker->tasks);
    }
    for (Task& task : worker_victims) {
      if (task.group != nullptr) task.group->Done(1);
      ++dropped;
    }
  }
  if (dropped > 0) {
    queued_.fetch_sub(dropped, std::memory_order_relaxed);
    unfinished_.fetch_sub(dropped, std::memory_order_relaxed);
  }
  // Wake Wait()ers unconditionally: if the drop emptied the pool while no
  // task was active, nobody else will ever notify them (this was a hang:
  // Cancel() used to clear the queue without signalling idle_cv_).
  std::lock_guard<std::mutex> lock(mu_);
  idle_cv_.notify_all();
}

bool ThreadPool::OnWorkerThread() const { return tls_pool == this; }

bool ThreadPool::HasIdleWorker() const {
  return idle_.load(std::memory_order_relaxed) > 0;
}

}  // namespace remi
