// A bounded least-recently-used cache.
//
// REMI evaluates the same subgraph-expression queries many times during its
// DFS (paper §3.5.2: "query results are cached in a least-recently-used
// fashion"); this cache backs the query layer. Not thread-safe by itself:
// it is the per-shard building block of the lock-striped EvalCache in
// query/eval_cache.h, which P-REMI and batch mining hit concurrently.

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace remi {

/// \brief Fixed-capacity LRU map from Key to Value.
///
/// All operations are O(1) expected. Capacity 0 disables caching (all
/// lookups miss, Put is a no-op).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and marks the entry most-recently-used.
  std::optional<Value> Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites; evicts the least-recently-used entry when full.
  void Put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    if (entries_.size() >= capacity_) {
      index_.erase(entries_.back().first);
      entries_.pop_back();
    }
    entries_.emplace_front(key, std::move(value));
    index_[key] = entries_.begin();
  }

  bool Contains(const Key& key) const { return index_.count(key) > 0; }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Cache statistics, cumulative since construction or last Clear() /
  /// ResetCounters().
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  /// Zeroes the hit/miss counters without dropping entries.
  void ResetCounters() {
    hits_ = 0;
    misses_ = 0;
  }

  void Clear() {
    entries_.clear();
    index_.clear();
    hits_ = 0;
    misses_ = 0;
  }

 private:
  size_t capacity_;
  std::list<std::pair<Key, Value>> entries_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace remi
