// A fixed-size thread pool used by P-REMI (paper §3.4) and by the parallel
// construction of the subgraph-expression priority queue (paper §3.5.2).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace remi {

/// \brief Fixed-size pool executing std::function<void()> tasks FIFO.
///
/// Submit() after Shutdown() is ignored. The destructor drains queued tasks
/// before joining workers; use Cancel() to drop pending tasks instead.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing.
  void Wait();

  /// Drops all queued (not yet started) tasks.
  void Cancel();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace remi
