// A work-stealing thread pool used by P-REMI (paper §3.4), by the parallel
// construction of the subgraph-expression priority queue (paper §3.5.2),
// and by RemiMiner::MineBatch.
//
// External submissions enter a global FIFO inbox and run in roughly
// submission order. Submissions from a worker thread go to that worker's
// own deque, where the owner pushes and pops at the back (LIFO,
// depth-first locality for spilled search subtrees) while idle workers
// steal from the front (FIFO, oldest-first = closest to the root of the
// spawning task's subtree). The pool is designed to be long-lived and
// reused across many mining calls: per-call completion is tracked by
// TaskGroup rather than by draining the whole pool.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace remi {

class ThreadPool;

/// \brief Completion tracker for a related set of tasks.
///
/// Submit tasks with ThreadPool::Submit(&group, ...) and call Wait() to
/// block until all of them (including tasks they submit into the same
/// group) have finished. Unlike ThreadPool::Wait(), this lets independent
/// callers share one pool without waiting on each other's work.
///
/// Wait() must not be called from a worker of the pool the group's tasks
/// run on: the worker would block a slot its own group may need.
class TaskGroup {
 public:
  TaskGroup() = default;
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Blocks until every task submitted with this group has finished or
  /// been cancelled.
  void Wait();

 private:
  friend class ThreadPool;

  void Add(size_t n);
  void Done(size_t n);

  std::mutex mu_;
  std::condition_variable cv_;
  size_t pending_ = 0;
};

/// \brief Fixed-size work-stealing pool executing std::function<void()>
/// tasks.
///
/// Submit() after Shutdown() is ignored. The destructor drains queued
/// tasks before joining workers; use Cancel() to drop pending tasks
/// instead.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Thread-safe.
  void Submit(std::function<void()> task);

  /// Enqueues a task tracked by `group` (which must outlive the task).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing.
  void Wait();

  /// Drops all queued (not yet started) tasks and wakes Wait()ers /
  /// TaskGroup waiters whose work was dropped.
  void Cancel();

  /// True if the calling thread is one of this pool's workers. Used to
  /// avoid nested-wait deadlocks (a worker must not block on work that
  /// only the pool itself can execute).
  bool OnWorkerThread() const;

  /// True if at least one worker is currently sleeping (best-effort,
  /// relaxed read). Cheap hint for lazy task spilling: splitting work is
  /// only worth the copy when somebody is free to steal it.
  bool HasIdleWorker() const;

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> tasks;  // owner: back; thieves: front
  };

  void WorkerLoop(size_t index);
  /// Pops from the caller's own deque back, else takes the oldest inbox
  /// task, else steals from another worker's front. Returns false when
  /// every queue is empty.
  bool FindTask(size_t self, Task* out);
  void RunTask(Task task);

  std::vector<std::unique_ptr<Worker>> queues_;
  std::vector<std::thread> threads_;

  std::mutex inbox_mu_;
  std::deque<Task> inbox_;  // external submissions, FIFO

  std::mutex mu_;  // sleep/wake bookkeeping
  std::condition_variable task_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals Wait()
  std::atomic<size_t> queued_{0};      // tasks in the inbox + deques
  std::atomic<size_t> unfinished_{0};  // queued + running
  std::atomic<size_t> idle_{0};        // workers blocked in task_cv_ wait
  std::atomic<bool> shutdown_{false};
};

}  // namespace remi
