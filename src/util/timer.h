// Wall-clock timing and a cooperative deadline used to implement the
// per-entity-set timeouts of the paper's runtime evaluation (§4.2.2:
// "For each group of entities, we set a timeout of 2 hours").

#pragma once

#include <chrono>
#include <cstdint>

namespace remi {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A deadline that long-running searches poll cooperatively.
///
/// A default-constructed Deadline never expires. Polling is cheap (one
/// clock read), and callers typically poll every few hundred search nodes.
class Deadline {
 public:
  /// Never expires.
  Deadline() : has_deadline_(false) {}

  /// Expires `seconds` from now.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(seconds));
    return d;
  }

  bool Expired() const {
    return has_deadline_ && Clock::now() >= deadline_;
  }

  bool has_deadline() const { return has_deadline_; }

  /// The deadline that fires first; never-expiring inputs are ignored.
  static Deadline Earliest(const Deadline& a, const Deadline& b) {
    if (!a.has_deadline_) return b;
    if (!b.has_deadline_) return a;
    return a.deadline_ <= b.deadline_ ? a : b;
  }

  /// Seconds until expiry (negative when already expired). Only
  /// meaningful when has_deadline().
  double RemainingSeconds() const {
    return std::chrono::duration<double>(deadline_ - Clock::now()).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_;
  Clock::time_point deadline_{};
};

}  // namespace remi
