#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace remi {

namespace {

/// Appends a Unicode code point as UTF-8.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp <= 0x7F) {
    out->push_back(static_cast<char>(cp));
  } else if (cp <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    REMI_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  /// Nesting depth cap: a line-protocol request never needs more, and the
  /// recursive descent must not be a stack-overflow vector.
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at byte " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return Expect("null", JsonValue::Null(), out);
      case 't':
        return Expect("true", JsonValue::Bool(true), out);
      case 'f':
        return Expect("false", JsonValue::Bool(false), out);
      case '"':
        return ParseString(out);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  Status ParseString(JsonValue* out) {
    ++pos_;  // opening quote
    std::string s;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        *out = JsonValue::String(std::move(s));
        return Status::OK();
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        s.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': s.push_back('"'); break;
        case '\\': s.push_back('\\'); break;
        case '/': s.push_back('/'); break;
        case 'b': s.push_back('\b'); break;
        case 'f': s.push_back('\f'); break;
        case 'n': s.push_back('\n'); break;
        case 'r': s.push_back('\r'); break;
        case 't': s.push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          REMI_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low surrogate must follow.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate");
            }
            uint32_t low = 0;
            REMI_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(&s, cp);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("invalid number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    *out = JsonValue::Number(std::strtod(token.c_str(), nullptr));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) {
      *out = std::move(array);
      return Status::OK();
    }
    for (;;) {
      JsonValue item;
      REMI_RETURN_NOT_OK(ParseValue(&item, depth + 1));
      array.Append(std::move(item));
      SkipWhitespace();
      if (Consume(']')) {
        *out = std::move(array);
        return Status::OK();
      }
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) {
      *out = std::move(object);
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      JsonValue key;
      REMI_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      REMI_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      object.Set(key.AsString(), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        *out = std::move(object);
        return Status::OK();
      }
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void DumpTo(const JsonValue& v, std::string* out) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      *out += "null";
      return;
    case JsonValue::Type::kBool:
      *out += v.AsBool() ? "true" : "false";
      return;
    case JsonValue::Type::kNumber: {
      const double d = v.AsNumber();
      if (!std::isfinite(d)) {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        *out += "null";
        return;
      }
      if (d == std::floor(d) && std::fabs(d) < 9.2e18) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      return;
    }
    case JsonValue::Type::kString:
      *out += JsonEscape(v.AsString());
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out->push_back(',');
        first = false;
        DumpTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out->push_back(',');
        first = false;
        *out += JsonEscape(key);
        out->push_back(':');
        DumpTo(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

void JsonValue::Set(std::string key, JsonValue value) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);  // UTF-8 bytes pass through
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace remi
