// Cooperative cancellation for long-running operations.
//
// A CancellationSource owns a flag; the CancellationToken it hands out is a
// cheap, copyable view that workers poll at checkpoints (the REMI/P-REMI
// DFS polls once per search node, the same cadence as its deadline check).
// Cancellation is advisory and one-way: once requested it stays requested
// for the lifetime of the source. A default-constructed token can never be
// cancelled, so APIs can take one by value unconditionally.

#pragma once

#include <atomic>
#include <memory>

namespace remi {

/// \brief A poll-only view of a cancellation flag. Copyable, thread-safe.
class CancellationToken {
 public:
  /// Never cancelled.
  CancellationToken() = default;

  bool CancellationRequested() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// True if this token is connected to a source (i.e. could fire).
  bool CanBeCancelled() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Owner side of a cancellation flag.
///
/// The source may outlive or predecease its tokens; tokens keep the flag
/// alive via shared ownership.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  void RequestCancellation() {
    flag_->store(true, std::memory_order_relaxed);
  }

  bool CancellationRequested() const {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace remi
