// Status / Result error model for the REMI library.
//
// Library code never throws: every fallible operation returns a Status or a
// Result<T> (a Status-or-value, in the spirit of arrow::Result and
// rocksdb::Status). Benchmarks and examples may abort on error via
// REMI_CHECK_OK.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace remi {

/// Canonical error categories used across the library.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kIoError = 6,
  kCorruption = 7,
  kTimeout = 8,
  kUnimplemented = 9,
  kInternal = 10,
  kCancelled = 11,
  /// A request-scoped deadline expired before the operation completed.
  /// Unlike kTimeout (an operation-configured time budget, e.g. the
  /// miner's RemiOptions::timeout_seconds), this is the caller-supplied
  /// per-request deadline of the Service API.
  kDeadlineExceeded = 12,
  /// The server refused the request because a capacity limit (max
  /// in-flight requests + bounded admission queue) was reached.
  kResourceExhausted = 13,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

class Status;

/// Returns `status` with "<prefix>: " prepended to its message, keeping
/// the code (no-op for OK). Used to add file/context information, e.g.
/// `WithMessagePrefix(st, path)` -> "IoError: kb.nt: cannot open".
Status WithMessagePrefix(const Status& status, std::string_view prefix);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation); error statuses carry a
/// heap-allocated message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value of type T or an error Status.
///
/// Usage:
/// \code
///   Result<int> r = ParseCount(s);
///   if (!r.ok()) return r.status();
///   int n = *r;
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a bug and is normalized to kInternal.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  T&& operator*() && { return std::move(*value_); }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

/// Propagates a non-OK status to the caller.
#define REMI_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::remi::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Evaluates a Result expression, assigning the value to `lhs` or returning
/// the error. `lhs` may be a declaration, e.g.
/// REMI_ASSIGN_OR_RETURN(auto kb, LoadKb(path));
#define REMI_ASSIGN_OR_RETURN(lhs, rexpr)                  \
  REMI_ASSIGN_OR_RETURN_IMPL_(                             \
      REMI_STATUS_CONCAT_(_remi_result_, __LINE__), lhs, rexpr)

#define REMI_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define REMI_STATUS_CONCAT_(a, b) REMI_STATUS_CONCAT_IMPL_(a, b)
#define REMI_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace remi
