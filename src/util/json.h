// A minimal JSON value model, parser, and writer for the Service line
// protocol (tools/remi_server and its codec). Deliberately small: strict
// RFC 8259 grammar, UTF-8 pass-through, \uXXXX escapes (with surrogate
// pairs) decoded to UTF-8, no comments, no trailing commas. Numbers are
// doubles; object member order is preserved so serialized responses are
// deterministic.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace remi {

/// \brief A JSON document node: null, bool, number, string, array, object.
class JsonValue {
 public:
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue String(std::string s) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::vector<JsonValue>& items() { return items_; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Sets (or overwrites) an object member, preserving insertion order.
  void Set(std::string key, JsonValue value);
  /// Member lookup; nullptr when absent or when this is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Compact serialization (no whitespace). Numbers with an integral value
  /// in the int64 range print without a fractional part.
  std::string Dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (the whole input must be consumed, modulo
/// whitespace). Errors carry a byte offset.
Result<JsonValue> ParseJson(std::string_view text);

/// Escapes `s` as a JSON string literal including the quotes.
std::string JsonEscape(std::string_view s);

}  // namespace remi
