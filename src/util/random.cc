#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace remi {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t n) {
  REMI_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_gaussian_) {
    have_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  while (u1 == 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  REMI_CHECK(k <= n);
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    all.resize(k);
    return all;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<size_t> seen;
  std::vector<size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    size_t x = static_cast<size_t>(NextBounded(n));
    if (seen.insert(x).second) out.push_back(x);
  }
  return out;
}

ZipfSampler::ZipfSampler(size_t n, double s) : s_(s) {
  REMI_CHECK(n >= 1);
  REMI_CHECK(s > 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    acc += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = acc;
  }
  norm_ = acc;
  for (auto& c : cdf_) c /= norm_;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(size_t k) const {
  REMI_CHECK(k >= 1 && k <= cdf_.size());
  return std::pow(static_cast<double>(k), -s_) / norm_;
}

}  // namespace remi
