// Read-only memory-mapped file with a graceful read-into-buffer fallback.
//
// The RKF2 snapshot loader adopts index sections directly out of the
// mapped image (zero copy, pages fault in lazily). When mmap is
// unavailable — non-POSIX platform, exotic filesystem, or an empty file —
// Open falls back to reading the whole file into an 8-byte-aligned heap
// buffer, so callers can pointer-cast sections either way.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace remi {

/// \brief An immutable byte buffer backed by an mmap'ed file or an aligned
/// heap allocation. Move-only; unmaps/frees on destruction.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept { *this = std::move(other); }
  MmapFile& operator=(MmapFile&& other) noexcept;

  /// Opens `path` read-only. Prefers mmap; falls back to reading the file
  /// into an aligned buffer. Fails with IoError if the file cannot be read.
  static Result<MmapFile> Open(const std::string& path);

  /// Copies `bytes` into an 8-byte-aligned heap buffer (no file involved).
  /// Useful for loading snapshots from in-memory images (tests, fuzzing).
  static MmapFile FromBytes(std::string_view bytes);

  /// The file contents. data().data() is at least 8-byte aligned.
  std::string_view data() const {
    return {static_cast<const char*>(base_), size_};
  }

  /// True when backed by an actual memory mapping (vs a heap buffer).
  bool is_mapped() const { return mapped_; }

 private:
  const void* base_ = "";  // non-null even when empty
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<uint64_t> heap_;  // fallback storage, 8-byte aligned

  void Reset();
};

}  // namespace remi
