#include "util/varint.h"

namespace remi {

void PutVarint64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(const std::string& data, size_t* offset) {
  uint64_t value = 0;
  int shift = 0;
  size_t pos = *offset;
  while (pos < data.size()) {
    const uint8_t byte = static_cast<uint8_t>(data[pos++]);
    if (shift >= 64 || (shift == 63 && (byte & 0x7f) > 1)) {
      return Status::Corruption("varint64 overflow");
    }
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *offset = pos;
      return value;
    }
    shift += 7;
  }
  return Status::Corruption("truncated varint64");
}

Result<uint32_t> GetVarint32(const std::string& data, size_t* offset) {
  size_t pos = *offset;
  auto v = GetVarint64(data, &pos);
  if (!v.ok()) return v.status();
  if (*v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *offset = pos;
  return static_cast<uint32_t>(*v);
}

void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutFixed64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetFixed32(std::string_view data, size_t offset) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(std::string_view data, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

void PutLengthPrefixed(std::string* out, std::string_view value) {
  PutVarint64(out, value.size());
  out->append(value);
}

Result<std::string> GetLengthPrefixed(const std::string& data,
                                      size_t* offset) {
  size_t pos = *offset;
  auto len = GetVarint64(data, &pos);
  if (!len.ok()) return len.status();
  if (pos + *len > data.size()) {
    return Status::Corruption("truncated length-prefixed string");
  }
  std::string out = data.substr(pos, *len);
  *offset = pos + *len;
  return out;
}

}  // namespace remi
