// One-time runtime CPU-feature probe and the SIMD dispatch level derived
// from it.
//
// The set kernels of the search inner loop (query/simd_kernels.h) exist in
// several variants — portable scalar, AVX2, AVX-512 (with VPOPCNTDQ), and
// NEON — compiled into every binary via per-function target attributes.
// Which variant runs is decided once, at first use, from
//
//   1. what the CPU actually reports (CPUID on x86-64; NEON is baseline on
//      AArch64), and
//   2. an optional override: the REMI_SIMD environment variable
//      ("auto" | "scalar" | "neon" | "avx2" | "avx512") or an explicit
//      ForceSimdLevel() call from tests and benchmarks.
//
// An override can only lower the level: requesting avx512 on an AVX2-only
// host clamps to avx2, so a forced run never executes unsupported
// instructions. Benchmarks record both the detected features and the
// active level in their JSON context (bench/bench_common.h), so committed
// numbers always say what hardware path produced them.

#pragma once

#include <string>

namespace remi {

/// Instruction-set tiers the set kernels are specialized for, in
/// ascending capability order (on their respective architectures).
enum class SimdLevel {
  kScalar = 0,  ///< portable C++ (the oracle for the property tests)
  kNeon = 1,    ///< AArch64 NEON (128-bit)
  kAvx2 = 2,    ///< x86-64 AVX2 (256-bit, pshufb popcount)
  kAvx512 = 3,  ///< x86-64 AVX-512F/BW/VL + VPOPCNTDQ (512-bit)
};

/// What the probe saw. All fields are false on architectures where the
/// corresponding extension cannot exist.
struct CpuFeatures {
  bool avx2 = false;
  /// AVX-512 Foundation + BW + VL + VPOPCNTDQ together — the subset the
  /// kernels need (vpopcntq and masked 64-bit lane ops).
  bool avx512 = false;
  bool neon = false;

  /// Highest kernel tier this CPU supports.
  SimdLevel Best() const;

  /// Human/JSON-friendly summary, e.g. "avx2+avx512-vpopcntdq" or
  /// "neon" or "none".
  std::string Describe() const;
};

/// The probed features of the executing CPU (computed once, cached).
const CpuFeatures& DetectCpuFeatures();

/// The dispatch level the kernels currently run at: the detected best,
/// lowered by REMI_SIMD or ForceSimdLevel() if either asked for less.
SimdLevel ActiveSimdLevel();

/// Overrides the active level (clamped to the detected best) and
/// re-resolves the kernel dispatch table. For tests and benchmarks —
/// e.g. the scalar-vs-SIMD oracle runs and bench/micro_simd.cc. Not
/// thread-safe against concurrent kernel calls; call it from a single
/// thread before spawning workers.
void ForceSimdLevel(SimdLevel level);

/// Drops any ForceSimdLevel override, returning to REMI_SIMD/auto.
void ClearForcedSimdLevel();

/// Lower-case name of a level: "scalar", "neon", "avx2", "avx512".
const char* SimdLevelName(SimdLevel level);

}  // namespace remi
