// A minimal command-line flag parser for examples and benchmark harnesses.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are reported as errors so that typos in
// experiment configurations do not silently run the default setup.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace remi {

/// \brief Registry + parser for a flat set of typed flags.
class Flags {
 public:
  /// Registers a flag with a default value and help text.
  void DefineString(const std::string& name, const std::string& default_value,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  void DefineDouble(const std::string& name, double default_value,
                    const std::string& help);
  void DefineBool(const std::string& name, bool default_value,
                  const std::string& help);

  /// Parses argv; returns error on unknown flags or malformed values.
  /// Positional (non --) arguments are collected into positional().
  Status Parse(int argc, char** argv);

  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True if the flag was explicitly set on the command line (as opposed
  /// to carrying its default value).
  bool WasSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted help text listing all registered flags.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct FlagInfo {
    Type type;
    std::string value;  // current value, textual
    std::string default_value;
    std::string help;
    bool set = false;  // explicitly set via Parse
  };
  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, FlagInfo> flags_;
  std::vector<std::string> positional_;
};

}  // namespace remi
