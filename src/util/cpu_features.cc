#include "util/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace remi {

namespace {

CpuFeatures Probe() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512 = __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#elif defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  f.neon = true;
#endif
  return f;
}

/// Parses REMI_SIMD; unknown/unset values mean "auto" (detected best).
SimdLevel RequestedLevel(const CpuFeatures& f) {
  const char* env = std::getenv("REMI_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return f.Best();
  }
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "neon") == 0) return SimdLevel::kNeon;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return SimdLevel::kAvx512;
  return f.Best();
}

SimdLevel ClampToDetected(SimdLevel level, const CpuFeatures& f) {
  switch (level) {
    case SimdLevel::kAvx512:
      if (f.avx512) return SimdLevel::kAvx512;
      [[fallthrough]];
    case SimdLevel::kAvx2:
      if (f.avx2) return SimdLevel::kAvx2;
      [[fallthrough]];
    case SimdLevel::kNeon:
      if (f.neon) return SimdLevel::kNeon;
      [[fallthrough]];
    case SimdLevel::kScalar:
      break;
  }
  return SimdLevel::kScalar;
}

/// -1 = no ForceSimdLevel override in effect.
std::atomic<int> g_forced_level{-1};

}  // namespace

SimdLevel CpuFeatures::Best() const {
  if (avx512) return SimdLevel::kAvx512;
  if (avx2) return SimdLevel::kAvx2;
  if (neon) return SimdLevel::kNeon;
  return SimdLevel::kScalar;
}

std::string CpuFeatures::Describe() const {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (avx2) add("avx2");
  if (avx512) add("avx512-vpopcntdq");
  if (neon) add("neon");
  if (out.empty()) out = "none";
  return out;
}

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Probe();
  return features;
}

SimdLevel ActiveSimdLevel() {
  const CpuFeatures& f = DetectCpuFeatures();
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return ClampToDetected(static_cast<SimdLevel>(forced), f);
  }
  static const SimdLevel env_level = ClampToDetected(RequestedLevel(f), f);
  return env_level;
}

void ForceSimdLevel(SimdLevel level) {
  g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearForcedSimdLevel() {
  g_forced_level.store(-1, std::memory_order_relaxed);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

}  // namespace remi
