// Small string helpers shared across modules.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace remi {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Formats a double with `digits` decimals (printf "%.*f").
std::string FormatDouble(double value, int digits);

/// Formats seconds compactly, e.g. "12.3ms", "4.56s", "1.2ks".
std::string FormatSeconds(double seconds);

/// Longest common prefix length of two strings (used by the front-coded
/// dictionary in the RKF format).
size_t CommonPrefixLength(std::string_view a, std::string_view b);

}  // namespace remi
