// LEB128-style variable-length integer codec for the RKF binary KB format
// (the HDT-inspired single-file storage of paper §3.5.1).

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace remi {

/// Appends the unsigned LEB128 encoding of `value` to `out` (1-10 bytes).
void PutVarint64(std::string* out, uint64_t value);

/// Appends a 32-bit varint.
inline void PutVarint32(std::string* out, uint32_t value) {
  PutVarint64(out, value);
}

/// Decodes a varint from data[*offset...]; advances *offset past it.
/// Fails with Corruption on truncated or oversized input.
Result<uint64_t> GetVarint64(const std::string& data, size_t* offset);

/// Decodes a 32-bit varint; fails if the decoded value exceeds UINT32_MAX.
Result<uint32_t> GetVarint32(const std::string& data, size_t* offset);

/// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* out, std::string_view value);

// Little-endian fixed-width integers, shared by the RKF/RKF2 on-disk
// formats (one codec, so the formats cannot drift apart). The Get variants
// do not bounds-check: the caller must ensure offset + width <= size.
void PutFixed32(std::string* out, uint32_t value);
void PutFixed64(std::string* out, uint64_t value);
uint32_t GetFixed32(std::string_view data, size_t offset);
uint64_t GetFixed64(std::string_view data, size_t offset);

/// Decodes a length-prefixed string written by PutLengthPrefixed.
Result<std::string> GetLengthPrefixed(const std::string& data,
                                      size_t* offset);

}  // namespace remi
