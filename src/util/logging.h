// Lightweight assertion and logging macros.
//
// REMI_CHECK* abort the process with a diagnostic; they guard invariants
// whose violation indicates a programming error, never data-dependent
// failures (those return Status).

#pragma once

#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace remi {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "REMI_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] inline void CheckOkFailed(const char* file, int line,
                                       const Status& st) {
  std::fprintf(stderr, "REMI_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace remi

#define REMI_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::remi::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                           \
  } while (0)

#define REMI_CHECK_OK(expr)                                      \
  do {                                                           \
    ::remi::Status _st = (expr);                                 \
    if (!_st.ok()) {                                             \
      ::remi::internal::CheckOkFailed(__FILE__, __LINE__, _st);  \
    }                                                            \
  } while (0)

#define REMI_DCHECK(expr) REMI_CHECK(expr)
