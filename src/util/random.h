// Deterministic random number generation and samplers.
//
// All stochastic components of the reproduction (synthetic KB generation,
// simulated user panels, workload sampling) draw from Rng so that every
// experiment is reproducible from a seed.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace remi {

/// \brief xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and fully deterministic across platforms (unlike
/// std::mt19937 + std::distributions, whose outputs are not portable).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

  /// Uniformly shuffles `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool have_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// \brief Zipf(s) sampler over ranks {1, ..., n}.
///
/// P(rank = k) proportional to k^-s. Implemented via the cumulative table
/// (O(log n) per draw), which is exact and fast for the n <= ~10^7 used by
/// the synthetic KB generator. The power-law premise is central to the
/// paper's Eq. 1.
class ZipfSampler {
 public:
  /// \param n number of ranks (>= 1)
  /// \param s exponent (> 0); s ~ 1 mirrors natural-language corpora.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [1, n].
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

  /// Probability mass of rank k (1-based).
  double Pmf(size_t k) const;

 private:
  double s_;
  double norm_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace remi
