#include "util/powerlaw.h"

#include <cmath>

namespace remi {

Result<LinearFit> FitLinear(const std::vector<double>& x,
                            const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitLinear: size mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("FitLinear: need at least 2 points");
  }
  const size_t n = x.size();
  double sx = 0, sy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  LinearFit fit;
  fit.n = n;
  if (sxx == 0.0) {
    // Vertical data: fall back to the mean as a constant predictor.
    fit.slope = 0.0;
    fit.intercept = my;
  } else {
    fit.slope = sxy / sxx;
    fit.intercept = my - fit.slope * mx;
  }
  double ss_res = 0, ss_tot = 0;
  for (size_t i = 0; i < n; ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  fit.r2 = ss_tot == 0.0 ? (ss_res == 0.0 ? 1.0 : 0.0) : 1.0 - ss_res / ss_tot;
  if (fit.r2 < 0.0) fit.r2 = 0.0;
  return fit;
}

double PowerLawCoefficients::EstimateBits(double freq) const {
  if (freq < 1.0) freq = 1.0;
  const double bits = -alpha * std::log2(freq) + beta;
  return bits < 0.0 ? 0.0 : bits;
}

PowerLawCoefficients FitPowerLaw(const std::vector<double>& frequencies) {
  PowerLawCoefficients coeff;
  coeff.n = frequencies.size();
  if (frequencies.size() < 2) {
    coeff.r2 = 1.0;
    return coeff;
  }
  std::vector<double> log_freq, log_rank;
  log_freq.reserve(frequencies.size());
  log_rank.reserve(frequencies.size());
  for (size_t i = 0; i < frequencies.size(); ++i) {
    const double f = frequencies[i] < 1.0 ? 1.0 : frequencies[i];
    log_freq.push_back(std::log2(f));
    log_rank.push_back(std::log2(static_cast<double>(i + 1)));
  }
  auto fit = FitLinear(log_freq, log_rank);
  if (!fit.ok()) {
    coeff.r2 = 1.0;
    return coeff;
  }
  // Eq. 1: log2(rank) = -alpha * log2(freq) + beta, so slope = -alpha.
  coeff.alpha = -fit->slope;
  coeff.beta = fit->intercept;
  coeff.r2 = fit->r2;
  return coeff;
}

}  // namespace remi
