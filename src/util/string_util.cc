#include "util/string_util.h"

#include <cstdio>

namespace remi {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n')) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n')) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fks", seconds / 1000.0);
  }
  return buf;
}

size_t CommonPrefixLength(std::string_view a, std::string_view b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace remi
