// Syscall-level I/O seam + deterministic fault injector.
//
// Every serving-surface syscall (event_server, line_server, socket_util,
// mmap_file, the snapshot writer) goes through the process-global IoHooks
// table instead of calling the kernel directly. The default table is a
// pure pass-through with zero added cost beyond one indirect call; tests
// and the chaos harness install a FaultInjector to subject the whole
// stack to the OS failure surface — short writes, EINTR/EAGAIN storms,
// EMFILE/ENOMEM, injected disconnects, byte-level frame tearing — without
// LD_PRELOAD tricks or real resource exhaustion.
//
// Scope discipline: only *server-side* transport and persistence code
// routes through the hooks. Client helpers (remi_cli's round trips, test
// clients, the chaos harness's own load generators) use raw syscalls, so
// a single process can run a faulted server against clean clients.
//
// The injector is deterministic per seed: fault decisions come from a
// counted splitmix64 stream, so a single-threaded caller replays the
// exact same fault sequence, and a multi-threaded run with a fixed seed
// reproduces the same fault *distribution* (the interleaving decides
// which call draws which decision).

#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace remi {
namespace io {

/// \brief The syscall table. The base class IS the pass-through: every
/// method forwards to the real syscall. Override to intercept.
///
/// Installed implementations must be thread-safe: the epoll loop, the
/// dispatch workers, LineServer threads, and snapshot writers all call
/// concurrently.
class IoHooks {
 public:
  virtual ~IoHooks() = default;

  virtual ssize_t Read(int fd, void* buf, size_t count);
  virtual ssize_t Recv(int fd, void* buf, size_t len, int flags);
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual ssize_t Send(int fd, const void* buf, size_t len, int flags);
  virtual int Accept4(int fd, struct sockaddr* addr, socklen_t* addrlen,
                      int flags);
  virtual int EpollWait(int epfd, struct epoll_event* events, int maxevents,
                        int timeout_ms);
  virtual int Close(int fd);
  virtual int Fsync(int fd);
  virtual int Rename(const char* oldpath, const char* newpath);
  virtual void* Mmap(void* addr, size_t length, int prot, int flags, int fd,
                     off_t offset);
};

/// The active table; never null (pass-through by default). Fetched per
/// call, so an install takes effect on the next syscall.
IoHooks& Hooks();

/// Installs `hooks` (nullptr restores the pass-through) and returns the
/// previously installed table (nullptr = pass-through was active). The
/// caller keeps ownership; the hooks must outlive their installation.
IoHooks* SetHooks(IoHooks* hooks);

/// RAII installation for tests: installs on construction, restores the
/// previous table on destruction.
class ScopedHooks {
 public:
  explicit ScopedHooks(IoHooks* hooks) : previous_(SetHooks(hooks)) {}
  ~ScopedHooks() { SetHooks(previous_); }
  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;

 private:
  IoHooks* previous_;
};

/// Operation classes the injector targets and counts.
enum class IoOp : uint8_t {
  kRead = 0,
  kRecv,
  kWrite,
  kSend,
  kAccept,
  kEpollWait,
  kClose,
  kFsync,
  kRename,
  kMmap,
};
constexpr size_t kNumIoOps = 10;

/// Probability knobs of the injector, all in [0, 1] per matching call.
/// Everything defaults to 0 = no faults; the seed alone never hurts.
struct FaultProfile {
  uint64_t seed = 1;
  /// read/recv/write/send/accept4/epoll_wait return -1/EINTR. Every
  /// caller must loop; a storm of these is survivable noise.
  double eintr_probability = 0.0;
  /// recv/send/accept4 return -1/EAGAIN: exercises the re-arm paths of
  /// the nonblocking transports.
  double eagain_probability = 0.0;
  /// send/write transfer only a prefix (1..n-1 bytes): partial writes.
  double short_write_probability = 0.0;
  /// recv delivers a single byte: byte-level frame/line tearing.
  double short_read_probability = 0.0;
  /// recv/send return -1/ECONNRESET: mid-frame peer disconnects.
  double disconnect_probability = 0.0;
  /// accept4 fails with EMFILE/ENFILE/ENOMEM (rotating): fd exhaustion.
  double accept_resource_probability = 0.0;
  /// mmap returns MAP_FAILED/ENOMEM: forces the read-fallback path.
  double mmap_fail_probability = 0.0;
};

/// \brief Deterministic seeded fault injector implementing IoHooks.
///
/// Two scheduling modes compose:
///   * probability-scheduled: each matching call draws from the seeded
///     stream against the FaultProfile knobs;
///   * sequence-scheduled: FailNth(op, n, err) makes exactly the n-th
///     call of `op` (1-based, counted from construction) fail with
///     `err` — the tool for crash-exactly-here tests like the
///     snapshot-writer kill.
class FaultInjector : public IoHooks {
 public:
  explicit FaultInjector(const FaultProfile& profile);

  /// Schedules the `nth` call of `op` (1-based) to fail with errno
  /// `err`. Transfer ops return -1, Mmap returns MAP_FAILED. Multiple
  /// schedules may target the same op.
  void FailNth(IoOp op, uint64_t nth, int err);

  /// Restricts injection to fds accepted by `filter` (fd-less ops —
  /// Rename — are always eligible). Lets a single-process test fault the
  /// server's sockets while its client fds stay clean.
  void set_fd_filter(std::function<bool(int fd)> filter);

  uint64_t calls(IoOp op) const {
    return calls_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }
  uint64_t injected(IoOp op) const {
    return injected_[static_cast<size_t>(op)].load(std::memory_order_relaxed);
  }
  uint64_t injected_total() const;

  ssize_t Read(int fd, void* buf, size_t count) override;
  ssize_t Recv(int fd, void* buf, size_t len, int flags) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  ssize_t Send(int fd, const void* buf, size_t len, int flags) override;
  int Accept4(int fd, struct sockaddr* addr, socklen_t* addrlen,
              int flags) override;
  int EpollWait(int epfd, struct epoll_event* events, int maxevents,
                int timeout_ms) override;
  int Close(int fd) override;
  int Fsync(int fd) override;
  int Rename(const char* oldpath, const char* newpath) override;
  void* Mmap(void* addr, size_t length, int prot, int flags, int fd,
             off_t offset) override;

 private:
  struct Scheduled {
    IoOp op;
    uint64_t nth;  ///< 1-based call index of `op`
    int err;
  };

  /// Counts the call; true when a sequence-scheduled fault fires (err in
  /// *out_err). Runs before the probability draws so FailNth stays exact.
  bool CountAndCheckScheduled(IoOp op, int* out_err);
  /// One deterministic draw from the seeded stream; true with
  /// probability `p`.
  bool Roll(double p);
  bool FdEligible(int fd) const;
  void RecordInjected(IoOp op) {
    injected_[static_cast<size_t>(op)].fetch_add(1,
                                                 std::memory_order_relaxed);
  }

  const FaultProfile profile_;
  std::atomic<uint64_t> cursor_{0};  ///< index into the splitmix64 stream
  std::array<std::atomic<uint64_t>, kNumIoOps> calls_{};
  std::array<std::atomic<uint64_t>, kNumIoOps> injected_{};
  std::atomic<uint64_t> resource_errno_cursor_{0};

  mutable std::mutex schedule_mu_;
  std::vector<Scheduled> schedule_;
  std::function<bool(int fd)> fd_filter_;
  std::atomic<bool> has_filter_{false};
};

}  // namespace io
}  // namespace remi
