#include "util/io_hooks.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace remi {
namespace io {

// --- pass-through table ------------------------------------------------------

ssize_t IoHooks::Read(int fd, void* buf, size_t count) {
  return ::read(fd, buf, count);
}

ssize_t IoHooks::Recv(int fd, void* buf, size_t len, int flags) {
  return ::recv(fd, buf, len, flags);
}

ssize_t IoHooks::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}

ssize_t IoHooks::Send(int fd, const void* buf, size_t len, int flags) {
  return ::send(fd, buf, len, flags);
}

int IoHooks::Accept4(int fd, struct sockaddr* addr, socklen_t* addrlen,
                     int flags) {
  return ::accept4(fd, addr, addrlen, flags);
}

int IoHooks::EpollWait(int epfd, struct epoll_event* events, int maxevents,
                       int timeout_ms) {
  return ::epoll_wait(epfd, events, maxevents, timeout_ms);
}

int IoHooks::Close(int fd) { return ::close(fd); }

int IoHooks::Fsync(int fd) { return ::fsync(fd); }

int IoHooks::Rename(const char* oldpath, const char* newpath) {
  return ::rename(oldpath, newpath);
}

void* IoHooks::Mmap(void* addr, size_t length, int prot, int flags, int fd,
                    off_t offset) {
  return ::mmap(addr, length, prot, flags, fd, offset);
}

namespace {

IoHooks& Passthrough() {
  static IoHooks passthrough;
  return passthrough;
}

std::atomic<IoHooks*>& ActiveSlot() {
  static std::atomic<IoHooks*> active{nullptr};
  return active;
}

/// splitmix64: a full-period 64-bit mixer. Indexed by an atomic cursor so
/// the decision *stream* is fixed by the seed regardless of which thread
/// draws which index.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

IoHooks& Hooks() {
  IoHooks* active = ActiveSlot().load(std::memory_order_acquire);
  return active != nullptr ? *active : Passthrough();
}

IoHooks* SetHooks(IoHooks* hooks) {
  return ActiveSlot().exchange(hooks, std::memory_order_acq_rel);
}

// --- fault injector ----------------------------------------------------------

FaultInjector::FaultInjector(const FaultProfile& profile)
    : profile_(profile) {}

void FaultInjector::FailNth(IoOp op, uint64_t nth, int err) {
  std::lock_guard<std::mutex> lock(schedule_mu_);
  schedule_.push_back(Scheduled{op, nth, err});
}

void FaultInjector::set_fd_filter(std::function<bool(int)> filter) {
  std::lock_guard<std::mutex> lock(schedule_mu_);
  fd_filter_ = std::move(filter);
  has_filter_.store(fd_filter_ != nullptr, std::memory_order_release);
}

uint64_t FaultInjector::injected_total() const {
  uint64_t total = 0;
  for (const auto& count : injected_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

bool FaultInjector::CountAndCheckScheduled(IoOp op, int* out_err) {
  const uint64_t nth =
      calls_[static_cast<size_t>(op)].fetch_add(1, std::memory_order_relaxed) +
      1;
  std::lock_guard<std::mutex> lock(schedule_mu_);
  for (const Scheduled& s : schedule_) {
    if (s.op == op && s.nth == nth) {
      *out_err = s.err;
      return true;
    }
  }
  return false;
}

bool FaultInjector::Roll(double p) {
  if (p <= 0.0) return false;
  const uint64_t n = cursor_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = SplitMix64(profile_.seed + n);
  // 53 high bits -> uniform double in [0, 1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < p;
}

bool FaultInjector::FdEligible(int fd) const {
  if (!has_filter_.load(std::memory_order_acquire)) return true;
  std::lock_guard<std::mutex> lock(schedule_mu_);
  return fd_filter_ == nullptr || fd_filter_(fd);
}

ssize_t FaultInjector::Read(int fd, void* buf, size_t count) {
  int err;
  if (CountAndCheckScheduled(IoOp::kRead, &err)) {
    RecordInjected(IoOp::kRead);
    errno = err;
    return -1;
  }
  if (FdEligible(fd) && Roll(profile_.eintr_probability)) {
    RecordInjected(IoOp::kRead);
    errno = EINTR;
    return -1;
  }
  return IoHooks::Read(fd, buf, count);
}

ssize_t FaultInjector::Recv(int fd, void* buf, size_t len, int flags) {
  int err;
  if (CountAndCheckScheduled(IoOp::kRecv, &err)) {
    RecordInjected(IoOp::kRecv);
    errno = err;
    return -1;
  }
  if (FdEligible(fd)) {
    if (Roll(profile_.eintr_probability)) {
      RecordInjected(IoOp::kRecv);
      errno = EINTR;
      return -1;
    }
    if (Roll(profile_.eagain_probability)) {
      RecordInjected(IoOp::kRecv);
      errno = EAGAIN;
      return -1;
    }
    if (Roll(profile_.disconnect_probability)) {
      RecordInjected(IoOp::kRecv);
      errno = ECONNRESET;
      return -1;
    }
    if (len > 1 && Roll(profile_.short_read_probability)) {
      // Deliver one byte: the decoder must reassemble a frame header (or
      // an NDJSON line) torn at an arbitrary byte boundary.
      RecordInjected(IoOp::kRecv);
      return IoHooks::Recv(fd, buf, 1, flags);
    }
  }
  return IoHooks::Recv(fd, buf, len, flags);
}

ssize_t FaultInjector::Write(int fd, const void* buf, size_t count) {
  int err;
  if (CountAndCheckScheduled(IoOp::kWrite, &err)) {
    RecordInjected(IoOp::kWrite);
    errno = err;
    return -1;
  }
  if (FdEligible(fd)) {
    if (Roll(profile_.eintr_probability)) {
      RecordInjected(IoOp::kWrite);
      errno = EINTR;
      return -1;
    }
    if (count > 1 && Roll(profile_.short_write_probability)) {
      RecordInjected(IoOp::kWrite);
      const uint64_t n = cursor_.fetch_add(1, std::memory_order_relaxed);
      const size_t take =
          1 + static_cast<size_t>(SplitMix64(profile_.seed + n) % (count - 1));
      return IoHooks::Write(fd, buf, take);
    }
  }
  return IoHooks::Write(fd, buf, count);
}

ssize_t FaultInjector::Send(int fd, const void* buf, size_t len, int flags) {
  int err;
  if (CountAndCheckScheduled(IoOp::kSend, &err)) {
    RecordInjected(IoOp::kSend);
    errno = err;
    return -1;
  }
  if (FdEligible(fd)) {
    if (Roll(profile_.eintr_probability)) {
      RecordInjected(IoOp::kSend);
      errno = EINTR;
      return -1;
    }
    if (Roll(profile_.eagain_probability)) {
      RecordInjected(IoOp::kSend);
      errno = EAGAIN;
      return -1;
    }
    if (Roll(profile_.disconnect_probability)) {
      RecordInjected(IoOp::kSend);
      errno = ECONNRESET;
      return -1;
    }
    if (len > 1 && Roll(profile_.short_write_probability)) {
      // Transfer a random 1..len-1 prefix: the flush loop must track the
      // consumed offset instead of assuming full sends.
      RecordInjected(IoOp::kSend);
      const uint64_t n = cursor_.fetch_add(1, std::memory_order_relaxed);
      const size_t take =
          1 + static_cast<size_t>(SplitMix64(profile_.seed + n) % (len - 1));
      return IoHooks::Send(fd, buf, take, flags);
    }
  }
  return IoHooks::Send(fd, buf, len, flags);
}

int FaultInjector::Accept4(int fd, struct sockaddr* addr, socklen_t* addrlen,
                           int flags) {
  int err;
  if (CountAndCheckScheduled(IoOp::kAccept, &err)) {
    RecordInjected(IoOp::kAccept);
    errno = err;
    return -1;
  }
  if (FdEligible(fd)) {
    if (Roll(profile_.eintr_probability)) {
      RecordInjected(IoOp::kAccept);
      errno = EINTR;
      return -1;
    }
    if (Roll(profile_.eagain_probability)) {
      RecordInjected(IoOp::kAccept);
      errno = EAGAIN;
      return -1;
    }
    if (Roll(profile_.accept_resource_probability)) {
      RecordInjected(IoOp::kAccept);
      static const int kResourceErrnos[] = {EMFILE, ENFILE, ENOMEM};
      const uint64_t i =
          resource_errno_cursor_.fetch_add(1, std::memory_order_relaxed);
      errno = kResourceErrnos[i % 3];
      return -1;
    }
  }
  return IoHooks::Accept4(fd, addr, addrlen, flags);
}

int FaultInjector::EpollWait(int epfd, struct epoll_event* events,
                             int maxevents, int timeout_ms) {
  int err;
  if (CountAndCheckScheduled(IoOp::kEpollWait, &err)) {
    RecordInjected(IoOp::kEpollWait);
    errno = err;
    return -1;
  }
  if (Roll(profile_.eintr_probability)) {
    RecordInjected(IoOp::kEpollWait);
    errno = EINTR;
    return -1;
  }
  return IoHooks::EpollWait(epfd, events, maxevents, timeout_ms);
}

int FaultInjector::Close(int fd) {
  int err;
  if (CountAndCheckScheduled(IoOp::kClose, &err)) {
    RecordInjected(IoOp::kClose);
    // The fd still has to go away — a "failed" close that leaks the
    // descriptor would fail the chaos soak on fd exhaustion grounds, and
    // POSIX close(2) leaves the fd state unspecified on error anyway.
    IoHooks::Close(fd);
    errno = err;
    return -1;
  }
  return IoHooks::Close(fd);
}

int FaultInjector::Fsync(int fd) {
  int err;
  if (CountAndCheckScheduled(IoOp::kFsync, &err)) {
    RecordInjected(IoOp::kFsync);
    errno = err;
    return -1;
  }
  return IoHooks::Fsync(fd);
}

int FaultInjector::Rename(const char* oldpath, const char* newpath) {
  int err;
  if (CountAndCheckScheduled(IoOp::kRename, &err)) {
    RecordInjected(IoOp::kRename);
    errno = err;
    return -1;
  }
  return IoHooks::Rename(oldpath, newpath);
}

void* FaultInjector::Mmap(void* addr, size_t length, int prot, int flags,
                          int fd, off_t offset) {
  int err;
  if (CountAndCheckScheduled(IoOp::kMmap, &err)) {
    RecordInjected(IoOp::kMmap);
    errno = err;
    return MAP_FAILED;
  }
  if (FdEligible(fd) && Roll(profile_.mmap_fail_probability)) {
    RecordInjected(IoOp::kMmap);
    errno = ENOMEM;
    return MAP_FAILED;
  }
  return IoHooks::Mmap(addr, length, prot, flags, fd, offset);
}

}  // namespace io
}  // namespace remi
