// Power-law fitting between rank and frequency (paper Eq. 1).
//
// The paper compresses the per-predicate conditional rankings k(I | p) into
// a pair of coefficients (alpha, beta) per predicate by fitting
//     log2(rank) ~= -alpha * log2(freq) + beta
// and validates the fit by its R^2 (reported means: 0.85 DBpedia-fr,
// 0.88 Wikidata-fr, 0.91 DBpedia-pr). This module provides the least-squares
// fit and the R^2 computation used both by the cost model's "fitted" mode
// and by bench/fit_r2.

#pragma once

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace remi {

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect fit). Defined as
  /// 1 - SS_res / SS_tot; for a constant y it is 1 if the fit is exact.
  double r2 = 0.0;
  size_t n = 0;
};

/// Ordinary least squares on (x, y) pairs. Requires x.size() == y.size()
/// and at least 2 points.
Result<LinearFit> FitLinear(const std::vector<double>& x,
                            const std::vector<double>& y);

/// Coefficients of the paper's Eq. 1 for one predicate:
/// log2(k(I|p)) ~= -alpha * log2(fr(I|p)) + beta.
struct PowerLawCoefficients {
  double alpha = 0.0;
  double beta = 0.0;
  double r2 = 0.0;
  size_t n = 0;

  /// Estimated code length (bits) of the entity whose conditional
  /// frequency is `freq` (>= 1). Clamped to be non-negative.
  double EstimateBits(double freq) const;
};

/// Fits Eq. 1 from a list of (frequency-sorted) frequencies: element i is
/// the frequency of the rank-(i+1) entity. Frequencies must be >= 1.
/// Rankings with fewer than 2 distinct points yield alpha = 0 and
/// beta = 0 (every entity costs log2(1) = 0 bits), r2 = 1.
PowerLawCoefficients FitPowerLaw(const std::vector<double>& frequencies);

}  // namespace remi
