#include "util/status.h"

namespace remi {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status WithMessagePrefix(const Status& status, std::string_view prefix) {
  if (status.ok()) return status;
  std::string message(prefix);
  message += ": ";
  message += status.message();
  return Status(status.code(), std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace remi
