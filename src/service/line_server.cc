#include "service/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "service/json_codec.h"
#include "service/socket_util.h"
#include "util/io_hooks.h"

namespace remi {

LineServer::LineServer(Service* service, const LineServerOptions& options)
    : service_(service), options_(options) {}

LineServer::~LineServer() { Stop(); }

Status LineServer::Start() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Bound the shutdown: every request dispatched over the wire carries
  // this token, so a deadline-less mining run returns Cancelled within
  // one DFS node instead of pinning a connection thread for hours.
  cancel_source_.RequestCancellation();
  if (listen_fd_ >= 0) {
    // Unblocks accept(2); the loop then exits on the stopping_ flag. The
    // fd is closed only after the accept thread joins, so the loop never
    // touches a closed (and possibly recycled) descriptor.
    shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
    }
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

bool LineServer::Drain(double grace_seconds) {
  // Phase 1: stop the intake. After this no new connection is accepted;
  // the listener socket is fully gone, so clients see ECONNREFUSED
  // instead of queueing behind a server that will never serve them.
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // Phase 2: half-close every open connection. SHUT_RD makes the serving
  // thread's next recv() return 0 once it has drained what the client
  // already sent — buffered requests still execute and their responses
  // still flush (the write side stays open). This is the difference from
  // Stop(): no in-flight mine is cancelled yet.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RD);
    }
  }

  // Phase 3: wait out the grace period on the connections' done flags.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(grace_seconds));
  bool all_done = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      all_done = true;
      for (const auto& connection : connections_) {
        if (!connection->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase 4: whatever is still running has used up its grace — cancel it
  // (every dispatched request carries this token) and cut the sockets
  // both ways so the serving threads unblock and exit.
  if (!all_done) cancel_source_.RequestCancellation();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
    }
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  return all_done;
}

void LineServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void LineServer::AcceptLoop() {
  for (;;) {
    // accept4 with flags=0 is accept(2); routed through the I/O seam so
    // the chaos harness can inject EMFILE/ENOMEM at the intake.
    const int fd = io::Hooks().Accept4(listen_fd_, nullptr, nullptr, 0);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) close(fd);
      return;
    }
    if (fd < 0) {
      // Every errno is classified: an unlisted one must never silently
      // end this loop (a server that stops accepting but keeps running
      // is a zombie — it looks alive to health checks and serves no one).
      const int err = errno;
      switch (ClassifyAcceptError(err)) {
        case AcceptErrorAction::kRetry:
          continue;
        case AcceptErrorAction::kRetryCounted:
          // A network error pending on the *new* socket (EPROTO, ...)
          // is reported through accept(2); the listener itself is fine.
          service_->RecordAcceptError(/*fatal=*/false);
          std::fprintf(stderr, "line_server: accept: %s; continuing\n",
                       std::strerror(err));
          continue;
        case AcceptErrorAction::kRetryAfterBackoff:
          // Transient resource exhaustion (e.g. a connection burst used
          // up the fd table): back off and keep listening.
          service_->RecordAcceptError(/*fatal=*/false);
          std::fprintf(stderr, "line_server: accept: %s; backing off\n",
                       std::strerror(err));
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          continue;
        case AcceptErrorAction::kFatal:
          // The listener fd itself is broken — retrying would spin.
          // (Stop()'s own shutdown(2) exits through the stopping_ check
          // above, so it is never misreported here.)
          service_->RecordAcceptError(/*fatal=*/true);
          std::fprintf(stderr,
                       "line_server: accept: %s; accept loop shutting down\n",
                       std::strerror(err));
          stopping_.store(true, std::memory_order_relaxed);
          return;
      }
      continue;
    }
    // Join threads of connections that already hung up, so a long-running
    // server holds resources proportional to *open* connections only.
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lock(connections_mu_);
    Connection* connection = nullptr;
    try {
      connections_.push_back(std::make_unique<Connection>());
      connection = connections_.back().get();
      connection->fd = fd;
      connection->thread =
          std::thread([this, connection] { ServeConnection(connection); });
    } catch (const std::exception& e) {
      // Allocation or thread spawn failed under resource pressure
      // (std::system_error on EAGAIN): shed this one connection and keep
      // accepting — a per-connection failure must not kill the listener.
      close(fd);
      if (connection != nullptr) {
        connection->fd = -1;
        // The reaper erases it on the next accept; join is skipped on a
        // never-started thread.
        connection->done.store(true, std::memory_order_release);
      }
      service_->RecordAcceptError(/*fatal=*/false);
      std::fprintf(stderr, "line_server: connection setup: %s; shed\n",
                   e.what());
    }
  }
}

void LineServer::ServeConnection(Connection* connection) {
  const int fd = connection->fd;
  const CancellationToken cancel = cancel_source_.token();
  // Offset-consumed buffer: a deep pipeline used to pay an O(tail)
  // erase(0, start) per recv — quadratic in the bytes a fast client could
  // pre-send. Consume() just advances an offset and compacts amortized.
  ConsumedBuffer buffer;
  char chunk[4096];
  bool poisoned = false;
  while (!poisoned) {
    const ssize_t n = io::Hooks().Recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or connection reset
    buffer.Append(std::string_view(chunk, static_cast<size_t>(n)));

    for (;;) {
      const std::string_view pending = buffer.Pending();
      const size_t newline = pending.find('\n');
      if (newline == std::string_view::npos) break;
      std::string_view line = pending.substr(0, newline);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      // The budget applies to every complete line, not only the
      // unterminated tail (checked below): a pipelined oversize line
      // whose newline already arrived must be rejected, not executed.
      if (line.size() > options_.max_line_bytes) {
        SendAll(fd,
                StatusToJson(Status::InvalidArgument(
                                 "request line exceeds " +
                                 std::to_string(options_.max_line_bytes) +
                                 " bytes"))
                        .Dump() +
                    "\n");
        poisoned = true;
        break;
      }
      const std::string response = HandleRequestLine(service_, line, cancel);
      if (!SendAll(fd, response) || !SendAll(fd, "\n")) {
        poisoned = true;
        break;
      }
      // After the send: Consume() may compact the storage, which would
      // invalidate the `line` view the handler just used.
      buffer.Consume(newline + 1);
    }
    if (!poisoned && buffer.PendingSize() > options_.max_line_bytes) {
      SendAll(fd,
              StatusToJson(Status::InvalidArgument(
                               "request line exceeds " +
                               std::to_string(options_.max_line_bytes) +
                               " bytes"))
                      .Dump() +
                  "\n");
      poisoned = true;
    }
  }
  // Mark the fd closed before closing it so Stop() can never shut down a
  // recycled fd number belonging to someone else, then publish `done` for
  // the accept loop's reaper.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connection->fd = -1;
  }
  close(fd);
  connection->done.store(true, std::memory_order_release);
}

}  // namespace remi
