#include "service/line_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "service/json_codec.h"

namespace remi {

namespace {

/// Sends the whole buffer; false on a broken connection. MSG_NOSIGNAL
/// turns a peer hangup into EPIPE instead of killing the process.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

LineServer::LineServer(Service* service, const LineServerOptions& options)
    : service_(service), options_(options) {}

LineServer::~LineServer() { Stop(); }

Status LineServer::Start() {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    const Status status =
        Status::IoError(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LineServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Bound the shutdown: every request dispatched over the wire carries
  // this token, so a deadline-less mining run returns Cancelled within
  // one DFS node instead of pinning a connection thread for hours.
  cancel_source_.RequestCancellation();
  if (listen_fd_ >= 0) {
    // Unblocks accept(2); the loop then exits on the stopping_ flag. The
    // fd is closed only after the accept thread joins, so the loop never
    // touches a closed (and possibly recycled) descriptor.
    shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
    }
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

bool LineServer::Drain(double grace_seconds) {
  // Phase 1: stop the intake. After this no new connection is accepted;
  // the listener socket is fully gone, so clients see ECONNREFUSED
  // instead of queueing behind a server that will never serve them.
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // Phase 2: half-close every open connection. SHUT_RD makes the serving
  // thread's next recv() return 0 once it has drained what the client
  // already sent — buffered requests still execute and their responses
  // still flush (the write side stays open). This is the difference from
  // Stop(): no in-flight mine is cancelled yet.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RD);
    }
  }

  // Phase 3: wait out the grace period on the connections' done flags.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(grace_seconds));
  bool all_done = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(connections_mu_);
      all_done = true;
      for (const auto& connection : connections_) {
        if (!connection->done.load(std::memory_order_acquire)) {
          all_done = false;
          break;
        }
      }
    }
    if (all_done || std::chrono::steady_clock::now() >= deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // Phase 4: whatever is still running has used up its grace — cancel it
  // (every dispatched request carries this token) and cut the sockets
  // both ways so the serving threads unblock and exit.
  if (!all_done) cancel_source_.RequestCancellation();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    for (const auto& connection : connections_) {
      if (connection->fd >= 0) shutdown(connection->fd, SHUT_RDWR);
    }
    connections.swap(connections_);
  }
  for (const auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  return all_done;
}

void LineServer::ReapFinishedConnections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void LineServer::AcceptLoop() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_relaxed)) {
      if (fd >= 0) close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Transient resource exhaustion (e.g. a connection burst used up
        // the fd table): back off and keep listening instead of silently
        // turning into a zombie server.
        std::fprintf(stderr, "line_server: accept: %s; retrying\n",
                     std::strerror(errno));
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        continue;
      }
      return;  // listener gone (EBADF/EINVAL after shutdown)
    }
    // Join threads of connections that already hung up, so a long-running
    // server holds resources proportional to *open* connections only.
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lock(connections_mu_);
    connections_.push_back(std::make_unique<Connection>());
    Connection* connection = connections_.back().get();
    connection->fd = fd;
    connection->thread =
        std::thread([this, connection] { ServeConnection(connection); });
  }
}

void LineServer::ServeConnection(Connection* connection) {
  const int fd = connection->fd;
  const CancellationToken cancel = cancel_source_.token();
  std::string buffer;
  char chunk[4096];
  bool poisoned = false;
  while (!poisoned) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or connection reset
    buffer.append(chunk, static_cast<size_t>(n));

    size_t start = 0;
    for (;;) {
      const size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(buffer.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      const std::string response = HandleRequestLine(service_, line, cancel);
      if (!SendAll(fd, response) || !SendAll(fd, "\n")) {
        poisoned = true;
        break;
      }
      start = newline + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > options_.max_line_bytes) {
      SendAll(fd,
              StatusToJson(Status::InvalidArgument(
                               "request line exceeds " +
                               std::to_string(options_.max_line_bytes) +
                               " bytes"))
                      .Dump() +
                  "\n");
      poisoned = true;
    }
  }
  // Mark the fd closed before closing it so Stop() can never shut down a
  // recycled fd number belonging to someone else, then publish `done` for
  // the accept loop's reaper.
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    connection->fd = -1;
  }
  close(fd);
  connection->done.store(true, std::memory_order_release);
}

}  // namespace remi
