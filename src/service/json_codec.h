// JSON mapping of the Service request/response contracts — the wire half
// of the newline-delimited-JSON line protocol served by LineServer
// (tools/remi_server). Requests map 1:1 onto the structs in service.h; the
// codec only translates, the Service enforces the contracts.
//
// Request lines (one JSON object per line):
//
//   {"op":"mine","targets":["Berlin","Hamburg"],"max_exceptions":0,
//    "verbalize":true,"deadline_ms":500,"metric":"pr","language":"standard"}
//   {"op":"batch_mine","target_sets":[["Berlin"],["Hamburg","Munich"]],...}
//   {"op":"summarize","entity":"Berlin","k":5,"metric":"fr"}
//   {"op":"candidates","targets":["Berlin"],"limit":10}
//   {"op":"stats"}
//   {"op":"ping"}
//   {"op":"reload","path":"/data/kb.rkf2","lenient":true}
//   {"op":"attach","kb":"dbpedia","path":"/data/dbpedia.rkf2",
//    "max_in_flight":2,"max_queued":8}
//   {"op":"detach","kb":"dbpedia"}
//   {"op":"list_kbs"}
//
// Multi-tenant: every request may carry a "kb" field (string) naming the
// KB to serve from; "" or absent = the unnamed default tenant, so every
// pre-existing client keeps working unchanged. Unknown names come back as
// an in-band NotFound response. "stats" with a "kb" returns that tenant's
// counter slice; without one it returns the service-wide counters plus a
// per-tenant breakdown ("tenants"). On binary connections the kUseKb
// handshake sets a connection default that fills in for requests without
// an explicit "kb" (the transport passes it as `default_kb` below); an
// explicit "kb" — including "" — always wins over the handshake default.
//
// Shared optional knobs: "deadline_ms" (number) → RequestControl,
// "metric" ("fr"|"pr") → CostModelOptions override, "language"
// ("extended"|"standard") → EnumeratorOptions override (other bias knobs
// at their defaults). Targets are lexical forms (full IRIs or unambiguous
// suffixes); numeric entries are taken as dictionary ids.
//
// Every response is one JSON object with at least {"status": "<Code>"}
// ("OK" for success) and, for non-OK statuses, a "message". Execution
// outcomes (DeadlineExceeded, Cancelled) come back with the partial stats
// the run accumulated, mirroring MineResponse::status. ResourceExhausted
// responses (admission overflow) additionally carry "retry_after_ms", a
// client back-off hint. "reload" responses report the serving generation
// after the call — unchanged when the candidate was rejected (reload
// failures are in-band: Corruption/ParseError/IoError, connection stays
// open, prior generation keeps serving).
//
// Response serialization never touches the live KB: mine/batch responses
// carry labels and expression text pre-rendered under the generation the
// request was pinned to, so a concurrent "reload" cannot skew or corrupt
// bytes already being written out.

#pragma once

#include <string>
#include <string_view>

#include "service/service.h"
#include "util/json.h"

namespace remi {

// --- request parsing (JSON -> contract structs) ------------------------------

Result<MineRequest> MineRequestFromJson(const JsonValue& v);
Result<BatchMineRequest> BatchMineRequestFromJson(const JsonValue& v);
Result<SummarizeRequest> SummarizeRequestFromJson(const JsonValue& v);
Result<CandidatesRequest> CandidatesRequestFromJson(const JsonValue& v);

// --- response serialization (contract structs -> JSON) -----------------------

/// Self-contained: reads only the pre-rendered labels/text carried by the
/// response (its pinned generation), never the service's live KB.
JsonValue MineResponseToJson(const MineResponse& response);
JsonValue BatchMineResponseToJson(const BatchMineResponse& response);
JsonValue SummarizeResponseToJson(const SummarizeResponse& response);
JsonValue CountersToJson(const Service& service);
/// One tenant's counter slice — the "stats" response when the request
/// names a KB.
JsonValue TenantCountersToJson(const std::string& kb,
                               const TenantCounters& counters);
JsonValue ReloadKbResponseToJson(const ReloadKbResponse& response);
/// {"status": "<Code>", "message": "..."} (message omitted when empty).
/// ResourceExhausted additionally carries "retry_after_ms" so well-behaved
/// clients back off instead of hammering a full admission queue; with a
/// `service` the hint is Service::RetryAfterMsHint(kb) — derived from the
/// named tenant's admission state when it has a quota, the global state
/// otherwise, jittered — without one it falls back to a flat 100 ms.
JsonValue StatusToJson(const Status& status, const Service* service = nullptr,
                       const std::string& kb = {});

/// Dispatches one parsed request to `service` and serializes the
/// response (no trailing newline). The shared core of the NDJSON and
/// binary-frame entry points below — both wire modes produce
/// byte-identical response documents because both end here. `default_kb`
/// is the connection's handshake tenant (binary kUseKb); it fills in for
/// requests whose payload has no "kb" member.
std::string DispatchRequest(Service* service, std::string_view op,
                            const JsonValue& parsed,
                            const CancellationToken& cancel = {},
                            const std::string& default_kb = {});

/// Parses one request line, dispatches it to `service`, and serializes
/// the response. Never fails: malformed input comes back as an
/// InvalidArgument/ParseError status object. The returned string has no
/// trailing newline (the transport adds it). `cancel` is attached to
/// every dispatched request — the transport's server-wide cancellation
/// token, so shutdown can interrupt deadline-less in-flight work.
std::string HandleRequestLine(Service* service, std::string_view line,
                              const CancellationToken& cancel = {},
                              const std::string& default_kb = {});

/// The binary-frame twin of HandleRequestLine: maps the frame verb to its
/// op (FrameVerbToOp), parses the JSON payload (empty == "{}"), rejects a
/// payload "op" that contradicts the verb, and dispatches. Returns the
/// response *payload*; the transport wraps it in a response frame echoing
/// the request id. Never fails out-of-band.
std::string HandleFramePayload(Service* service, uint8_t verb,
                               std::string_view payload,
                               const CancellationToken& cancel = {},
                               const std::string& default_kb = {});

}  // namespace remi
