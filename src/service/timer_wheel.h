// A single-level hashed timing wheel for connection lifecycle timeouts.
//
// The epoll loop needs "wake me when connection N's deadline passes" for
// thousands of connections without a per-connection timerfd or an O(log n)
// heap touched on every byte of traffic. The classic answer is a hashed
// wheel: slots of tick_ms granularity, Schedule() appends to
// slot[when / tick % kSlots], and the loop advances a cursor over the
// slots that have come due. Entries are never cancelled — activity just
// moves the connection's *real* deadline forward, and when the stale
// entry pops the owner re-checks and reschedules (lazy re-validation).
// That makes Schedule() and expiry O(1) amortized and keeps the hot path
// (bytes flowing) completely timer-free.
//
// Single-threaded by design: owned and touched only by the event loop
// thread, like the rest of the connection state.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace remi {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// \param tick_ms slot granularity: deadlines fire up to one tick late.
  explicit TimerWheel(int tick_ms = 16)
      : tick_ms_(tick_ms < 1 ? 1 : tick_ms) {
    slots_.resize(kSlots);
  }

  /// Schedules `id` to pop at (or one tick after) `when`. Duplicate
  /// schedules are allowed; the owner's re-validation makes extras
  /// harmless.
  void Schedule(uint64_t id, Clock::time_point when) {
    uint64_t tick = TickOf(when);
    // An already-overdue deadline must not land in a slot the cursor has
    // passed this rotation (it would hide for a full wheel turn).
    if (tick < cursor_) tick = cursor_;
    slots_[tick % kSlots].push_back(Entry{id, when});
    ++count_;
  }

  /// Appends to `out` every id whose entry is due at `now`; entries of a
  /// future rotation stay in their slot. The caller re-validates each
  /// popped id against the owner's real deadline.
  void PopExpired(Clock::time_point now, std::vector<uint64_t>* out) {
    const uint64_t target = TickOf(now);
    if (count_ == 0) {
      cursor_ = target;
      return;
    }
    // A loop stalled past a full rotation has visited every slot by
    // sweeping each once; don't re-walk rotations that can't add entries.
    if (target - cursor_ > kSlots) cursor_ = target - kSlots;
    for (;; ++cursor_) {
      std::vector<Entry>& bucket = slots_[cursor_ % kSlots];
      size_t keep = 0;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].when <= now) {
          out->push_back(bucket[i].id);
          --count_;
        } else {
          bucket[keep++] = bucket[i];
        }
      }
      bucket.resize(keep);
      if (cursor_ == target) break;
    }
  }

  /// Milliseconds until the earliest pending entry (>= 1, rounded up),
  /// or -1 when the wheel is empty — the epoll_wait timeout bound.
  int NextDelayMs(Clock::time_point now) const {
    if (count_ == 0) return -1;
    Clock::time_point earliest = Clock::time_point::max();
    for (const std::vector<Entry>& bucket : slots_) {
      for (const Entry& entry : bucket) {
        if (entry.when < earliest) earliest = entry.when;
      }
    }
    if (earliest <= now) return 1;
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           earliest - now)
                           .count() +
                       1;
    return delta > 1000000 ? 1000000 : static_cast<int>(delta);
  }

  size_t size() const { return count_; }

 private:
  static constexpr size_t kSlots = 256;

  struct Entry {
    uint64_t id;
    Clock::time_point when;
  };

  uint64_t TickOf(Clock::time_point t) const {
    return static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   t.time_since_epoch())
                   .count()) /
           static_cast<uint64_t>(tick_ms_);
  }

  const int tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  uint64_t cursor_ = 0;
  size_t count_ = 0;
};

}  // namespace remi
