// Length-prefixed binary framing for the multiplexed wire protocol
// (EventServer, remi_cli, the load generator).
//
// One connection carries many in-flight requests: every frame bears a
// client-chosen request id, responses are matched by id and may complete
// out of order. The payload of both requests and responses is the *same*
// JSON document the NDJSON debug protocol uses (json_codec.h), minus the
// transport newline — so a binary response payload is byte-identical to
// the NDJSON response line for the same request, and every knob
// ("deadline_ms", "metric", ...) works identically in both modes.
//
// Frame layout (integers little-endian):
//
//   offset  size  field
//   0       4     magic: the bytes 'R' 'E' 'M' 'I'
//   4       1     verb (FrameVerb; responses echo the request verb)
//   5       1     flags (reserved; must be 0)
//   6       2     reserved (must be 0)
//   8       8     request id (echoed verbatim on the response)
//   16      4     payload length in bytes
//   20      n     payload: one UTF-8 JSON document ("" == "{}")
//
// The first magic byte ('R') is how a server port autodetects the
// protocol: NDJSON requests start with '{' or whitespace. Anything else
// is rejected before a single payload byte is read.
//
// Error handling is two-tier, mirroring the NDJSON protocol:
//   * Request-level problems (unknown verb, bad JSON payload, service
//     errors) come back as an error *response frame* echoing the request
//     id; the connection survives.
//   * Stream-level problems (bad magic, nonzero reserved bits, a payload
//     length over the limit) poison the connection: frame boundaries can
//     no longer be trusted, so the peer gets one final error frame
//     (request id 0 if the header was unreadable) and the stream ends.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/socket_util.h"
#include "util/status.h"

namespace remi {

inline constexpr size_t kFrameHeaderBytes = 20;
inline constexpr char kFrameMagic[4] = {'R', 'E', 'M', 'I'};

/// Request verbs, 1:1 with the NDJSON "op" strings (FrameVerbToOp).
/// kCounters is the metrics surface: ServiceCounters plus the aggregated
/// mining stats, identical to the NDJSON "stats" op.
///
/// Multi-tenant verbs: kAttachKb/kDetachKb/kListKbs are the admin surface
/// of the named-KB registry. kUseKb is the binary name-table handshake —
/// it sets the connection's default tenant (payload {"kb":"<name>"}), so
/// subsequent frames without an explicit "kb" field serve from it. It is
/// handled on the server's loop thread in FIFO order with the frames
/// around it and never occupies a dispatch slot. Per-request "kb" fields
/// always win over the handshake default.
enum class FrameVerb : uint8_t {
  kPing = 1,
  kMine = 2,
  kBatchMine = 3,
  kSummarize = 4,
  kCandidates = 5,
  kCounters = 6,
  kReload = 7,
  kAttachKb = 8,
  kDetachKb = 9,
  kListKbs = 10,
  kUseKb = 11,
};

/// The NDJSON "op" string for a verb byte; nullptr for unknown verbs.
const char* FrameVerbToOp(uint8_t verb);

/// One decoded frame. `payload` points into the decoder's buffer and is
/// valid until the next Feed()/Next() call.
struct FrameView {
  uint8_t verb = 0;
  uint64_t request_id = 0;
  std::string_view payload;
};

/// Appends one encoded frame to `out`.
void AppendFrame(uint8_t verb, uint64_t request_id, std::string_view payload,
                 std::string* out);

/// \brief Incremental frame decoder over an offset-consumed buffer.
///
/// Feed() bytes as they arrive (arbitrary split points — a header may
/// span many reads); Next() yields complete frames. Uses the same
/// amortized-O(1) buffer discipline as the NDJSON path (ConsumedBuffer):
/// pipelined frames never trigger per-recv tail memmoves.
class FrameDecoder {
 public:
  /// \param max_payload_bytes frames declaring a longer payload are a
  ///        stream-level error (kError), reported *before* buffering the
  ///        payload — a lying length cannot make the server allocate it.
  explicit FrameDecoder(size_t max_payload_bytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void Feed(std::string_view data) { buffer_.Append(data); }

  enum class Result {
    kFrame,     ///< *out holds the next frame
    kNeedMore,  ///< no complete frame buffered; Feed() more
    kError,     ///< stream poisoned (see status()); no further frames
  };

  /// Yields the next complete frame. After kError the decoder stays
  /// poisoned: the stream has no trustworthy frame boundary left.
  Result Next(FrameView* out);

  /// The stream-level error after kError.
  const Status& status() const { return status_; }

  /// Request id of the frame whose header caused the error (0 when the
  /// header itself was unreadable) — lets the transport address the
  /// final error frame.
  uint64_t error_request_id() const { return error_request_id_; }

  size_t buffered_bytes() const { return buffer_.PendingSize(); }

 private:
  size_t max_payload_bytes_;
  ConsumedBuffer buffer_;
  size_t pending_consume_ = 0;  ///< previous frame, consumed lazily
  bool poisoned_ = false;
  Status status_ = Status::OK();
  uint64_t error_request_id_ = 0;
};

/// How a server port interprets the first byte of a connection.
enum class WireMode : uint8_t {
  kUnknown,  ///< nothing received yet
  kNdjson,   ///< '{' or whitespace: newline-delimited JSON debug mode
  kBinary,   ///< 'R': length-prefixed frames
  kInvalid,  ///< anything else: not a protocol we speak
};

/// Sniffs the protocol from the first received byte.
WireMode SniffWireMode(char first_byte);

}  // namespace remi
