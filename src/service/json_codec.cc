#include "service/json_codec.h"

#include <cmath>
#include <limits>

#include "service/frame_codec.h"

namespace remi {

namespace {

/// True iff `d` is a finite integer in [0, max] — the precondition for a
/// defined-behavior cast to an unsigned integral type. Rejects the
/// infinities a remote client can smuggle in via 1e999.
bool IsNonNegativeIntegerUpTo(double d, double max) {
  return std::isfinite(d) && d >= 0 && d <= max && d == std::floor(d);
}

/// Reads the wire "deadline_ms" knob into a RequestControl. (The other
/// shared knobs — metric, language, max_exceptions, verbalize — have
/// their own Read* helpers below.)
Status ReadControl(const JsonValue& v, RequestControl* control) {
  if (const JsonValue* deadline = v.Find("deadline_ms")) {
    // Bounded above (~31.7 years) so Deadline::AfterSeconds's
    // duration_cast can never overflow the clock's integral rep —
    // 1e999 parses to +inf and must be rejected, not cast.
    constexpr double kMaxDeadlineMs = 1e12;
    if (!deadline->is_number() || !std::isfinite(deadline->AsNumber()) ||
        deadline->AsNumber() < 0 ||
        deadline->AsNumber() > kMaxDeadlineMs) {
      return Status::InvalidArgument(
          "deadline_ms must be a finite number in [0, 1e12]");
    }
    control->deadline_seconds = deadline->AsNumber() / 1000.0;
  }
  return Status::OK();
}

Status ReadCostOverride(const JsonValue& v,
                        std::optional<CostModelOptions>* cost) {
  const JsonValue* metric = v.Find("metric");
  if (metric == nullptr) return Status::OK();
  if (!metric->is_string()) {
    return Status::InvalidArgument("metric must be \"fr\" or \"pr\"");
  }
  CostModelOptions options;
  if (metric->AsString() == "fr") {
    options.metric = ProminenceMetric::kFrequency;
  } else if (metric->AsString() == "pr") {
    options.metric = ProminenceMetric::kPageRank;
  } else {
    return Status::InvalidArgument("metric must be \"fr\" or \"pr\"");
  }
  *cost = options;
  return Status::OK();
}

Status ReadLanguageOverride(const JsonValue& v,
                            std::optional<EnumeratorOptions>* enumerator) {
  const JsonValue* language = v.Find("language");
  if (language == nullptr) return Status::OK();
  if (!language->is_string()) {
    return Status::InvalidArgument(
        "language must be \"extended\" or \"standard\"");
  }
  EnumeratorOptions options;
  if (language->AsString() == "standard") {
    options.extended_language = false;
  } else if (language->AsString() != "extended") {
    return Status::InvalidArgument(
        "language must be \"extended\" or \"standard\"");
  }
  *enumerator = options;
  return Status::OK();
}

Status ReadSize(const JsonValue& v, const char* key, size_t* out) {
  if (const JsonValue* value = v.Find(key)) {
    if (!value->is_number() ||
        !IsNonNegativeIntegerUpTo(value->AsNumber(), 9e15)) {
      return Status::InvalidArgument(std::string(key) +
                                     " must be a non-negative integer");
    }
    *out = static_cast<size_t>(value->AsNumber());
  }
  return Status::OK();
}

Status ReadBool(const JsonValue& v, const char* key, bool* out) {
  if (const JsonValue* value = v.Find(key)) {
    if (!value->is_bool()) {
      return Status::InvalidArgument(std::string(key) + " must be a bool");
    }
    *out = value->AsBool();
  }
  return Status::OK();
}

/// The multi-tenant "kb" knob: which named KB serves the request
/// (absent or "" = the default tenant). Only writes *out when present,
/// so a transport-level default already in *out survives omission but
/// an explicit "kb" — including "" — wins.
Status ReadKb(const JsonValue& v, std::string* out) {
  if (const JsonValue* value = v.Find("kb")) {
    if (!value->is_string()) {
      return Status::InvalidArgument("kb must be a string (KB name)");
    }
    *out = value->AsString();
  }
  return Status::OK();
}

/// The optional per-tenant quota knobs of attach/catalog requests.
/// `*quota` stays nullopt when neither key is present (= use the
/// service's default quota).
Status ReadQuota(const JsonValue& v, std::optional<TenantQuota>* quota) {
  if (v.Find("max_in_flight") == nullptr && v.Find("max_queued") == nullptr) {
    return Status::OK();
  }
  TenantQuota q;
  REMI_RETURN_NOT_OK(ReadSize(v, "max_in_flight", &q.max_in_flight));
  REMI_RETURN_NOT_OK(ReadSize(v, "max_queued", &q.max_queued));
  *quota = q;
  return Status::OK();
}

/// Sets one tenant's counter slice onto `out` (field names match the
/// service-wide CountersToJson where the concepts coincide).
void SetTenantCounterFields(const TenantCounters& c, JsonValue* out) {
  out->Set("admitted", JsonValue::Number(static_cast<double>(c.admitted)));
  out->Set("completed_ok",
           JsonValue::Number(static_cast<double>(c.completed_ok)));
  out->Set("deadline_exceeded",
           JsonValue::Number(static_cast<double>(c.deadline_exceeded)));
  out->Set("cancelled", JsonValue::Number(static_cast<double>(c.cancelled)));
  out->Set("rejected", JsonValue::Number(static_cast<double>(c.rejected)));
  out->Set("failed", JsonValue::Number(static_cast<double>(c.failed)));
  out->Set("shed_expired_in_queue",
           JsonValue::Number(static_cast<double>(c.shed_expired_in_queue)));
  out->Set("in_flight", JsonValue::Number(static_cast<double>(c.in_flight)));
  out->Set("queued", JsonValue::Number(static_cast<double>(c.queued)));
  out->Set("peak_in_flight",
           JsonValue::Number(static_cast<double>(c.peak_in_flight)));
  out->Set("reloads_ok",
           JsonValue::Number(static_cast<double>(c.reloads_ok)));
  out->Set("reloads_rejected",
           JsonValue::Number(static_cast<double>(c.reloads_rejected)));
  out->Set("generation",
           JsonValue::Number(static_cast<double>(c.generation)));
  out->Set("nodes_visited_total",
           JsonValue::Number(static_cast<double>(c.nodes_visited_total)));
  out->Set("mine_micros_total",
           JsonValue::Number(static_cast<double>(c.mine_micros_total)));
}

/// One target array: strings are lexical forms, numbers are raw ids.
Status ReadTargetSpec(const JsonValue& array, TargetSpec* spec) {
  if (!array.is_array()) {
    return Status::InvalidArgument("targets must be an array");
  }
  for (const JsonValue& item : array.items()) {
    if (item.is_string()) {
      spec->names.push_back(item.AsString());
    } else if (item.is_number() &&
               IsNonNegativeIntegerUpTo(
                   item.AsNumber(),
                   static_cast<double>(
                       std::numeric_limits<TermId>::max()))) {
      spec->ids.push_back(static_cast<TermId>(item.AsNumber()));
    } else {
      return Status::InvalidArgument(
          "targets must be strings (lexical forms) or non-negative "
          "integer ids in the TermId range");
    }
  }
  return Status::OK();
}

JsonValue StatsToJson(const RemiStats& stats, const ServiceStats& service) {
  JsonValue out = JsonValue::Object();
  out.Set("common_subgraphs",
          JsonValue::Number(static_cast<double>(stats.num_common_subgraphs)));
  out.Set("nodes_visited",
          JsonValue::Number(static_cast<double>(stats.nodes_visited)));
  out.Set("cache_hits",
          JsonValue::Number(static_cast<double>(stats.eval.cache_hits)));
  // Zero-allocation kernel counters (README "Search kernel & memory
  // layout"): how the search paid for its nodes.
  out.Set("count_only_prunes",
          JsonValue::Number(static_cast<double>(stats.count_only_prunes)));
  out.Set("arena_frames_reused",
          JsonValue::Number(static_cast<double>(stats.arena_frames_reused)));
  out.Set("pinned_queue_bytes",
          JsonValue::Number(static_cast<double>(stats.pinned_queue_bytes)));
  out.Set("dense_twin_bytes",
          JsonValue::Number(static_cast<double>(stats.dense_twin_bytes)));
  out.Set("unpinned_queue_entries",
          JsonValue::Number(
              static_cast<double>(stats.unpinned_queue_entries)));
  out.Set("search_cache_lookups",
          JsonValue::Number(static_cast<double>(stats.search_cache_lookups)));
  out.Set("queue_wait_seconds",
          JsonValue::Number(service.queue_wait_seconds));
  out.Set("mine_seconds", JsonValue::Number(service.mine_seconds));
  return out;
}

}  // namespace

Result<MineRequest> MineRequestFromJson(const JsonValue& v) {
  MineRequest request;
  const JsonValue* targets = v.Find("targets");
  if (targets == nullptr) {
    return Status::InvalidArgument("mine request needs \"targets\"");
  }
  REMI_RETURN_NOT_OK(ReadTargetSpec(*targets, &request.targets));
  REMI_RETURN_NOT_OK(ReadKb(v, &request.kb));
  REMI_RETURN_NOT_OK(ReadSize(v, "max_exceptions", &request.max_exceptions));
  REMI_RETURN_NOT_OK(ReadBool(v, "verbalize", &request.verbalize));
  REMI_RETURN_NOT_OK(ReadCostOverride(v, &request.cost));
  REMI_RETURN_NOT_OK(ReadLanguageOverride(v, &request.enumerator));
  REMI_RETURN_NOT_OK(ReadControl(v, &request.control));
  return request;
}

Result<BatchMineRequest> BatchMineRequestFromJson(const JsonValue& v) {
  BatchMineRequest request;
  const JsonValue* sets = v.Find("target_sets");
  if (sets == nullptr || !sets->is_array()) {
    return Status::InvalidArgument(
        "batch_mine request needs \"target_sets\" (array of arrays)");
  }
  for (const JsonValue& set : sets->items()) {
    TargetSpec spec;
    REMI_RETURN_NOT_OK(ReadTargetSpec(set, &spec));
    request.target_sets.push_back(std::move(spec));
  }
  REMI_RETURN_NOT_OK(ReadKb(v, &request.kb));
  REMI_RETURN_NOT_OK(ReadSize(v, "max_exceptions", &request.max_exceptions));
  REMI_RETURN_NOT_OK(ReadBool(v, "verbalize", &request.verbalize));
  REMI_RETURN_NOT_OK(ReadCostOverride(v, &request.cost));
  REMI_RETURN_NOT_OK(ReadLanguageOverride(v, &request.enumerator));
  REMI_RETURN_NOT_OK(ReadControl(v, &request.control));
  return request;
}

Result<SummarizeRequest> SummarizeRequestFromJson(const JsonValue& v) {
  SummarizeRequest request;
  const JsonValue* entity = v.Find("entity");
  if (entity == nullptr || !entity->is_string()) {
    return Status::InvalidArgument(
        "summarize request needs \"entity\" (string)");
  }
  request.entity.names.push_back(entity->AsString());
  REMI_RETURN_NOT_OK(ReadKb(v, &request.kb));
  REMI_RETURN_NOT_OK(ReadSize(v, "k", &request.k));
  std::optional<CostModelOptions> cost;
  REMI_RETURN_NOT_OK(ReadCostOverride(v, &cost));
  if (cost.has_value()) request.metric = cost->metric;
  REMI_RETURN_NOT_OK(ReadControl(v, &request.control));
  return request;
}

Result<CandidatesRequest> CandidatesRequestFromJson(const JsonValue& v) {
  CandidatesRequest request;
  const JsonValue* targets = v.Find("targets");
  if (targets == nullptr) {
    return Status::InvalidArgument("candidates request needs \"targets\"");
  }
  REMI_RETURN_NOT_OK(ReadTargetSpec(*targets, &request.targets));
  REMI_RETURN_NOT_OK(ReadKb(v, &request.kb));
  REMI_RETURN_NOT_OK(ReadSize(v, "limit", &request.limit));
  REMI_RETURN_NOT_OK(ReadCostOverride(v, &request.cost));
  REMI_RETURN_NOT_OK(ReadLanguageOverride(v, &request.enumerator));
  REMI_RETURN_NOT_OK(ReadControl(v, &request.control));
  return request;
}

JsonValue StatusToJson(const Status& status, const Service* service,
                       const std::string& kb) {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String(StatusCodeToString(status.code())));
  if (!status.message().empty()) {
    out.Set("message", JsonValue::String(status.message()));
  }
  if (status.IsResourceExhausted()) {
    // Admission queue is full: tell well-behaved clients when to come
    // back. The hint is derived from live admission state (measured mean
    // service time × queue depth / slots, jittered ±25%), so it grows as
    // the queue deepens instead of inviting a fixed-cadence retry storm.
    // A quota-throttled tenant's hint reflects *its* queue, not the
    // global one (Service::RetryAfterMsHint(kb)). The 100 ms fallback
    // only covers serialization paths with no service at hand.
    const uint64_t hint =
        service != nullptr ? service->RetryAfterMsHint(kb) : 100;
    out.Set("retry_after_ms",
            JsonValue::Number(static_cast<double>(hint)));
  }
  return out;
}

JsonValue MineResponseToJson(const MineResponse& response) {
  JsonValue out = StatusToJson(response.status);
  out.Set("found", JsonValue::Bool(response.found));
  // target_labels were rendered under the request's pinned generation;
  // resolving response.targets against the live KB here instead would
  // race with a concurrent reload (the ids index the *old* dictionary).
  JsonValue targets = JsonValue::Array();
  for (const std::string& label : response.target_labels) {
    targets.Append(JsonValue::String(label));
  }
  out.Set("targets", std::move(targets));
  if (response.found) {
    out.Set("cost", JsonValue::Number(response.cost));
    out.Set("expression", JsonValue::String(response.expression_text));
    if (!response.verbalization.empty()) {
      out.Set("verbalization", JsonValue::String(response.verbalization));
    }
    if (!response.exception_labels.empty()) {
      JsonValue exceptions = JsonValue::Array();
      for (const std::string& e : response.exception_labels) {
        exceptions.Append(JsonValue::String(e));
      }
      out.Set("exceptions", std::move(exceptions));
    }
  }
  out.Set("stats", StatsToJson(response.stats, response.service));
  return out;
}

JsonValue BatchMineResponseToJson(const BatchMineResponse& response) {
  JsonValue out = StatusToJson(response.status);
  JsonValue results = JsonValue::Array();
  for (const MineResponse& item : response.results) {
    results.Append(MineResponseToJson(item));
  }
  out.Set("results", std::move(results));
  out.Set("queue_wait_seconds",
          JsonValue::Number(response.service.queue_wait_seconds));
  out.Set("mine_seconds", JsonValue::Number(response.service.mine_seconds));
  return out;
}

JsonValue SummarizeResponseToJson(const SummarizeResponse& response) {
  JsonValue out = StatusToJson(response.status);
  out.Set("entity", JsonValue::String(response.entity_label));
  JsonValue items = JsonValue::Array();
  for (const std::string& label : response.item_labels) {
    items.Append(JsonValue::String(label));
  }
  out.Set("items", std::move(items));
  return out;
}

JsonValue CountersToJson(const Service& service) {
  const ServiceCounters counters = service.counters();
  JsonValue out = StatusToJson(Status::OK());
  // Pin the current generation for the three KB reads: a reload between
  // them must not mix sizes of two different KBs (or retire the one being
  // read from under us).
  const std::shared_ptr<const KnowledgeBase> kb = service.SharedKb();
  out.Set("facts",
          JsonValue::Number(static_cast<double>(kb->NumFacts())));
  out.Set("entities",
          JsonValue::Number(static_cast<double>(kb->NumEntities())));
  out.Set("predicates", JsonValue::Number(static_cast<double>(
                            kb->NumPredicates())));
  out.Set("admitted",
          JsonValue::Number(static_cast<double>(counters.admitted)));
  out.Set("completed_ok",
          JsonValue::Number(static_cast<double>(counters.completed_ok)));
  out.Set("deadline_exceeded", JsonValue::Number(static_cast<double>(
                                   counters.deadline_exceeded)));
  out.Set("cancelled",
          JsonValue::Number(static_cast<double>(counters.cancelled)));
  out.Set("rejected",
          JsonValue::Number(static_cast<double>(counters.rejected)));
  out.Set("failed",
          JsonValue::Number(static_cast<double>(counters.failed)));
  out.Set("in_flight",
          JsonValue::Number(static_cast<double>(counters.in_flight)));
  out.Set("peak_in_flight", JsonValue::Number(
                                static_cast<double>(counters.peak_in_flight)));
  out.Set("generation",
          JsonValue::Number(static_cast<double>(counters.generation)));
  out.Set("active_generations", JsonValue::Number(static_cast<double>(
                                    counters.active_generations)));
  out.Set("reloads_ok",
          JsonValue::Number(static_cast<double>(counters.reloads_ok)));
  out.Set("reloads_rejected", JsonValue::Number(static_cast<double>(
                                  counters.reloads_rejected)));
  out.Set("accept_errors_retried",
          JsonValue::Number(
              static_cast<double>(counters.accept_errors_retried)));
  out.Set("accept_errors_fatal",
          JsonValue::Number(static_cast<double>(counters.accept_errors_fatal)));
  out.Set("shed_expired_in_queue",
          JsonValue::Number(
              static_cast<double>(counters.shed_expired_in_queue)));
  out.Set("brownout_rejected",
          JsonValue::Number(static_cast<double>(counters.brownout_rejected)));
  out.Set("brownout_active", JsonValue::Bool(counters.brownout_active));
  out.Set("connections_reaped_idle",
          JsonValue::Number(
              static_cast<double>(counters.connections_reaped_idle)));
  out.Set("connections_reaped_write_stall",
          JsonValue::Number(static_cast<double>(
              counters.connections_reaped_write_stall)));
  out.Set("nodes_visited_total",
          JsonValue::Number(static_cast<double>(counters.nodes_visited_total)));
  out.Set("mine_micros_total",
          JsonValue::Number(static_cast<double>(counters.mine_micros_total)));
  // --- multi-tenant gauges + per-tenant breakdown ---
  out.Set("tenants_active",
          JsonValue::Number(static_cast<double>(counters.tenants_active)));
  // Same value as active_generations, under the registry-level name the
  // runbook uses: epochs still alive across ALL tenants.
  out.Set("epochs_live_total", JsonValue::Number(static_cast<double>(
                                   counters.active_generations)));
  JsonValue tenants = JsonValue::Object();
  for (const KbInfo& info : service.ListKbs()) {
    if (!info.open) continue;  // lazy catalog entries have served nothing
    auto slice = service.CountersFor(info.name);
    if (!slice.ok()) continue;  // raced with a concurrent detach
    JsonValue entry = JsonValue::Object();
    SetTenantCounterFields(*slice, &entry);
    tenants.Set(info.name, std::move(entry));
  }
  out.Set("tenants", std::move(tenants));
  return out;
}

JsonValue TenantCountersToJson(const std::string& kb,
                               const TenantCounters& counters) {
  JsonValue out = StatusToJson(Status::OK());
  out.Set("kb", JsonValue::String(kb));
  SetTenantCounterFields(counters, &out);
  return out;
}

JsonValue ReloadKbResponseToJson(const ReloadKbResponse& response) {
  JsonValue out = StatusToJson(response.status);
  out.Set("generation",
          JsonValue::Number(static_cast<double>(response.generation)));
  out.Set("facts", JsonValue::Number(static_cast<double>(response.facts)));
  out.Set("entities",
          JsonValue::Number(static_cast<double>(response.entities)));
  if (response.parse_skipped_lines > 0) {
    out.Set("parse_skipped_lines",
            JsonValue::Number(
                static_cast<double>(response.parse_skipped_lines)));
  }
  out.Set("load_seconds", JsonValue::Number(response.load_seconds));
  return out;
}

std::string DispatchRequest(Service* service, std::string_view op,
                            const JsonValue& parsed,
                            const CancellationToken& cancel,
                            const std::string& default_kb) {
  // The connection's handshake tenant fills in only when the payload has
  // no "kb" member — an explicit "kb" (even "") wins.
  const bool has_kb = parsed.Find("kb") != nullptr;
  if (op == "ping") {
    return StatusToJson(Status::OK()).Dump();
  }
  if (op == "stats") {
    std::string kb = default_kb;
    const Status kb_status = ReadKb(parsed, &kb);
    if (!kb_status.ok()) return StatusToJson(kb_status).Dump();
    if (kb.empty()) return CountersToJson(*service).Dump();
    auto slice = service->CountersFor(kb);
    if (!slice.ok()) return StatusToJson(slice.status()).Dump();
    return TenantCountersToJson(kb, *slice).Dump();
  }
  if (op == "mine") {
    auto request = MineRequestFromJson(parsed);
    if (!request.ok()) return StatusToJson(request.status()).Dump();
    if (!has_kb) request->kb = default_kb;
    request->control.cancel = cancel;
    auto response = service->Mine(*request);
    if (!response.ok()) {
      return StatusToJson(response.status(), service, request->kb).Dump();
    }
    return MineResponseToJson(*response).Dump();
  }
  if (op == "batch_mine") {
    auto request = BatchMineRequestFromJson(parsed);
    if (!request.ok()) return StatusToJson(request.status()).Dump();
    if (!has_kb) request->kb = default_kb;
    request->control.cancel = cancel;
    auto response = service->BatchMine(*request);
    if (!response.ok()) {
      return StatusToJson(response.status(), service, request->kb).Dump();
    }
    return BatchMineResponseToJson(*response).Dump();
  }
  if (op == "summarize") {
    auto request = SummarizeRequestFromJson(parsed);
    if (!request.ok()) return StatusToJson(request.status()).Dump();
    if (!has_kb) request->kb = default_kb;
    request->control.cancel = cancel;
    auto response = service->Summarize(*request);
    if (!response.ok()) {
      return StatusToJson(response.status(), service, request->kb).Dump();
    }
    return SummarizeResponseToJson(*response).Dump();
  }
  if (op == "candidates") {
    auto request = CandidatesRequestFromJson(parsed);
    if (!request.ok()) return StatusToJson(request.status()).Dump();
    if (!has_kb) request->kb = default_kb;
    request->control.cancel = cancel;
    // Texts come back rendered under the request's pinned generation —
    // rendering the TermId-bearing expressions against service->kb()
    // here would be undefined behavior if a reload swapped dictionaries.
    std::vector<std::string> texts;
    auto ranked = service->Candidates(*request, &texts);
    if (!ranked.ok()) return StatusToJson(ranked.status()).Dump();
    JsonValue out = StatusToJson(Status::OK());
    JsonValue items = JsonValue::Array();
    for (size_t i = 0; i < ranked->size(); ++i) {
      JsonValue item = JsonValue::Object();
      item.Set("cost", JsonValue::Number((*ranked)[i].cost));
      item.Set("expression", JsonValue::String(texts[i]));
      items.Append(std::move(item));
    }
    out.Set("candidates", std::move(items));
    return out.Dump();
  }
  if (op == "reload") {
    const JsonValue* path = parsed.Find("path");
    if (path == nullptr || !path->is_string()) {
      return StatusToJson(Status::InvalidArgument(
                              "reload request needs \"path\" (string)"))
          .Dump();
    }
    ReloadKbRequest request;
    request.kb = default_kb;
    const Status kb_status = ReadKb(parsed, &request.kb);
    if (!kb_status.ok()) return StatusToJson(kb_status).Dump();
    request.spec.path = path->AsString();
    const Status lenient =
        ReadBool(parsed, "lenient", &request.spec.lenient_parse);
    if (!lenient.ok()) return StatusToJson(lenient).Dump();
    // ReloadKb itself never fails out-of-band: every load/validation
    // error (and an unknown kb) is in the response status and the prior
    // generation keeps serving.
    return ReloadKbResponseToJson(service->ReloadKb(request)).Dump();
  }
  if (op == "attach") {
    const JsonValue* name = parsed.Find("kb");
    if (name == nullptr || !name->is_string() || name->AsString().empty()) {
      return StatusToJson(Status::InvalidArgument(
                              "attach request needs \"kb\" (non-empty "
                              "string; the default kb always exists)"))
          .Dump();
    }
    const JsonValue* path = parsed.Find("path");
    if (path == nullptr || !path->is_string()) {
      return StatusToJson(Status::InvalidArgument(
                              "attach request needs \"path\" (string)"))
          .Dump();
    }
    KbSpec spec;
    spec.path = path->AsString();
    const Status lenient = ReadBool(parsed, "lenient", &spec.lenient_parse);
    if (!lenient.ok()) return StatusToJson(lenient).Dump();
    std::optional<TenantQuota> quota;
    const Status quota_status = ReadQuota(parsed, &quota);
    if (!quota_status.ok()) return StatusToJson(quota_status).Dump();
    // "lazy": register as a catalog entry (opened on first request)
    // instead of opening the KB before replying.
    bool lazy = false;
    const Status lazy_status = ReadBool(parsed, "lazy", &lazy);
    if (!lazy_status.ok()) return StatusToJson(lazy_status).Dump();
    const Status attached =
        lazy ? service->AddCatalogKb(name->AsString(), spec, quota)
             : service->AttachKb(name->AsString(), spec, quota);
    if (!attached.ok()) return StatusToJson(attached).Dump();
    JsonValue out = StatusToJson(Status::OK());
    out.Set("kb", JsonValue::String(name->AsString()));
    return out.Dump();
  }
  if (op == "detach") {
    const JsonValue* name = parsed.Find("kb");
    if (name == nullptr || !name->is_string()) {
      return StatusToJson(Status::InvalidArgument(
                              "detach request needs \"kb\" (string)"))
          .Dump();
    }
    const Status detached = service->DetachKb(name->AsString());
    if (!detached.ok()) return StatusToJson(detached).Dump();
    JsonValue out = StatusToJson(Status::OK());
    out.Set("kb", JsonValue::String(name->AsString()));
    return out.Dump();
  }
  if (op == "list_kbs") {
    JsonValue out = StatusToJson(Status::OK());
    JsonValue kbs = JsonValue::Array();
    for (const KbInfo& info : service->ListKbs()) {
      JsonValue item = JsonValue::Object();
      item.Set("kb", JsonValue::String(info.name));
      item.Set("open", JsonValue::Bool(info.open));
      item.Set("from_catalog", JsonValue::Bool(info.from_catalog));
      if (info.open) {
        item.Set("generation",
                 JsonValue::Number(static_cast<double>(info.generation)));
        item.Set("facts",
                 JsonValue::Number(static_cast<double>(info.facts)));
        item.Set("entities",
                 JsonValue::Number(static_cast<double>(info.entities)));
      }
      if (info.quota.max_in_flight > 0 || info.quota.max_queued > 0) {
        item.Set("max_in_flight", JsonValue::Number(static_cast<double>(
                                      info.quota.max_in_flight)));
        item.Set("max_queued", JsonValue::Number(static_cast<double>(
                                   info.quota.max_queued)));
      }
      kbs.Append(std::move(item));
    }
    out.Set("kbs", std::move(kbs));
    return out.Dump();
  }
  if (op == "use_kb") {
    // The binary transport intercepts kUseKb frames on its loop thread
    // (the handshake mutates per-connection state the dispatch layer
    // cannot reach); reaching this dispatcher means an NDJSON client
    // sent it as an op.
    return StatusToJson(Status::InvalidArgument(
                            "use_kb is the binary connection handshake; "
                            "NDJSON requests select a tenant with a "
                            "per-request \"kb\" field"))
        .Dump();
  }
  return StatusToJson(Status::InvalidArgument("unknown op '" +
                                              std::string(op) + "'"))
      .Dump();
}

std::string HandleRequestLine(Service* service, std::string_view line,
                              const CancellationToken& cancel,
                              const std::string& default_kb) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return StatusToJson(parsed.status()).Dump();
  if (!parsed->is_object()) {
    return StatusToJson(
               Status::InvalidArgument("request must be a JSON object"))
        .Dump();
  }
  const JsonValue* op = parsed->Find("op");
  if (op == nullptr || !op->is_string()) {
    return StatusToJson(
               Status::InvalidArgument("request needs an \"op\" string"))
        .Dump();
  }
  return DispatchRequest(service, op->AsString(), *parsed, cancel,
                         default_kb);
}

std::string HandleFramePayload(Service* service, uint8_t verb,
                               std::string_view payload,
                               const CancellationToken& cancel,
                               const std::string& default_kb) {
  const char* op = FrameVerbToOp(verb);
  if (op == nullptr) {
    return StatusToJson(Status::InvalidArgument(
                            "unknown frame verb " + std::to_string(verb)))
        .Dump();
  }
  // An empty payload is the frame shorthand for "no arguments".
  auto parsed = ParseJson(payload.empty() ? std::string_view("{}") : payload);
  if (!parsed.ok()) return StatusToJson(parsed.status()).Dump();
  if (!parsed->is_object()) {
    return StatusToJson(
               Status::InvalidArgument("frame payload must be a JSON object"))
        .Dump();
  }
  // The verb byte is authoritative; a payload "op" is allowed only as a
  // cross-check (it would otherwise silently win in one mode and be
  // ignored in the other).
  const JsonValue* payload_op = parsed->Find("op");
  if (payload_op != nullptr &&
      (!payload_op->is_string() || payload_op->AsString() != op)) {
    return StatusToJson(Status::InvalidArgument(
                            std::string("frame payload \"op\" contradicts the "
                                        "frame verb (expected \"") +
                            op + "\")"))
        .Dump();
  }
  return DispatchRequest(service, op, *parsed, cancel, default_kb);
}

}  // namespace remi
