// A newline-delimited-JSON-over-TCP front end for remi::Service.
//
// Transport: clients connect over TCP (IPv4), send one JSON request per
// line, and receive one JSON response per line, in order. The protocol is
// the json_codec mapping of the Service contracts; concurrency and
// back-pressure come from the Service's admission control (each connection
// is served by its own thread, so slow mining on one connection never
// stalls another's reads).
//
// Multi-tenant: a request selects a named KB with a per-request "kb"
// field (NDJSON has no connection handshake; that is the binary
// protocol's kUseKb). Absent or "" serves the default tenant.
//
// The server is embeddable: tests start it in-process on an ephemeral
// loopback port (port 0) and connect through a socket, which is exactly
// what tools/remi_server.cc does minus the flag parsing.

#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "util/status.h"

namespace remi {

struct LineServerOptions {
  /// IPv4 address to bind; loopback by default (the server has no auth).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// listen(2) backlog.
  int backlog = 16;
  /// Requests longer than this many bytes poison the connection (one
  /// error response, then close). Guards the line buffer.
  size_t max_line_bytes = 1 << 20;
};

/// \brief Accepts connections and serves the line protocol until Stop().
///
/// One-shot: a stopped server cannot be restarted (Stop() fires the
/// server-wide cancellation token that bounds in-flight work).
class LineServer {
 public:
  /// \param service the request handler (not owned; must outlive the
  ///        server).
  explicit LineServer(Service* service,
                      const LineServerOptions& options = {});
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Binds, listens, and starts the accept thread. IoError on bind/listen
  /// failure; InvalidArgument on a bad bind address.
  Status Start();

  /// Shuts the listener and every open connection down, cancels in-flight
  /// requests (wire requests all carry the server's cancellation token,
  /// so a deadline-less mining run cannot block shutdown), and joins all
  /// serving threads. Idempotent; also run by the destructor.
  void Stop();

  /// Graceful shutdown: stops accepting new connections, half-closes every
  /// open connection (SHUT_RD — requests already received keep executing
  /// and their responses still flush; the client sees EOF after the last
  /// one), and waits up to `grace_seconds` for connections to finish. On
  /// grace expiry the remaining in-flight requests are cancelled and the
  /// connections torn down. Always leaves the server fully stopped
  /// (follow with Stop() if you want the idempotent hard-stop bookkeeping;
  /// it is a no-op after a completed drain). Returns true iff every
  /// connection finished within the grace period.
  bool Drain(double grace_seconds);

  /// The bound port (after Start); useful with port 0.
  int port() const { return port_; }

 private:
  /// One accepted connection: its socket, its serving thread, and a
  /// completion flag the accept loop uses to reap finished threads (so a
  /// long-running server does not accumulate one zombie thread per
  /// connection ever served).
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* connection);
  /// Joins and drops finished connections. Called from the accept loop.
  void ReapFinishedConnections();

  Service* service_;
  LineServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  /// Cancels every request this server ever dispatched; fired by Stop().
  CancellationSource cancel_source_;

  std::mutex connections_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace remi
